#!/usr/bin/env python3
"""Regenerates the checkpoint fuzz corpus (fuzz/corpus/checkpoint).

Builds checkpoint images byte-for-byte in the v1 on-disk format of
stream/checkpoint.h using Python's zlib.crc32, which is bit-compatible
with the library's common/crc32.h — proving external tooling can produce
and verify checkpoints without linking the C++ code.

Seeds written:
  valid_processor    minimal valid image, no driver section
  valid_driver       valid image with truths, weight history, chunk starts
  truncated_*        valid images cut mid-structure
  bitflip_*          valid images with one bit flipped (CRC must reject)
  bad_magic          wrong magic, otherwise valid
  bad_version        version 2 with a correct CRC (version gate must reject)
  huge_counts        absurd source count with a correct CRC (bounds guard)
  empty              zero bytes

Usage: scripts/make_checkpoint_corpus.py  (writes into the repo tree)
"""

from __future__ import annotations

import pathlib
import struct
import zlib

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
CORPUS_DIR = REPO_ROOT / "fuzz" / "corpus" / "checkpoint"

MAGIC = b"CRHCKPT1"
VERSION = 1


def body(fingerprint: int, chunks: int, weights, accumulated, quarantined,
         driver=None) -> bytes:
    out = bytearray()
    out += MAGIC
    out += struct.pack("<I", VERSION)
    out += struct.pack("<Q", fingerprint)
    out += struct.pack("<Q", chunks)
    out += struct.pack("<Q", len(weights))
    for w in weights:
        out += struct.pack("<d", w)
    for a in accumulated:
        out += struct.pack("<d", a)
    for q in quarantined:
        out += struct.pack("<Q", q)
    if driver is None:
        out += b"\x00"
    else:
        truths, history, starts = driver
        out += b"\x01"
        out += struct.pack("<Q", len(truths))
        out += struct.pack("<Q", len(truths[0]) if truths else 0)
        for row in truths:
            for cell in row:
                if cell is None:
                    out += b"\x00"
                elif isinstance(cell, float):
                    out += b"\x01" + struct.pack("<d", cell)
                else:
                    out += b"\x02" + struct.pack("<i", cell)
        out += struct.pack("<Q", len(history))
        for row in history:
            for w in row:
                out += struct.pack("<d", w)
        out += struct.pack("<Q", len(starts))
        for s in starts:
            out += struct.pack("<q", s)
    return bytes(out)


def seal(raw: bytes) -> bytes:
    return raw + struct.pack("<I", zlib.crc32(raw) & 0xFFFFFFFF)


def main() -> None:
    CORPUS_DIR.mkdir(parents=True, exist_ok=True)

    processor = seal(body(0x1234ABCD5678EF01, 4, [1.5, 0.25, 3.75],
                          [10.0, 20.5, 0.0], [0, 7, 2]))
    truths = [[2.5, 1], [None, None], [None, 0]]  # float=continuous, int=categorical
    history = [[1.0, 1.0, 1.0], [1.5, 0.5, 1.0], [1.5, 0.25, 2.0], [1.5, 0.25, 3.75]]
    driver = seal(body(0x1234ABCD5678EF01, 4, [1.5, 0.25, 3.75],
                       [10.0, 20.5, 0.0], [0, 7, 2],
                       driver=(truths, history, [-2, 0, 1, 5])))

    seeds = {
        "valid_processor": processor,
        "valid_driver": driver,
        "truncated_header": processor[:16],
        "truncated_weights": processor[:48],
        "truncated_driver": driver[: len(driver) // 2],
        "truncated_no_crc": driver[:-4],
        "bad_magic": seal(b"NOTCKPT1" + processor[8:-4]),
        "empty": b"",
    }
    for pos in (0, 12, 40, len(processor) - 2):
        flipped = bytearray(processor)
        flipped[pos] ^= 0x20
        seeds[f"bitflip_{pos}"] = bytes(flipped)

    bad_version = bytearray(processor[:-4])
    bad_version[8] = 2
    seeds["bad_version"] = seal(bytes(bad_version))

    huge = bytearray(processor[:-4])
    huge[28:36] = b"\xff" * 8  # u64 source count
    seeds["huge_counts"] = seal(bytes(huge))

    for name, data in seeds.items():
        (CORPUS_DIR / name).write_bytes(data)
    print(f"wrote {len(seeds)} seeds to {CORPUS_DIR}")


if __name__ == "__main__":
    main()
