#!/usr/bin/env python3
"""End-to-end smoke test for the crh_serve daemon (stdlib only).

Drives one full serving lifecycle the way an operator would:

  1. start crh_serve over a tiny two-source universe,
  2. ingest two chunks and read truths/weights back,
  3. SIGTERM the daemon and wait for the graceful drain (exit 0),
  4. restart with --resume, replay the same chunks (at-least-once),
  5. assert the served truths and weights are identical to step 2,
  6. drain via the socket `drain` command.

Exits nonzero with a diagnostic on any divergence. CI runs this as the
`serve-smoke` job; locally:

  python3 scripts/serve_smoke.py build/src/crh_serve
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time

UNIVERSE_CSV = """object_id,property,source_id,value
o1,temp,s1,10.0
o1,temp,s2,11.0
o2,temp,s1,20.0
o2,temp,s2,21.5
"""

# Two chunk payloads; the universe claims above are never ingested, they
# only define the object/source entry space truths are maintained in.
CHUNKS = [
    (0, """object_id,property,source_id,value
o1,temp,s1,10.0
o1,temp,s2,11.0
o2,temp,s1,20.0
o2,temp,s2,21.5
"""),
    (1, """object_id,property,source_id,value
o1,temp,s1,10.5
o1,temp,s2,10.6
o2,temp,s1,19.5
o2,temp,s2,20.0
"""),
]


def fail(message):
    print(f"serve_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


class Daemon:
    def __init__(self, binary, socket_path, universe, checkpoint_dir, log_path):
        self.socket_path = socket_path
        self.log = open(log_path, "ab")
        self.proc = subprocess.Popen(
            [
                binary,
                "--socket", socket_path,
                "--schema", "temp:continuous",
                "--universe", universe,
                "--checkpoint-dir", checkpoint_dir,
                "--resume",
            ],
            stdout=self.log,
            stderr=self.log,
        )

    def connect(self, timeout_s=15.0):
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                fail(f"daemon exited early with {self.proc.returncode}")
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                sock.connect(self.socket_path)
                return Client(sock)
            except OSError:
                sock.close()
                time.sleep(0.02)
        fail("daemon never came up")

    def wait_exit(self, timeout_s=30.0):
        try:
            return self.proc.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            fail("daemon did not exit within the deadline")

    def close(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()
        self.log.close()


class Client:
    def __init__(self, sock):
        self.sock = sock
        self.buffer = b""

    def request(self, **fields):
        self.sock.sendall(json.dumps(fields).encode() + b"\n")
        while b"\n" not in self.buffer:
            data = self.sock.recv(65536)
            if not data:
                fail(f"connection closed mid-request: {fields}")
            self.buffer += data
        line, _, self.buffer = self.buffer.partition(b"\n")
        return json.loads(line)

    def close(self):
        self.sock.close()


def drive(client, expect_resumed):
    """Replays both chunks, waits for them to be solved, returns state."""
    for seq, (window_start, csv) in enumerate(CHUNKS):
        while True:
            reply = client.request(cmd="ingest", seq=seq,
                                   window_start=window_start, csv=csv)
            if reply.get("ok"):
                break
            if reply.get("error") == "overloaded":
                time.sleep(reply.get("retry_after_ms", 50) / 1000.0)
                continue
            fail(f"ingest seq {seq} rejected: {reply}")
    deadline = time.monotonic() + 30.0
    while True:
        status = client.request(cmd="status")
        if status.get("chunks_solved", 0) >= len(CHUNKS):
            break
        if time.monotonic() > deadline:
            fail(f"chunks never solved: {status}")
        time.sleep(0.01)
    if expect_resumed and status.get("chunks_resumed", 0) == 0:
        fail(f"expected a resumed stream, got {status}")
    truths = {
        obj: client.request(cmd="truth", object=obj, property="temp")
        for obj in ("o1", "o2")
    }
    for obj, reply in truths.items():
        if not reply.get("ok") or reply.get("value") is None:
            fail(f"truth query for {obj} failed: {reply}")
    weights = client.request(cmd="weights")
    if not weights.get("ok"):
        fail(f"weights query failed: {weights}")
    return {
        "truths": {obj: reply["value"] for obj, reply in truths.items()},
        "weights": dict(zip(weights["sources"], weights["weights"])),
    }


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    binary = sys.argv[1]
    if not os.access(binary, os.X_OK):
        fail(f"{binary} is not executable")

    with tempfile.TemporaryDirectory(prefix="crh_serve_smoke_") as root:
        universe = os.path.join(root, "universe.csv")
        with open(universe, "w") as handle:
            handle.write(UNIVERSE_CSV)
        checkpoint_dir = os.path.join(root, "ckpt")
        os.mkdir(checkpoint_dir)
        socket_path = os.path.join(root, "crh.sock")
        log_path = os.path.join(root, "daemon.log")

        # Lifetime 1: cold start, ingest, read, graceful SIGTERM drain.
        daemon = Daemon(binary, socket_path, universe, checkpoint_dir, log_path)
        try:
            client = daemon.connect()
            before = drive(client, expect_resumed=False)
            client.close()
            daemon.proc.send_signal(signal.SIGTERM)
            code = daemon.wait_exit()
            if code != 0:
                fail(f"SIGTERM drain exited with {code}")
        finally:
            daemon.close()

        # Lifetime 2: resume, replay the same chunks, answers must match.
        daemon = Daemon(binary, socket_path, universe, checkpoint_dir, log_path)
        try:
            client = daemon.connect()
            after = drive(client, expect_resumed=True)
            if before != after:
                fail(f"state diverged across restart:\n  before {before}\n  after  {after}")
            reply = client.request(cmd="drain")
            if not reply.get("ok"):
                fail(f"drain command rejected: {reply}")
            client.close()
            code = daemon.wait_exit()
            if code != 0:
                fail(f"socket drain exited with {code}")
        finally:
            daemon.close()

    print("serve_smoke: PASS (ingest, SIGTERM drain, resume, bit-identical answers)")


if __name__ == "__main__":
    main()
