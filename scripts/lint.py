#!/usr/bin/env python3
"""Repo-specific lint rules that clang-tidy cannot express.

Rules enforced over first-party C++ sources (src/, tests/, bench/,
examples/):

  include-cc      No `#include` of a `.cc` file: translation units are
                  compiled exactly once, by CMake.
  naked-new       No naked `new` / `delete` outside src/common/: ownership
                  lives in containers and smart pointers; only the common
                  layer may implement low-level primitives.
  unchecked-status
                  Every call to a function returning crh::Status must be
                  consumed (returned, assigned, wrapped in
                  CRH_RETURN_NOT_OK, asserted in a test, or explicitly
                  voided). Silently dropping a Status hides failures.
  nondeterminism  No `std::rand`, `srand`, or `time(nullptr)` seeding:
                  every stochastic component draws from the explicitly
                  seeded crh::Rng so runs are reproducible.
  raw-assert      No raw `assert(` outside tests/: library code uses
                  CRH_CHECK / CRH_DCHECK (src/common/check.h), which
                  report expression and operands and respect the
                  project's Debug/Release contract semantics.
                  (`static_assert` is always fine.)
  float-equality  No `==` / `!=` against a floating-point literal or a
                  Value's continuous payload in src/: exact comparison
                  of computed doubles is almost always a bug; compare
                  via NearlyEqual / CRH_CHECK_NEAR or an explicit
                  tolerance. Intentional exact comparisons (bitwise
                  round-trips) carry a lint:allow.
  unchecked-io-write
                  Every `fwrite` / `fflush` / `rename` / `fclose` return
                  value must be checked: a full disk or yanked mount
                  surfaces exactly there, and dropping it turns a torn
                  write into silent corruption (the checkpoint and CSV
                  writers depend on these checks for atomicity).
                  Intentional drops (crash-handler flushes) carry a
                  lint:allow.
  mutex-annotations
                  A header declaring a mutex or condition-variable member
                  (crh::Mutex, crh::CondVar, std::mutex,
                  std::condition_variable) must include
                  common/thread_annotations.h and use at least one CRH_*
                  capability annotation: unannotated locks are invisible
                  to clang's -Wthread-safety analysis, so the analyze
                  preset silently checks nothing. (scripts/ast_lint.py
                  then checks the *placement* of the annotations; this
                  rule checks their existence.)

Exit status is 0 when the tree is clean, 1 when any finding is reported.
Suppress a single line with a trailing `// lint:allow(<rule>)` comment.

Usage: scripts/lint.py [paths...]   (defaults to src tests bench examples)
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_DIRS = ["src", "tests", "bench", "examples", "fuzz"]
CXX_SUFFIXES = {".h", ".cc", ".cpp", ".hpp"}

INCLUDE_CC_RE = re.compile(r'#\s*include\s+["<][^">]+\.cc[">]')
NAKED_NEW_RE = re.compile(r"(^|[^\w.])new\s+[A-Za-z_:<(]")
NAKED_DELETE_RE = re.compile(r"(^|[^\w.])delete(\s*\[\s*\])?\s+[A-Za-z_*(]")
NONDETERMINISM_RE = re.compile(
    r"std::rand\b|[^\w.]s?rand\s*\(|\btime\s*\(\s*(nullptr|NULL|0)\s*\)"
)
ALLOW_RE = re.compile(r"//\s*lint:allow\(([\w-]+)\)")
RAW_ASSERT_RE = re.compile(r"(^|[^\w])assert\s*\(")
# A floating-point literal (1.0, .5, 2.5e-3, 1.f) or the continuous payload
# of a Value (`.continuous()` accessor / `continuous_` member), on either
# side of == or !=. Heuristic by design: it cannot see declared types, but
# these two shapes cover the double comparisons this codebase performs.
_FLOAT_OPERAND = r"(?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?f?"
_CONTINUOUS_OPERAND = r"(?:\.|->)continuous\(\)|\bcontinuous_"
FLOAT_EQ_RE = re.compile(
    rf"(?:{_FLOAT_OPERAND}|{_CONTINUOUS_OPERAND})\s*[!=]=(?!=)"
    rf"|[!=]=\s*[-+]?(?:{_FLOAT_OPERAND}|{_CONTINUOUS_OPERAND})"
)

# A declaration (or definition) of a function returning plain Status. The
# unchecked-status rule keys off the collected names, so both free
# functions and methods are covered without a real parser.
STATUS_DECL_RE = re.compile(r"^\s*(?:static\s+|virtual\s+)?(?:crh::)?Status\s+(\w+)\s*\(")

# A statement-level call to a cstdio write/commit function whose return
# value is dropped — including `(void)`-cast drops, mirroring
# unchecked-status: an intentional drop must carry a lint:allow so the
# reader sees it was considered.
UNCHECKED_IO_RE = re.compile(
    r"^\s*(?:\(void\)\s*)?(?:std::)?(?:fwrite|fflush|rename|fclose)\s*\(.*\)\s*;\s*$"
)

# An expression statement whose whole effect is a call:  `Foo(...);`,
# `obj.Foo(...);` or `ptr->Foo(...);` — with nothing consuming the value.
# The prefix deliberately excludes parentheses so wrapped calls
# (`(void)x.Foo();`, `CRH_RETURN_NOT_OK(x.Foo());`, `EXPECT_TRUE(x.Foo().ok())`)
# do not match.
CALL_STMT_RE = re.compile(r"^\s*(?:[\w\]\[]+(?:\.|->))*(\w+)\s*\(.*\)\s*;\s*$")

# A mutex / condition-variable member declaration in a header. Matched
# per file: the header must also include thread_annotations.h and use at
# least one CRH_* annotation, else the analyze preset has nothing to check.
MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:crh::)?(?:Mutex|CondVar|std::mutex|"
    r"std::condition_variable(?:_any)?)\s+\w+\s*;")
THREAD_ANNOTATIONS_INCLUDE_RE = re.compile(
    r'#\s*include\s+"common/thread_annotations\.h"')
CRH_ANNOTATION_USE_RE = re.compile(
    r"\bCRH_(?:CAPABILITY|SCOPED_CAPABILITY|GUARDED_BY|PT_GUARDED_BY|"
    r"ACQUIRE|RELEASE|REQUIRES|EXCLUDES|RETURN_CAPABILITY|ASSERT_CAPABILITY)\b")
# The primitives themselves: the wrapper header defines the annotated types
# and the macro header defines the annotations.
MUTEX_RULE_EXEMPT = {"src/common/mutex.h", "src/common/thread_annotations.h"}

# Factory helpers whose Status return is the *point* of the call; a bare
# statement calling one of these is dead code, but never an unchecked
# error path, and tests construct them in expression contexts constantly.
STATUS_FACTORIES = {
    "OK",
    "InvalidArgument",
    "OutOfRange",
    "NotFound",
    "AlreadyExists",
    "FailedPrecondition",
    "IOError",
    "NotImplemented",
    "Internal",
}


def strip_comments_and_strings(line: str) -> str:
    """Blanks out string/char literals and `//` comments (keeps length)."""
    out: list[str] = []
    i, n = 0, len(line)
    quote: str | None = None
    while i < n:
        c = line[i]
        if quote:
            if c == "\\" and i + 1 < n:
                out.append("  ")
                i += 2
                continue
            out.append(quote if c == quote else " ")
            if c == quote:
                quote = None
        elif c in "\"'":
            quote = c
            out.append(c)
        elif c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        else:
            out.append(c)
        i += 1
    return "".join(out)


def iter_sources(argv: list[str]):
    roots = [pathlib.Path(p) for p in argv] if argv else [
        REPO_ROOT / d for d in DEFAULT_DIRS
    ]
    for root in roots:
        if root.is_file():
            yield root
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix in CXX_SUFFIXES and "build" not in path.parts:
                yield path


def collect_status_functions(files: list[pathlib.Path]) -> set[str]:
    names: set[str] = set()
    for path in files:
        for line in path.read_text(encoding="utf-8").splitlines():
            match = STATUS_DECL_RE.match(line)
            if match:
                names.add(match.group(1))
    return names - STATUS_FACTORIES


def main(argv: list[str]) -> int:
    files = list(iter_sources(argv))
    status_functions = collect_status_functions(files)
    findings: list[tuple[pathlib.Path, int, str, str]] = []

    for path in files:
        in_common = "common" in path.parts
        in_tests = "tests" in path.parts
        in_src = "src" in path.parts
        rel_posix = (path.relative_to(REPO_ROOT).as_posix()
                     if path.is_relative_to(REPO_ROOT) else path.as_posix())
        file_text = path.read_text(encoding="utf-8")
        if (path.suffix in (".h", ".hpp") and rel_posix not in MUTEX_RULE_EXEMPT):
            has_include = bool(THREAD_ANNOTATIONS_INCLUDE_RE.search(file_text))
            has_annotation = bool(CRH_ANNOTATION_USE_RE.search(file_text))
            if not (has_include and has_annotation):
                for lineno, raw in enumerate(file_text.splitlines(), 1):
                    if ("mutex-annotations" in ALLOW_RE.findall(raw)
                            or not MUTEX_MEMBER_RE.match(
                                strip_comments_and_strings(raw))):
                        continue
                    missing = ("thread_annotations.h include" if not has_include
                               else "any CRH_* capability annotation")
                    findings.append((path, lineno, "mutex-annotations",
                                     "header declares a lock member but lacks "
                                     f"{missing}; annotate what the lock "
                                     "protects so -Wthread-safety can check it"))
        for lineno, raw in enumerate(file_text.splitlines(), 1):
            allowed = {m for m in ALLOW_RE.findall(raw)}
            line = strip_comments_and_strings(raw)

            # Checked on the raw line: the include path is a string literal,
            # which strip_comments_and_strings blanks out.
            if INCLUDE_CC_RE.search(raw) and "include-cc" not in allowed:
                findings.append((path, lineno, "include-cc",
                                 "do not #include .cc files"))
            if not in_common and "naked-new" not in allowed and (
                    NAKED_NEW_RE.search(line) or NAKED_DELETE_RE.search(line)):
                findings.append((path, lineno, "naked-new",
                                 "naked new/delete outside src/common/"))
            if NONDETERMINISM_RE.search(line) and "nondeterminism" not in allowed:
                findings.append((path, lineno, "nondeterminism",
                                 "use the seeded crh::Rng, not std::rand/time"))
            if (not in_tests and "raw-assert" not in allowed
                    and RAW_ASSERT_RE.search(line)):
                findings.append((path, lineno, "raw-assert",
                                 "use CRH_CHECK/CRH_DCHECK instead of assert()"))
            if in_src and "float-equality" not in allowed and FLOAT_EQ_RE.search(line):
                findings.append((path, lineno, "float-equality",
                                 "exact ==/!= on a double; use NearlyEqual or an "
                                 "explicit tolerance (lint:allow if intentional)"))
            if "unchecked-io-write" not in allowed and UNCHECKED_IO_RE.match(line):
                findings.append((path, lineno, "unchecked-io-write",
                                 "fwrite/fflush/rename/fclose return value is "
                                 "dropped; a failed write or close is how torn "
                                 "output happens (lint:allow if intentional)"))

            call = CALL_STMT_RE.match(line)
            if (call and call.group(1) in status_functions
                    and "unchecked-status" not in allowed):
                findings.append((path, lineno, "unchecked-status",
                                 f"result of Status-returning {call.group(1)}() is "
                                 "dropped; check it, CRH_RETURN_NOT_OK it, or "
                                 "(void)-cast with a lint:allow"))

    for path, lineno, rule, message in findings:
        rel = path.relative_to(REPO_ROOT) if path.is_relative_to(REPO_ROOT) else path
        print(f"{rel}:{lineno}: [{rule}] {message}")
    if findings:
        print(f"\nscripts/lint.py: {len(findings)} finding(s).", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
