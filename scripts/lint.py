#!/usr/bin/env python3
"""Repo-specific lint rules that clang-tidy cannot express.

Rules enforced over first-party C++ sources (src/, tests/, bench/,
examples/):

  include-cc      No `#include` of a `.cc` file: translation units are
                  compiled exactly once, by CMake.
  naked-new       No naked `new` / `delete` outside src/common/: ownership
                  lives in containers and smart pointers; only the common
                  layer may implement low-level primitives.
  unchecked-status
                  Every call to a function returning crh::Status must be
                  consumed (returned, assigned, wrapped in
                  CRH_RETURN_NOT_OK, asserted in a test, or explicitly
                  voided). Silently dropping a Status hides failures.
  nondeterminism  No `std::rand`, `srand`, or `time(nullptr)` seeding:
                  every stochastic component draws from the explicitly
                  seeded crh::Rng so runs are reproducible.
  raw-assert      No raw `assert(` outside tests/: library code uses
                  CRH_CHECK / CRH_DCHECK (src/common/check.h), which
                  report expression and operands and respect the
                  project's Debug/Release contract semantics.
                  (`static_assert` is always fine.)
  float-equality  No `==` / `!=` against a floating-point literal or a
                  Value's continuous payload in src/: exact comparison
                  of computed doubles is almost always a bug; compare
                  via NearlyEqual / CRH_CHECK_NEAR or an explicit
                  tolerance. Intentional exact comparisons (bitwise
                  round-trips) carry a lint:allow.
  unchecked-io-write
                  Every `fwrite` / `fflush` / `rename` / `fclose` return
                  value must be checked: a full disk or yanked mount
                  surfaces exactly there, and dropping it turns a torn
                  write into silent corruption (the checkpoint and CSV
                  writers depend on these checks for atomicity).
                  Intentional drops (crash-handler flushes) carry a
                  lint:allow.
  mutex-annotations
                  A header declaring a mutex or condition-variable member
                  (crh::Mutex, crh::CondVar, std::mutex,
                  std::condition_variable) must include
                  common/thread_annotations.h and use at least one CRH_*
                  capability annotation: unannotated locks are invisible
                  to clang's -Wthread-safety analysis, so the analyze
                  preset silently checks nothing. (scripts/ast_lint.py
                  then checks the *placement* of the annotations; this
                  rule checks their existence.)
  determinism     No `time(`, `clock_gettime`, `rand(`,
                  `std::random_device`, or `getenv` in src/core,
                  src/weights, or src/stream: the deterministic layers
                  must reach wall clocks and entropy only through the
                  sanctioned shims (common/stopwatch.h, common/rng.h,
                  the fault-injection layer), which carry
                  CRH_DETERMINISM_EXEMPT and are audited by
                  scripts/crh_analyzer.py's interprocedural taint check.

Exit status is 0 when the tree is clean, 1 when any finding is reported,
2 on a tooling error. Suppress a single line with a trailing
`// lint:allow(<rule>)` comment. Findings are gated against
scripts/lint_baseline.txt (committed empty): new findings fail, stale
entries fail full-tree runs (delete them, or run --update-baseline).

Usage: scripts/lint.py [--sarif OUT] [--update-baseline] [--no-baseline]
                       [paths...]   (defaults to src tests bench examples)
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import sarif_util  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "scripts" / "lint_baseline.txt"
DEFAULT_DIRS = ["src", "tests", "bench", "examples", "fuzz"]
CXX_SUFFIXES = {".h", ".cc", ".cpp", ".hpp"}

INCLUDE_CC_RE = re.compile(r'#\s*include\s+["<][^">]+\.cc[">]')
NAKED_NEW_RE = re.compile(r"(^|[^\w.])new\s+[A-Za-z_:<(]")
NAKED_DELETE_RE = re.compile(r"(^|[^\w.])delete(\s*\[\s*\])?\s+[A-Za-z_*(]")
NONDETERMINISM_RE = re.compile(
    r"std::rand\b|[^\w.]s?rand\s*\(|\btime\s*\(\s*(nullptr|NULL|0)\s*\)"
)
ALLOW_RE = re.compile(r"//\s*lint:allow\(([\w-]+)\)")
# The determinism-critical layers: bit-identity at every thread count and
# across kill-and-resume is the product guarantee these directories carry.
DETERMINISM_DIRS = ("src/core/", "src/weights/", "src/stream/")
DETERMINISM_RE = re.compile(
    r"(?<![\w.:])time\s*\(|\bclock_gettime\s*\(|\bgettimeofday\s*\("
    r"|(?<![\w.:])s?rand\s*\(|std::random_device\b"
    r"|(?<![\w.:])getenv\s*\(|std::getenv\b")
RAW_ASSERT_RE = re.compile(r"(^|[^\w])assert\s*\(")
# A floating-point literal (1.0, .5, 2.5e-3, 1.f) or the continuous payload
# of a Value (`.continuous()` accessor / `continuous_` member), on either
# side of == or !=. Heuristic by design: it cannot see declared types, but
# these two shapes cover the double comparisons this codebase performs.
_FLOAT_OPERAND = r"(?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?f?"
_CONTINUOUS_OPERAND = r"(?:\.|->)continuous\(\)|\bcontinuous_"
FLOAT_EQ_RE = re.compile(
    rf"(?:{_FLOAT_OPERAND}|{_CONTINUOUS_OPERAND})\s*[!=]=(?!=)"
    rf"|[!=]=\s*[-+]?(?:{_FLOAT_OPERAND}|{_CONTINUOUS_OPERAND})"
)

# A declaration (or definition) of a function returning plain Status. The
# unchecked-status rule keys off the collected names, so both free
# functions and methods are covered without a real parser.
STATUS_DECL_RE = re.compile(r"^\s*(?:static\s+|virtual\s+)?(?:crh::)?Status\s+(\w+)\s*\(")

# A statement-level call to a cstdio write/commit function whose return
# value is dropped — including `(void)`-cast drops, mirroring
# unchecked-status: an intentional drop must carry a lint:allow so the
# reader sees it was considered.
UNCHECKED_IO_RE = re.compile(
    r"^\s*(?:\(void\)\s*)?(?:std::)?(?:fwrite|fflush|rename|fclose)\s*\(.*\)\s*;\s*$"
)

# An expression statement whose whole effect is a call:  `Foo(...);`,
# `obj.Foo(...);` or `ptr->Foo(...);` — with nothing consuming the value.
# The prefix deliberately excludes parentheses so wrapped calls
# (`(void)x.Foo();`, `CRH_RETURN_NOT_OK(x.Foo());`, `EXPECT_TRUE(x.Foo().ok())`)
# do not match.
CALL_STMT_RE = re.compile(r"^\s*(?:[\w\]\[]+(?:\.|->))*(\w+)\s*\(.*\)\s*;\s*$")

# A mutex / condition-variable member declaration in a header. Matched
# per file: the header must also include thread_annotations.h and use at
# least one CRH_* annotation, else the analyze preset has nothing to check.
MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:crh::)?(?:Mutex|CondVar|std::mutex|"
    r"std::condition_variable(?:_any)?)\s+\w+\s*;")
THREAD_ANNOTATIONS_INCLUDE_RE = re.compile(
    r'#\s*include\s+"common/thread_annotations\.h"')
CRH_ANNOTATION_USE_RE = re.compile(
    r"\bCRH_(?:CAPABILITY|SCOPED_CAPABILITY|GUARDED_BY|PT_GUARDED_BY|"
    r"ACQUIRE|RELEASE|REQUIRES|EXCLUDES|RETURN_CAPABILITY|ASSERT_CAPABILITY)\b")
# The primitives themselves: the wrapper header defines the annotated types
# and the macro header defines the annotations.
MUTEX_RULE_EXEMPT = {"src/common/mutex.h", "src/common/thread_annotations.h"}

# Factory helpers whose Status return is the *point* of the call; a bare
# statement calling one of these is dead code, but never an unchecked
# error path, and tests construct them in expression contexts constantly.
STATUS_FACTORIES = {
    "OK",
    "InvalidArgument",
    "OutOfRange",
    "NotFound",
    "AlreadyExists",
    "FailedPrecondition",
    "IOError",
    "NotImplemented",
    "Internal",
}


def strip_comments_and_strings(line: str) -> str:
    """Blanks out string/char literals and `//` comments (keeps length)."""
    out: list[str] = []
    i, n = 0, len(line)
    quote: str | None = None
    while i < n:
        c = line[i]
        if quote:
            if c == "\\" and i + 1 < n:
                out.append("  ")
                i += 2
                continue
            out.append(quote if c == quote else " ")
            if c == quote:
                quote = None
        elif c in "\"'":
            quote = c
            out.append(c)
        elif c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        else:
            out.append(c)
        i += 1
    return "".join(out)


def iter_sources(argv: list[str]):
    roots = [pathlib.Path(p) for p in argv] if argv else [
        REPO_ROOT / d for d in DEFAULT_DIRS
    ]
    for root in roots:
        if root.is_file():
            yield root
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix in CXX_SUFFIXES and "build" not in path.parts:
                yield path


def collect_status_functions(files: list[pathlib.Path]) -> set[str]:
    names: set[str] = set()
    for path in files:
        for line in path.read_text(encoding="utf-8").splitlines():
            match = STATUS_DECL_RE.match(line)
            if match:
                names.add(match.group(1))
    return names - STATUS_FACTORIES


class Finding:
    """(path, line, rule, message) with the repo-relative rendering and the
    `path: [rule]` baseline key shared with ast_lint/crh_analyzer."""

    def __init__(self, path: pathlib.Path, line: int, rule: str, message: str):
        rel = path.relative_to(REPO_ROOT) if path.is_relative_to(REPO_ROOT) \
            else path
        self.path = rel.as_posix()
        self.line = line
        self.rule = rule
        self.message = message

    def key(self) -> str:
        return f"{self.path}: [{self.rule}]"

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


RULE_DOCS = {
    "include-cc": "#include of a .cc file",
    "naked-new": "naked new/delete outside src/common/",
    "unchecked-status": "Status-returning call dropped",
    "nondeterminism": "std::rand/srand/time(nullptr) seeding",
    "determinism": "raw clock/RNG/getenv in a deterministic layer "
                   "(src/core, src/weights, src/stream)",
    "raw-assert": "raw assert() outside tests/",
    "float-equality": "exact ==/!= on a floating-point value",
    "unchecked-io-write": "fwrite/fflush/rename/fclose return dropped",
    "mutex-annotations": "lock member without thread-safety annotations",
}


def load_baseline() -> set[str]:
    if not BASELINE.exists():
        return set()
    entries = set()
    for line in BASELINE.read_text().splitlines():
        line = line.split(" #", 1)[0].strip()
        if line and not line.startswith("#"):
            entries.add(line)
    return entries


def write_baseline(findings: list[Finding]) -> None:
    lines = [
        "# lint.py baseline: accepted findings, one `path: [rule]` per",
        "# line, each with a trailing `# <justification>` (docs/TOOLING.md).",
        "# Stale entries fail full-tree runs: delete them when fixed, or",
        "# regenerate with --update-baseline.",
    ]
    for key in sorted({f.key() for f in findings}):
        lines.append(f"{key}  # TODO: justify or fix")
    BASELINE.write_text("\n".join(lines) + "\n")


def collect_findings(files: list[pathlib.Path]) -> list[Finding]:
    status_functions = collect_status_functions(files)
    findings: list[tuple[pathlib.Path, int, str, str]] = []

    for path in files:
        in_common = "common" in path.parts
        in_tests = "tests" in path.parts
        in_src = "src" in path.parts
        rel_posix = (path.relative_to(REPO_ROOT).as_posix()
                     if path.is_relative_to(REPO_ROOT) else path.as_posix())
        file_text = path.read_text(encoding="utf-8")
        if (path.suffix in (".h", ".hpp") and rel_posix not in MUTEX_RULE_EXEMPT):
            has_include = bool(THREAD_ANNOTATIONS_INCLUDE_RE.search(file_text))
            has_annotation = bool(CRH_ANNOTATION_USE_RE.search(file_text))
            if not (has_include and has_annotation):
                for lineno, raw in enumerate(file_text.splitlines(), 1):
                    if ("mutex-annotations" in ALLOW_RE.findall(raw)
                            or not MUTEX_MEMBER_RE.match(
                                strip_comments_and_strings(raw))):
                        continue
                    missing = ("thread_annotations.h include" if not has_include
                               else "any CRH_* capability annotation")
                    findings.append((path, lineno, "mutex-annotations",
                                     "header declares a lock member but lacks "
                                     f"{missing}; annotate what the lock "
                                     "protects so -Wthread-safety can check it"))
        for lineno, raw in enumerate(file_text.splitlines(), 1):
            allowed = {m for m in ALLOW_RE.findall(raw)}
            line = strip_comments_and_strings(raw)

            # Checked on the raw line: the include path is a string literal,
            # which strip_comments_and_strings blanks out.
            if INCLUDE_CC_RE.search(raw) and "include-cc" not in allowed:
                findings.append((path, lineno, "include-cc",
                                 "do not #include .cc files"))
            if not in_common and "naked-new" not in allowed and (
                    NAKED_NEW_RE.search(line) or NAKED_DELETE_RE.search(line)):
                findings.append((path, lineno, "naked-new",
                                 "naked new/delete outside src/common/"))
            if NONDETERMINISM_RE.search(line) and "nondeterminism" not in allowed:
                findings.append((path, lineno, "nondeterminism",
                                 "use the seeded crh::Rng, not std::rand/time"))
            if (rel_posix.startswith(DETERMINISM_DIRS)
                    and "determinism" not in allowed
                    and DETERMINISM_RE.search(line)):
                findings.append((path, lineno, "determinism",
                                 "raw clock/RNG/getenv in a deterministic "
                                 "layer; go through common/stopwatch.h, "
                                 "common/rng.h or the fault-injection shims "
                                 "(they carry CRH_DETERMINISM_EXEMPT)"))
            if (not in_tests and "raw-assert" not in allowed
                    and RAW_ASSERT_RE.search(line)):
                findings.append((path, lineno, "raw-assert",
                                 "use CRH_CHECK/CRH_DCHECK instead of assert()"))
            if in_src and "float-equality" not in allowed and FLOAT_EQ_RE.search(line):
                findings.append((path, lineno, "float-equality",
                                 "exact ==/!= on a double; use NearlyEqual or an "
                                 "explicit tolerance (lint:allow if intentional)"))
            if "unchecked-io-write" not in allowed and UNCHECKED_IO_RE.match(line):
                findings.append((path, lineno, "unchecked-io-write",
                                 "fwrite/fflush/rename/fclose return value is "
                                 "dropped; a failed write or close is how torn "
                                 "output happens (lint:allow if intentional)"))

            call = CALL_STMT_RE.match(line)
            if (call and call.group(1) in status_functions
                    and "unchecked-status" not in allowed):
                findings.append((path, lineno, "unchecked-status",
                                 f"result of Status-returning {call.group(1)}() is "
                                 "dropped; check it, CRH_RETURN_NOT_OK it, or "
                                 "(void)-cast with a lint:allow"))

    return [Finding(*f) for f in findings]


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sarif", default=None, metavar="OUT",
                        help="also write findings as SARIF 2.1.0")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report every finding, ignoring the baseline")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline to the current finding "
                             "set (entries get TODO justifications)")
    parser.add_argument("paths", nargs="*")
    opts = parser.parse_args(argv)

    files = list(iter_sources(opts.paths))
    findings = collect_findings(files)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))

    if opts.sarif:
        sarif_util.write_sarif(
            opts.sarif, "crh_lint",
            "https://github.com/crh/crh/blob/main/docs/TOOLING.md",
            findings, RULE_DOCS)

    if opts.update_baseline:
        write_baseline(findings)
        print(f"scripts/lint.py: baseline rewritten with "
              f"{len({f.key() for f in findings})} entr(y/ies); fill in the "
              f"justifications in {BASELINE.name}")
        return 0

    baseline = set() if opts.no_baseline else load_baseline()
    new = [f for f in findings if f.key() not in baseline]
    stale = baseline - {f.key() for f in findings}

    for f in new:
        print(f.render())
    if new:
        print(f"\nscripts/lint.py: {len(new)} finding(s) not in "
              f"{BASELINE.name}.", file=sys.stderr)
        return 1
    if stale and not opts.paths:
        # Full-tree runs keep the baseline honest; path-scoped runs (CI
        # changed-files mode) cannot see every finding.
        for entry in sorted(stale):
            print(f"lint: baselined finding no longer present: {entry}",
                  file=sys.stderr)
        print(f"lint: delete fixed entries from {BASELINE.name} or run "
              "--update-baseline.", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
