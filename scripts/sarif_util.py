"""Shared SARIF 2.1.0 emission for the repo's Python analyzers.

scripts/lint.py, scripts/ast_lint.py and scripts/crh_analyzer.py all report
findings as (file, line, rule, message) tuples; this module turns such a
list into a minimal, schema-valid SARIF log that GitHub code scanning (and
any other SARIF consumer) renders as inline PR annotations. One run per
tool, one result per finding, one reportingDescriptor per rule actually
fired plus any extra documented rules the caller passes.
"""

from __future__ import annotations

import json
import pathlib

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def sarif_log(tool_name: str, information_uri: str,
              findings: list, rule_docs: dict[str, str] | None = None) -> dict:
    """Builds a SARIF log dict.

    `findings` is a list of objects with .path (repo-relative str or Path),
    .line (int), .rule (str) and .message (str) attributes — the shape the
    three analyzers already use internally. `rule_docs` maps rule id ->
    short description; rules that fired but are not in the map get their id
    as the description.
    """
    rules: dict[str, str] = dict(rule_docs or {})
    for f in findings:
        rules.setdefault(f.rule, f.rule)
    descriptors = [
        {
            "id": rule_id,
            "shortDescription": {"text": desc},
            "defaultConfiguration": {"level": "error"},
        }
        for rule_id, desc in sorted(rules.items())
    ]
    results = []
    for f in findings:
        path = pathlib.PurePosixPath(str(f.path).replace("\\", "/"))
        results.append({
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": str(path),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": max(1, int(f.line))},
                }
            }],
        })
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": tool_name,
                    "informationUri": information_uri,
                    "rules": descriptors,
                }
            },
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": results,
        }],
    }


def write_sarif(path: str, tool_name: str, information_uri: str,
                findings: list, rule_docs: dict[str, str] | None = None) -> None:
    log = sarif_log(tool_name, information_uri, findings, rule_docs)
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(log, indent=2) + "\n", encoding="utf-8")
