#!/usr/bin/env python3
"""Whole-program dataflow analyzer for CRH's determinism and fault contracts.

Where scripts/lint.py and scripts/ast_lint.py judge one line or one file at
a time, this analyzer ingests compile_commands.json, builds a program model
(function table + call graph) across every translation unit, and runs nine
interprocedural checks. Four guard the repo's bit-identity and
crash-recovery guarantees:

  determinism-taint     Values derived from wall-clock time (`::now(`,
                        `time(`, `clock_gettime`), unseeded RNG (`rand(`,
                        `std::random_device`), the environment (`getenv`),
                        pointer addresses (`reinterpret_cast<uintptr_t>`),
                        or unordered-container iteration order must not
                        flow — through calls and returns — into published
                        truths, weights, checkpoints, or bench/CLI output.
                        The barrier is `CRH_DETERMINISM_EXEMPT("why")`
                        (src/common/determinism.h): a function carrying it
                        vouches that nondeterminism does not escape its
                        return value (e.g. Stopwatch, which only ever
                        feeds timing reports).
  status-path           Every call to a Status/Result-returning function
                        is propagated, handled, or annotated. Reported
                        per call-path: the finding names a representative
                        entry-point → ... → offender chain so the blast
                        radius of the dropped error is visible.
  lock-order            Lock-acquisition order is extracted from MutexLock
                        scopes across all TUs into a digraph; cycles are
                        rejected, as is any call made while a lock is held
                        into a function that (transitively) evaluates a
                        fail point or invokes a std::function callback.
  failpoint-dominance   Every raw I/O call (fopen/fwrite/rename/ofstream/
                        std::filesystem mutation, socket/accept/recv/send,
                        ...) in src/stream, src/common, src/data and
                        src/serve must be dominated by a
                        registered fail point in the same function, and
                        every fail-point site string used must appear in a
                        `*FailPointSites()` registry so fault-sweep tests
                        cover it. Writes to stderr/stdout are exempt
                        (crash reporting must not fault-inject).

two reason about the serving daemon's attack surface (PR 9 turned the
batch CLI into a socket server, so bytes now arrive from outside the
process):

  taint                 Byte-derived values are untrusted at their source
                        — socket reads and protocol/chunk field decodes in
                        src/serve (recv, ParseJsonObject, the JsonObject
                        getters, ChunkCodec::Decode), CSV fields in
                        src/data (SplitCsvLine, strtod/strtoll), and
                        checkpoint payload reads in src/stream
                        (DecodeCheckpoint, Cursor::Read*). Taint
                        propagates through assignments and the cross-TU
                        call graph (a function returning an unsanitized
                        tainted value taints its callers' results) into
                        sinks: allocation sizes (resize/reserve/new[]),
                        container indexing and `.data() + offset`
                        arithmetic, memcpy/memmove/memset lengths, and
                        for-loop bounds. Every source→sink path must
                        dominate through a sanitizer first: an `if`/
                        CRH_CHECK/CRH_VERIFY_OR_RETURN range comparison
                        naming the tainted value on an earlier (or the
                        same) line, or the CRH_SANITIZED(expr, "why")
                        escape hatch (src/common/taint.h). CRH_SANITIZED
                        wrapping a value the analyzer does not track as
                        tainted is itself a finding — the escape hatch
                        may only bless real untrusted data.
  snapshot-lifetime     No raw pointer, reference, or view derived from an
                        epoch ServeSnapshot (src/serve/snapshot.h) may
                        escape the scope of the owning shared_ptr: a
                        view-returning function must not return
                        `snap->...`/`snap.get()`, members must not store
                        addresses derived from a snapshot, and lambdas
                        must not capture a snapshot variable by
                        reference. Copying values out, returning the
                        shared_ptr itself, and by-value captures stay
                        legal — they pin or outlive the epoch swap.

plus three architecture-conformance checks (the layer contract lives in
scripts/arch_layers.json; see docs/DESIGN.md for the diagram):

  arch                  Every `#include "module/..."` and cross-TU call
                        edge must point at the same module or a strictly
                        earlier layer of the committed layer DAG. Peer
                        modules within a layer may not depend on each
                        other; headers listed under `private_headers` may
                        only be included by the modules named there.
  global-state          Library layers must be snapshot-safe: no mutable
                        namespace-scope variables, no mutable function-
                        local statics (singletons) anywhere under src/
                        except src/tools. The escape hatch is
                        CRH_GLOBAL_STATE_EXEMPT("why")
                        (src/common/global_state.h): place it on or
                        directly above a namespace-scope declaration, or
                        anywhere in the function owning a static local.
  hot                   Functions annotated CRH_HOT (src/common/hot.h) —
                        the solver's per-shard kernels — must be
                        real-time safe: no allocation (new/malloc/
                        make_unique/container growth/std::to_string), no
                        std::function construction or invocation, no
                        Mutex acquisition, no blocking I/O, no throw, no
                        fail-point evaluation — transitively, through
                        every resolvable callee.

Suppress one line with a trailing `// analyzer:allow(<rule>)`. Findings are
gated against scripts/crh_analyzer_baseline.txt: new findings fail, stale
entries fail (delete them or run --update-baseline). Exit 0 clean, 1
findings, 2 tooling error.

`--check=a,b` restricts a run (and the self-test gate) to a subset of
checks; `--graph` prints the observed module graph as Graphviz dot;
`--graph-svg OUT` renders the layer diagram as a deterministic SVG (CI
diffs it against docs/architecture.svg to keep the picture honest).

Backends: the tokenizer frontend (shared lexical machinery with
ast_lint.py) is canonical and runs everywhere; with python3-clang
installed, a hybrid libclang backend uses the real AST for function
boundaries and qualified names and feeds the same intra-body extractor.
Both must pass the embedded multi-TU self-test corpus before a tree run
counts; a misbehaving libclang degrades loudly to the tokenizer.

Usage: scripts/crh_analyzer.py [--compile-commands PATH] [--self-test]
         [--backend=auto|libclang|token] [--check=LIST] [--graph]
         [--graph-svg OUT.svg] [--sarif OUT.sarif] [--stats]
         [--budget JSON] [--update-baseline] [--no-baseline] [paths...]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys
import time

SCRIPT_DIR = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(SCRIPT_DIR))

import ast_lint  # noqa: E402  (shared lexical helpers + repo conventions)
import sarif_util  # noqa: E402

REPO_ROOT = ast_lint.REPO_ROOT
BASELINE = REPO_ROOT / "scripts" / "crh_analyzer_baseline.txt"
CXX_SUFFIXES = ast_lint.CXX_SUFFIXES
strip_comments_and_strings = ast_lint.strip_comments_and_strings
read_text = ast_lint.read_text
rel_str = ast_lint.rel_str

ALLOW_RE = re.compile(r"//\s*analyzer:allow\(([\w-]+)\)")

# Analysis scope: first-party library + the binaries that publish results.
DEFAULT_DIRS = ["src", "bench"]
# Fail-point dominance applies where durable I/O lives — and in the serving
# layer, whose socket calls are the daemon's I/O surface.
IO_SCOPED_DIRS = ("src/stream/", "src/common/", "src/data/", "src/serve/")
# The lock/fail-point primitives themselves are excluded from the rules
# they implement (same convention as ast_lint.MUTEX_WRAPPER_FILES).
PRIMITIVE_FILES = {
    "src/common/mutex.h",
    "src/common/fault_injection.h",
    "src/common/fault_injection.cc",
    "src/common/determinism.h",
    "src/common/hot.h",
    "src/common/global_state.h",
    "src/common/taint.h",
}

RULE_DOCS = {
    "determinism-taint": "nondeterministic value can reach a published "
                         "output (checkpoint, CSV, bench/CLI report)",
    "status-path": "Status/Result-returning call dropped on an "
                   "entry-point-reachable path",
    "lock-order": "lock-acquisition cycle, or lock held across a "
                  "fail-point/callback boundary",
    "failpoint-dominance": "raw I/O call not dominated by a registered "
                           "fail point, or fail-point site not registered",
    "taint": "untrusted byte-derived value reaches an allocation size, "
             "index, copy length, or loop bound without a dominating "
             "bounds check (or CRH_SANITIZED is misused on trusted data)",
    "snapshot-lifetime": "raw pointer/view derived from an epoch "
                         "ServeSnapshot escapes the owning shared_ptr's "
                         "scope (returned, stored in a member, or "
                         "captured by reference)",
    "arch": "include or call edge violates the committed layer DAG "
            "(scripts/arch_layers.json), or a private header leaks",
    "global-state": "mutable global/static state in a library layer "
                    "breaks epoch-snapshot isolation",
    "hot": "CRH_HOT function (transitively) allocates, locks, blocks, "
           "throws, or evaluates a fail point",
}

# --- determinism-taint configuration -------------------------------------
TAINT_SOURCE_RES = [
    (re.compile(r"::now\s*\("), "a wall/steady clock read (`::now()`)"),
    (re.compile(r"(?<![\w.:])time\s*\("), "a `time()` call"),
    (re.compile(r"\bclock_gettime\s*\(|\bgettimeofday\s*\("),
     "a raw clock syscall"),
    (re.compile(r"std::random_device\b"), "std::random_device"),
    (re.compile(r"(?<![\w.:])s?rand\s*\("), "unseeded C rand()"),
    (re.compile(r"(?<![\w.:])getenv\s*\(|std::getenv\b"),
     "an environment variable read"),
    (re.compile(r"reinterpret_cast\s*<\s*(?:std::)?u?intptr_t"),
     "a pointer address cast to integer"),
]
EXEMPT_RE = re.compile(r"\bCRH_DETERMINISM_EXEMPT\s*\(")

# Functions whose output is published program state: checkpoint bytes, CSV
# rows, and the mains of bench/CLI binaries (their stdout/JSON is the
# artifact the paper's figures are rebuilt from).
TAINT_SINKS = {
    "EncodeCheckpoint",
    "CheckpointManager::Save",
    "WriteObservationsCsv",
    "WriteGroundTruthCsv",
}
SINK_MAIN_DIRS = ("bench/", "src/tools/")

# --- status-path configuration -------------------------------------------
STATUS_DECL_RE = re.compile(
    r"(?:^|[;{}]|\n)\s*(?:\[\[nodiscard\]\]\s*)?(?:static\s+|virtual\s+)?"
    r"(?:crh::)?(?:Status|Result<[^;{}=]{1,120}?>)\s+(?:[\w:]+::)?(\w+)\s*\(")
STATUS_FACTORIES = {
    "OK", "InvalidArgument", "OutOfRange", "NotFound", "AlreadyExists",
    "FailedPrecondition", "IOError", "NotImplemented", "Internal",
}
CALL_STMT_RE = re.compile(r"^\s*(?:[\w\]\[]+(?:\.|->))*(\w+)\s*\(.*\)\s*;\s*$")

# --- lock-order configuration --------------------------------------------
LOCK_DECL_RE = re.compile(
    r"(?:crh::)?MutexLock\s+\w+\s*[({]\s*&?([\w.>-]+)"
    r"|std::(?:lock_guard|unique_lock|scoped_lock)\s*<[^>]*>\s+\w+\s*[({]\s*([\w.>-]+)")
MANUAL_LOCK_RE = re.compile(r"\b([\w.>-]*\w)\s*\.\s*Lock\s*\(\s*\)")
MANUAL_UNLOCK_RE = re.compile(r"\b([\w.>-]*\w)\s*\.\s*Unlock\s*\(\s*\)")
ADOPT_LOCK_RE = re.compile(r"std::adopt_lock")
FAIL_POINT_CALL_RE = re.compile(
    r"\bCRH_FAIL_POINT\s*\(|\bFailPoints\b[^;\n]*\.\s*Hit(?:Write)?\s*\(")
FUNCTION_OBJ_RE = ast_lint.FUNCTION_OBJ_RE

# --- failpoint-dominance configuration -----------------------------------
IO_CALL_RE = re.compile(
    r"\b(?:std::)?(fopen|fwrite|fread|fflush|fclose|rename|remove|fputs|"
    r"fprintf|fscanf|fseek|ftell)\s*\("
    r"|\bstd::(ofstream|ifstream|fstream)\s+\w+\s*[({]"
    r"|\bstd::filesystem::(create_directories|create_directory|remove_all|"
    r"remove|rename|resize_file|directory_iterator)\s*\("
    # The serving layer's I/O surface. poll/close/pipe are deliberately
    # absent: they are control-plane plumbing whose failure modes the
    # fail-point registry does not model.
    r"|\b(socket|bind|listen|accept4|accept|recvmsg|recv|sendmsg|send)\s*\(")
STDERR_ARG_RE = re.compile(r"\(\s*(?:stderr|stdout)\b")
FAIL_SITE_RE = re.compile(
    r"(?:CRH_FAIL_POINT|\.\s*Hit(?:Write)?)\s*\(\s*\"([^\"]+)\"")
REGISTRY_FN_RE = re.compile(r"\w*FailPointSites$")
STRING_LIT_RE = re.compile(r"\"([\w.]+)\"")

# --- arch configuration ----------------------------------------------------
ARCH_MANIFEST = REPO_ROOT / "scripts" / "arch_layers.json"
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')

# --- global-state configuration --------------------------------------------
GLOBAL_STATE_SCOPE = "src/"
GLOBAL_STATE_EXCLUDED = ("src/tools/",)
GLOBAL_EXEMPT_MACRO = "CRH_GLOBAL_STATE_EXEMPT"
# Namespace-scope statements that declare something other than a mutable
# variable (types, aliases, constants, templates, externs, ...).
GLOBAL_SKIP_RE = re.compile(
    r"\b(?:const|constexpr|constinit|using|typedef|extern|friend|enum|class|"
    r"struct|union|namespace|template|static_assert|operator)\b")
GLOBAL_DECL_RE = re.compile(
    r"^(?:inline\s+|static\s+|thread_local\s+)*"
    r"[A-Za-z_][\w:]*(?:\s*<[^;]*>)?[\s*&]+"
    r"((?:[A-Za-z_][\w:]*::)?[A-Za-z_]\w*)\s*"
    r"(?:\[[^\]]*\])?\s*(?:=.*)?$")
STATIC_LOCAL_RE = re.compile(
    r"^\s*(?:thread_local\s+)?static\s+(?:thread_local\s+)?"
    r"(?!const\b|constexpr\b)")

# --- hot (CRH_HOT real-time discipline) configuration ----------------------
HOT_ATTR_RE = re.compile(r"\bCRH_HOT\b")
# Lexical patterns that end real-time safety. Locks, raw I/O, fail points
# and std::function invocations are already modeled as their own event
# lists; these cover allocation, container growth and exceptions.
HOT_VIOLATION_RES = [
    (re.compile(r"\bnew\b"), "calls operator new"),
    (re.compile(r"(?<![\w.:])(?:malloc|calloc|realloc|strdup)\s*\("),
     "calls a C heap allocator"),
    (re.compile(r"\bstd::make_(?:unique|shared)\b"),
     "allocates via std::make_unique/make_shared"),
    (re.compile(r"(?:\.|->)\s*(?:push_back|emplace_back|emplace|resize|"
                r"reserve|assign|insert|append)\s*\("),
     "grows a container"),
    (re.compile(r"\bstd::(?:vector|string|map|set|unordered_map|"
                r"unordered_set|deque|list|function|[io]?stringstream)\s*"
                r"(?:<[^;&(]*>)?\s+\w+\s*[({=;]"),
     "constructs a local container/std::function"),
    (re.compile(r"\bthrow\b"), "throws"),
    (re.compile(r"\bstd::to_string\b"), "calls std::to_string (allocates)"),
    (re.compile(r"\bstd::stable_sort\b"),
     "calls std::stable_sort (allocates)"),
]

# --- taint (untrusted input) configuration ---------------------------------
# Where externally-supplied bytes enter: the serving socket + protocol, the
# CSV reader, and the checkpoint loader.
UNTRUSTED_SCOPED_DIRS = ("src/serve/", "src/stream/", "src/data/")
# Seed set of functions whose return value is untrusted (grown by a
# fixpoint: any scoped function returning an unsanitized tainted value
# joins it, so taint crosses TU boundaries through the call graph).
UNTRUSTED_RETURNING = {
    # raw socket ingress + C numeric parsing of external text
    "recv", "recvmsg", "strtoll", "strtoull", "strtod",
    # wire-protocol field decodes (serve/protocol.h)
    "ParseJsonObject", "Find", "GetString", "GetInt", "GetUint",
    "GetDouble", "GetDoubleArray", "GetStringArray",
    # CSV fields (data/csv.h) and chunk/checkpoint payloads
    "ReadObservationsCsv", "SplitCsvLine", "Decode", "DecodeCheckpoint",
}
# Checkpoint/payload cursor reads taint their out-parameter:
# `cursor.ReadU64(&count)` makes `count` untrusted.
UNTRUSTED_OUTPARAM_RE = re.compile(
    r"\bRead(?:U8|U16|U32|U64|I8|I16|I32|I64|F32|F64|Varint)\w*"
    r"\s*\(\s*&\s*([\w.]*\w)")
# `var = ...Callee(...)`: taints `var` when Callee is untrusted-returning.
UNTRUSTED_ASSIGN_RE = re.compile(r"\b([A-Za-z_]\w*)\s*=(?![=])")
UNTRUSTED_CALLEE_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
# Sanitizers: a range comparison naming the tainted value on an `if` or a
# CRH_CHECK/CRH_VERIFY_OR_RETURN line, or the CRH_SANITIZED escape hatch.
# (`for`/`while` conditions are deliberately not sanitizers: a tainted
# loop bound is the hazard, not the defense.)
UNTRUSTED_GUARD_MACRO_RE = re.compile(
    r"\bCRH_(?:CHECK|DCHECK|VERIFY_OR_RETURN|SANITIZED)\w*\s*\(")
UNTRUSTED_IF_RE = re.compile(r"\bif\s*\(")
RELATIONAL_RE = re.compile(r"[<>]=?|==|!=")
SANITIZED_ARGS_RE = re.compile(r"\bCRH_SANITIZED\s*\(([^;]*)")
IDENT_RE = re.compile(r"[A-Za-z_]\w*")
# Sinks: (description, regex whose group(1) holds the controlled operand,
# last_arg_only). For memcpy/memmove/memset and two-arg append/assign only
# the final top-level argument is the length — a tainted *source* operand
# is not a sink. The for-loop pattern captures the full middle condition
# field — `->` in the bound expression must not let backtracking truncate
# it.
UNTRUSTED_SINK_RES = [
    ("an allocation size",
     re.compile(r"(?:\.|->)\s*(?:resize|reserve)\s*\(([^;]*)"), False),
    ("an array-new size",
     re.compile(r"\bnew\s+[\w:]+(?:\s*<[^;\[]*>)?\s*\[([^\]]*)\]"), False),
    ("a raw copy length",
     re.compile(r"\b(?:memcpy|memmove|memset)\s*\(([^;]*)"), True),
    ("a buffer length argument",
     re.compile(r"(?:\.|->)\s*(?:append|assign)\s*\(([^;]*,[^;]*)"), True),
    ("a container index",
     re.compile(r"[\w\])]\s*\[([^\]]+)\]"), False),
    ("pointer arithmetic off .data()",
     re.compile(r"(?:\.|->)\s*data\s*\(\s*\)\s*\+\s*([^;,)]*)"), False),
    ("a loop bound",
     re.compile(r"\bfor\s*\([^;]*;([^;]*[<>][^;]*);"), False),
]
UNTRUSTED_RETURN_RE = re.compile(r"^\s*(?:co_)?return\b(.*)")


def last_call_arg(argtext: str) -> str:
    """Given the text following a call's `(`, returns its final top-level
    argument (stopping at the call's own closing paren): the length
    operand of memcpy/memmove/memset and append/assign."""
    depth = 0
    last_start = 0
    end = len(argtext)
    for i, ch in enumerate(argtext):
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            if depth == 0:
                end = i
                break
            depth -= 1
        elif ch == "," and depth == 0:
            last_start = i + 1
    return argtext[last_start:end]

# --- snapshot-lifetime configuration ---------------------------------------
SNAPSHOT_SCOPED_DIRS = ("src/serve/",)
# A snapshot handle: a shared_ptr<const ServeSnapshot> declaration (local
# or single-line-signature parameter) or an assignment from `.Current()`.
# The atomic member `std::atomic<std::shared_ptr<...>> current_` does NOT
# match: its `>>` never precedes an identifier.
SNAPSHOT_DECL_RE = re.compile(
    r"shared_ptr\s*<\s*(?:const\s+)?(?:crh::)?ServeSnapshot\s*>"
    r"\s*&?\s+(\w+)\b")
SNAPSHOT_CURRENT_RE = re.compile(
    r"\b(\w+)\s*=\s*[^;=]*\.\s*Current\s*\(\s*\)")
# A function whose declared return type is a pointer/reference/view.
SNAPSHOT_VIEW_RETURN_RE = re.compile(
    r"[*&]|\bstring_view\b|\b[Ss]pan\b")
SNAPSHOT_MEMBER_STORE_RE = re.compile(r"\b\w+_\s*=(?![=])")

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "do",
    "else", "new", "delete", "throw", "co_return", "co_await", "alignof",
    "static_assert", "defined", "decltype",
}
CALL_RE = re.compile(r"(?:([\w:]+)\s*(?:\.|->|::))?\b([A-Za-z_]\w*)\s*\(")

PREPROC_RE = re.compile(r"^\s*#")


class Finding:
    def __init__(self, rel: str, line: int, rule: str, message: str):
        self.path = rel  # repo-relative posix string
        self.line = line
        self.rule = rule
        self.message = message

    def key(self) -> str:
        return f"{self.path}: [{self.rule}]"

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class FunctionModel:
    """Lexical model of one function definition."""

    def __init__(self, qual_name: str, name: str, rel: str,
                 start_line: int, end_line: int, open_line: int | None = None):
        self.qual_name = qual_name
        self.name = name
        self.rel = rel
        self.start_line = start_line
        self.end_line = end_line
        # Line where the body `{` opens: the signature's own `name(` match
        # up to here must not be mistaken for a recursive call.
        self.open_line = open_line if open_line is not None else start_line
        # [(line, callee_simple_name, frozenset(held_lock_ids))]
        self.calls: list[tuple[int, str, frozenset]] = []
        self.taint_sources: list[tuple[int, str]] = []  # (line, description)
        self.exempt = False
        self.io_sites: list[tuple[int, str]] = []  # (line, call text)
        self.failpoint_lines: list[int] = []
        self.failpoint_sites: list[tuple[int, str]] = []  # (line, site id)
        # [(line, acquired_lock_id, tuple(held_before))]
        self.lock_acquires: list[tuple[int, str, tuple]] = []
        self.callback_invokes: list[tuple[int, str, frozenset]] = []
        self.status_drops: list[tuple[int, str]] = []  # (line, callee)
        self.is_registry = bool(REGISTRY_FN_RE.match(name))
        self.registered_sites: set[str] = set()
        self.hot = False  # carries the CRH_HOT annotation
        self.hot_violations: list[tuple[int, str]] = []  # (line, what)
        # Untrusted-input taint events (the `taint` check).
        self.ut_sources: list[tuple[int, str, str]] = []  # (line, var, desc)
        self.ut_assigns: list[tuple[int, str, str]] = []  # (line, var, callee)
        self.ut_guards: list[tuple[int, frozenset]] = []  # (line, idents)
        self.ut_sinks: list[tuple[int, str, frozenset]] = []
        self.ut_returns: list[tuple[int, frozenset]] = []
        self.ut_sanitized: list[tuple[int, frozenset]] = []
        # Signature text (start..open lines, set by model_file) and escapes
        # of epoch-snapshot-derived views (the `snapshot-lifetime` check).
        self.head = ""
        self.snap_escapes: list[tuple[int, str]] = []  # (line, what)

    def __repr__(self) -> str:  # debugging aid
        return f"<fn {self.qual_name} {self.rel}:{self.start_line}>"


# ---------------------------------------------------------------------------
# Tokenizer frontend: file → function models.


def blank_preprocessor(clean: str) -> str:
    """Blanks preprocessor directives (including continuation lines) so
    `#define`/`#if` bodies do not confuse brace tracking."""
    out_lines = []
    cont = False
    for line in clean.split("\n"):
        active = cont or bool(PREPROC_RE.match(line))
        cont = active and line.rstrip().endswith("\\")
        out_lines.append(" " * len(line) if active else line)
    return "\n".join(out_lines)


HEAD_ATTR_RE = re.compile(r"\[\[[^\]]*\]\]|\bCRH_[A-Z_]+\s*\([^()]*\)")


def classify_head(head: str):
    """Classifies the text between the previous `;`/`{`/`}` and an opening
    `{`. Returns (kind, name) with kind in namespace|class|function|block."""
    head = HEAD_ATTR_RE.sub(" ", head).strip()
    m = re.search(r"\bnamespace\s+([\w:]+)?\s*$", head)
    if m or head.endswith("namespace"):
        return "namespace", (m.group(1) if m and m.group(1) else "")
    m = re.search(r"\b(?:class|struct)\s+(\w+)[^;()]*$", head)
    if m and "(" not in head.split(m.group(1))[-1].split(":")[0]:
        return "class", m.group(1)
    if re.search(r"\benum\b", head):
        return "block", None
    if re.search(r"\b(?:extern|union)\b\s*$", head):
        return "block", None
    # Function: find the first top-level '(' and take the identifier chain
    # immediately before it.
    depth = 0
    paren_at = -1
    for i, c in enumerate(head):
        if c in "<([":
            if c == "(" and depth == 0:
                paren_at = i
                break
            depth += 1
        elif c in ">)]":
            depth = max(0, depth - 1)
    if paren_at < 0:
        return "block", None
    m = re.search(r"([\w:~]+)\s*$", head[:paren_at])
    if not m:
        return "block", None
    # Member access right before the name (`obj.push_back({...})`,
    # `p->emplace({...})`) is a call expression whose brace-init argument
    # reached us, not a definition.
    if m.start() > 0 and (head[m.start() - 1] == "."
                          or head[m.start() - 2:m.start()] == "->"):
        return "block", None
    name = m.group(1)
    simple = name.split("::")[-1].lstrip("~")
    if simple in CONTROL_KEYWORDS or not simple:
        return "block", None
    # `operator` overloads: normalise to a stable name.
    if simple == "operator":
        name = name.replace("operator", "operatorX")
        simple = "operatorX"
    return "function", name


def scan_file_functions(rel: str, clean: str):
    """Yields (qual_name, name, start_line, end_line, head_line) spans for
    every function definition in the (comment/string-stripped) text."""
    text = blank_preprocessor(clean)
    n = len(text)
    line = 1
    i = 0
    head_start = 0
    head_line = 1
    # Stack of (kind, name) for namespace/class/block scopes.
    scope: list[tuple[str, str]] = []
    spans = []
    in_fn = None  # (qual, name, start_line, brace_depth_at_entry)
    depth = 0
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if in_fn is not None:
            if c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                if depth == in_fn[3]:
                    spans.append((in_fn[0], in_fn[1], in_fn[2], line,
                                  in_fn[4]))
                    in_fn = None
                    head_start = i + 1
                    head_line = line
            i += 1
            continue
        if c == "{":
            head = text[head_start:i]
            kind, name = classify_head(head)
            if kind == "function":
                classes = [s_name for s_kind, s_name in scope
                           if s_kind == "class"]
                if "::" in name:
                    qual = "::".join(name.split("::")[-2:])
                elif classes:
                    qual = f"{classes[-1]}::{name}"
                else:
                    qual = name
                in_fn = (qual, name.split("::")[-1], head_line, depth, line)
                depth += 1
                i += 1
                continue
            scope.append((kind, name or ""))
            depth += 1
            head_start = i + 1
            head_line = line
        elif c == "}":
            depth -= 1
            if scope:
                scope.pop()
            head_start = i + 1
            head_line = line
        elif c == ";":
            head_start = i + 1
            head_line = line
        else:
            if text[head_start:i].strip() == "" and not c.isspace():
                head_line = line
        i += 1
    return spans


def scan_namespace_statements(clean: str):
    """Yields (line, statement_text) for every `;`-terminated statement all
    of whose enclosing brace scopes are namespaces (file scope included) —
    the candidate set for namespace-scope variable declarations. Brace
    initializers (`std::atomic<int> g{0};`, `int a[] = {1};`) stay part of
    their statement; class/function/enum bodies are skipped."""
    text = blank_preprocessor(clean)
    n = len(text)
    i = 0
    line = 1
    head_start = 0
    stmt_line = None
    scope: list[str] = []  # kinds of the enclosing brace scopes
    depth_skip = 0  # > 0 while inside a brace initializer / skipped body
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if depth_skip:
            if c == "{":
                depth_skip += 1
            elif c == "}":
                depth_skip -= 1
            i += 1
            continue
        if c == "{":
            head = text[head_start:i]
            kind, _ = classify_head(head)
            tail = head.rstrip()
            # A `{` classified as a plain block whose head ends in an
            # identifier/`=`/`>`/`]` is a brace initializer (or an enum/
            # union body — equally not a declaration scope): consume it
            # without opening a scope so the statement keeps accumulating.
            if kind == "block" and tail and (tail[-1].isalnum()
                                             or tail[-1] in "_=>]"):
                depth_skip = 1
            else:
                scope.append(kind)
                head_start = i + 1
                stmt_line = None
        elif c == "}":
            if scope:
                scope.pop()
            head_start = i + 1
            stmt_line = None
        elif c == ";":
            if all(k == "namespace" for k in scope):
                stmt = text[head_start:i].strip()
                if stmt and stmt_line is not None:
                    yield (stmt_line, stmt)
            head_start = i + 1
            stmt_line = None
        elif not c.isspace() and stmt_line is None:
            stmt_line = line
        i += 1


def global_state_exempt(raw_lines: list[str], stmt_line: int) -> bool:
    """True when CRH_GLOBAL_STATE_EXEMPT(...) sits on the declaration's
    first line or within the four raw lines above it (the macro call
    itself may wrap over several lines)."""
    lo = max(0, stmt_line - 5)
    hi = min(stmt_line, len(raw_lines))
    return any(GLOBAL_EXEMPT_MACRO in raw_lines[k] for k in range(lo, hi))


def lock_id(name: str, qual_name: str, rel: str) -> str:
    """Stable cross-TU identity for a lock. Member locks (`mu_`, possibly
    reached via `this->` or `obj.`) are identified by owning class; locals
    and parameters by the enclosing function."""
    base = name.split(".")[-1].split(">")[-1]
    cls = qual_name.split("::")[0] if "::" in qual_name else None
    if base.endswith("_") and cls:
        return f"{cls}::{base}"
    if base.endswith("_"):
        return f"{pathlib.PurePosixPath(rel).stem}::{base}"
    return f"{qual_name}::{base}"


def extract_body(fn: FunctionModel, clean_lines: list[str],
                 raw_lines: list[str], unordered_names: set[str],
                 function_objs: set[str]) -> None:
    """Populates a FunctionModel's event lists from its line span. Shared
    by the tokenizer and libclang backends (the AST supplies boundaries,
    this supplies flow-sensitive intra-body facts)."""
    depth = 0
    scoped_locks: list[tuple[int, str]] = []
    manual_locks: set[str] = set()
    local_function_objs = set(function_objs)
    for lineno in range(fn.start_line, fn.end_line + 1):
        if lineno - 1 >= len(clean_lines):
            break
        line = clean_lines[lineno - 1]
        raw_line = raw_lines[lineno - 1] if lineno - 1 < len(raw_lines) else ""
        allow = set(ALLOW_RE.findall(raw_line))
        allow |= {"status-path"} if "unchecked-status" in \
            ast_lint.ALLOW_RE.findall(raw_line) else set()

        for m in FUNCTION_OBJ_RE.finditer(line):
            local_function_objs.add(m.group(1))

        # Taint sources.
        if "determinism-taint" not in allow:
            for pattern, desc in TAINT_SOURCE_RES:
                if pattern.search(line):
                    fn.taint_sources.append((lineno, desc))
            for m in ast_lint.RANGE_FOR_RE.finditer(line):
                if ast_lint.unordered_range_expr(m.group(2), unordered_names):
                    fn.taint_sources.append(
                        (lineno, "unordered-container iteration order"))
        if EXEMPT_RE.search(line):
            fn.exempt = True

        # CRH_HOT annotation (signature head) + real-time violations. The
        # violation scan covers every function: non-hot callees must carry
        # their dirt so the hot check's transitive closure sees it.
        if lineno <= fn.open_line and HOT_ATTR_RE.search(line):
            fn.hot = True
        if "hot" not in allow:
            for pattern, desc in HOT_VIOLATION_RES:
                if pattern.search(line):
                    fn.hot_violations.append((lineno, desc))

        # Untrusted-input taint events. Sources/assigns/sinks feed the
        # per-function dataflow in untrusted_taint_state; guards are always
        # recorded (they only ever suppress findings).
        line_idents = frozenset(IDENT_RE.findall(line))
        if UNTRUSTED_GUARD_MACRO_RE.search(line) or (
                UNTRUSTED_IF_RE.search(line) and RELATIONAL_RE.search(line)):
            fn.ut_guards.append((lineno, line_idents))
        if "taint" not in allow:
            for m in UNTRUSTED_OUTPARAM_RE.finditer(line):
                fn.ut_sources.append(
                    (lineno, m.group(1).split(".")[-1],
                     "decoded from untrusted payload bytes"))
            for m in UNTRUSTED_ASSIGN_RE.finditer(line):
                rhs = line[m.end():].split(";", 1)[0]
                for cm in UNTRUSTED_CALLEE_RE.finditer(rhs):
                    fn.ut_assigns.append((lineno, m.group(1), cm.group(1)))
            for m in SANITIZED_ARGS_RE.finditer(line):
                fn.ut_sanitized.append(
                    (lineno, frozenset(IDENT_RE.findall(m.group(1)))))
            for desc, pattern, last_arg_only in UNTRUSTED_SINK_RES:
                for m in pattern.finditer(line):
                    operand = last_call_arg(m.group(1)) if last_arg_only \
                        else m.group(1)
                    fn.ut_sinks.append(
                        (lineno, desc, frozenset(IDENT_RE.findall(operand))))
            m = UNTRUSTED_RETURN_RE.match(line)
            if m:
                fn.ut_returns.append(
                    (lineno, frozenset(IDENT_RE.findall(m.group(1)))))

        # Fail points (site literal must come from the raw line: the
        # cleaned text blanks string contents).
        if FAIL_POINT_CALL_RE.search(line):
            fn.failpoint_lines.append(lineno)
            for m in FAIL_SITE_RE.finditer(raw_line):
                fn.failpoint_sites.append((lineno, m.group(1)))
        if fn.is_registry:
            for m in STRING_LIT_RE.finditer(raw_line):
                fn.registered_sites.add(m.group(1))

        # I/O sites (stderr/stdout writes are crash-path reporting: the
        # CRH_CHECK handlers must not themselves fault-inject).
        if "failpoint-dominance" not in allow:
            for m in IO_CALL_RE.finditer(line):
                if m.group(1) in ("fprintf", "fputs", "fflush", "fscanf") \
                        and re.search(r"\b(?:stderr|stdout)\b",
                                      line[m.start():]):
                    continue
                fn.io_sites.append(
                    (lineno,
                     (m.group(1) or m.group(2) or m.group(3) or m.group(4))))

        # Column-ordered event walk: lock acquisitions, releases, calls.
        events = []
        if not ADOPT_LOCK_RE.search(line):
            for m in LOCK_DECL_RE.finditer(line):
                name = m.group(1) or m.group(2) or "?"
                events.append((m.start(), "scoped_lock",
                               lock_id(name, fn.qual_name, fn.rel)))
        for m in MANUAL_LOCK_RE.finditer(line):
            events.append((m.start(), "manual_lock",
                           lock_id(m.group(1), fn.qual_name, fn.rel)))
        for m in MANUAL_UNLOCK_RE.finditer(line):
            events.append((m.start(), "manual_unlock",
                           lock_id(m.group(1), fn.qual_name, fn.rel)))
        for m in CALL_RE.finditer(line):
            callee = m.group(2)
            if callee in CONTROL_KEYWORDS or callee == "CRH_FAIL_POINT":
                continue
            # The function's own signature (`Type name(args...)`) is not a
            # recursive call.
            if callee == fn.name and lineno <= fn.open_line:
                continue
            events.append((m.start(), "call", callee))
        for m in FUNCTION_OBJ_RE.finditer(line):
            # The declaration itself is not an invocation; drop the call
            # event the CALL_RE above may have produced for it.
            events = [e for e in events
                      if not (e[1] == "call" and e[2] == m.group(1))]
        events.sort(key=lambda e: e[0])
        allow_lock = "lock-order" in allow
        for _, ekind, val in events:
            held = frozenset(n for _, n in scoped_locks) | manual_locks
            if ekind == "scoped_lock":
                if not allow_lock:
                    fn.lock_acquires.append((lineno, val, tuple(sorted(held))))
                scoped_locks.append((depth, val))
            elif ekind == "manual_lock":
                if not allow_lock:
                    fn.lock_acquires.append((lineno, val, tuple(sorted(held))))
                manual_locks.add(val)
            elif ekind == "manual_unlock":
                manual_locks.discard(val)
            elif ekind == "call":
                if val in local_function_objs:
                    fn.callback_invokes.append((lineno, val, held))
                else:
                    fn.calls.append((lineno, val, held))

        # Status drops (statement-level call, value unconsumed). The callee
        # set is resolved later against the whole-program function table.
        m = CALL_STMT_RE.match(line)
        if m and "status-path" not in allow:
            fn.status_drops.append((lineno, m.group(1)))

        for ch in line:
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                scoped_locks = [(d, n) for (d, n) in scoped_locks if d < depth]


def scan_snapshot_escapes(fn: FunctionModel, clean_lines: list[str],
                          raw_lines: list[str]) -> None:
    """Populates fn.snap_escapes: uses of an epoch-snapshot handle that
    outlive the owning shared_ptr's scope. Pass 1 finds the handles
    (declarations and `.Current()` assignments, signature lines included);
    pass 2 finds escapes: a view-returning function returning through the
    handle, a member assignment storing an address derived from it, or a
    by-reference lambda capture on a line that names it."""
    handles: set[str] = set()
    for lineno in range(fn.start_line, fn.end_line + 1):
        if lineno - 1 >= len(clean_lines):
            break
        line = clean_lines[lineno - 1]
        for m in SNAPSHOT_DECL_RE.finditer(line):
            handles.add(m.group(1))
        for m in SNAPSHOT_CURRENT_RE.finditer(line):
            handles.add(m.group(1))
    if not handles:
        return
    alt = "|".join(sorted(handles))
    # `snap->...` or `snap.get()`: a raw view through the handle.
    deref_re = re.compile(
        r"\b(?:%s)\s*(?:->|\.\s*get\s*\()" % alt)
    # An address derived from the handle: `&...snap`, `snap.get()`, or a
    # `data()/c_str()/begin()` view reached through it. `&&` is logical,
    # not address-of.
    addr_re = re.compile(
        r"(?<![&\w])&\s*[\w.\[\]()>-]*\b(?:%s)\b" % alt
        + r"|\b(?:%s)\s*\.\s*get\s*\(" % alt
        + r"|\b(?:%s)\s*->[\w.>\[\]()\s-]*?\b(?:data|c_str|begin)\s*\("
        % alt)
    lambda_ref_re = re.compile(r"\[\s*&[^\]]*\]\s*[({]")
    mention_re = re.compile(r"\b(?:%s)\b" % alt)
    returns_view = bool(
        SNAPSHOT_VIEW_RETURN_RE.search(fn.head.split("(", 1)[0]))
    for lineno in range(fn.start_line, fn.end_line + 1):
        if lineno - 1 >= len(clean_lines):
            break
        line = clean_lines[lineno - 1]
        raw_line = raw_lines[lineno - 1] if lineno - 1 < len(raw_lines) else ""
        if "snapshot-lifetime" in ALLOW_RE.findall(raw_line):
            continue
        if returns_view and UNTRUSTED_RETURN_RE.match(line) \
                and deref_re.search(line):
            fn.snap_escapes.append(
                (lineno, "returns a pointer/reference/view derived from "
                         "an epoch snapshot handle; the owning shared_ptr "
                         "dies with this scope and the next Publish() "
                         "frees the snapshot under the caller"))
        if SNAPSHOT_MEMBER_STORE_RE.search(line) and addr_re.search(line):
            fn.snap_escapes.append(
                (lineno, "stores an address derived from an epoch snapshot "
                         "handle into a member that outlives the handle's "
                         "scope; store the shared_ptr itself (pinning the "
                         "epoch) or copy the value out"))
        if lambda_ref_re.search(line) and mention_re.search(line):
            fn.snap_escapes.append(
                (lineno, "captures an epoch snapshot handle by reference "
                         "in a lambda; if the callback outlives the scope "
                         "it reads a freed snapshot — capture the "
                         "shared_ptr by value instead"))


class ProgramModel:
    def __init__(self):
        self.functions: list[FunctionModel] = []
        self.by_simple: dict[str, list[FunctionModel]] = {}
        self.by_qual: dict[str, FunctionModel] = {}
        self.status_functions: set[str] = set()
        self.files: list[pathlib.Path] = []
        # rel -> [(line, quoted include target)], analyzer:allow filtered.
        self.includes: dict[str, list[tuple[int, str]]] = {}
        # rel -> [(line, name, kind description)] mutable global/static
        # declarations that carry no exemption.
        self.global_decls: dict[str, list[tuple[int, str, str]]] = {}

    def add(self, fn: FunctionModel) -> None:
        self.functions.append(fn)
        self.by_simple.setdefault(fn.name, []).append(fn)
        self.by_qual.setdefault(fn.qual_name, fn)

    def resolve(self, callee: str) -> list[FunctionModel]:
        return self.by_simple.get(callee, [])


def model_file(model: ProgramModel, path: pathlib.Path,
               spans=None) -> None:
    rel = rel_str(path)
    raw = read_text(path)
    raw_lines = raw.splitlines()
    clean = strip_comments_and_strings(raw)
    clean_lines = clean.splitlines()

    unordered_names: set[str] = set()
    aliases: set[str] = set()
    function_objs: set[str] = set()
    for line in clean_lines:
        for m in ast_lint.UNORDERED_DECL_RE.finditer(line):
            unordered_names.add(m.group(1))
        for m in ast_lint.UNORDERED_ALIAS_RE.finditer(line):
            aliases.add(m.group(1))
        for m in FUNCTION_OBJ_RE.finditer(line):
            function_objs.add(m.group(1))
    if aliases:
        alias_decl = re.compile(
            r"\b(?:%s)\s*(?:<[^;]*?>)?\s+(\w+)\s*[;{=(]" % "|".join(
                sorted(aliases)))
        for line in clean_lines:
            for m in alias_decl.finditer(line):
                unordered_names.add(m.group(1))

    includes: list[tuple[int, str]] = []
    for lineno, raw_line in enumerate(raw_lines, 1):
        m = INCLUDE_RE.match(raw_line)
        if m and "arch" not in ALLOW_RE.findall(raw_line):
            includes.append((lineno, m.group(1)))
    model.includes[rel] = includes

    decls: list[tuple[int, str, str]] = []
    for stmt_line, stmt in scan_namespace_statements(clean):
        if "(" in stmt or GLOBAL_SKIP_RE.search(stmt):
            continue
        flat = re.sub(r"\{[^{}]*\}", " ", stmt).strip()
        m = GLOBAL_DECL_RE.match(flat)
        if not m:
            continue
        raw_line = raw_lines[stmt_line - 1] \
            if stmt_line - 1 < len(raw_lines) else ""
        if "global-state" in ALLOW_RE.findall(raw_line):
            continue
        if global_state_exempt(raw_lines, stmt_line):
            continue
        decls.append((stmt_line, m.group(1),
                      "namespace-scope mutable variable"))

    if spans is None:
        spans = scan_file_functions(rel, clean)
    for span in spans:
        qual, name, start, end = span[:4]
        open_line = span[4] if len(span) > 4 else None
        fn = FunctionModel(qual, name, rel, start, end, open_line)
        fn.head = " ".join(
            ln.strip() for ln in clean_lines[fn.start_line - 1:fn.open_line])
        extract_body(fn, clean_lines, raw_lines, unordered_names,
                     function_objs)
        scan_snapshot_escapes(fn, clean_lines, raw_lines)
        model.add(fn)

        # Mutable function-local statics (singletons). The enclosing
        # function vouches for all of them by carrying the exemption macro
        # anywhere in its body.
        fn_exempt = any(
            GLOBAL_EXEMPT_MACRO in raw_lines[k]
            for k in range(fn.start_line - 1,
                           min(fn.end_line, len(raw_lines))))
        if fn_exempt:
            continue
        # From the line after the body `{` opens: the head itself may be a
        # `static` member-function definition.
        for lineno in range(fn.open_line + 1,
                            min(fn.end_line, len(clean_lines)) + 1):
            if not STATIC_LOCAL_RE.match(clean_lines[lineno - 1]):
                continue
            raw_line = raw_lines[lineno - 1] \
                if lineno - 1 < len(raw_lines) else ""
            if "global-state" in ALLOW_RE.findall(raw_line):
                continue
            decls.append((lineno, fn.qual_name,
                          "mutable function-local static in"))
    if decls:
        model.global_decls[rel] = sorted(decls)


def collect_status_functions(files: list[pathlib.Path]) -> set[str]:
    names: set[str] = set()
    for path in files:
        clean = strip_comments_and_strings(read_text(path))
        for m in STATUS_DECL_RE.finditer(clean):
            names.add(m.group(1))
    return names - STATUS_FACTORIES


def build_model_token(files: list[pathlib.Path]) -> ProgramModel:
    model = ProgramModel()
    model.files = files
    for path in files:
        model_file(model, path)
    model.status_functions = collect_status_functions(files)
    return model


# ---------------------------------------------------------------------------
# Hybrid libclang backend: the AST supplies exact function extents and
# qualified names; extract_body supplies the flow-sensitive facts. Files
# the AST yields nothing for (e.g. unparsable snippets) fall back to the
# tokenizer scanner so coverage never silently shrinks.


def build_model_libclang(files: list[pathlib.Path]) -> ProgramModel:
    from clang import cindex  # deferred import; may be absent

    index = cindex.Index.create()
    args = ["-std=c++20", "-x", "c++", f"-I{REPO_ROOT / 'src'}",
            "-Wno-everything"]
    model = ProgramModel()
    model.files = files

    fn_kinds = {cindex.CursorKind.FUNCTION_DECL, cindex.CursorKind.CXX_METHOD,
                cindex.CursorKind.CONSTRUCTOR, cindex.CursorKind.DESTRUCTOR,
                cindex.CursorKind.FUNCTION_TEMPLATE}

    def qual_of(cursor) -> str:
        parent = cursor.semantic_parent
        if parent is not None and parent.kind in (
                cindex.CursorKind.CLASS_DECL, cindex.CursorKind.STRUCT_DECL,
                cindex.CursorKind.CLASS_TEMPLATE):
            return f"{parent.spelling}::{cursor.spelling}"
        return cursor.spelling

    def walk(cursor, resolved, spans):
        for child in cursor.get_children():
            loc = child.location
            if loc.file is None or \
                    pathlib.Path(loc.file.name).resolve() != resolved:
                continue
            if child.kind in fn_kinds and child.is_definition():
                name = child.spelling
                if name.startswith("operator"):
                    name = "operatorX"
                spans.append((qual_of(child) if "::" not in name else name,
                              name, child.extent.start.line,
                              child.extent.end.line))
            else:
                walk(child, resolved, spans)

    for path in files:
        resolved = path.resolve()
        tu = index.parse(str(resolved), args=args)
        fatal = [d for d in tu.diagnostics if d.severity >= 4]
        if fatal:
            raise RuntimeError(
                f"libclang could not parse {path}: {fatal[0].spelling}")
        spans: list[tuple[str, str, int, int]] = []
        walk(tu.cursor, resolved, spans)
        model_file(model, path, spans=spans if spans else None)
    model.status_functions = collect_status_functions(files)
    return model


# ---------------------------------------------------------------------------
# Whole-program fixpoints.


def fix_reachable(model: ProgramModel, seed) -> set[int]:
    """Generic backward fixpoint: the set of functions (by id) for which
    `seed(fn)` holds or that call such a function."""
    flagged: set[int] = set()
    for fn in model.functions:
        if seed(fn):
            flagged.add(id(fn))
    changed = True
    while changed:
        changed = False
        for fn in model.functions:
            if id(fn) in flagged:
                continue
            for _, callee, _ in fn.calls:
                if any(id(t) in flagged for t in model.resolve(callee)):
                    flagged.add(id(fn))
                    changed = True
                    break
    return flagged


def transitive_lock_acquires(model: ProgramModel) -> dict[int, set[str]]:
    """For each function: the set of lock ids it (or any transitive callee)
    acquires."""
    acquires: dict[int, set[str]] = {
        id(fn): {lock for _, lock, _ in fn.lock_acquires}
        for fn in model.functions}
    changed = True
    while changed:
        changed = False
        for fn in model.functions:
            mine = acquires[id(fn)]
            before = len(mine)
            for _, callee, _ in fn.calls:
                for target in model.resolve(callee):
                    mine |= acquires[id(target)]
            if len(mine) != before:
                changed = True
    return acquires


def call_paths_to(model: ProgramModel, target: FunctionModel,
                  max_hops: int = 8) -> list[str]:
    """A representative entry-point → ... → target chain (qualified names),
    following the reverse call graph breadth-first."""
    callers: dict[str, list[FunctionModel]] = {}
    for fn in model.functions:
        for _, callee, _ in fn.calls:
            callers.setdefault(callee, []).append(fn)
    path = [target.qual_name]
    cur = target
    seen = {id(target)}
    for _ in range(max_hops):
        ups = [c for c in callers.get(cur.name, []) if id(c) not in seen]
        if not ups:
            break
        cur = ups[0]
        seen.add(id(cur))
        path.append(cur.qual_name)
    return list(reversed(path))


# ---------------------------------------------------------------------------
# The checks.


def check_determinism_taint(model: ProgramModel,
                            findings: list[Finding]) -> None:
    tainted = fix_reachable(
        model, lambda fn: bool(fn.taint_sources) and not fn.exempt
        and fn.rel not in PRIMITIVE_FILES)
    # Exempt functions are barriers even when their callees are tainted.
    tainted -= {id(fn) for fn in model.functions if fn.exempt}

    def sink_of(fn: FunctionModel) -> bool:
        if fn.qual_name in TAINT_SINKS or fn.name in TAINT_SINKS:
            return True
        return fn.name == "main" and fn.rel.startswith(SINK_MAIN_DIRS)

    for fn in model.functions:
        if not sink_of(fn):
            continue
        if fn.exempt:
            continue
        # Direct sources in the sink body.
        for lineno, desc in fn.taint_sources:
            findings.append(Finding(
                fn.rel, lineno, "determinism-taint",
                f"{fn.qual_name} publishes results but derives a value from "
                f"{desc}; route it through a CRH_DETERMINISM_EXEMPT shim "
                "(common/stopwatch.h) or remove it"))
        # Transitive: a call chain from the sink to a tainted source.
        for lineno, callee, _ in fn.calls:
            for target in model.resolve(callee):
                if id(target) not in tainted or target.exempt:
                    continue
                chain = trace_taint_chain(model, target, tainted)
                findings.append(Finding(
                    fn.rel, lineno, "determinism-taint",
                    f"{fn.qual_name} publishes results but calls "
                    f"{' -> '.join(chain)}, which reads "
                    f"{taint_leaf_desc(model, chain)}; add "
                    "CRH_DETERMINISM_EXEMPT(\"why\") at the boundary that "
                    "provably keeps it out of published state, or fix the "
                    "source"))
                break


def trace_taint_chain(model: ProgramModel, start: FunctionModel,
                      tainted: set[int], max_hops: int = 8) -> list[str]:
    chain = [start.qual_name]
    cur = start
    seen = {id(start)}
    for _ in range(max_hops):
        if cur.taint_sources:
            break
        nxt = None
        for _, callee, _ in cur.calls:
            for target in model.resolve(callee):
                if id(target) in tainted and id(target) not in seen:
                    nxt = target
                    break
            if nxt:
                break
        if not nxt:
            break
        cur = nxt
        seen.add(id(cur))
        chain.append(cur.qual_name)
    return chain


def taint_leaf_desc(model: ProgramModel, chain: list[str]) -> str:
    leaf = model.by_qual.get(chain[-1])
    if leaf and leaf.taint_sources:
        return leaf.taint_sources[0][1]
    return "a nondeterministic source"


def check_status_paths(model: ProgramModel,
                       findings: list[Finding]) -> None:
    for fn in model.functions:
        for lineno, callee in fn.status_drops:
            if callee not in model.status_functions:
                continue
            path = call_paths_to(model, fn)
            via = " -> ".join(path + [f"{callee}()"])
            findings.append(Finding(
                fn.rel, lineno, "status-path",
                f"Status/Result from {callee}() is dropped on call-path "
                f"{via}; propagate with CRH_RETURN_NOT_OK, handle it, or "
                "annotate with analyzer:allow(status-path)"))


def check_lock_order(model: ProgramModel, findings: list[Finding]) -> None:
    acquires = transitive_lock_acquires(model)
    hits_failpoint = fix_reachable(
        model, lambda fn: bool(fn.failpoint_lines)
        and fn.rel not in PRIMITIVE_FILES)
    invokes_callback = fix_reachable(
        model, lambda fn: bool(fn.callback_invokes))

    # Edge set: (held, acquired) -> first site.
    edges: dict[tuple[str, str], tuple[str, int, str]] = {}
    for fn in model.functions:
        if fn.rel in PRIMITIVE_FILES:
            continue
        for lineno, acquired, held in fn.lock_acquires:
            for h in held:
                if h != acquired:
                    edges.setdefault((h, acquired),
                                     (fn.rel, lineno, fn.qual_name))
        for lineno, callee, held in fn.calls:
            if not held:
                continue
            for target in model.resolve(callee):
                if target.rel in PRIMITIVE_FILES:
                    continue
                for acquired in acquires[id(target)]:
                    for h in held:
                        if h != acquired:
                            edges.setdefault(
                                (h, acquired),
                                (fn.rel, lineno,
                                 f"{fn.qual_name} via {target.qual_name}"))

    # Cycle detection over the lock digraph.
    graph: dict[str, set[str]] = {}
    for (a, b) in edges:
        graph.setdefault(a, set()).add(b)
        graph.setdefault(b, set())
    state: dict[str, int] = {}
    stack: list[str] = []
    cycles: list[list[str]] = []

    def dfs(node: str) -> None:
        state[node] = 1
        stack.append(node)
        for nxt in sorted(graph.get(node, ())):
            if state.get(nxt, 0) == 0:
                dfs(nxt)
            elif state.get(nxt) == 1:
                cycles.append(stack[stack.index(nxt):] + [nxt])
        stack.pop()
        state[node] = 2

    for node in sorted(graph):
        if state.get(node, 0) == 0:
            dfs(node)
    for cycle in cycles:
        a, b = cycle[0], cycle[1]
        rel, lineno, where = edges.get((a, b)) or edges.get((b, a)) or \
            ("", 1, "?")
        findings.append(Finding(
            rel, lineno, "lock-order",
            f"lock-order cycle {' -> '.join(cycle)} (edge acquired in "
            f"{where}); impose a single global acquisition order"))

    # Locks held across fail-point / callback boundaries, interprocedural.
    for fn in model.functions:
        if fn.rel in PRIMITIVE_FILES:
            continue
        for lineno, callee, held in fn.calls:
            if not held:
                continue
            for target in model.resolve(callee):
                if target.rel in PRIMITIVE_FILES:
                    continue
                hazard = None
                if id(target) in hits_failpoint:
                    hazard = "evaluates a fail point"
                elif id(target) in invokes_callback:
                    hazard = "invokes a std::function callback"
                if hazard:
                    findings.append(Finding(
                        fn.rel, lineno, "lock-order",
                        f"{fn.qual_name} holds {{{', '.join(sorted(held))}}} "
                        f"while calling {target.qual_name}, which "
                        f"{hazard}; release the lock first (reserve-then-"
                        "write, see CheckpointManager::Save)"))
                    break
        for lineno, name, held in fn.callback_invokes:
            if held:
                findings.append(Finding(
                    fn.rel, lineno, "lock-order",
                    f"{fn.qual_name} invokes callback '{name}' while "
                    f"holding {{{', '.join(sorted(held))}}}; user code must "
                    "never run under a library lock"))


def check_failpoint_dominance(model: ProgramModel,
                              findings: list[Finding]) -> None:
    registered: set[str] = set()
    for fn in model.functions:
        registered |= fn.registered_sites
    used: dict[str, tuple[str, int]] = {}
    for fn in model.functions:
        for lineno, site in fn.failpoint_sites:
            used.setdefault(site, (fn.rel, lineno))

    for fn in model.functions:
        if not fn.rel.startswith(IO_SCOPED_DIRS) or \
                fn.rel in PRIMITIVE_FILES:
            continue
        for lineno, what in fn.io_sites:
            dominated = any(fp <= lineno for fp in fn.failpoint_lines)
            if not dominated:
                findings.append(Finding(
                    fn.rel, lineno, "failpoint-dominance",
                    f"raw I/O call {what}() in {fn.qual_name} is not "
                    "dominated by a fail point; add CRH_FAIL_POINT(\"...\") "
                    "before it and register the site in the component's "
                    "*FailPointSites() list so fault sweeps cover it"))

    for site, (rel, lineno) in sorted(used.items()):
        if site not in registered:
            findings.append(Finding(
                rel, lineno, "failpoint-dominance",
                f"fail-point site \"{site}\" is hit here but not listed in "
                "any *FailPointSites() registry; fault-sweep tests cannot "
                "see it"))


def load_arch_manifest():
    """Returns (module -> layer index, private_headers map) from
    scripts/arch_layers.json."""
    data = json.loads(ARCH_MANIFEST.read_text())
    layer_of: dict[str, int] = {}
    for idx, layer in enumerate(data["layers"]):
        for mod in layer:
            layer_of[mod] = idx
    return layer_of, data.get("private_headers", {})


def module_of(rel: str) -> str | None:
    parts = pathlib.PurePosixPath(rel).parts
    if parts and parts[0] == "bench":
        return "bench"
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    return None


def check_arch(model: ProgramModel, findings: list[Finding]) -> None:
    try:
        layer_of, private = load_arch_manifest()
    except (OSError, json.JSONDecodeError, KeyError, TypeError) as exc:
        findings.append(Finding("scripts/arch_layers.json", 1, "arch",
                                f"layer manifest unreadable: {exc}"))
        return

    for rel in sorted(model.includes):
        mod = module_of(rel)
        if mod is None:
            continue
        if mod not in layer_of:
            findings.append(Finding(
                rel, 1, "arch",
                f"module '{mod}' is not declared in any layer of "
                "scripts/arch_layers.json; add it to the manifest"))
            continue
        for lineno, target in model.includes[rel]:
            if "/" not in target:
                continue
            tmod = target.split("/", 1)[0]
            if tmod not in layer_of:
                continue
            if target in private and mod not in private[target]:
                findings.append(Finding(
                    rel, lineno, "arch",
                    f"\"{target}\" is a private header "
                    "(scripts/arch_layers.json private_headers); module "
                    f"'{mod}' may not include it — go through the owning "
                    "module's public interface, or widen the allow-list "
                    "with a justification"))
            if tmod != mod and layer_of[tmod] >= layer_of[mod]:
                what = "back-edge" if layer_of[tmod] > layer_of[mod] \
                    else "peer edge"
                findings.append(Finding(
                    rel, lineno, "arch",
                    f"layer {what}: module '{mod}' (layer {layer_of[mod]}) "
                    f"includes \"{target}\" from module '{tmod}' (layer "
                    f"{layer_of[tmod]}); dependencies must point at the "
                    "same module or a strictly earlier layer"))

    # Cross-TU call edges. Simple-name resolution is ambiguous, so an edge
    # is flagged only when EVERY candidate resolution of the callee lives
    # in a strictly later layer — one plausible clean target acquits it.
    for fn in model.functions:
        mod = module_of(fn.rel)
        if mod is None or mod not in layer_of:
            continue
        reported: set[str] = set()
        for lineno, callee, _ in fn.calls:
            if callee in reported:
                continue
            targets = model.resolve(callee)
            if not targets:
                continue
            # Only free functions: a simple name shared with any class
            # method (size/empty/push_back/...) says nothing about which
            # module the receiver lives in.
            if any(t.qual_name != t.name for t in targets):
                continue
            tmods: set[str] | None = set()
            for t in targets:
                tm = module_of(t.rel)
                if tm is None or tm not in layer_of:
                    tmods = None
                    break
                tmods.add(tm)
            if not tmods:
                continue
            if all(tm != mod and layer_of[tm] > layer_of[mod]
                   for tm in tmods):
                reported.add(callee)
                findings.append(Finding(
                    fn.rel, lineno, "arch",
                    f"call back-edge: {fn.qual_name} (module '{mod}') "
                    f"calls {callee}(), which resolves only into later "
                    f"layer(s) {{{', '.join(sorted(tmods))}}}; invert the "
                    "dependency or move the callee down the stack"))


def check_global_state(model: ProgramModel,
                       findings: list[Finding]) -> None:
    for rel in sorted(model.global_decls):
        if not rel.startswith(GLOBAL_STATE_SCOPE) or \
                rel.startswith(GLOBAL_STATE_EXCLUDED) or \
                rel == "src/common/global_state.h":
            continue
        for lineno, name, kind in model.global_decls[rel]:
            findings.append(Finding(
                rel, lineno, "global-state",
                f"{kind} `{name}`: an epoch snapshot must be a pure "
                "function of its inputs, so library layers keep no mutable "
                "global/static state; make it caller-owned, or annotate "
                "with CRH_GLOBAL_STATE_EXEMPT(\"why\") "
                "(src/common/global_state.h)"))


def check_hot(model: ProgramModel, findings: list[Finding]) -> None:
    # Local dirt: allocation/throw patterns plus the already-modeled lock,
    # I/O, fail-point and std::function-invocation events.
    local_reasons: dict[int, list[tuple[int, str]]] = {}
    for fn in model.functions:
        if fn.rel in PRIMITIVE_FILES:
            continue
        reasons = list(fn.hot_violations)
        reasons += [(ln, f"performs raw I/O ({what})")
                    for ln, what in fn.io_sites]
        reasons += [(ln, f"acquires lock {lock}")
                    for ln, lock, _ in fn.lock_acquires]
        reasons += [(ln, "evaluates a fail point")
                    for ln in fn.failpoint_lines]
        reasons += [(ln, f"invokes std::function '{name}'")
                    for ln, name, _ in fn.callback_invokes]
        if reasons:
            local_reasons[id(fn)] = sorted(reasons)

    # Transitive closure, optimistic on ambiguity: a call dirties its
    # caller only when it resolves and EVERY resolution is dirty (span/
    # allocating overload pairs with shared simple names stay apart).
    dirty: dict[int, tuple] = {fid: ("local",) for fid in local_reasons}
    changed = True
    while changed:
        changed = False
        for fn in model.functions:
            if id(fn) in dirty:
                continue
            for lineno, callee, _ in fn.calls:
                targets = model.resolve(callee)
                if targets and all(id(t) in dirty for t in targets):
                    dirty[id(fn)] = ("call", lineno, callee, targets[0])
                    changed = True
                    break

    for fn in model.functions:
        if not fn.hot or id(fn) not in dirty:
            continue
        entry = dirty[id(fn)]
        if entry[0] == "local":
            for lineno, desc in local_reasons[id(fn)][:3]:
                findings.append(Finding(
                    fn.rel, lineno, "hot",
                    f"{fn.qual_name} is CRH_HOT but {desc}; hot solver "
                    "kernels must be allocation-, lock-, I/O- and "
                    "throw-free — hoist the work into caller-owned "
                    "scratch (see SolverScratch in core/crh.cc)"))
        else:
            chain, leaf = trace_hot_chain(model, fn, dirty)
            leaf_why = local_reasons.get(
                id(leaf),
                [(leaf.start_line, "performs a hot-unsafe operation")])[0][1]
            findings.append(Finding(
                fn.rel, entry[1], "hot",
                f"{fn.qual_name} is CRH_HOT but calls "
                f"{' -> '.join(chain[1:])}, which {leaf_why}; every "
                "transitive callee of a hot kernel must be real-time "
                "safe"))


def trace_hot_chain(model: ProgramModel, start: FunctionModel,
                    dirty: dict[int, tuple], max_hops: int = 8):
    """Follows the recorded dirtying call of each function down to a
    locally-dirty leaf; returns (qualified-name chain, leaf model)."""
    chain = [start.qual_name]
    cur = start
    for _ in range(max_hops):
        entry = dirty.get(id(cur))
        if entry is None or entry[0] == "local":
            break
        cur = entry[3]
        chain.append(cur.qual_name)
    return chain, cur


def untrusted_taint_state(fn: FunctionModel, names: set[str]):
    """Flow-sensitive (line-ordered) taint for one function body, given the
    current set of untrusted-returning function names. Returns
    (tainted: var -> (source line, description),
     bad_sinks: [(sink line, kind, var, source line, description)],
     returns_tainted: bool)."""
    tainted: dict[str, tuple[int, str]] = {}
    for line, var, desc in fn.ut_sources:
        if var not in tainted or line < tainted[var][0]:
            tainted[var] = (line, desc)
    for line, var, callee in fn.ut_assigns:
        if callee in names and (var not in tainted or line < tainted[var][0]):
            tainted[var] = (line, f"untrusted bytes via {callee}()")
    if not tainted:
        return tainted, [], False

    guard_lines: dict[str, list[int]] = {v: [] for v in tainted}
    for gline, idents in fn.ut_guards:
        for v in tainted:
            if v in idents:
                guard_lines[v].append(gline)

    def sanitized(var: str, use_line: int) -> bool:
        src = tainted[var][0]
        return any(src <= g <= use_line for g in guard_lines[var])

    bad_sinks: list[tuple[int, str, str, int, str]] = []
    for sline, kind, idents in fn.ut_sinks:
        for var in sorted(idents & tainted.keys()):
            src, desc = tainted[var]
            if sline >= src and not sanitized(var, sline):
                bad_sinks.append((sline, kind, var, src, desc))
                break  # one finding per sink site
    returns_tainted = any(
        var in idents and rline >= tainted[var][0]
        and not sanitized(var, rline)
        for rline, idents in fn.ut_returns for var in tainted)
    return tainted, bad_sinks, returns_tainted


def check_untrusted_taint(model: ProgramModel,
                          findings: list[Finding]) -> None:
    scoped = [fn for fn in model.functions
              if fn.rel.startswith(UNTRUSTED_SCOPED_DIRS)
              and fn.rel not in PRIMITIVE_FILES]
    # Interprocedural fixpoint: a scoped function that returns a tainted
    # value without sanitizing it taints every `x = Fn(...)` assignment
    # from its callers, across TUs.
    names = set(UNTRUSTED_RETURNING)
    changed = True
    while changed:
        changed = False
        for fn in scoped:
            if fn.name in names:
                continue
            if untrusted_taint_state(fn, names)[2]:
                names.add(fn.name)
                changed = True

    for fn in model.functions:
        if fn.rel in PRIMITIVE_FILES:
            continue
        in_scope = fn.rel.startswith(UNTRUSTED_SCOPED_DIRS)
        tainted, bad_sinks, _ = untrusted_taint_state(fn, names)
        if in_scope:
            for sline, kind, var, src, desc in bad_sinks:
                findings.append(Finding(
                    fn.rel, sline, "taint",
                    f"`{var}` ({desc}, line {src}) reaches {kind} in "
                    f"{fn.qual_name} without a dominating bounds check; "
                    "guard it with an if/CRH_CHECK/CRH_VERIFY_OR_RETURN "
                    "range comparison first, or wrap the use in "
                    "CRH_SANITIZED(expr, \"why\") (src/common/taint.h)"))
        # CRH_SANITIZED misuse is flagged everywhere: the escape hatch may
        # only bless values the analyzer tracks as untrusted.
        for sline, idents in fn.ut_sanitized:
            if not (idents & tainted.keys()):
                findings.append(Finding(
                    fn.rel, sline, "taint",
                    f"CRH_SANITIZED in {fn.qual_name} wraps a value the "
                    "analyzer does not track as untrusted; the escape "
                    "hatch exists to bless a real source->sink path — "
                    "remove it, or name the tainted variable in the "
                    "wrapped expression"))


def check_snapshot_lifetime(model: ProgramModel,
                            findings: list[Finding]) -> None:
    for fn in model.functions:
        if not fn.rel.startswith(SNAPSHOT_SCOPED_DIRS) or \
                fn.rel in PRIMITIVE_FILES:
            continue
        for lineno, what in fn.snap_escapes:
            findings.append(Finding(
                fn.rel, lineno, "snapshot-lifetime",
                f"{fn.qual_name} {what}"))


ALL_CHECKS = {
    "determinism-taint": check_determinism_taint,
    "status-path": check_status_paths,
    "lock-order": check_lock_order,
    "failpoint-dominance": check_failpoint_dominance,
    "taint": check_untrusted_taint,
    "snapshot-lifetime": check_snapshot_lifetime,
    "arch": check_arch,
    "global-state": check_global_state,
    "hot": check_hot,
}


def run_checks(model: ProgramModel, checks=None,
               timings: dict[str, float] | None = None) -> list[Finding]:
    findings: list[Finding] = []
    for name, check in ALL_CHECKS.items():
        if checks is not None and name not in checks:
            continue
        t0 = time.monotonic()
        check(model, findings)
        if timings is not None:
            timings[name] = time.monotonic() - t0
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


# ---------------------------------------------------------------------------
# Module-graph rendering (--graph / --graph-svg). Both forms are built from
# the manifest plus the observed include edges and are fully deterministic:
# CI regenerates docs/architecture.svg and diffs it against the committed
# copy, so the picture can never drift from the tree.


def collect_module_edges(files: list[pathlib.Path]):
    """Observed include edges between manifest modules:
    (from_module, to_module) -> include count."""
    layer_of, _ = load_arch_manifest()
    edges: dict[tuple[str, str], int] = {}
    for path in files:
        rel = rel_str(path)
        mod = module_of(rel)
        if mod is None or mod not in layer_of:
            continue
        for raw_line in read_text(path).splitlines():
            m = INCLUDE_RE.match(raw_line)
            if not m or "/" not in m.group(1):
                continue
            tmod = m.group(1).split("/", 1)[0]
            if tmod in layer_of and tmod != mod:
                edges[(mod, tmod)] = edges.get((mod, tmod), 0) + 1
    return edges


def render_module_dot(edges: dict[tuple[str, str], int]) -> str:
    data = json.loads(ARCH_MANIFEST.read_text())
    lines = ["digraph crh_arch {",
             "  // arrows point at the dependency (lower layer)",
             "  rankdir=BT;",
             '  node [shape=box, fontname="Helvetica"];']
    for layer in data["layers"]:
        lines.append("  { rank=same; "
                     + " ".join(f'"{m}";' for m in layer) + " }")
    for (a, b) in sorted(edges):
        lines.append(f'  "{a}" -> "{b}" [label="{edges[(a, b)]}"];')
    lines.append("}")
    return "\n".join(lines) + "\n"


def render_module_svg(edges: dict[tuple[str, str], int]) -> str:
    data = json.loads(ARCH_MANIFEST.read_text())
    layers = data["layers"]
    bw, bh, hgap, vgap = 130, 40, 46, 70
    margin, top = 40, 72
    nlayers = len(layers)
    widths = [len(lr) * bw + (len(lr) - 1) * hgap for lr in layers]
    total_w = max(widths) + 2 * margin
    total_h = top + nlayers * bh + (nlayers - 1) * vgap + margin
    pos: dict[str, tuple[int, int]] = {}
    for i, layer in enumerate(layers):
        y = top + (nlayers - 1 - i) * (bh + vgap)
        x0 = (total_w - widths[i]) // 2
        for j, mod in enumerate(layer):
            pos[mod] = (x0 + j * (bw + hgap), y)
    layer_fill = ["#e8f5e9", "#e3f2fd", "#fff3e0", "#f3e5f5", "#ffebee",
                  "#e0f7fa", "#f9fbe7"]
    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{total_w}" '
        f'height="{total_h}" viewBox="0 0 {total_w} {total_h}" '
        'font-family="Helvetica, Arial, sans-serif">',
        ' <defs><marker id="arr" viewBox="0 0 10 10" refX="9" refY="5" '
        'markerWidth="7" markerHeight="7" orient="auto">'
        '<path d="M 0 0 L 10 5 L 0 10 z" fill="#546e7a"/></marker></defs>',
        f' <rect width="{total_w}" height="{total_h}" fill="#ffffff"/>',
        f' <text x="{margin}" y="28" font-size="14" fill="#263238" '
        'font-weight="bold">CRH layer DAG</text>',
        f' <text x="{margin}" y="46" font-size="11" fill="#546e7a">arrows '
        'point at the dependency; generated by scripts/crh_analyzer.py '
        '--graph-svg, checked by --check=arch</text>']
    for (a, b) in sorted(edges):
        x1, y1 = pos[a][0] + bw // 2, pos[a][1] + bh
        x2, y2 = pos[b][0] + bw // 2, pos[b][1]
        out.append(f' <line x1="{x1}" y1="{y1}" x2="{x2}" y2="{y2}" '
                   'stroke="#90a4ae" stroke-width="1.2" '
                   'marker-end="url(#arr)"/>')
    for i, layer in enumerate(layers):
        fill = layer_fill[i % len(layer_fill)]
        out.append(f' <text x="{margin - 28}" '
                   f'y="{top + (nlayers - 1 - i) * (bh + vgap) + bh // 2 + 4}"'
                   f' font-size="11" fill="#90a4ae">L{i}</text>')
        for mod in layer:
            x, y = pos[mod]
            out.append(f' <rect x="{x}" y="{y}" width="{bw}" '
                       f'height="{bh}" rx="6" fill="{fill}" '
                       'stroke="#546e7a"/>')
            out.append(f' <text x="{x + bw // 2}" y="{y + bh // 2 + 5}" '
                       'font-size="14" text-anchor="middle" '
                       f'fill="#263238">{mod}</text>')
    out.append('</svg>')
    return "\n".join(out) + "\n"


# ---------------------------------------------------------------------------
# Source discovery: compile_commands.json when available, else a tree scan.


def discover_compile_commands(explicit: str | None) -> pathlib.Path | None:
    if explicit:
        p = pathlib.Path(explicit)
        return p if p.exists() else None
    candidates = sorted(REPO_ROOT.glob("build*/compile_commands.json"))
    return candidates[0] if candidates else None


def iter_sources(paths: list[str],
                 compile_commands: pathlib.Path | None) -> list[pathlib.Path]:
    if paths:
        files: list[pathlib.Path] = []
        for p in paths:
            root = pathlib.Path(p)
            if root.is_file():
                if root.suffix in CXX_SUFFIXES:
                    files.append(root)
            else:
                files.extend(f for f in sorted(root.rglob("*"))
                             if f.suffix in CXX_SUFFIXES
                             and "build" not in f.parts)
        return files

    tu_files: list[pathlib.Path] = []
    if compile_commands is not None:
        try:
            db = json.loads(compile_commands.read_text())
            for entry in db:
                f = pathlib.Path(entry["directory"]) / entry["file"] \
                    if not pathlib.Path(entry["file"]).is_absolute() \
                    else pathlib.Path(entry["file"])
                f = f.resolve()
                if f.is_relative_to(REPO_ROOT) and f.suffix in CXX_SUFFIXES \
                        and f.exists():
                    rel = rel_str(f)
                    if rel.startswith(tuple(d + "/" for d in DEFAULT_DIRS)):
                        tu_files.append(f)
        except (json.JSONDecodeError, KeyError, OSError) as exc:
            print(f"crh_analyzer: unreadable {compile_commands}: {exc}; "
                  "falling back to a tree scan", file=sys.stderr)
            tu_files = []
    seen = {str(f) for f in tu_files}
    # Headers never appear as TUs; the model needs them (decls, inline
    # bodies, registries). Scan the same roots for everything else too when
    # no DB was found.
    scan_everything = not tu_files
    for d in DEFAULT_DIRS:
        root = REPO_ROOT / d
        if not root.is_dir():
            continue
        for f in sorted(root.rglob("*")):
            if f.suffix not in CXX_SUFFIXES or "build" in f.parts:
                continue
            if f.suffix in (".h", ".hpp") or scan_everything:
                if str(f.resolve()) not in seen:
                    tu_files.append(f.resolve())
                    seen.add(str(f.resolve()))
    return sorted(tu_files)


# ---------------------------------------------------------------------------
# Baseline (ast_lint conventions + justification suffixes + staleness).


def load_baseline() -> set[str]:
    if not BASELINE.exists():
        return set()
    entries = set()
    for line in BASELINE.read_text().splitlines():
        line = line.split(" #", 1)[0].strip()
        if line and not line.startswith("#"):
            entries.add(line)
    return entries


def write_baseline(findings: list[Finding]) -> None:
    lines = [
        "# crh_analyzer baseline: one `path: [rule]` per line. Every entry",
        "# must carry a trailing `# <justification>` explaining why the",
        "# finding is accepted rather than fixed (see docs/TOOLING.md).",
        "# Stale entries fail the run: delete them when the finding is",
        "# fixed, or regenerate with --update-baseline.",
    ]
    for key in sorted({f.key() for f in findings}):
        lines.append(f"{key}  # TODO: justify or fix")
    BASELINE.write_text("\n".join(lines) + "\n")


# ---------------------------------------------------------------------------
# Self-test corpus: a miniature multi-TU tree; each check must fire on its
# positive case and stay quiet on the negative twin.

SELF_TEST_FILES = {
    # --- determinism-taint: clock read flows through a helper into the
    # checkpoint encoder (positive), exempt twin is a barrier (negative).
    "src/stream/taint_pos.cc": """
namespace crh {
double SampleClock() {
  return static_cast<double>(Clock::now().time_since_epoch().count());
}
double Jitter() { return SampleClock() * 0.5; }
std::string EncodeCheckpoint(const CheckpointState& state) {
  std::string out;
  out += std::to_string(Jitter());
  return out;
}
}
""",
    "src/stream/taint_neg.cc": """
namespace crh {
double SampleClockExempt() {
  CRH_DETERMINISM_EXEMPT("timing report only; never serialized");
  return static_cast<double>(Clock::now().time_since_epoch().count());
}
std::string EncodeCheckpointNeg(const CheckpointState& state) {
  std::string out;
  out += "v1";
  return out;
}
}
""",
    # --- status-path: dropped Status call (positive) vs propagated twin.
    "src/stream/status_pos.cc": """
namespace crh {
Status SaveThing(int x) { return OkStatus(); }
void CallerDrops() {
  SaveThing(1);
}
void EntryPoint() { CallerDrops(); }
}
""",
    "src/stream/status_neg.cc": """
namespace crh {
Status SaveOther(int x) { return OkStatus(); }
Status CallerPropagates() {
  CRH_RETURN_NOT_OK(SaveOther(1));
  return OkStatus();
}
}
""",
    # --- lock-order: AB/BA cycle across two classes (positive) vs a
    # consistent global order (negative).
    "src/stream/lock_pos.cc": """
namespace crh {
class Left {
 public:
  void PokeRight() {
    MutexLock lock(&mu_);
    right_->PokeBack();
  }
  void TouchLeft() {
    MutexLock lock(&mu_);
  }
  Right* right_;
  Mutex mu_;
};
class Right {
 public:
  void PokeBack() {
    MutexLock lock(&mu_);
    left_->TouchLeft();
  }
  Left* left_;
  Mutex mu_;
};
}
""",
    "src/stream/lock_neg.cc": """
namespace crh {
class Ordered {
 public:
  void CrossA() {
    MutexLock lock(&first_mu_);
    MutexLock lock2(&second_mu_);
  }
  void CrossB() {
    MutexLock lock(&first_mu_);
    MutexLock lock2(&second_mu_);
  }
  Mutex first_mu_;
  Mutex second_mu_;
};
}
""",
    # --- failpoint-dominance: bare fopen (positive) vs hit-then-open with
    # the site registered (negative), plus an unregistered-site positive.
    "src/stream/io_pos.cc": """
namespace crh {
Status WriteRaw(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return IOError(path);
  return OkStatus();
}
}
""",
    "src/stream/io_neg.cc": """
namespace crh {
Status WriteGuarded(const std::string& path) {
  CRH_FAIL_POINT("selftest.open_write");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return IOError(path);
  return OkStatus();
}
std::vector<std::string> SelfTestFailPointSites() {
  return {"selftest.open_write", "selftest.orphan_reg"};
}
}
""",
    # --- failpoint-dominance, serving layer: a bare recv() (positive) vs
    # hit-then-recv with the site registered (negative) — the socket calls
    # the daemon makes are I/O and must be sweepable like file I/O.
    "src/serve/socket_pos.cc": """
namespace crh {
Status ReadRequest(int fd) {
  char buffer[256];
  const ssize_t n = recv(fd, buffer, sizeof(buffer), 0);
  if (n < 0) return IOError("recv");
  return OkStatus();
}
}
""",
    "src/serve/socket_neg.cc": """
namespace crh {
Status ReadRequestGuarded(int fd) {
  CRH_RETURN_NOT_OK(FailPoints::Instance().Hit("selftest.serve_recv"));
  char buffer[256];
  const ssize_t n = recv(fd, buffer, sizeof(buffer), 0);
  if (n < 0) return IOError("recv");
  return OkStatus();
}
std::vector<std::string> SelfTestServeFailPointSites() {
  return {"selftest.serve_recv"};
}
}
""",
    "src/stream/io_unregistered.cc": """
namespace crh {
Status TouchUnregistered() {
  CRH_FAIL_POINT("selftest.unregistered_site");
  std::FILE* f = std::fopen("x", "wb");
  if (f == nullptr) return IOError("x");
  return OkStatus();
}
}
""",
    # --- arch: a data-layer file includes a stream header (back-edge) and
    # a tools file grabs a private common header (leak); the negative twin
    # is a stream file reading data (strictly earlier layer).
    "src/data/arch_pos.cc": """
#include "data/dataset.h"
#include "stream/chunks.h"
namespace crh {
int DataUsesStream() { return 1; }
}
""",
    "src/tools/arch_private_pos.cc": """
#include "common/mutex.h"
namespace crh {
int ToolsGrabsMutex() { return 2; }
}
""",
    "src/stream/arch_neg.cc": """
#include "common/status.h"
#include "data/dataset.h"
namespace crh {
int StreamReadsData() { return 3; }
}
""",
    # --- global-state: bare mutable global + singleton static local
    # (positive) vs constants and exempted twins (negative).
    "src/core/global_pos.cc": """
namespace crh {
int g_iterations = 0;
double Bump() {
  static int calls = 0;
  ++calls;
  ++g_iterations;
  return 1.0;
}
}
""",
    "src/core/global_neg.cc": """
namespace crh {
constexpr int kMaxIters = 100;
const double kTolerance = 1e-9;
CRH_GLOBAL_STATE_EXEMPT("test-only metrics registry; "
                        "never read by snapshot code");
int g_exempted_registry = 0;
double BumpNeg() {
  CRH_GLOBAL_STATE_EXEMPT("per-process diagnostics counter");
  static int calls = 0;
  ++calls;
  return 2.0;
}
}
""",
    # --- hot: a CRH_HOT kernel that allocates, and one that reaches an
    # allocating helper transitively (positive) vs an index-writing clean
    # kernel next to a non-hot allocator (negative).
    "src/core/hot_pos.cc": """
namespace crh {
void GrowBuffer(std::vector<double>* buf) { buf->push_back(1.0); }
CRH_HOT double HotAccumulate(const double* xs, size_t n) {
  std::vector<double> copy(xs, xs + n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) total += copy[i];
  return total;
}
CRH_HOT void HotTransitive(std::vector<double>* buf) {
  GrowBuffer(buf);
}
}
""",
    "src/core/hot_neg.cc": """
namespace crh {
void StageResults(std::vector<double>* out) { out->push_back(3.0); }
CRH_HOT double HotDotProduct(const double* xs, const double* ys,
                             double* acc, size_t n) {
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc[i] = xs[i] * ys[i];
    total += acc[i];
  }
  return total;
}
}
""",
    # --- hot + arena: mirrors src/common/arena.h's scratch discipline. A
    # kernel that grows a std::vector per element allocates (positive); a
    # kernel that bump-carves from a preallocated arena is pointer
    # arithmetic only and must stay quiet (negative).
    "src/core/hot_arena_pos.cc": """
namespace crh {
CRH_HOT double HotGatherVector(const double* xs, size_t n,
                               std::vector<double>* scratch) {
  scratch->clear();
  for (size_t i = 0; i < n; ++i) scratch->push_back(xs[i]);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) total += (*scratch)[i];
  return total;
}
}
""",
    "src/core/hot_arena_neg.cc": """
namespace crh {
class MiniArena {
 public:
  double* Carve(size_t n) {
    double* out = cursor_;
    cursor_ += n;
    return out;
  }
 private:
  double* cursor_ = nullptr;
};
CRH_HOT double HotGatherArena(const double* xs, size_t n, MiniArena* arena) {
  double* scratch = arena->Carve(n);
  for (size_t i = 0; i < n; ++i) scratch[i] = xs[i];
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) total += scratch[i];
  return total;
}
}
""",
    # --- taint: a checkpoint count decoded from payload bytes sizes an
    # allocation unguarded (positive) vs the remaining-bytes guard and a
    # justified CRH_SANITIZED (negative).
    "src/stream/ut_taint_pos.cc": """
namespace crh {
Status LoadFrame(Cursor& cursor, std::vector<double>* out) {
  uint64_t count = 0;
  CRH_RETURN_NOT_OK(cursor.ReadU64(&count));
  out->resize(count);
  return OkStatus();
}
}
""",
    "src/stream/ut_taint_neg.cc": """
namespace crh {
Status LoadFrameGuarded(Cursor& cursor, std::vector<double>* out) {
  uint64_t count = 0;
  CRH_RETURN_NOT_OK(cursor.ReadU64(&count));
  if (count > cursor.remaining() / 8) return Truncated("count");
  out->resize(count);
  return OkStatus();
}
Status LoadFrameSanitized(Cursor& cursor, std::vector<double>* out) {
  uint64_t n = 0;
  CRH_RETURN_NOT_OK(cursor.ReadU64(&n));
  out->resize(CRH_SANITIZED(n, "frame replayed from a CRC-verified image"));
  return OkStatus();
}
}
""",
    # --- taint, interprocedural: a helper returns a decoded length
    # unsanitized, so its caller's allocation in another TU fires
    # (positive); the checked twin sanitizes before returning, killing the
    # propagation (negative).
    "src/serve/ut_flow_pos.cc": """
namespace crh {
uint64_t DecodeLen(Cursor& cursor) {
  uint64_t len = 0;
  (void)cursor.ReadU64(&len);
  return len;
}
}
""",
    "src/serve/ut_flow_caller_pos.cc": """
namespace crh {
void BuildReply(Cursor& cursor, std::string* out) {
  const uint64_t n = DecodeLen(cursor);
  out->reserve(n);
}
}
""",
    "src/serve/ut_flow_neg.cc": """
namespace crh {
uint64_t DecodeLenChecked(Cursor& cursor) {
  uint64_t len = 0;
  (void)cursor.ReadU64(&len);
  if (len > kMaxFrameBytes) return 0;
  return len;
}
void BuildReplyChecked(Cursor& cursor, std::string* out) {
  const uint64_t n = DecodeLenChecked(cursor);
  out->reserve(n);
}
}
""",
    # --- taint, protocol surface: a JSON field drives a loop bound and an
    # index unguarded (positive) vs a size comparison first (negative).
    "src/serve/ut_proto_pos.cc": """
namespace crh {
std::string DumpWeights(const JsonObject& request,
                        const std::vector<double>& weights) {
  auto count = request.GetUint("count");
  std::string out;
  for (size_t i = 0; i < *count; ++i) {
    out += std::to_string(weights[i]);
  }
  return out;
}
}
""",
    "src/serve/ut_proto_neg.cc": """
namespace crh {
std::string DumpWeightsChecked(const JsonObject& request,
                               const std::vector<double>& weights) {
  auto count = request.GetUint("count");
  if (*count > weights.size()) return std::string();
  std::string out;
  for (size_t i = 0; i < *count; ++i) {
    out += std::to_string(weights[i]);
  }
  return out;
}
}
""",
    # --- taint, escape-hatch misuse: CRH_SANITIZED on a value the
    # analyzer never tainted must itself be a finding (the legitimate use
    # lives in ut_taint_neg.cc above).
    "src/serve/ut_sanitized_misuse_pos.cc": """
namespace crh {
size_t StampLimit(size_t configured_cap) {
  return CRH_SANITIZED(configured_cap, "cap comes from trusted config");
}
}
""",
    # --- snapshot-lifetime: a view return, a member-stored raw pointer,
    # and a by-reference lambda capture all outlive the owning shared_ptr
    # (positive) vs value copies, pinning, and by-value capture (negative).
    "src/serve/snap_pos.cc": """
namespace crh {
class LeakyViews {
 public:
  const ValueTable& LeakTruths() {
    auto snapshot = publisher_.Current();
    return snapshot->truths;
  }
  void CacheRawPointer() {
    auto snapshot = publisher_.Current();
    cached_ = &snapshot->truths;
  }
  void DeferByReference() {
    auto snapshot = publisher_.Current();
    deferred_ = [&snapshot] { return snapshot->epoch; };
  }
  SnapshotPublisher publisher_;
  const ValueTable* cached_ = nullptr;
  std::function<uint64_t()> deferred_;
};
}
""",
    "src/serve/snap_neg.cc": """
namespace crh {
class SafeViews {
 public:
  uint64_t Epoch() {
    const std::shared_ptr<const ServeSnapshot> snapshot =
        publisher_.Current();
    if (snapshot == nullptr) return 0;
    return snapshot->epoch;
  }
  std::shared_ptr<const ServeSnapshot> Pin() {
    auto snapshot = publisher_.Current();
    return snapshot;
  }
  void DeferByValue() {
    auto snapshot = publisher_.Current();
    deferred_ = [snapshot] { return snapshot->epoch; };
  }
  SnapshotPublisher publisher_;
  std::function<uint64_t()> deferred_;
};
}
""",
}

# rule -> (file that must fire, file that must stay quiet)
SELF_TEST_EXPECTATIONS = [
    ("determinism-taint", "src/stream/taint_pos.cc", "src/stream/taint_neg.cc"),
    ("status-path", "src/stream/status_pos.cc", "src/stream/status_neg.cc"),
    ("lock-order", "src/stream/lock_pos.cc", "src/stream/lock_neg.cc"),
    ("failpoint-dominance", "src/stream/io_pos.cc", "src/stream/io_neg.cc"),
    ("failpoint-dominance", "src/stream/io_unregistered.cc",
     "src/stream/io_neg.cc"),
    ("failpoint-dominance", "src/serve/socket_pos.cc",
     "src/serve/socket_neg.cc"),
    ("arch", "src/data/arch_pos.cc", "src/stream/arch_neg.cc"),
    ("arch", "src/tools/arch_private_pos.cc", "src/stream/arch_neg.cc"),
    ("global-state", "src/core/global_pos.cc", "src/core/global_neg.cc"),
    ("hot", "src/core/hot_pos.cc", "src/core/hot_neg.cc"),
    ("hot", "src/core/hot_arena_pos.cc", "src/core/hot_arena_neg.cc"),
    ("taint", "src/stream/ut_taint_pos.cc", "src/stream/ut_taint_neg.cc"),
    ("taint", "src/serve/ut_flow_caller_pos.cc", "src/serve/ut_flow_neg.cc"),
    ("taint", "src/serve/ut_proto_pos.cc", "src/serve/ut_proto_neg.cc"),
    ("taint", "src/serve/ut_sanitized_misuse_pos.cc",
     "src/stream/ut_taint_neg.cc"),
    ("snapshot-lifetime", "src/serve/snap_pos.cc", "src/serve/snap_neg.cc"),
]


def parse_check_arg(raw: str):
    """Parses a --check=LIST value. Returns (checks, None) on success or
    (None, one-line error naming every valid check) on an unknown name."""
    checks = {c.strip() for c in raw.split(",") if c.strip()}
    unknown = sorted(checks - set(ALL_CHECKS))
    if unknown:
        return None, (
            f"crh_analyzer: unknown check(s): {', '.join(unknown)}; "
            f"valid checks: {', '.join(sorted(ALL_CHECKS))}")
    return checks, None


def check_budget_file(path: str, timings: dict[str, float]) -> list[str]:
    """Compares per-check wall times against the committed budget (ms).
    A check with no budget entry, or one exceeding its budget by >50%,
    is a failure message."""
    try:
        budgets = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"crh_analyzer: unreadable budget file {path}: {exc}"]
    problems: list[str] = []
    for name in sorted(timings):
        ms = timings[name] * 1000.0
        budget = budgets.get(name)
        if not isinstance(budget, (int, float)):
            problems.append(
                f"crh_analyzer: check '{name}' has no committed wall-time "
                f"budget in {path}; add one so CI tracks its cost")
        elif ms > budget * 1.5:
            problems.append(
                f"crh_analyzer: check '{name}' took {ms:.0f}ms, more than "
                f"1.5x its {budget:.0f}ms budget in {path}; speed the check "
                "up or commit a justified new budget")
    return problems


def run_self_test(build_model, checks=None) -> list[str]:
    import tempfile

    failures: list[str] = []
    # --check argument parsing is part of the gated surface: a typo must
    # fail fast with the full valid-check list, and a valid list must
    # survive whitespace.
    ok_checks, err = parse_check_arg(" hot , arch ")
    if err is not None or ok_checks != {"hot", "arch"}:
        failures.append(f"parse_check_arg mangled a valid list: {err!r}")
    bad, err = parse_check_arg("definitely-not-a-check")
    if bad is not None or not err or "\n" in err \
            or "definitely-not-a-check" not in err \
            or any(name not in err for name in ALL_CHECKS):
        failures.append(
            "parse_check_arg must reject an unknown check with a one-line "
            f"error naming every valid check, got: {err!r}")
    with tempfile.TemporaryDirectory(prefix="crh_analyzer_selftest_") as tmp:
        tmpdir = pathlib.Path(tmp)
        files = []
        for rel, code in SELF_TEST_FILES.items():
            path = tmpdir / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(code)
            files.append(path)
        try:
            model = build_model(sorted(files))
            # The corpus lives outside the repo root; rewrite rels so the
            # src/stream scoping applies.
            for fn in model.functions:
                fn.rel = str(pathlib.Path(fn.rel).resolve()
                             .relative_to(tmpdir.resolve())) \
                    if pathlib.Path(fn.rel).is_absolute() else fn.rel
            for table in (model.includes, model.global_decls):
                for key in list(table):
                    p = pathlib.Path(key)
                    if p.is_absolute():
                        try:
                            table[str(p.resolve().relative_to(
                                tmpdir.resolve()))] = table.pop(key)
                        except ValueError:
                            pass
            findings = run_checks(model, checks)
        except Exception as exc:  # noqa: broad — any crash fails the gate
            return [f"backend raised {exc!r}"]
        by_file: dict[str, set[str]] = {}
        for f in findings:
            by_file.setdefault(f.path, set()).add(f.rule)
        for rule, pos, neg in SELF_TEST_EXPECTATIONS:
            if checks is not None and rule not in checks:
                continue
            if rule not in by_file.get(pos, set()):
                failures.append(
                    f"{rule}: expected a finding in {pos}, got "
                    f"{sorted(by_file.get(pos, set())) or 'nothing'}")
            if rule in by_file.get(neg, set()):
                failures.append(
                    f"{rule}: unexpected finding in negative case {neg}: "
                    f"{[f.render() for f in findings if f.path == neg]}")
    return failures


def fix_selftest_rels(model: ProgramModel, tmpdir: pathlib.Path) -> None:
    for fn in model.functions:
        p = pathlib.Path(fn.rel)
        if p.is_absolute() and p.is_relative_to(tmpdir):
            fn.rel = str(p.relative_to(tmpdir))


# ---------------------------------------------------------------------------


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--backend", choices=["auto", "libclang", "token"],
                        default="auto")
    parser.add_argument("--compile-commands", default=None,
                        help="path to compile_commands.json (default: "
                             "build*/compile_commands.json)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded multi-TU corpus and exit")
    parser.add_argument("--check", default=None, metavar="LIST",
                        help="comma-separated subset of checks to run "
                             f"(default all: {','.join(ALL_CHECKS)})")
    parser.add_argument("--graph", action="store_true",
                        help="print the observed module dependency graph "
                             "as Graphviz dot and exit")
    parser.add_argument("--graph-svg", default=None, metavar="OUT",
                        help="write the layer diagram as a deterministic "
                             "SVG (docs/architecture.svg) and exit")
    parser.add_argument("--sarif", default=None, metavar="OUT",
                        help="also write findings as SARIF 2.1.0")
    parser.add_argument("--stats", action="store_true",
                        help="print model size and wall time (for the CI "
                             "job summary)")
    parser.add_argument("--budget", default=None, metavar="JSON",
                        help="per-check wall-time budget file "
                             "(scripts/analyzer_budget.json); a check "
                             "exceeding its budget by >50%% fails the run")
    parser.add_argument("--no-baseline", action="store_true")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline to the current finding "
                             "set (entries get TODO justifications)")
    parser.add_argument("paths", nargs="*")
    opts = parser.parse_args(argv)

    checks = None
    if opts.check:
        checks, err = parse_check_arg(opts.check)
        if err is not None:
            print(err, file=sys.stderr)
            return 2

    if opts.graph or opts.graph_svg:
        cc = discover_compile_commands(opts.compile_commands)
        files = iter_sources(opts.paths, cc)
        try:
            edges = collect_module_edges(files)
        except (OSError, json.JSONDecodeError, KeyError, TypeError) as exc:
            print(f"crh_analyzer: cannot load {ARCH_MANIFEST}: {exc}",
                  file=sys.stderr)
            return 2
        if opts.graph:
            sys.stdout.write(render_module_dot(edges))
        if opts.graph_svg:
            pathlib.Path(opts.graph_svg).write_text(render_module_svg(edges))
            print(f"crh_analyzer: wrote {opts.graph_svg}", file=sys.stderr)
        return 0

    t0 = time.monotonic()
    build_model = None
    backend_name = opts.backend
    if opts.backend in ("auto", "libclang"):
        try:
            from clang import cindex  # noqa: F401
            build_model = build_model_libclang
            backend_name = "libclang"
        except Exception as exc:
            if opts.backend == "libclang":
                print(f"crh_analyzer: libclang backend unavailable: {exc}",
                      file=sys.stderr)
                return 2
            build_model = build_model_token
            backend_name = "token"
    else:
        build_model = build_model_token
        backend_name = "token"

    failures = run_self_test(build_model, checks)
    if failures and backend_name == "libclang" and opts.backend == "auto":
        print("crh_analyzer: libclang backend failed self-test, falling "
              "back to the tokenizer frontend:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        build_model = build_model_token
        backend_name = "token"
        failures = run_self_test(build_model, checks)
    if failures:
        print(f"crh_analyzer: {backend_name} backend failed self-test:",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 2
    if opts.self_test:
        n_expect = len([e for e in SELF_TEST_EXPECTATIONS
                        if checks is None or e[0] in checks])
        print(f"crh_analyzer: self-test OK ({backend_name} backend, "
              f"{n_expect} expectations over "
              f"{len(SELF_TEST_FILES)} files)")
        return 0

    cc = discover_compile_commands(opts.compile_commands)
    if opts.compile_commands and cc is None:
        print(f"crh_analyzer: {opts.compile_commands} not found",
              file=sys.stderr)
        return 2
    files = iter_sources(opts.paths, cc)
    if not files:
        print("crh_analyzer: no sources to analyze", file=sys.stderr)
        return 2
    model = build_model(files)
    timings: dict[str, float] = {}
    findings = run_checks(model, checks, timings)
    elapsed = time.monotonic() - t0

    if opts.sarif:
        sarif_util.write_sarif(
            opts.sarif, "crh_analyzer",
            "https://github.com/crh/crh/blob/main/docs/TOOLING.md",
            findings, RULE_DOCS)

    if opts.update_baseline:
        write_baseline(findings)
        print(f"crh_analyzer: baseline rewritten with "
              f"{len({f.key() for f in findings})} entr(y/ies); fill in the "
              f"justifications in {BASELINE.name}")
        return 0

    baseline = set() if opts.no_baseline else load_baseline()
    new = [f for f in findings if f.key() not in baseline]
    stale = baseline - {f.key() for f in findings}
    if checks is not None:
        # A subset run cannot see findings of the unselected checks, so it
        # must not judge their baseline entries stale.
        stale = {e for e in stale if any(f"[{c}]" in e for c in checks)}

    for f in new:
        print(f.render())
    if opts.stats:
        print(f"crh_analyzer: {backend_name} backend, {len(files)} files, "
              f"{len(model.functions)} functions, "
              f"{sum(len(fn.calls) for fn in model.functions)} call edges, "
              f"{elapsed:.2f}s"
              + (f", compile_commands={rel_str(cc)}" if cc else
                 ", no compile_commands (tree scan)"))
        if timings:
            per_check = ", ".join(f"{name} {timings[name] * 1000:.0f}ms"
                                  for name in timings)
            print(f"crh_analyzer: check wall-times: {per_check}")
    budget_problems = check_budget_file(opts.budget, timings) \
        if opts.budget else []
    for msg in budget_problems:
        print(msg, file=sys.stderr)
    if new:
        print(f"\ncrh_analyzer ({backend_name}): {len(new)} finding(s) not "
              f"in {BASELINE.name}.", file=sys.stderr)
        return 1
    if stale and not opts.paths:
        # Full-tree runs keep the baseline honest; path-scoped runs cannot
        # see every finding, so only tree runs judge staleness.
        for entry in sorted(stale):
            print(f"crh_analyzer: baselined finding no longer present: "
                  f"{entry}", file=sys.stderr)
        print(f"crh_analyzer: delete fixed entries from {BASELINE.name} or "
              "run --update-baseline.", file=sys.stderr)
        return 1
    if budget_problems:
        return 1
    print(f"crh_analyzer ({backend_name}): clean ({len(files)} files, "
          f"{len(model.functions)} functions).")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
