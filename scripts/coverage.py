#!/usr/bin/env python3
"""Line-coverage measurement with a ratcheted baseline.

Runs gcov over a ``--coverage``-instrumented build tree (the ``coverage``
CMake preset), aggregates line coverage for everything under ``src/``, and
compares the total against ``scripts/coverage_baseline.txt``:

  * coverage below the baseline (beyond a small tolerance) fails — a change
    must not silently reduce how much of the solver the tests exercise;
  * coverage above the baseline prints a reminder (or rewrites the baseline
    with ``--update-baseline``), so the floor only ever moves up.

Usage:
  cmake --preset coverage
  cmake --build --preset coverage -j"$(nproc)"
  ctest --preset coverage -j"$(nproc)"
  python3 scripts/coverage.py [--build-dir build-coverage] [--update-baseline]

Only the line metric is ratcheted: it is the one gcov reports identically
across GCC versions. Per-file output is informational.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Coverage may not drop more than this many percentage points below the
# baseline. Nonzero because gcov attributes a handful of lines differently
# across minor toolchain versions.
TOLERANCE = 0.25


def find_gcda_files(build_dir: str) -> list[str]:
    found = []
    for dirpath, _dirnames, filenames in os.walk(build_dir):
        for name in filenames:
            if name.endswith(".gcda"):
                found.append(os.path.join(dirpath, name))
    return sorted(found)


def gcov_json(gcda: str) -> dict:
    """Runs gcov in JSON mode on one .gcda and returns the parsed report."""
    result = subprocess.run(
        ["gcov", "--json-format", "--stdout", gcda],
        capture_output=True,
        text=True,
        check=False,
        cwd=os.path.dirname(gcda),
    )
    if result.returncode != 0:
        raise RuntimeError(f"gcov failed on {gcda}: {result.stderr.strip()}")
    return json.loads(result.stdout)


def collect_line_coverage(build_dir: str) -> dict[str, dict[int, bool]]:
    """Maps repo-relative src/ file -> {line -> covered}, merged over TUs.

    A line is covered if any translation unit executed it; headers compiled
    into many TUs are deduplicated this way, matching how a human reads an
    annotated listing.
    """
    gcda_files = find_gcda_files(build_dir)
    if not gcda_files:
        raise RuntimeError(
            f"no .gcda files under {build_dir}; build with the 'coverage' "
            "preset and run ctest first"
        )
    lines: dict[str, dict[int, bool]] = {}
    for gcda in gcda_files:
        report = gcov_json(gcda)
        for file_report in report.get("files", []):
            path = os.path.normpath(
                os.path.join(os.path.dirname(gcda), file_report["file"])
            )
            rel = os.path.relpath(path, REPO_ROOT)
            if not rel.startswith("src" + os.sep):
                continue
            per_file = lines.setdefault(rel, {})
            for line in file_report.get("lines", []):
                number = line["line_number"]
                per_file[number] = per_file.get(number, False) or line["count"] > 0
    return lines


def read_baseline(path: str) -> float | None:
    try:
        with open(path, encoding="utf-8") as handle:
            for raw in handle:
                text = raw.split("#", 1)[0].strip()
                if text:
                    return float(text)
    except FileNotFoundError:
        return None
    return None


def write_baseline(path: str, percent: float) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            "# Minimum src/ line coverage (percent) enforced by "
            "scripts/coverage.py.\n"
            "# Only raise this number; the CI coverage job fails below it.\n"
            f"{percent:.2f}\n"
        )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default=os.path.join(REPO_ROOT, "build-coverage"))
    parser.add_argument(
        "--baseline", default=os.path.join(REPO_ROOT, "scripts", "coverage_baseline.txt")
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to the measured coverage if it improved",
    )
    args = parser.parse_args()

    lines = collect_line_coverage(args.build_dir)
    total_lines = sum(len(per_file) for per_file in lines.values())
    covered_lines = sum(sum(per_file.values()) for per_file in lines.values())
    if total_lines == 0:
        print("coverage: no executable lines found under src/", file=sys.stderr)
        return 1
    percent = 100.0 * covered_lines / total_lines

    for rel in sorted(lines):
        per_file = lines[rel]
        if not per_file:  # e.g. a header whose every line was optimized out
            continue
        file_percent = 100.0 * sum(per_file.values()) / len(per_file)
        print(f"{file_percent:6.1f}%  {rel}")
    print(f"\ntotal src/ line coverage: {percent:.2f}% "
          f"({covered_lines}/{total_lines} lines)")

    baseline = read_baseline(args.baseline)
    if baseline is None:
        print(f"no baseline at {args.baseline}; writing {percent:.2f}")
        write_baseline(args.baseline, percent)
        return 0
    if percent < baseline - TOLERANCE:
        print(
            f"FAIL: coverage {percent:.2f}% fell below the baseline "
            f"{baseline:.2f}% (tolerance {TOLERANCE})",
            file=sys.stderr,
        )
        return 1
    if percent > baseline + TOLERANCE:
        if args.update_baseline:
            write_baseline(args.baseline, percent)
            print(f"baseline raised: {baseline:.2f} -> {percent:.2f}")
        else:
            print(
                f"coverage improved past the baseline ({baseline:.2f} -> "
                f"{percent:.2f}); re-run with --update-baseline to ratchet"
            )
    else:
        print(f"OK: coverage holds the {baseline:.2f}% baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
