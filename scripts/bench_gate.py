#!/usr/bin/env python3
"""Schema validator and regression gate for BENCH_crh_throughput.json.

Usage:
    bench_gate.py CANDIDATE.json [--baseline BENCH_crh_throughput.json]
                  [--tolerance 0.10] [--schema-only]

Two jobs:

 1. Schema validation: the candidate must be a well-formed report from
    bench/bench_throughput.cc — workload dimensions, calibration constant,
    one result object per mode (off/full/delta) with throughput and
    latency-percentile fields, and a verify block with ok == true (the
    untimed stream whose every chunk was bit-compared against the full
    re-solve).

 2. Regression gate: the candidate's per-claim-iteration cost may not
    regress more than --tolerance (default 10%) against the committed
    baseline, per mode. Raw ns/claim is meaningless across machines, so
    both sides are first divided by their own calibration_ns_per_op — the
    ns/op of a fixed scalar loop the benchmark times on the same machine
    in the same run. A slower CI runner inflates numerator and denominator
    alike; only a code regression moves the ratio.

Exit status: 0 = pass, 1 = schema violation or regression, 2 = usage.
"""

from __future__ import annotations

import argparse
import json
import sys

TIMED_MODES = ("off", "full", "delta")

MODE_FIELDS = {
    "mode": str,
    "streams": int,
    "chunks": int,
    "claims": int,
    "elapsed_seconds": (int, float),
    "claims_per_sec": (int, float),
    "ns_per_claim": (int, float),
    "latency_ms": dict,
    "entries_resolved": int,
    "entries_full": int,
    "full_fallbacks": int,
}

LATENCY_FIELDS = ("p50", "p90", "p99", "max")

WORKLOAD_FIELDS = {
    "objects": int,
    "properties": int,
    "sources": int,
    "chunks": int,
    "claims_per_stream": int,
    "density": (int, float),
    "skew": (int, float),
    "scale": (int, float),
    "seed": int,
    "threads": int,
    "weight_scheme": str,
}


def fail(message: str) -> None:
    print(f"bench_gate: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def check_fields(obj: dict, fields: dict, where: str) -> None:
    for name, types in fields.items():
        if name not in obj:
            fail(f"{where}: missing field '{name}'")
        if not isinstance(obj[name], types):
            fail(f"{where}: field '{name}' has type {type(obj[name]).__name__}, "
                 f"expected {types}")


def validate(report: dict, path: str) -> dict:
    """Validates the report and returns {mode: result object}."""
    if not isinstance(report, dict):
        fail(f"{path}: top level is not an object")
    if report.get("schema_version") != 1:
        fail(f"{path}: schema_version is {report.get('schema_version')!r}, expected 1")
    check_fields(report, {"workload": dict, "calibration_ns_per_op": (int, float),
                          "target_seconds_per_mode": (int, float), "simd": bool,
                          "modes": list, "verify": dict}, path)
    check_fields(report["workload"], WORKLOAD_FIELDS, f"{path}: workload")
    if report["calibration_ns_per_op"] <= 0:
        fail(f"{path}: calibration_ns_per_op must be positive")

    by_mode = {}
    for entry in report["modes"]:
        if not isinstance(entry, dict):
            fail(f"{path}: modes[] entry is not an object")
        check_fields(entry, MODE_FIELDS, f"{path}: mode entry")
        for field in LATENCY_FIELDS:
            if not isinstance(entry["latency_ms"].get(field), (int, float)):
                fail(f"{path}: mode '{entry['mode']}' latency_ms missing '{field}'")
        if entry["claims"] <= 0 or entry["elapsed_seconds"] <= 0:
            fail(f"{path}: mode '{entry['mode']}' has no timed work")
        if entry["ns_per_claim"] <= 0:
            fail(f"{path}: mode '{entry['mode']}' ns_per_claim must be positive")
        by_mode[entry["mode"]] = entry
    for mode in TIMED_MODES:
        if mode not in by_mode:
            fail(f"{path}: missing timed mode '{mode}'")

    verify = report["verify"]
    check_fields(verify, {"chunks": int, "entries_resolved": int,
                          "entries_full": int, "ok": bool}, f"{path}: verify")
    if not verify["ok"]:
        fail(f"{path}: verify.ok is false")
    if verify["chunks"] < 1:
        fail(f"{path}: verify ran no chunks")

    # Delta may not do more entry-update work than a full re-solve would.
    delta = by_mode["delta"]
    if delta["entries_resolved"] > delta["entries_full"]:
        fail(f"{path}: delta resolved more entries ({delta['entries_resolved']}) "
             f"than full re-solving would ({delta['entries_full']})")
    return by_mode


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("candidate", help="freshly produced BENCH_crh_throughput.json")
    parser.add_argument("--baseline", default=None,
                        help="committed baseline to gate against (skipped if omitted)")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="max allowed relative regression on the calibrated "
                             "per-claim metric (default 0.10 = 10%%)")
    parser.add_argument("--schema-only", action="store_true",
                        help="validate the candidate schema and stop")
    args = parser.parse_args()

    with open(args.candidate, encoding="utf-8") as f:
        candidate = json.load(f)
    cand_modes = validate(candidate, args.candidate)
    print(f"bench_gate: {args.candidate}: schema OK "
          f"(calibration {candidate['calibration_ns_per_op']:.3f} ns/op)")
    if args.schema_only or args.baseline is None:
        return 0

    with open(args.baseline, encoding="utf-8") as f:
        baseline = json.load(f)
    base_modes = validate(baseline, args.baseline)

    ok = True
    for mode in TIMED_MODES:
        cand_ratio = (cand_modes[mode]["ns_per_claim"]
                      / candidate["calibration_ns_per_op"])
        base_ratio = (base_modes[mode]["ns_per_claim"]
                      / baseline["calibration_ns_per_op"])
        regression = cand_ratio / base_ratio - 1.0
        status = "OK" if regression <= args.tolerance else "REGRESSION"
        print(f"bench_gate: mode {mode:<6} calibrated ns/claim "
              f"{cand_ratio:8.2f} vs baseline {base_ratio:8.2f}  "
              f"({regression:+.1%})  {status}")
        if regression > args.tolerance:
            ok = False
    if not ok:
        fail(f"per-claim metric regressed more than {args.tolerance:.0%} "
             f"vs {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
