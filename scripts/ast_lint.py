#!/usr/bin/env python3
"""AST-grounded repo analyzer for CRH's determinism and locking contracts.

Four repo-specific rules that generic tools do not know to check. Where
libclang is available the rules run on the real Clang AST (exact types,
exact class membership); otherwise a built-in C++ tokenizer frontend runs
the same rule catalog on a lexical model of each file, so the gate holds on
machines without a clang toolchain. Both backends must agree on the
embedded self-test corpus before a run counts (--self-test runs it alone;
a tree run re-validates the chosen backend first and falls back from
libclang to the tokenizer, loudly, if the bindings misbehave).

Rules (suppress one line with a trailing `// ast:allow(<rule>)`):

  mutex-no-guard        A class (file, under the tokenizer frontend)
                        declares a crh::Mutex / std::mutex member but no
                        member is CRH_GUARDED_BY / CRH_REQUIRES /
                        CRH_EXCLUDES / CRH_ACQUIRE / CRH_RELEASE on it: the
                        lock protects nothing the compiler can check, which
                        usually means the annotations were skipped.
  unordered-iteration   Range-for over a std::unordered_map /
                        std::unordered_set in src/: hash-bucket iteration
                        order is implementation-defined, and the paper's
                        evaluation (and our bit-identity guarantees) treat
                        update order as part of the semantics. Probe the
                        container in a deterministic order, or copy to a
                        sorted sequence, or justify with ast:allow.
  void-cast-result      `(void)` cast of a call returning crh::Result<T>:
                        voiding a Result discards a value *and* an error.
                        Unlike Status (where a justified `(void)` +
                        lint:allow is accepted), there is no good reason to
                        compute a Result and throw it away.
  lock-across-callback  A call to a fail point (CRH_FAIL_POINT /
                        FailPoints::...Hit) or to a std::function value
                        while a Mutex/MutexLock/lock_guard/unique_lock is
                        held: user code and fault injection must never run
                        under a library lock (deadlock and lock-ordering
                        hazard; see CheckpointManager::Save for the
                        reserve-then-write pattern that avoids it).

Zero findings are enforced against scripts/ast_lint_baseline.txt (committed
empty): new findings fail the run; stale baseline entries also fail
full-tree runs (delete them, or run --update-baseline). Exit 0 clean, 1
findings, 2 tooling error.

Usage: scripts/ast_lint.py [--backend=auto|libclang|token] [--self-test]
                           [--sarif OUT] [--update-baseline]
                           [paths...]          (defaults to src/)
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "scripts" / "ast_lint_baseline.txt"
DEFAULT_DIRS = ["src"]
CXX_SUFFIXES = {".h", ".cc", ".cpp", ".hpp"}

ALLOW_RE = re.compile(r"//\s*ast:allow\(([\w-]+)\)")

# Files that *implement* the locking primitives; the mutex-no-guard rule
# does not apply to the wrapper that owns the raw std::mutex.
MUTEX_WRAPPER_FILES = {"src/common/mutex.h"}

ANNOTATION_USE_RE = re.compile(
    r"CRH_(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES|EXCLUDES|ACQUIRE|RELEASE|"
    r"RETURN_CAPABILITY|ASSERT_CAPABILITY)\s*\(\s*(?:this\s*->\s*)?[&*]?(\w+)"
)


class Finding:
    def __init__(self, path: pathlib.Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def key(self) -> str:
        rel = (self.path.relative_to(REPO_ROOT)
               if self.path.is_absolute() and self.path.is_relative_to(REPO_ROOT)
               else self.path)
        return f"{rel}: [{self.rule}]"

    def render(self) -> str:
        rel = (self.path.relative_to(REPO_ROOT)
               if self.path.is_absolute() and self.path.is_relative_to(REPO_ROOT)
               else self.path)
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------------------
# Shared lexical helpers (used by the tokenizer frontend and for allow
# comments / Result-function collection in both backends).


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literal *contents*, preserving every
    newline so line numbers survive."""
    out: list[str] = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_delim = ""
    quote = ""
    while i < n:
        c = text[i]
        if state == "code":
            if c == "/" and i + 1 < n and text[i + 1] == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and i + 1 < n and text[i + 1] == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == 'R' and text[i:i + 2] == 'R"':
                m = re.match(r'R"([^()\\ ]{0,16})\(', text[i:])
                if m:
                    raw_delim = ")" + m.group(1) + '"'
                    state = "raw"
                    out.append(" " * len(m.group(0)))
                    i += len(m.group(0))
                    continue
            if c in "\"'":
                quote = c
                state = "string" if c == '"' else "char"
                out.append(c)
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and i + 1 < n and text[i + 1] == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif state in ("string", "char"):
            if c == "\\" and i + 1 < n:
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            else:
                out.append(c if c == "\n" else " ")
            i += 1
        else:  # raw string
            if text.startswith(raw_delim, i):
                state = "code"
                out.append(" " * len(raw_delim))
                i += len(raw_delim)
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def allowed_rules(raw_line: str) -> set[str]:
    return set(ALLOW_RE.findall(raw_line))


RESULT_DECL_RE = re.compile(
    r"(?:^|[;{}]|\n)\s*(?:\[\[nodiscard\]\]\s*)?(?:static\s+|virtual\s+)?"
    r"(?:crh::)?Result<[^;{}=]{1,120}?>\s+(\w+)\s*\(")


def collect_result_functions(files: list[pathlib.Path]) -> set[str]:
    """Names of functions declared to return Result<T> anywhere in scope."""
    names: set[str] = set()
    for path in files:
        clean = strip_comments_and_strings(read_text(path))
        for m in RESULT_DECL_RE.finditer(clean):
            names.add(m.group(1))
    return names


def read_text(path: pathlib.Path) -> str:
    return path.read_text(encoding="utf-8", errors="replace")


def rel_str(path: pathlib.Path) -> str:
    p = path.resolve()
    return str(p.relative_to(REPO_ROOT)) if p.is_relative_to(REPO_ROOT) else str(path)


# ---------------------------------------------------------------------------
# Tokenizer frontend.

MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:crh::)?(?:Mutex|std::mutex)\s+(\w+)\s*;")
UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s*[*&]{0,2}\s*"
    r"(\w+)\s*[;{=(,)]")
UNORDERED_ALIAS_RE = re.compile(
    r"using\s+(\w+)\s*=\s*std::unordered_(?:map|set|multimap|multiset)\b")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;]*?):([^;)]*)\)")
VOID_CAST_RE = re.compile(r"\(\s*void\s*\)\s*((?:[\w:]+(?:\.|->|::))*)(\w+)\s*\(")
LOCK_DECL_RE = re.compile(
    r"(?:crh::)?MutexLock\s+\w+\s*[({]\s*&?(\w+)"
    r"|std::(?:lock_guard|unique_lock|scoped_lock)\s*<[^>]*>\s+\w+\s*[({]\s*(\w+)")
MANUAL_LOCK_RE = re.compile(r"\b(\w+)\s*\.\s*Lock\s*\(\s*\)")
MANUAL_UNLOCK_RE = re.compile(r"\b(\w+)\s*\.\s*Unlock\s*\(\s*\)")
FUNCTION_OBJ_RE = re.compile(r"std::function\s*<[^;]*?>\s*[*&]?\s*[*&]?(\w+)\s*[;,)=]")
FAIL_POINT_CALL_RE = re.compile(r"\bCRH_FAIL_POINT\s*\(|\bFailPoints\b[^;\n]*\.\s*Hit\s*\(")


def unordered_range_expr(expr: str, unordered_names: set[str]) -> bool:
    """True when the range expression of a range-for names (or derefs to) a
    variable/member known to have an unordered container type."""
    expr = expr.strip()
    # Trailing call parens (e.g. `obj.items()`) mean we cannot see the type
    # lexically; only bare names / member chains are classified.
    m = re.search(r"([A-Za-z_]\w*)\s*$", expr)
    return bool(m) and m.group(1) in unordered_names


def token_lint_file(path: pathlib.Path, result_functions: set[str],
                    findings: list[Finding]) -> None:
    raw = read_text(path)
    raw_lines = raw.splitlines()
    clean = strip_comments_and_strings(raw)
    clean_lines = clean.splitlines()
    rel = rel_str(path)
    in_src = rel.startswith("src/") or "/src/" in rel

    # --- File-level symbol tables.
    unordered_names: set[str] = set()
    unordered_aliases: set[str] = set()
    for line in clean_lines:
        for m in UNORDERED_DECL_RE.finditer(line):
            unordered_names.add(m.group(1))
        for m in UNORDERED_ALIAS_RE.finditer(line):
            unordered_aliases.add(m.group(1))
    if unordered_aliases:
        alias_decl = re.compile(
            r"\b(?:%s)\s*(?:<[^;]*?>)?\s+(\w+)\s*[;{=(]" % "|".join(
                sorted(unordered_aliases)))
        for line in clean_lines:
            for m in alias_decl.finditer(line):
                unordered_names.add(m.group(1))
    function_objs: set[str] = set()
    for line in clean_lines:
        for m in FUNCTION_OBJ_RE.finditer(line):
            function_objs.add(m.group(1))

    # --- mutex-no-guard (file granularity: one header = one component).
    if rel not in MUTEX_WRAPPER_FILES:
        guarded = {m.group(1) for m in ANNOTATION_USE_RE.finditer(clean)}
        for lineno, line in enumerate(clean_lines, 1):
            m = MUTEX_MEMBER_RE.match(line)
            if not m:
                continue
            if "mutex-no-guard" in allowed_rules(raw_lines[lineno - 1]):
                continue
            name = m.group(1)
            if name not in guarded:
                findings.append(Finding(
                    path, lineno, "mutex-no-guard",
                    f"mutex member '{name}' has no CRH_GUARDED_BY/CRH_REQUIRES "
                    "dependents in this file; annotate what it protects "
                    "(common/thread_annotations.h) or ast:allow with a reason"))

    # --- Statement-level rules with lock-scope tracking.
    depth = 0
    # Scoped locks: list of (acquired_depth, mutex_name). Manual locks: set.
    scoped_locks: list[tuple[int, str]] = []
    manual_locks: set[str] = set()
    for lineno, line in enumerate(clean_lines, 1):
        raw_line = raw_lines[lineno - 1] if lineno - 1 < len(raw_lines) else ""
        allow = allowed_rules(raw_line)

        # unordered-iteration (src/ only: the library's determinism contract).
        if in_src and "unordered-iteration" not in allow:
            for m in RANGE_FOR_RE.finditer(line):
                if unordered_range_expr(m.group(2), unordered_names):
                    findings.append(Finding(
                        path, lineno, "unordered-iteration",
                        "range-for over an unordered container: bucket order "
                        "is implementation-defined and leaks into anything "
                        "this loop computes; probe keys in a deterministic "
                        "order instead (see WeightedVote) or ast:allow with "
                        "a determinism argument"))

        # void-cast-result.
        if "void-cast-result" not in allow:
            for m in VOID_CAST_RE.finditer(line):
                if m.group(2) in result_functions:
                    findings.append(Finding(
                        path, lineno, "void-cast-result",
                        f"(void)-cast of Result-returning {m.group(2)}(): "
                        "a Result is a value or an error; handle it"))

        # Lock tracking; then lock-across-callback.
        held_before_line = bool(scoped_locks) or bool(manual_locks)
        lock_here = LOCK_DECL_RE.search(line)
        if held_before_line or lock_here or MANUAL_LOCK_RE.search(line):
            if "lock-across-callback" not in allow:
                hazard = None
                if FAIL_POINT_CALL_RE.search(line):
                    hazard = "a fail-point evaluation"
                else:
                    for fo in function_objs:
                        # Skip the line that *declares* the object; only
                        # invocations (`fo(...)` / `(*fo)(...)`) count.
                        if re.search(r"std::function\s*<[^;]*?>[^;]*\b%s\b" % fo,
                                     line):
                            continue
                        if re.search(r"(?:\(\s*\*\s*%s\s*\)|\b%s)\s*\(" % (fo, fo),
                                     line):
                            hazard = f"the std::function '{fo}'"
                            break
                # A hazard on the same line as the acquisition still counts
                # as held (the lock is live by the time the call runs).
                if hazard:
                    findings.append(Finding(
                        path, lineno, "lock-across-callback",
                        f"{hazard} runs while a lock is held; release the "
                        "lock first (reserve-then-write, see "
                        "CheckpointManager::Save) or ast:allow with a "
                        "deadlock argument"))

        # Update lock state *after* judging the line.
        if lock_here:
            name = lock_here.group(1) or lock_here.group(2) or "?"
            scoped_locks.append((depth, name))
        for m in MANUAL_LOCK_RE.finditer(line):
            manual_locks.add(m.group(1))
        for m in MANUAL_UNLOCK_RE.finditer(line):
            manual_locks.discard(m.group(1))

        for c in line:
            if c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                scoped_locks = [(d, n) for (d, n) in scoped_locks if d < depth]
                if depth <= 1:
                    manual_locks.clear()  # function ended (namespace level)
        if depth <= 0:
            manual_locks.clear()


def run_token_backend(files: list[pathlib.Path]) -> list[Finding]:
    result_functions = collect_result_functions(files)
    findings: list[Finding] = []
    for path in files:
        token_lint_file(path, result_functions, findings)
    return findings


# ---------------------------------------------------------------------------
# libclang frontend (exact AST). Optional: import failures are reported by
# the caller, which then falls back to the tokenizer frontend.


def run_libclang_backend(files: list[pathlib.Path]) -> list[Finding]:
    from clang import cindex  # noqa: deferred import, may be absent

    index = cindex.Index.create()
    args = ["-std=c++20", "-x", "c++", f"-I{REPO_ROOT / 'src'}",
            "-Wno-everything"]
    result_functions = collect_result_functions(files)
    findings: list[Finding] = []

    def line_allows(path: pathlib.Path, line: int, rule: str) -> bool:
        try:
            text = read_text(path).splitlines()[line - 1]
        except IndexError:
            return False
        return rule in allowed_rules(text)

    def type_is_unordered(t) -> bool:
        spelling = t.get_canonical().spelling
        return any(marker in spelling for marker in (
            "unordered_map<", "unordered_set<",
            "unordered_multimap<", "unordered_multiset<"))

    def type_is_mutex(t) -> bool:
        spelling = t.get_canonical().spelling
        return spelling.replace("class ", "").replace("struct ", "") in (
            "crh::Mutex", "std::mutex")

    def find_descendant_calls(cursor, kind):
        if cursor.kind == kind.CALL_EXPR:
            yield cursor
        for child in cursor.get_children():
            yield from find_descendant_calls(child, kind)

    def handle(cursor, path: pathlib.Path, rel: str, kind):
        # mutex-no-guard, per class: exact field types, annotations read
        # from the class's (pre-expansion) token stream so the CRH_ macro
        # names are visible even though the attributes expand away off the
        # analysis pass.
        if (cursor.kind in (kind.CLASS_DECL, kind.STRUCT_DECL)
                and cursor.is_definition() and rel not in MUTEX_WRAPPER_FILES):
            mutexes = [c for c in cursor.get_children()
                       if c.kind == kind.FIELD_DECL and type_is_mutex(c.type)]
            if mutexes:
                class_tokens = " ".join(
                    tok.spelling for tok in cursor.get_tokens())
                guarded = {m.group(1) for m in
                           ANNOTATION_USE_RE.finditer(class_tokens)}
                for field in mutexes:
                    if field.spelling in guarded or line_allows(
                            path, field.location.line, "mutex-no-guard"):
                        continue
                    findings.append(Finding(
                        path, field.location.line, "mutex-no-guard",
                        f"mutex member '{field.spelling}' of class "
                        f"'{cursor.spelling or '<anonymous>'}' has no "
                        "CRH_GUARDED_BY/CRH_REQUIRES dependents; annotate "
                        "what it protects or ast:allow with a reason"))

        # unordered-iteration: the range initializer of a range-for is a
        # non-compound expression child; its canonical type is exact.
        if cursor.kind == kind.CXX_FOR_RANGE_STMT and (
                rel.startswith("src/") or "/src/" in rel):
            for child in cursor.get_children():
                if child.kind == kind.COMPOUND_STMT or child.type is None:
                    continue
                if type_is_unordered(child.type):
                    if not line_allows(path, cursor.location.line,
                                       "unordered-iteration"):
                        findings.append(Finding(
                            path, cursor.location.line, "unordered-iteration",
                            "range-for over an unordered container: bucket "
                            "order is implementation-defined; probe keys in "
                            "a deterministic order instead (see WeightedVote) "
                            "or ast:allow with a determinism argument"))
                    break

        # void-cast-result: a C-style cast to void whose operand is (or
        # wraps) a call to a Result-returning function.
        if (cursor.kind == kind.CSTYLE_CAST_EXPR
                and cursor.type.get_canonical().spelling == "void"):
            for call in find_descendant_calls(cursor, kind):
                if call.spelling in result_functions:
                    if not line_allows(path, cursor.location.line,
                                       "void-cast-result"):
                        findings.append(Finding(
                            path, cursor.location.line, "void-cast-result",
                            f"(void)-cast of Result-returning "
                            f"{call.spelling}(): a Result is a value or an "
                            "error; handle it"))
                    break

        for child in cursor.get_children():
            loc = child.location
            if loc.file is not None and \
                    pathlib.Path(loc.file.name).resolve() == path:
                handle(child, path, rel, kind)

    for path in files:
        resolved = path.resolve()
        tu = index.parse(str(resolved), args=args)
        fatal = [d for d in tu.diagnostics if d.severity >= 4]
        if fatal:
            raise RuntimeError(
                f"libclang could not parse {path}: {fatal[0].spelling}")
        for child in tu.cursor.get_children():
            loc = child.location
            if loc.file is not None and \
                    pathlib.Path(loc.file.name).resolve() == resolved:
                handle(child, resolved, rel_str(path), cindex.CursorKind)

    # lock-across-callback needs flow-sensitive lock scopes that libclang's
    # plain visitation does not model; the tokenizer frontend's scope
    # tracker is the canonical implementation of that rule on both backends.
    findings.extend(f for f in run_token_backend(files)
                    if f.rule == "lock-across-callback")
    return findings


# ---------------------------------------------------------------------------
# Self-test corpus: every rule must fire on its positive snippet and stay
# quiet on its negative twin, for whichever backend is active.

SELF_TEST_CASES = [
    ("mutex-no-guard", True, """
#include "common/mutex.h"
namespace crh {
class Bad {
 private:
  Mutex mu_;
  int counter_ = 0;
};
}
"""),
    ("mutex-no-guard", False, """
#include "common/mutex.h"
#include "common/thread_annotations.h"
namespace crh {
class Good {
 private:
  Mutex mu_;
  int counter_ CRH_GUARDED_BY(mu_) = 0;
};
}
"""),
    ("unordered-iteration", True, """
#include <unordered_map>
namespace crh {
inline int Sum(const std::unordered_map<int, int>& histogram) {
  int total = 0;
  for (const auto& [key, count] : histogram) total += key * count;
  return total;
}
}
"""),
    ("unordered-iteration", False, """
#include <unordered_map>
#include <vector>
namespace crh {
inline int Sum(const std::vector<int>& keys,
               const std::unordered_map<int, int>& histogram) {
  int total = 0;
  for (int key : keys) total += histogram.count(key);
  return total;
}
}
"""),
    ("void-cast-result", True, """
#include "common/status.h"
namespace crh {
Result<int> ParseCount(int raw);
inline void Oops(int raw) {
  (void)ParseCount(raw);
}
}
"""),
    ("void-cast-result", False, """
#include "common/status.h"
namespace crh {
Result<int> ParseCount(int raw);
inline int Fine(int raw) {
  auto result = ParseCount(raw);
  return result.ok() ? *result : 0;
}
}
"""),
    ("lock-across-callback", True, """
#include <functional>
#include "common/mutex.h"
#include "common/thread_annotations.h"
namespace crh {
class Bad {
 public:
  void Run(const std::function<void()>& callback) {
    MutexLock lock(&mu_);
    ++generation_;
    callback();
  }
 private:
  Mutex mu_;
  int generation_ CRH_GUARDED_BY(mu_) = 0;
};
}
"""),
    ("lock-across-callback", False, """
#include <functional>
#include "common/mutex.h"
#include "common/thread_annotations.h"
namespace crh {
class Good {
 public:
  void Run(const std::function<void()>& callback) {
    {
      MutexLock lock(&mu_);
      ++generation_;
    }
    callback();
  }
 private:
  Mutex mu_;
  int generation_ CRH_GUARDED_BY(mu_) = 0;
};
}
"""),
]


def run_self_test(backend) -> list[str]:
    """Returns a list of failure descriptions (empty = backend is sane)."""
    import tempfile

    failures = []
    with tempfile.TemporaryDirectory(prefix="ast_lint_selftest_") as tmp:
        tmpdir = pathlib.Path(tmp)
        for i, (rule, expect_fire, code) in enumerate(SELF_TEST_CASES):
            # Self-test snippets live under a src/-shaped path so src-scoped
            # rules apply to them.
            case = tmpdir / "src" / f"case_{i}_{rule}.h"
            case.parent.mkdir(parents=True, exist_ok=True)
            case.write_text(code)
            try:
                found = backend([case])
            except Exception as exc:  # noqa: broad — any backend crash is a fail
                failures.append(f"{rule} snippet {i}: backend raised {exc!r}")
                continue
            fired = any(f.rule == rule for f in found)
            if fired != expect_fire:
                failures.append(
                    f"{rule} snippet {i}: expected "
                    f"{'a finding' if expect_fire else 'no finding'}, got "
                    f"{[f.render() for f in found]}")
    return failures


# ---------------------------------------------------------------------------


def iter_sources(paths: list[str]) -> list[pathlib.Path]:
    roots = ([pathlib.Path(p) for p in paths] if paths
             else [REPO_ROOT / d for d in DEFAULT_DIRS])
    files: list[pathlib.Path] = []
    for root in roots:
        if root.is_file():
            if root.suffix in CXX_SUFFIXES:
                files.append(root)
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix in CXX_SUFFIXES and "build" not in path.parts:
                files.append(path)
    return files


def load_baseline() -> set[str]:
    if not BASELINE.exists():
        return set()
    entries = set()
    for line in BASELINE.read_text().splitlines():
        line = line.split(" #", 1)[0].strip()
        if line and not line.startswith("#"):
            entries.add(line)
    return entries


def write_baseline(findings: list[Finding]) -> None:
    lines = [
        "# ast_lint baseline: accepted findings, one `path: [rule]` per",
        "# line, each with a trailing `# <justification>` (docs/TOOLING.md).",
        "# Stale entries fail full-tree runs: delete them when fixed, or",
        "# regenerate with --update-baseline.",
    ]
    for key in sorted({f.key() for f in findings}):
        lines.append(f"{key}  # TODO: justify or fix")
    BASELINE.write_text("\n".join(lines) + "\n")


RULE_DOCS = {
    "mutex-no-guard": "mutex member protects nothing the compiler checks",
    "unordered-iteration": "iteration order of an unordered container "
                           "leaks into computed state",
    "void-cast-result": "(void)-cast discards a Result's value and error",
    "lock-across-callback": "fail point or callback runs under a lock",
}


class _SarifFinding:
    """Adapter: sarif_util wants repo-relative .path strings."""

    def __init__(self, f: Finding):
        p = f.path
        if p.is_absolute() and p.is_relative_to(REPO_ROOT):
            p = p.relative_to(REPO_ROOT)
        self.path = p.as_posix()
        self.line = f.line
        self.rule = f.rule
        self.message = f.message


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--backend", choices=["auto", "libclang", "token"],
                        default="auto")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded rule corpus and exit")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report every finding, ignoring the baseline")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline to the current finding "
                             "set (entries get TODO justifications)")
    parser.add_argument("--sarif", default=None, metavar="OUT",
                        help="also write findings as SARIF 2.1.0")
    parser.add_argument("paths", nargs="*")
    opts = parser.parse_args(argv)

    backend = None
    backend_name = opts.backend
    if opts.backend in ("auto", "libclang"):
        try:
            from clang import cindex  # noqa: F401
            backend = run_libclang_backend
            backend_name = "libclang"
        except Exception as exc:
            if opts.backend == "libclang":
                print(f"ast_lint: libclang backend unavailable: {exc}",
                      file=sys.stderr)
                return 2
            backend = run_token_backend
            backend_name = "token"
    else:
        backend = run_token_backend
        backend_name = "token"

    # Validate the chosen backend against the corpus before trusting it on
    # the tree; a misbehaving libclang install degrades to the tokenizer
    # instead of failing the build on a tooling bug.
    failures = run_self_test(backend)
    if failures and backend_name == "libclang" and opts.backend == "auto":
        print("ast_lint: libclang backend failed self-test, falling back to "
              "the tokenizer frontend:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        backend = run_token_backend
        backend_name = "token"
        failures = run_self_test(backend)
    if failures:
        print(f"ast_lint: {backend_name} backend failed self-test:",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 2
    if opts.self_test:
        print(f"ast_lint: self-test OK ({backend_name} backend, "
              f"{len(SELF_TEST_CASES)} cases)")
        return 0

    files = iter_sources(opts.paths)
    findings = backend(files)

    if opts.sarif:
        import sarif_util
        sarif_util.write_sarif(
            opts.sarif, "crh_ast_lint",
            "https://github.com/crh/crh/blob/main/docs/TOOLING.md",
            [_SarifFinding(f) for f in findings], RULE_DOCS)

    if opts.update_baseline:
        write_baseline(findings)
        print(f"ast_lint: baseline rewritten with "
              f"{len({f.key() for f in findings})} entr(y/ies); fill in the "
              f"justifications in {BASELINE.name}")
        return 0

    baseline = set() if opts.no_baseline else load_baseline()
    new = [f for f in findings if f.key() not in baseline]
    stale = baseline - {f.key() for f in findings}

    for f in new:
        print(f.render())
    if new:
        print(f"\nast_lint ({backend_name}): {len(new)} finding(s) not in "
              f"{BASELINE.name}.", file=sys.stderr)
        return 1
    if stale and not opts.paths:
        # Full-tree runs keep the baseline honest; path-scoped runs (CI
        # changed-files mode) cannot see the whole tree.
        for entry in sorted(stale):
            print(f"ast_lint: baselined finding no longer present: {entry}",
                  file=sys.stderr)
        print(f"ast_lint: remove fixed entries from {BASELINE.name}.",
              file=sys.stderr)
        return 1
    print(f"ast_lint ({backend_name}): clean ({len(files)} files).")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
