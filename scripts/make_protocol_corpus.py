#!/usr/bin/env python3
"""Regenerates the protocol and chunk-codec fuzz corpora.

Writes request/reply lines in the crh_serve wire format (flat JSON, one
object per line — serve/protocol.h) into fuzz/corpus/protocol, and
observation CSV over the chunk_codec_fuzz.cc fixed universe (objects
o0..o7, sources s0..s3, continuous "x" + categorical "y" with labels
a/b/c) into fuzz/corpus/chunk_codec. Pure Python: external tooling can
speak both formats without linking the C++ code.

Protocol seeds cover every scalar kind, both array kinds, escape
sequences, real ingest/status/weights traffic, and rejection paths
(malformed syntax, nested aggregates, over-limit field counts). Chunk
seeds cover valid single- and multi-claim chunks, quarantine-relevant
unknown labels, unknown entities, and malformed CSV.

Usage: scripts/make_protocol_corpus.py  (writes into the repo tree)
"""

from __future__ import annotations

import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
PROTOCOL_DIR = REPO_ROOT / "fuzz" / "corpus" / "protocol"
CHUNK_DIR = REPO_ROOT / "fuzz" / "corpus" / "chunk_codec"

CSV_HEADER = "object_id,property,source_id,value\n"


def protocol_seeds() -> dict[str, str]:
    over_fields = "{" + ",".join(f'"k{i}":1' for i in range(65)) + "}"
    return {
        "ping": '{"cmd":"ping"}',
        "status": '{"cmd":"status"}',
        "query": '{"cmd":"query","object_id":"o3","property":"x"}',
        "ingest": (
            '{"cmd":"ingest","seq":7,"window_start":-2,'
            '"csv":"object_id,property,source_id,value\\no0,x,s0,1.5\\n"}'
        ),
        "weights_reply": (
            '{"ok":true,"epoch":12,"weights":[1.5,0.25,3.75,0.125],'
            '"sources":["s0","s1","s2","s3"]}'
        ),
        "scalar_kinds": (
            '{"s":"text","i":-42,"d":0.1,"neg_zero":-0.0,"big":1e300,'
            '"t":true,"f":false,"n":null,"empty":[]}'
        ),
        "escapes": '{"s":"tab\\there \\"quoted\\" \\u0041\\u00e9\\u20ac"}',
        "empty_object": "{}",
        "whitespace": '  { "a" : 1 ,\t"b" : [ 1 , 2 ] }  ',
        "malformed_truncated": '{"cmd":"pin',
        "malformed_trailing": '{"a":1}garbage',
        "malformed_duplicate_key": '{"a":1,"a":2}',
        "nested_object": '{"a":{"b":1}}',
        "nested_array": '{"a":[[1]]}',
        "over_limit_fields": over_fields,
        "empty": "",
    }


def chunk_seeds() -> dict[str, str]:
    full = CSV_HEADER + "".join(
        f"o{i},x,s{i % 4},{i}.5\no{i},y,s{(i + 1) % 4},{'abc'[i % 3]}\n"
        for i in range(8)
    )
    return {
        "single_claim": CSV_HEADER + "o0,x,s0,1.5\n",
        "full_universe": full,
        "categorical": CSV_HEADER + "o1,y,s2,b\n",
        "unknown_label": CSV_HEADER + "o1,y,s2,zzz\n",
        "unknown_object": CSV_HEADER + "ghost,x,s0,1\n",
        "unknown_source": CSV_HEADER + "o0,x,ghost,1\n",
        "blank_lines": CSV_HEADER + "\n\no2,x,s1,3\n\n",
        "header_only": CSV_HEADER,
        "malformed_row": CSV_HEADER + "o0,x\n",
        "empty": "",
    }


def main() -> None:
    for directory, seeds in ((PROTOCOL_DIR, protocol_seeds()),
                             (CHUNK_DIR, chunk_seeds())):
        directory.mkdir(parents=True, exist_ok=True)
        for name, text in seeds.items():
            (directory / name).write_bytes(text.encode())
        print(f"wrote {len(seeds)} seeds to {directory}")


if __name__ == "__main__":
    main()
