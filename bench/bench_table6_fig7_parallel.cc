/// \file bench_table6_fig7_parallel.cc
/// Regenerates Table 6 (parallel CRH running time vs number of
/// observations, 1e4 .. 4e8, plus the Pearson correlation the paper
/// reports) and Figure 7 (running time growing linearly in the number of
/// entries and in the number of sources).
///
/// Two layers (see DESIGN.md, "Substitutions"):
///  * simulated cluster seconds come from the calibrated ClusterCostModel
///    standing in for the paper's Hadoop cluster — this is the Table 6 /
///    Fig 7 series;
///  * the real in-process MapReduce engine executes parallel CRH end to end
///    at laptop-feasible scales and its wall-clock is printed alongside to
///    validate that execution time is indeed linear in the observations.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "datagen/noise.h"
#include "datagen/uci_like.h"
#include "mapreduce/parallel_crh.h"

using namespace crh;
using namespace crh::bench;

namespace {

/// Adult-derived noisy dataset with approximately `target_obs` observations.
Dataset MakeScaledDataset(double target_obs, uint64_t seed, int num_sources = 8) {
  // observations ~= records * 14 properties * sources.
  UciLikeOptions uci;
  uci.num_records =
      std::max<size_t>(20, static_cast<size_t>(target_obs / (14.0 * num_sources)));
  uci.seed = seed;
  NoiseOptions noise;
  for (int k = 0; k < num_sources; ++k) {
    noise.gammas.push_back(PaperSimulationGammas()[static_cast<size_t>(k) % 8]);
  }
  noise.seed = seed + 1;
  auto noisy = MakeNoisyDataset(MakeAdultGroundTruth(uci), noise);
  return std::move(noisy).ValueOrDie();
}

}  // namespace

int main() {
  const double scale = EnvDouble("CRH_SCALE", 1.0);
  const uint64_t seed = static_cast<uint64_t>(EnvInt("CRH_SEED", 7));
  const int reducers = static_cast<int>(EnvInt("CRH_REDUCERS", 10));
  ClusterCostModel model;

  std::printf("=== Table 6: running time on the (simulated) Hadoop cluster ===\n");
  std::printf("%-16s %18s\n", "# Observations", "Time (s)");
  std::vector<double> obs_series = {1e4, 1e5, 1e6, 1e7, 1e8, 4e8};
  std::vector<double> time_series;
  for (double n : obs_series) {
    const double t = model.EstimateFusionSeconds(n, reducers);
    time_series.push_back(t);
    std::printf("%-16.0e %18.0f\n", n, t);
  }
  std::printf("Pearson correlation (obs vs time): %.4f  (paper: 0.9811)\n",
              PearsonCorrelation(obs_series, time_series));

  // Validation: execute the real engine at laptop scales and confirm the
  // wall-clock grows linearly with the observation count.
  std::printf("\n--- validation: real in-process MapReduce engine ---\n");
  std::printf("%-16s %12s %12s %14s %12s\n", "# Observations", "Wall (s)", "Sim (s)",
              "Iterations", "ErrorRate");
  std::vector<double> real_obs, real_secs;
  for (double target : {1e4 * scale, 3e4 * scale, 1e5 * scale, 3e5 * scale, 1e6 * scale}) {
    Dataset data = MakeScaledDataset(target, seed);
    ParallelCrhOptions options;
    options.max_iterations = 5;
    options.convergence_tolerance = 0.0;
    options.mr.num_reducers = reducers;
    auto result = RunParallelCrh(data, options);
    if (!result.ok()) {
      std::fprintf(stderr, "parallel CRH failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    auto eval = Evaluate(data, result->truths);
    real_obs.push_back(static_cast<double>(data.num_observations()));
    real_secs.push_back(result->wall_seconds);
    std::printf("%-16zu %12.3f %12.1f %14d %12.4f\n", data.num_observations(),
                result->wall_seconds, result->simulated_cluster_seconds,
                result->iterations, eval.ok() ? eval->error_rate : -1.0);
  }
  std::printf("Pearson correlation (real engine, obs vs wall seconds): %.4f\n",
              PearsonCorrelation(real_obs, real_secs));

  // --- Figure 7: linear growth in entries and in sources (cost model).
  {
    std::vector<std::string> columns;
    std::vector<std::vector<double>> values(1);
    for (double entries : {1e6, 2e6, 4e6, 8e6, 16e6, 32e6}) {
      columns.push_back("");
      // 10 sources fixed; observations = entries * sources.
      values[0].push_back(model.EstimateFusionSeconds(entries * 10, reducers));
    }
    for (size_t c = 0; c < columns.size(); ++c) {
      columns[c] = std::to_string(1 << c) + "M";
    }
    PrintSeries("Fig 7a — simulated time (s) vs #entries (10 sources fixed)",
                {"Time (s)"}, columns, values);
  }
  {
    std::vector<std::string> columns;
    std::vector<std::vector<double>> values(1);
    for (int sources : {5, 10, 20, 40, 80}) {
      columns.push_back(std::to_string(sources));
      // 4e6 entries fixed.
      values[0].push_back(model.EstimateFusionSeconds(4e6 * sources, reducers));
    }
    PrintSeries("Fig 7b — simulated time (s) vs #sources (4M entries fixed)",
                {"Time (s)"}, columns, values);
  }

  // Real-engine version of Fig 7b at laptop scale.
  {
    std::vector<std::string> columns;
    std::vector<std::vector<double>> values(1);
    for (int sources : {4, 8, 16, 32}) {
      Dataset data = MakeScaledDataset(3e4 * scale * sources / 8.0, seed, sources);
      ParallelCrhOptions options;
      options.max_iterations = 5;
      options.convergence_tolerance = 0.0;
      options.mr.num_reducers = reducers;
      auto result = RunParallelCrh(data, options);
      if (!result.ok()) return 1;
      columns.push_back(std::to_string(sources));
      values[0].push_back(result->wall_seconds);
    }
    PrintSeries("Fig 7b (real engine) — wall seconds vs #sources", {"Wall (s)"}, columns,
                values);
  }
  return 0;
}
