/// \file bench_table2_realworld.cc
/// Regenerates Table 1 (dataset statistics) and Table 2 (Error Rate + MNAD
/// of CRH vs ten baselines on the weather, stock and flight datasets).
///
/// The datasets are the synthetic stand-ins of datagen/real_world.h (see
/// DESIGN.md, "Substitutions"); absolute numbers differ from the paper's
/// 2011-2012 crawls but the shape — CRH best on both measures on all three
/// datasets, continuous-only and categorical-only methods trailing — is the
/// claim under reproduction.
///
/// CRH_SCALE scales the stock/flight sizes (weather is always full size).

#include <cstdio>

#include "bench_util.h"
#include "datagen/real_world.h"

using namespace crh;
using namespace crh::bench;

int main() {
  const double scale = EnvDouble("CRH_SCALE", 0.25);
  const uint64_t seed = static_cast<uint64_t>(EnvInt("CRH_SEED", 0));
  std::printf("=== Table 1 + Table 2: real-world datasets (CRH_SCALE=%.2f) ===\n", scale);

  {
    WeatherOptions options;  // paper-faithful size; tiny anyway
    if (seed != 0) options.seed = seed;
    Dataset weather = MakeWeatherDataset(options);
    PrintDatasetStats("Weather", weather);
    PrintComparisonTable("Table 2 — Weather", RunAllMethods(weather));
  }
  {
    StockOptions options;
    options.num_symbols = std::max(20, static_cast<int>(1000 * scale));
    options.num_days = std::max(3, static_cast<int>(21 * scale));
    options.labeled_symbols = std::max(5, static_cast<int>(100 * scale));
    if (seed != 0) options.seed = seed;
    Dataset stock = MakeStockDataset(options);
    PrintDatasetStats("Stock", stock);
    PrintComparisonTable("Table 2 — Stock", RunAllMethods(stock));
  }
  {
    FlightOptions options;
    options.num_flights = std::max(30, static_cast<int>(1200 * scale));
    options.num_days = std::max(3, static_cast<int>(30 * scale));
    if (seed != 0) options.seed = seed;
    Dataset flight = MakeFlightDataset(options);
    PrintDatasetStats("Flight", flight);
    PrintComparisonTable("Table 2 — Flight", RunAllMethods(flight));
  }
  return 0;
}
