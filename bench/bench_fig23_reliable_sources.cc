/// \file bench_fig23_reliable_sources.cc
/// Regenerates Figures 2 and 3: Error Rate and MNAD as the number of
/// reliable sources (gamma = 0.1) among eight total (the rest gamma = 2)
/// varies from 0 to 8, on the Adult (Fig 2) and Bank (Fig 3) simulations.
///
/// Expected shape: with 0 or 8 reliable sources CRH matches
/// voting/averaging; in between it wins decisively, and even a single
/// reliable source lets CRH recover most categorical truths.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "datagen/noise.h"
#include "datagen/uci_like.h"

using namespace crh;
using namespace crh::bench;

namespace {

void RunFigure(const char* figure, const char* name, const Dataset& truth_data,
               uint64_t seed) {
  std::vector<std::string> methods;
  std::vector<std::vector<double>> error_rows, mnad_rows;
  bool first_setting = true;
  std::vector<std::string> columns;
  for (int reliable = 0; reliable <= 8; ++reliable) {
    columns.push_back("r=" + std::to_string(reliable));
    NoiseOptions noise;
    for (int k = 0; k < 8; ++k) noise.gammas.push_back(k < reliable ? 0.1 : 2.0);
    noise.seed = seed + static_cast<uint64_t>(reliable);
    auto noisy = MakeNoisyDataset(truth_data, noise);
    if (!noisy.ok()) {
      std::fprintf(stderr, "generation failed: %s\n", noisy.status().ToString().c_str());
      return;
    }
    const auto results = RunAllMethods(*noisy);
    if (first_setting) {
      for (const MethodResult& row : results) {
        methods.push_back(row.name);
        error_rows.emplace_back();
        mnad_rows.emplace_back();
      }
      first_setting = false;
    }
    for (size_t r = 0; r < results.size(); ++r) {
      error_rows[r].push_back(results[r].has_categorical ? results[r].error_rate : -1.0);
      mnad_rows[r].push_back(results[r].has_continuous ? results[r].mnad : -1.0);
    }
  }
  PrintSeries(std::string(figure) + " — " + name +
                  ": Error Rate vs #reliable sources (-1 = NA)",
              methods, columns, error_rows);
  PrintSeries(std::string(figure) + " — " + name + ": MNAD vs #reliable sources (-1 = NA)",
              methods, columns, mnad_rows);
}

}  // namespace

int main() {
  const double scale = EnvDouble("CRH_SCALE", 0.05);
  const uint64_t seed = static_cast<uint64_t>(EnvInt("CRH_SEED", 7));
  std::printf("=== Figures 2 & 3: performance vs number of reliable sources "
              "(CRH_SCALE=%.2f) ===\n",
              scale);

  UciLikeOptions adult;
  adult.num_records = std::max<size_t>(400, static_cast<size_t>(32561 * scale));
  adult.seed = seed;
  RunFigure("Fig 2", "Adult", MakeAdultGroundTruth(adult), seed + 100);

  UciLikeOptions bank;
  bank.num_records = std::max<size_t>(400, static_cast<size_t>(45211 * scale));
  bank.seed = seed;
  RunFigure("Fig 3", "Bank", MakeBankGroundTruth(bank), seed + 200);
  return 0;
}
