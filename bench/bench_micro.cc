/// \file bench_micro.cc
/// google-benchmark microbenchmarks for the core primitives, including the
/// paper's complexity claim (Section 2.5): one CRH iteration is linear in
/// the total number of observations K*N*M.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "core/crh.h"
#include "losses/resolvers.h"
#include "data/stats.h"
#include "datagen/noise.h"
#include "datagen/uci_like.h"
#include "losses/loss.h"
#include "weights/weight_scheme.h"

namespace crh {
namespace {

std::vector<double> RandomValues(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (double& v : out) v = rng.Uniform(0, 100);
  return out;
}

void BM_WeightedMedian(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<double> values = RandomValues(n, 1);
  const std::vector<double> weights = RandomValues(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(WeightedMedian(values, weights));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_WeightedMedian)->Range(8, 8 << 10)->Complexity(benchmark::oNLogN);

void BM_WeightedMean(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<double> values = RandomValues(n, 1);
  const std::vector<double> weights = RandomValues(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(WeightedMean(values, weights));
  }
}
BENCHMARK(BM_WeightedMean)->Range(8, 8 << 10);

void BM_WeightedVote(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(3);
  std::vector<Value> values;
  std::vector<double> weights;
  for (size_t i = 0; i < n; ++i) {
    values.push_back(Value::Categorical(static_cast<CategoryId>(rng.UniformInt(0, 9))));
    weights.push_back(rng.Uniform(0, 1));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(WeightedVote(values, weights));
  }
}
BENCHMARK(BM_WeightedVote)->Range(8, 8 << 10);

void BM_ComputeSourceWeights(benchmark::State& state) {
  const std::vector<double> losses = RandomValues(static_cast<size_t>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSourceWeights(losses));
  }
}
BENCHMARK(BM_ComputeSourceWeights)->Range(8, 1024);

void BM_ProbVectorLoss(benchmark::State& state) {
  const size_t labels = static_cast<size_t>(state.range(0));
  std::vector<double> dist(labels, 1.0 / static_cast<double>(labels));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ProbVectorSquaredLoss(dist, 0));
  }
}
BENCHMARK(BM_ProbVectorLoss)->Range(2, 256);

/// Shared noisy dataset cache so each size is generated once.
const Dataset& CachedDataset(size_t records) {
  static std::map<size_t, Dataset> cache;
  auto it = cache.find(records);
  if (it == cache.end()) {
    UciLikeOptions uci;
    uci.num_records = records;
    NoiseOptions noise;
    noise.gammas = PaperSimulationGammas();
    auto noisy = MakeNoisyDataset(MakeAdultGroundTruth(uci), noise);
    it = cache.emplace(records, std::move(noisy).ValueOrDie()).first;
  }
  return it->second;
}

/// The linear-time claim: one full CRH iteration over K*N*M observations.
void BM_CrhIterationLinearTime(benchmark::State& state) {
  const Dataset& data = CachedDataset(static_cast<size_t>(state.range(0)));
  CrhOptions options;
  options.max_iterations = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunCrh(data, options));
  }
  state.SetComplexityN(static_cast<int64_t>(data.num_observations()));
  state.counters["observations"] = static_cast<double>(data.num_observations());
}
BENCHMARK(BM_CrhIterationLinearTime)
    ->Arg(250)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->Arg(4000)
    ->Complexity(benchmark::oN);

void BM_EntryStats(benchmark::State& state) {
  const Dataset& data = CachedDataset(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeEntryStats(data));
  }
}
BENCHMARK(BM_EntryStats)->Arg(500)->Arg(2000);

void BM_FullCrhToConvergence(benchmark::State& state) {
  const Dataset& data = CachedDataset(1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunCrh(data));
  }
}
BENCHMARK(BM_FullCrhToConvergence);

}  // namespace
}  // namespace crh

BENCHMARK_MAIN();
