/// \file bench_fig4_icrh_weights.cc
/// Regenerates Figure 4: (a) I-CRH's estimated source reliability degrees
/// at every timestamp on the weather dataset — they stabilize after a few
/// chunks; (b) I-CRH's weights at the first and sixth timestamps compared
/// with batch CRH's weights — after stabilization they agree.

#include <cstdio>

#include "bench_util.h"
#include "datagen/real_world.h"
#include "stream/incremental_crh.h"

using namespace crh;
using namespace crh::bench;

int main() {
  const uint64_t seed = static_cast<uint64_t>(EnvInt("CRH_SEED", 0));
  WeatherOptions options;
  if (seed != 0) options.seed = seed;
  Dataset weather = MakeWeatherDataset(options);
  std::printf("=== Figure 4: I-CRH source weights over time, weather dataset ===\n");

  IncrementalCrhOptions icrh_options;
  icrh_options.window_size = 24;  // one chunk per day
  auto icrh = RunIncrementalCrh(weather, icrh_options);
  auto crh = RunCrh(weather);
  if (!icrh.ok() || !crh.ok()) {
    std::fprintf(stderr, "run failed\n");
    return 1;
  }

  // Fig 4a: weights per timestamp (normalized for plotting, as the paper does).
  std::vector<std::string> rows;
  std::vector<std::vector<double>> values;
  const size_t num_chunks = icrh->weight_history.size();
  for (size_t t = 0; t < num_chunks; ++t) {
    rows.push_back("day=" + std::to_string(icrh->chunk_starts[t] / 24));
    values.push_back(NormalizeScores(icrh->weight_history[t]));
  }
  std::vector<std::string> columns;
  for (size_t k = 0; k < weather.num_sources(); ++k) {
    columns.push_back(weather.source_id(k).substr(0, 10));
  }
  PrintSeries("Fig 4a — I-CRH normalized source weights per timestamp", rows, columns,
              values);

  // Fig 4b: first timestamp, sixth timestamp, batch CRH.
  std::vector<std::string> b_rows = {"I-CRH t=1", "I-CRH t=6", "CRH"};
  std::vector<std::vector<double>> b_values = {
      NormalizeScores(icrh->weight_history[0]),
      NormalizeScores(icrh->weight_history[std::min<size_t>(5, num_chunks - 1)]),
      NormalizeScores(crh->source_weights)};
  PrintSeries("Fig 4b — I-CRH (t=1, t=6) vs batch CRH weights", b_rows, columns, b_values);

  std::printf("\nSpearman(I-CRH t=1, CRH) = %.4f\n",
              SpearmanCorrelation(icrh->weight_history[0], crh->source_weights));
  std::printf("Spearman(I-CRH t=6, CRH) = %.4f\n",
              SpearmanCorrelation(icrh->weight_history[std::min<size_t>(5, num_chunks - 1)],
                                  crh->source_weights));
  std::printf("Spearman(I-CRH final, CRH) = %.4f\n",
              SpearmanCorrelation(icrh->source_weights, crh->source_weights));
  return 0;
}
