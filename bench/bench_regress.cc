/// \file bench_regress.cc
/// Benchmark regression harness for the claim-major solver core.
///
/// Measures, on a sparse multi-source workload (default density well under
/// 20%):
///
///  * the truth-update and deviation passes, claim-major (ClaimIndex) vs a
///    dense K-scan reference kernel (the pre-index implementation, kept
///    here as the regression baseline) — ns/claim and speedup; the sparse
///    passes reuse a SolverWorkspace, so their steady-state allocation
///    count (the last repetition's) is expected to be zero;
///  * the weight-update pass (ComputeSourceWeights over the aggregated
///    deviations) — ns/source and allocations;
///  * the full RunCrh solver at 1, 2 and 4 threads — iterations/s, speedup
///    vs 1 thread, and whether results are bit-identical across counts;
///  * heap allocations per pass (global operator new counter).
///
/// Results are written as machine-readable JSON (BENCH_crh.json). With
/// CRH_BENCH_REQUIRE_SPEEDUP=<x> set, the binary exits nonzero unless the
/// claim-major passes are at least x times faster than the dense
/// reference — CI's perf-regression gate.
///
///   bench_regress [output.json]
///     CRH_SCALE=1.0    size multiplier (objects)
///     CRH_SEED=42      noise seed
///     CRH_SOURCES=96   source count (paper gammas, tiled)
///     CRH_DENSITY=0.05 claim density (1 - missing_rate)
///     CRH_BENCH_REPS=5 timed repetitions per kernel (best-of)
///     CRH_BENCH_REQUIRE_SPEEDUP=5.0  fail unless sparse/dense >= 5.0
///
/// The default workload models the paper's real-world regime — many
/// sources, each covering a small slice of the entries (stock/flight style
/// coverage) — which is exactly where a dense K-scan pays for the sources
/// that did NOT speak on every entry.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "losses/resolvers.h"
#include "data/claim_index.h"
#include "data/stats.h"
#include "datagen/noise.h"
#include "datagen/uci_like.h"
#include "losses/text_distance.h"

// The replacement operator new below returns malloc'd memory, which the
// matching replacement operator delete frees — conformant, but GCC's
// flow analysis pairs the inlined malloc with the library delete and
// reports a mismatch.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {

// ---------------------------------------------------------------------------
// Global allocation counter: every heap allocation in the process bumps it,
// so per-pass deltas are exact allocation counts.

std::atomic<uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* ptr = std::malloc(size ? size : 1)) return ptr;
  CRH_CHECK(false && "allocation failed");
  std::abort();
}

void* operator new[](std::size_t size) { return operator new(size); }
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }

namespace crh::bench {
namespace {

// ---------------------------------------------------------------------------
// Dense reference kernels: the pre-ClaimIndex implementation (a K-scan per
// entry), preserved verbatim as the baseline the sparse path must beat.

void DenseGatherClaims(const Dataset& data, size_t i, size_t m, std::vector<Value>* values,
                       std::vector<double>* weights, const std::vector<double>& w) {
  values->clear();
  weights->clear();
  for (size_t k = 0; k < data.num_sources(); ++k) {
    const Value& v = data.observations(k).Get(i, m);
    if (v.is_missing()) continue;
    values->push_back(v);
    weights->push_back(w[k]);
  }
}

ValueTable DenseTruthPass(const Dataset& data, const std::vector<double>& weights,
                          const CrhOptions& options) {
  ValueTable truths(data.num_objects(), data.num_properties());
  std::vector<Value> claim_values;
  std::vector<double> claim_weights;
  std::vector<double> cont_values;
  for (size_t m = 0; m < data.num_properties(); ++m) {
    const PropertyType type = data.schema().property(m).type;
    const auto text_distance = [&data, m](const Value& a, const Value& b) {
      return NormalizedEditDistance(data.dict(m).label(a.category()),
                                    data.dict(m).label(b.category()));
    };
    for (size_t i = 0; i < data.num_objects(); ++i) {
      DenseGatherClaims(data, i, m, &claim_values, &claim_weights, weights);
      if (claim_values.empty()) {
        truths.Set(i, m, Value::Missing());
        continue;
      }
      if (type == PropertyType::kText) {
        truths.Set(i, m, WeightedMedoid(claim_values, claim_weights, text_distance));
      } else if (type == PropertyType::kCategorical) {
        truths.Set(i, m, WeightedVote(claim_values, claim_weights));
      } else {
        cont_values.clear();
        for (const Value& v : claim_values) cont_values.push_back(v.continuous());
        truths.Set(i, m, Value::Continuous(options.continuous_model == ContinuousModel::kMedian
                                               ? WeightedMedian(cont_values, claim_weights)
                                               : WeightedMean(cont_values, claim_weights)));
      }
    }
  }
  return truths;
}

double DenseClaimLoss(const Dataset& data, const ValueTable& truths, const EntryStats& stats,
                      const CrhOptions& options, size_t i, size_t m, const Value& obs) {
  const PropertyType type = data.schema().property(m).type;
  if (type == PropertyType::kText) {
    const Value& truth = truths.Get(i, m);
    return NormalizedEditDistance(data.dict(m).label(truth.category()),
                                  data.dict(m).label(obs.category()));
  }
  if (type == PropertyType::kCategorical) {
    return truths.Get(i, m) == obs ? 0.0 : 1.0;
  }
  const double diff = truths.Get(i, m).continuous() - obs.continuous();
  const double scale = stats.scale_at(i, m);
  if (options.continuous_model == ContinuousModel::kMedian) {
    return (diff < 0 ? -diff : diff) / scale;
  }
  return diff * diff / scale;
}

std::vector<double> DenseDeviationPass(const Dataset& data, const ValueTable& truths,
                                       const EntryStats& stats, const CrhOptions& options) {
  const size_t k_sources = data.num_sources();
  const size_t m_props = data.num_properties();
  std::vector<std::vector<double>> loss(k_sources, std::vector<double>(m_props, 0.0));
  std::vector<std::vector<size_t>> count(k_sources, std::vector<size_t>(m_props, 0));
  for (size_t k = 0; k < k_sources; ++k) {
    const ValueTable& table = data.observations(k);
    for (size_t i = 0; i < data.num_objects(); ++i) {
      for (size_t m = 0; m < m_props; ++m) {
        const Value& obs = table.Get(i, m);
        if (obs.is_missing() || truths.Get(i, m).is_missing()) continue;
        loss[k][m] += DenseClaimLoss(data, truths, stats, options, i, m, obs);
        ++count[k][m];
      }
    }
  }
  if (options.normalize_by_observation_count) {
    for (size_t k = 0; k < k_sources; ++k) {
      for (size_t m = 0; m < m_props; ++m) {
        if (count[k][m] > 0) loss[k][m] /= static_cast<double>(count[k][m]);
      }
    }
  }
  if (options.property_normalization != PropertyLossNormalization::kNone) {
    for (size_t m = 0; m < m_props; ++m) {
      double norm = 0.0;
      for (size_t k = 0; k < k_sources; ++k) {
        if (options.property_normalization == PropertyLossNormalization::kSum) {
          norm += loss[k][m];
        } else {
          norm = std::max(norm, loss[k][m]);
        }
      }
      if (norm > 0) {
        for (size_t k = 0; k < k_sources; ++k) loss[k][m] /= norm;
      }
    }
  }
  std::vector<double> totals(k_sources, 0.0);
  for (size_t k = 0; k < k_sources; ++k) {
    for (size_t m = 0; m < m_props; ++m) totals[k] += loss[k][m];
  }
  return totals;
}

// ---------------------------------------------------------------------------

struct PassTiming {
  double best_seconds = 0.0;
  uint64_t allocations = 0;  // of the last repetition
};

/// Best-of-reps wall time plus the final repetition's allocation count.
template <typename Fn>
PassTiming TimePass(int reps, const Fn& fn) {
  PassTiming timing;
  timing.best_seconds = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const uint64_t alloc_before = g_allocations.load(std::memory_order_relaxed);
    Stopwatch watch;
    fn();
    const double seconds = watch.ElapsedSeconds();
    timing.best_seconds = std::min(timing.best_seconds, seconds);
    timing.allocations = g_allocations.load(std::memory_order_relaxed) - alloc_before;
  }
  return timing;
}

bool TablesBitIdentical(const ValueTable& a, const ValueTable& b) {
  if (a.num_objects() != b.num_objects() || a.num_properties() != b.num_properties()) {
    return false;
  }
  for (size_t i = 0; i < a.num_objects(); ++i) {
    for (size_t m = 0; m < a.num_properties(); ++m) {
      const Value& va = a.Get(i, m);
      const Value& vb = b.Get(i, m);
      if (va.is_missing() != vb.is_missing()) return false;
      if (!va.is_missing() && !(va == vb)) return false;
    }
  }
  return true;
}

int Main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_crh.json";
  const double scale = EnvDouble("CRH_SCALE", 1.0);
  const uint64_t seed = static_cast<uint64_t>(EnvInt("CRH_SEED", 42));
  const double density = EnvDouble("CRH_DENSITY", 0.05);
  const size_t num_sources = static_cast<size_t>(EnvInt("CRH_SOURCES", 96));
  const int reps = static_cast<int>(EnvInt("CRH_BENCH_REPS", 5));

  // --- Workload: Adult-schema ground truth, many sparse sources.
  UciLikeOptions truth_options;
  truth_options.num_records = static_cast<size_t>(2000 * scale);
  truth_options.seed = 7;
  const Dataset truth = MakeAdultGroundTruth(truth_options);
  NoiseOptions noise;
  const std::vector<double> paper_gammas = PaperSimulationGammas();
  for (size_t k = 0; k < num_sources; ++k) {
    noise.gammas.push_back(paper_gammas[k % paper_gammas.size()]);
  }
  noise.missing_rate = 1.0 - density;
  noise.seed = seed;
  auto noisy = MakeNoisyDataset(truth, noise);
  CRH_CHECK(noisy.ok());
  const Dataset& data = *noisy;

  CrhOptions options;  // paper defaults
  const EntryStats stats = ComputeEntryStats(data);

  Stopwatch build_watch;
  const ClaimIndex index = ClaimIndex::Build(data);
  const double index_build_seconds = build_watch.ElapsedSeconds();
  const size_t num_claims = index.num_claims();
  const double dense_cells =
      static_cast<double>(data.num_sources()) * static_cast<double>(index.num_entries());
  std::printf("workload: %zu objects x %zu properties x %zu sources, %zu claims "
              "(density %.3f)\n",
              data.num_objects(), data.num_properties(), data.num_sources(), num_claims,
              static_cast<double>(num_claims) / dense_cells);

  // Deliberately non-uniform weights so the kernels exercise the weighted
  // paths the solver runs after the first iteration.
  std::vector<double> weights(data.num_sources());
  for (size_t k = 0; k < weights.size(); ++k) {
    weights[k] = 1.0 + 0.25 * static_cast<double>(k);
  }

  // --- Truth pass: dense reference vs claim-major. The sparse passes share
  // one SolverWorkspace — after the first repetition warms it, the pass is
  // allocation-free (modulo the result table), which is what the
  // *_allocations JSON fields below record.
  SolverWorkspace workspace;
  ValueTable dense_truths;
  const PassTiming dense_truth =
      TimePass(reps, [&]() { dense_truths = DenseTruthPass(data, weights, options); });
  ValueTable sparse_truths;
  const PassTiming sparse_truth = TimePass(reps, [&]() {
    sparse_truths = ComputeTruthsGivenWeights(data, index, weights, options, nullptr, workspace);
  });
  CRH_CHECK(TablesBitIdentical(dense_truths, sparse_truths));
  const double truth_speedup = dense_truth.best_seconds / sparse_truth.best_seconds;

  // --- Deviation pass: dense reference vs claim-major.
  std::vector<double> dense_dev;
  const PassTiming dense_deviation = TimePass(
      reps, [&]() { dense_dev = DenseDeviationPass(data, sparse_truths, stats, options); });
  std::vector<double> sparse_dev;
  const PassTiming sparse_deviation = TimePass(reps, [&]() {
    sparse_dev =
        ComputeSourceDeviations(data, index, sparse_truths, stats, options, nullptr, workspace);
  });
  CRH_CHECK_EQ(dense_dev.size(), sparse_dev.size());
  for (size_t k = 0; k < dense_dev.size(); ++k) {
    CRH_CHECK(NearlyEqual(dense_dev[k], sparse_dev[k], 1e-9));
  }
  const double deviation_speedup = dense_deviation.best_seconds / sparse_deviation.best_seconds;

  std::printf("truth pass:     dense %8.1f ns/claim  sparse %8.1f ns/claim  speedup %.2fx\n",
              dense_truth.best_seconds * 1e9 / static_cast<double>(num_claims),
              sparse_truth.best_seconds * 1e9 / static_cast<double>(num_claims), truth_speedup);
  std::printf("deviation pass: dense %8.1f ns/claim  sparse %8.1f ns/claim  speedup %.2fx\n",
              dense_deviation.best_seconds * 1e9 / static_cast<double>(num_claims),
              sparse_deviation.best_seconds * 1e9 / static_cast<double>(num_claims),
              deviation_speedup);

  // --- Weight update: the Eq 2 aggregation the solver runs between passes.
  std::vector<double> updated_weights;
  const PassTiming weight_update = TimePass(reps, [&]() {
    auto computed = ComputeSourceWeights(sparse_dev, options.weight_scheme);
    CRH_CHECK(computed.ok());
    updated_weights = std::move(*computed);
  });
  CRH_CHECK_EQ(updated_weights.size(), data.num_sources());
  std::printf("weight update:  %8.1f ns/source  %llu allocation(s)\n",
              weight_update.best_seconds * 1e9 / static_cast<double>(data.num_sources()),
              static_cast<unsigned long long>(weight_update.allocations));

  // --- Full solver across thread counts; 1-thread results are the
  // reference for bit-identity.
  const int thread_counts[] = {1, 2, 4};
  struct SolverRow {
    int threads = 0;
    double seconds = 0.0;
    int iterations = 0;
    bool bit_identical = true;
  };
  std::vector<SolverRow> solver_rows;
  CrhResult reference;
  for (const int threads : thread_counts) {
    CrhOptions solver_options = options;
    solver_options.num_threads = threads;
    SolverRow row;
    row.threads = threads;
    CrhResult last;
    const PassTiming timing = TimePass(reps, [&]() {
      auto result = RunCrh(data, solver_options);
      CRH_CHECK(result.ok());
      last = std::move(*result);
    });
    row.seconds = timing.best_seconds;
    row.iterations = last.iterations;
    if (threads == 1) {
      reference = std::move(last);
    } else {
      row.bit_identical = TablesBitIdentical(reference.truths, last.truths) &&
                          reference.source_weights == last.source_weights &&
                          reference.objective_history == last.objective_history;
    }
    solver_rows.push_back(row);
  }
  for (const SolverRow& row : solver_rows) {
    const double claims_iters = static_cast<double>(num_claims) * row.iterations;
    std::printf("solver %d thread(s): %.3fs  %d iters  %.1f ns/claim/iter  "
                "%.2f iters/s  speedup %.2fx  bit_identical %s\n",
                row.threads, row.seconds, row.iterations, row.seconds * 1e9 / claims_iters,
                row.iterations / row.seconds, solver_rows.front().seconds / row.seconds,
                row.bit_identical ? "true" : "false");
  }

  // --- JSON report.
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  CRH_CHECK(out != nullptr);
  std::fprintf(out, "{\n");
  std::fprintf(out,
               "  \"workload\": {\"objects\": %zu, \"properties\": %zu, \"sources\": %zu, "
               "\"claims\": %zu, \"density\": %.6f, \"seed\": %llu, \"scale\": %.3f},\n",
               data.num_objects(), data.num_properties(), data.num_sources(), num_claims,
               static_cast<double>(num_claims) / dense_cells,
               static_cast<unsigned long long>(seed), scale);
  std::fprintf(out, "  \"index_build_seconds\": %.6f,\n", index_build_seconds);
  const auto pass_json = [&](const char* name, const PassTiming& dense,
                             const PassTiming& sparse, double speedup, const char* tail) {
    std::fprintf(out,
                 "  \"%s\": {\"dense_ns_per_claim\": %.1f, \"sparse_ns_per_claim\": %.1f, "
                 "\"speedup\": %.2f, \"dense_allocations\": %llu, "
                 "\"sparse_allocations\": %llu}%s\n",
                 name, dense.best_seconds * 1e9 / static_cast<double>(num_claims),
                 sparse.best_seconds * 1e9 / static_cast<double>(num_claims), speedup,
                 static_cast<unsigned long long>(dense.allocations),
                 static_cast<unsigned long long>(sparse.allocations), tail);
  };
  pass_json("truth_pass", dense_truth, sparse_truth, truth_speedup, ",");
  pass_json("deviation_pass", dense_deviation, sparse_deviation, deviation_speedup, ",");
  std::fprintf(out, "  \"weight_update\": {\"ns_per_source\": %.1f, \"allocations\": %llu},\n",
               weight_update.best_seconds * 1e9 / static_cast<double>(data.num_sources()),
               static_cast<unsigned long long>(weight_update.allocations));
#if defined(CRH_SIMD)
  std::fprintf(out, "  \"simd\": true,\n");
#else
  std::fprintf(out, "  \"simd\": false,\n");
#endif
  std::fprintf(out, "  \"solver\": [\n");
  for (size_t row_idx = 0; row_idx < solver_rows.size(); ++row_idx) {
    const SolverRow& row = solver_rows[row_idx];
    const double claims_iters = static_cast<double>(num_claims) * row.iterations;
    std::fprintf(out,
                 "    {\"threads\": %d, \"seconds\": %.6f, \"iterations\": %d, "
                 "\"ns_per_claim_iter\": %.1f, \"iterations_per_s\": %.2f, "
                 "\"speedup_vs_1_thread\": %.2f, \"bit_identical_to_1_thread\": %s}%s\n",
                 row.threads, row.seconds, row.iterations, row.seconds * 1e9 / claims_iters,
                 row.iterations / row.seconds, solver_rows.front().seconds / row.seconds,
                 row.bit_identical ? "true" : "false",
                 row_idx + 1 < solver_rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  if (std::fclose(out) != 0) {
    std::fprintf(stderr, "error: failed to close %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  // --- CI gate: claim-major must beat the dense reference.
  const double required = EnvDouble("CRH_BENCH_REQUIRE_SPEEDUP", 0.0);
  if (required > 0.0 &&
      (truth_speedup < required || deviation_speedup < required)) {
    std::fprintf(stderr,
                 "FAIL: sparse speedup below %.2fx (truth %.2fx, deviation %.2fx)\n", required,
                 truth_speedup, deviation_speedup);
    return 1;
  }
  bool all_identical = true;
  for (const SolverRow& row : solver_rows) all_identical = all_identical && row.bit_identical;
  if (!all_identical) {
    std::fprintf(stderr, "FAIL: parallel solver results differ from 1-thread results\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace crh::bench

int main(int argc, char** argv) { return crh::bench::Main(argc, argv); }
