/// \file bench_throughput.cc
/// Sustained-throughput driver for the streaming (I-CRH) pipeline.
///
/// Runs the chunk loop — ProcessChunk plus fused-truth maintenance — for a
/// fixed wall-clock budget per DeltaSolveMode, restarting the stream from
/// scratch whenever it is exhausted, and reports:
///
///  * claims/sec and ns/claim sustained over the whole budget;
///  * per-chunk-step latency percentiles (p50/p90/p99/max), the metric a
///    latency-sensitive ingest pipeline actually feels;
///  * a calibration constant (ns per op of a fixed scalar loop) so the
///    regression gate (scripts/bench_gate.py) can normalize ns/claim
///    across machines of different speeds.
///
/// The timed modes are off (legacy per-chunk scatter), full (full re-solve
/// per chunk) and delta (dirty-set re-solve); a final untimed stream runs
/// in verify mode, which bit-compares the delta table against a shadow
/// full re-solve after every chunk. Results go to machine-readable JSON
/// (BENCH_crh_throughput.json, committed as the regression baseline).
///
///   bench_throughput [output.json]
///     CRH_TP_SECONDS=2.0  wall-clock budget per timed mode
///     CRH_TP_CHUNKS=8     time windows the stream is cut into
///     CRH_SCALE=1.0       size multiplier (objects)
///     CRH_SOURCES=32      source count (paper gammas, tiled)
///     CRH_DENSITY=0.10    mean claim density across sources
///     CRH_SKEW=1.0        source-coverage skew: source k keeps claims in
///                         proportion to 1/(k+1)^skew (0 = uniform), the
///                         stock/flight regime where a few aggregators
///                         cover most entries and a long tail covers few
///     CRH_SEED=42         noise seed
///     CRH_THREADS=1       worker threads for the passes
///     CRH_TP_WEIGHTS=log_max  weight scheme: log_max (paper default, every
///                         refresh perturbs every weight, so delta's
///                         fan-out covers everything and it falls back to
///                         the full pass) or top_j (selection weights,
///                         bitwise-stable once the ranking settles — the
///                         regime where the dirty-set delta actually
///                         shrinks the work)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "datagen/noise.h"
#include "datagen/uci_like.h"
#include "stream/chunks.h"
#include "stream/delta_solve.h"
#include "stream/incremental_crh.h"

namespace crh::bench {
namespace {

/// splitmix64: deterministic per-cell hash for the coverage thinning.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// ns per op of a fixed integer/FP loop — a machine-speed yardstick the
/// gate divides ns/claim by, so a slower CI runner does not read as a code
/// regression.
double CalibrationNsPerOp() {
  constexpr int kIters = 1 << 24;
  uint64_t s = 0x9e3779b97f4a7c15ull;
  double x = 1.0;
  Stopwatch watch;
  for (int i = 0; i < kIters; ++i) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    x += static_cast<double>(s >> 40) * 1e-12;
  }
  const double seconds = watch.ElapsedSeconds();
  // Defeat dead-code elimination without volatile traffic in the loop.
  if (x == 0.0) std::printf("unreachable\n");
  return seconds * 1e9 / kIters;
}

struct LatencyStats {
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

LatencyStats Percentiles(std::vector<double> latencies_seconds) {
  LatencyStats stats;
  if (latencies_seconds.empty()) return stats;
  std::sort(latencies_seconds.begin(), latencies_seconds.end());
  const auto at = [&](double p) {
    const size_t n = latencies_seconds.size();
    size_t idx = static_cast<size_t>(p * static_cast<double>(n));
    if (idx >= n) idx = n - 1;
    return latencies_seconds[idx] * 1e3;
  };
  stats.p50_ms = at(0.50);
  stats.p90_ms = at(0.90);
  stats.p99_ms = at(0.99);
  stats.max_ms = latencies_seconds.back() * 1e3;
  return stats;
}

struct ModeResult {
  std::string name;
  uint64_t streams = 0;
  uint64_t chunks = 0;
  uint64_t claims = 0;
  double elapsed_seconds = 0.0;
  LatencyStats latency;
  DeltaSolveStats delta;
};

/// Drives the chunk loop of stream/checkpoint.cc by hand — the library's
/// drivers are deterministic by design (no timing inside src/stream), so
/// the per-chunk stopwatch lives here. One iteration = one chunk step:
/// ProcessChunk plus the fused-table maintenance of the given mode.
ModeResult RunMode(const std::string& name, DeltaSolveMode mode, const Dataset& parent,
                   const std::vector<DataChunk>& chunks,
                   const std::vector<uint64_t>& chunk_claims,
                   const IncrementalCrhOptions& options, ThreadPool* pool,
                   double seconds_budget, uint64_t max_chunks) {
  ModeResult result;
  result.name = name;
  std::vector<double> latencies;
  std::vector<double> prev_weights;
  Stopwatch total;
  bool out_of_budget = false;
  while (!out_of_budget) {
    IncrementalCrhProcessor processor(parent.num_sources(), options);
    std::optional<DeltaTruthStore> store;
    if (mode != DeltaSolveMode::kOff) {
      store.emplace(parent.num_objects(), parent.num_properties(), parent.num_sources());
    }
    ValueTable fused(parent.num_objects(), parent.num_properties());
    for (size_t c = 0; c < chunks.size(); ++c) {
      const DataChunk& chunk = chunks[c];
      Stopwatch step;
      if (mode != DeltaSolveMode::kOff) prev_weights = processor.source_weights();
      auto truths = processor.ProcessChunk(chunk.data);
      CRH_CHECK(truths.ok());
      if (mode == DeltaSolveMode::kOff) {
        for (size_t local = 0; local < chunk.parent_object.size(); ++local) {
          for (size_t m = 0; m < parent.num_properties(); ++m) {
            fused.Set(chunk.parent_object[local], m, truths->Get(local, m));
          }
        }
      } else {
        store->AppendChunk(chunk.data, chunk.parent_object, false);
        const Status resolved =
            store->Resolve(parent, prev_weights, processor.source_weights(), options.base,
                           pool, mode, &fused);
        CRH_CHECK(resolved.ok());
      }
      latencies.push_back(step.ElapsedSeconds());
      result.claims += chunk_claims[c];
      ++result.chunks;
      // The first stream always completes, whatever the budget, so every
      // mode (and the verify pass, which runs with a zero budget) covers
      // each chunk of the workload at least once.
      const bool budget_spent =
          total.ElapsedSeconds() >= seconds_budget || result.chunks >= max_chunks;
      if (budget_spent && result.streams > 0) {
        out_of_budget = true;
        break;
      }
    }
    ++result.streams;
    if (total.ElapsedSeconds() >= seconds_budget) out_of_budget = true;
    if (store.has_value()) {
      const DeltaSolveStats& s = store->stats();
      result.delta.chunks += s.chunks;
      result.delta.entries_resolved += s.entries_resolved;
      result.delta.entries_full += s.entries_full;
      result.delta.sources_changed += s.sources_changed;
      result.delta.full_fallbacks += s.full_fallbacks;
    }
  }
  result.elapsed_seconds = total.ElapsedSeconds();
  result.latency = Percentiles(std::move(latencies));
  return result;
}

int Main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_crh_throughput.json";
  const double seconds_budget = EnvDouble("CRH_TP_SECONDS", 2.0);
  const size_t num_chunks = static_cast<size_t>(EnvInt("CRH_TP_CHUNKS", 8));
  const double scale = EnvDouble("CRH_SCALE", 1.0);
  const size_t num_sources = static_cast<size_t>(EnvInt("CRH_SOURCES", 32));
  const double density = EnvDouble("CRH_DENSITY", 0.10);
  const double skew = EnvDouble("CRH_SKEW", 1.0);
  const uint64_t seed = static_cast<uint64_t>(EnvInt("CRH_SEED", 42));
  const int threads = static_cast<int>(EnvInt("CRH_THREADS", 1));
  // Backstop so a pathologically fast machine cannot loop forever when the
  // budget is tiny (CI smoke runs with CRH_TP_SECONDS well under 1).
  const uint64_t max_chunks = static_cast<uint64_t>(EnvInt("CRH_TP_MAX_CHUNKS", 1 << 20));

  // --- Workload: Adult-schema truths, skew-thinned multi-source claims,
  // objects dealt round-robin into time windows.
  UciLikeOptions truth_options;
  truth_options.num_records = static_cast<size_t>(2000 * scale);
  truth_options.seed = 7;
  const Dataset truth = MakeAdultGroundTruth(truth_options);
  NoiseOptions noise;
  const std::vector<double> paper_gammas = PaperSimulationGammas();
  for (size_t k = 0; k < num_sources; ++k) {
    noise.gammas.push_back(paper_gammas[k % paper_gammas.size()]);
  }
  noise.missing_rate = 0.0;  // thinned per source below
  noise.seed = seed;
  auto noisy = MakeNoisyDataset(truth, noise);
  CRH_CHECK(noisy.ok());
  Dataset data = std::move(*noisy);

  // Per-source coverage: density_k proportional to 1/(k+1)^skew, scaled so
  // the mean across sources is the requested density.
  std::vector<double> density_per_source(num_sources);
  double skew_sum = 0.0;
  for (size_t k = 0; k < num_sources; ++k) {
    density_per_source[k] = 1.0 / std::pow(static_cast<double>(k + 1), skew);
    skew_sum += density_per_source[k];
  }
  for (size_t k = 0; k < num_sources; ++k) {
    density_per_source[k] =
        std::min(1.0, density * static_cast<double>(num_sources) * density_per_source[k] /
                          skew_sum);
  }
  for (size_t k = 0; k < num_sources; ++k) {
    ValueTable& table = data.mutable_observations(k);
    for (size_t i = 0; i < data.num_objects(); ++i) {
      for (size_t m = 0; m < data.num_properties(); ++m) {
        const uint64_t h = Mix(seed ^ (static_cast<uint64_t>(k) << 42) ^
                               (static_cast<uint64_t>(i) << 10) ^ m);
        const double u =
            static_cast<double>(h >> 11) / static_cast<double>(1ull << 53);
        if (u >= density_per_source[k]) table.Clear(i, m);
      }
    }
  }

  // Deal objects round-robin into num_chunks windows of one timestamp each.
  std::vector<int64_t> timestamps(data.num_objects());
  for (size_t i = 0; i < data.num_objects(); ++i) {
    timestamps[i] = static_cast<int64_t>(i % num_chunks);
  }
  CRH_CHECK(data.set_timestamps(std::move(timestamps)).ok());

  IncrementalCrhOptions options;
  options.window_size = 1;
  options.base.num_threads = threads;
  const std::string scheme = EnvString("CRH_TP_WEIGHTS", "log_max");
  if (scheme == "top_j") {
    options.base.weight_scheme.kind = WeightSchemeKind::kTopJ;
    options.base.weight_scheme.top_j =
        std::max<int>(1, static_cast<int>(num_sources) / 4);
  } else {
    CRH_CHECK(scheme == "log_max");
  }
  std::unique_ptr<ThreadPool> pool;
  if (ThreadPool::ResolveNumThreads(threads) > 1) {
    pool = std::make_unique<ThreadPool>(threads);
  }

  auto chunks = SplitByWindow(data, options.window_size);
  CRH_CHECK(chunks.ok());
  std::vector<uint64_t> chunk_claims(chunks->size(), 0);
  uint64_t claims_per_stream = 0;
  for (size_t c = 0; c < chunks->size(); ++c) {
    const Dataset& chunk = (*chunks)[c].data;
    for (size_t k = 0; k < chunk.num_sources(); ++k) {
      for (size_t i = 0; i < chunk.num_objects(); ++i) {
        for (size_t m = 0; m < chunk.num_properties(); ++m) {
          if (!chunk.observations(k).Get(i, m).is_missing()) ++chunk_claims[c];
        }
      }
    }
    claims_per_stream += chunk_claims[c];
  }
  std::printf("workload: %zu objects x %zu properties x %zu sources, %llu claims in %zu "
              "chunks (mean density %.3f, skew %.2f)\n",
              data.num_objects(), data.num_properties(), data.num_sources(),
              static_cast<unsigned long long>(claims_per_stream), chunks->size(), density,
              skew);

  const double calibration_ns = CalibrationNsPerOp();

  // --- Timed modes.
  const struct {
    const char* name;
    DeltaSolveMode mode;
  } timed_modes[] = {
      {"off", DeltaSolveMode::kOff},
      {"full", DeltaSolveMode::kFull},
      {"delta", DeltaSolveMode::kDelta},
  };
  std::vector<ModeResult> results;
  for (const auto& timed : timed_modes) {
    results.push_back(RunMode(timed.name, timed.mode, data, *chunks, chunk_claims, options,
                              pool.get(), seconds_budget, max_chunks));
    const ModeResult& r = results.back();
    const double ns_per_claim =
        r.elapsed_seconds * 1e9 / static_cast<double>(r.claims > 0 ? r.claims : 1);
    std::printf("mode %-6s %6llu chunks (%llu streams)  %10.0f claims/s  %8.1f ns/claim  "
                "latency ms p50 %.3f p90 %.3f p99 %.3f max %.3f\n",
                r.name.c_str(), static_cast<unsigned long long>(r.chunks),
                static_cast<unsigned long long>(r.streams),
                static_cast<double>(r.claims) / r.elapsed_seconds, ns_per_claim,
                r.latency.p50_ms, r.latency.p90_ms, r.latency.p99_ms, r.latency.max_ms);
    if (r.delta.entries_full > 0) {
      std::printf("            delta work: %llu of %llu entry updates (%llu full-pass "
                  "fallbacks)\n",
                  static_cast<unsigned long long>(r.delta.entries_resolved),
                  static_cast<unsigned long long>(r.delta.entries_full),
                  static_cast<unsigned long long>(r.delta.full_fallbacks));
    }
  }

  // --- Verify smoke: one untimed stream with the per-chunk bit-compare on.
  ModeResult verify = RunMode("verify", DeltaSolveMode::kVerify, data, *chunks, chunk_claims,
                              options, pool.get(), 0.0, max_chunks);
  CRH_CHECK_GE(verify.chunks, 1u);
  std::printf("verify: %llu chunk(s) bit-identical to the full re-solve "
              "(%llu of %llu entry updates run by delta)\n",
              static_cast<unsigned long long>(verify.delta.chunks),
              static_cast<unsigned long long>(verify.delta.entries_resolved),
              static_cast<unsigned long long>(verify.delta.entries_full));

  // --- JSON report.
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  CRH_CHECK(out != nullptr);
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema_version\": 1,\n");
  std::fprintf(out,
               "  \"workload\": {\"objects\": %zu, \"properties\": %zu, \"sources\": %zu, "
               "\"chunks\": %zu, \"claims_per_stream\": %llu, \"density\": %.4f, "
               "\"skew\": %.2f, \"scale\": %.3f, \"seed\": %llu, \"threads\": %d, "
               "\"weight_scheme\": \"%s\"},\n",
               data.num_objects(), data.num_properties(), data.num_sources(), chunks->size(),
               static_cast<unsigned long long>(claims_per_stream), density, skew, scale,
               static_cast<unsigned long long>(seed), threads, scheme.c_str());
  std::fprintf(out, "  \"target_seconds_per_mode\": %.3f,\n", seconds_budget);
  std::fprintf(out, "  \"calibration_ns_per_op\": %.4f,\n", calibration_ns);
#if defined(CRH_SIMD)
  std::fprintf(out, "  \"simd\": true,\n");
#else
  std::fprintf(out, "  \"simd\": false,\n");
#endif
  std::fprintf(out, "  \"modes\": [\n");
  for (size_t idx = 0; idx < results.size(); ++idx) {
    const ModeResult& r = results[idx];
    const double ns_per_claim =
        r.elapsed_seconds * 1e9 / static_cast<double>(r.claims > 0 ? r.claims : 1);
    std::fprintf(out,
                 "    {\"mode\": \"%s\", \"streams\": %llu, \"chunks\": %llu, "
                 "\"claims\": %llu, \"elapsed_seconds\": %.4f, \"claims_per_sec\": %.0f, "
                 "\"ns_per_claim\": %.1f, \"latency_ms\": {\"p50\": %.4f, \"p90\": %.4f, "
                 "\"p99\": %.4f, \"max\": %.4f}, \"entries_resolved\": %llu, "
                 "\"entries_full\": %llu, \"full_fallbacks\": %llu}%s\n",
                 r.name.c_str(), static_cast<unsigned long long>(r.streams),
                 static_cast<unsigned long long>(r.chunks),
                 static_cast<unsigned long long>(r.claims), r.elapsed_seconds,
                 static_cast<double>(r.claims) / r.elapsed_seconds, ns_per_claim,
                 r.latency.p50_ms, r.latency.p90_ms, r.latency.p99_ms, r.latency.max_ms,
                 static_cast<unsigned long long>(r.delta.entries_resolved),
                 static_cast<unsigned long long>(r.delta.entries_full),
                 static_cast<unsigned long long>(r.delta.full_fallbacks),
                 idx + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"verify\": {\"chunks\": %llu, \"entries_resolved\": %llu, "
               "\"entries_full\": %llu, \"ok\": true}\n",
               static_cast<unsigned long long>(verify.delta.chunks),
               static_cast<unsigned long long>(verify.delta.entries_resolved),
               static_cast<unsigned long long>(verify.delta.entries_full));
  std::fprintf(out, "}\n");
  if (std::fclose(out) != 0) {
    std::fprintf(stderr, "error: failed to close %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace crh::bench

int main(int argc, char** argv) { return crh::bench::Main(argc, argv); }
