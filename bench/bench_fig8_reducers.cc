/// \file bench_fig8_reducers.cc
/// Regenerates Figure 8: parallel CRH running time as a function of the
/// number of reducer nodes, at a fixed 4e8-observation input.
///
/// Expected shape: non-monotone — too few reducers serialize the reduce
/// phase, too many pay shuffle/connection overhead; the optimum sits near
/// 10 reducers, and 25 reducers is slower than 10 (the paper's
/// observation). The series comes from the calibrated cluster cost model;
/// a real-engine sweep at laptop scale is printed for validation of the
/// engine's reducer-count invariance (results identical, wall time
/// changing only mildly on a single machine).

#include <cstdio>

#include "bench_util.h"
#include "datagen/noise.h"
#include "datagen/uci_like.h"
#include "mapreduce/parallel_crh.h"

using namespace crh;
using namespace crh::bench;

int main() {
  const double scale = EnvDouble("CRH_SCALE", 1.0);
  const uint64_t seed = static_cast<uint64_t>(EnvInt("CRH_SEED", 7));
  ClusterCostModel model;
  const double n = 4e8;

  std::printf("=== Figure 8: running time vs number of reducers (4e8 observations) ===\n");
  std::printf("%-12s %14s\n", "# Reducers", "Time (s)");
  int best_r = 0;
  double best_t = 1e300;
  for (int r : {2, 4, 6, 8, 10, 12, 15, 20, 25}) {
    const double t = model.EstimateFusionSeconds(n, r);
    if (t < best_t) {
      best_t = t;
      best_r = r;
    }
    std::printf("%-12d %14.0f\n", r, t);
  }
  std::printf("optimum: %d reducers (%.0f s)\n", best_r, best_t);

  // Real engine sweep: correctness must be reducer-invariant.
  std::printf("\n--- validation: real engine, reducer sweep ---\n");
  UciLikeOptions uci;
  uci.num_records = static_cast<size_t>(2000 * scale);
  uci.seed = seed;
  NoiseOptions noise;
  noise.gammas = PaperSimulationGammas();
  noise.seed = seed + 1;
  auto noisy = MakeNoisyDataset(MakeAdultGroundTruth(uci), noise);
  if (!noisy.ok()) return 1;
  std::printf("%-12s %12s %12s\n", "# Reducers", "Wall (s)", "ErrorRate");
  for (int r : {1, 2, 5, 10, 25}) {
    ParallelCrhOptions options;
    options.max_iterations = 3;
    options.convergence_tolerance = 0.0;
    options.mr.num_reducers = r;
    auto result = RunParallelCrh(*noisy, options);
    if (!result.ok()) return 1;
    auto eval = Evaluate(*noisy, result->truths);
    std::printf("%-12d %12.3f %12.4f\n", r, result->wall_seconds,
                eval.ok() ? eval->error_rate : -1.0);
  }
  return 0;
}
