#include "bench_util.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/determinism.h"
#include "common/stopwatch.h"

namespace crh::bench {

// The Env* knobs are the sanctioned environment shim: they parameterize a
// benchmark run (scale, seed) before any computation starts, so the run is
// reproducible *given* its printed configuration — the value never mixes
// into results behind the configuration's back.

double EnvDouble(const char* name, double default_value) {
  CRH_DETERMINISM_EXEMPT("bench knob; run config, echoed in the report");
  const char* value = std::getenv(name);
  return value != nullptr ? std::atof(value) : default_value;
}

int64_t EnvInt(const char* name, int64_t default_value) {
  CRH_DETERMINISM_EXEMPT("bench knob; run config, echoed in the report");
  const char* value = std::getenv(name);
  return value != nullptr ? std::atoll(value) : default_value;
}

std::string EnvString(const char* name, const char* default_value) {
  CRH_DETERMINISM_EXEMPT("bench knob; run config, echoed in the report");
  const char* value = std::getenv(name);
  return value != nullptr ? value : default_value;
}

MethodResult RunCrhMethod(const Dataset& data) {
  MethodResult row;
  row.name = "CRH";
  row.has_categorical = true;
  row.has_continuous = true;
  Stopwatch watch;
  auto result = RunCrh(data);
  row.seconds = watch.ElapsedSeconds();
  if (!result.ok()) {
    std::fprintf(stderr, "CRH failed: %s\n", result.status().ToString().c_str());
    return row;
  }
  auto eval = Evaluate(data, result->truths);
  if (eval.ok()) {
    row.error_rate = eval->error_rate;
    row.mnad = eval->mnad;
  }
  row.source_scores = result->source_weights;
  return row;
}

std::vector<MethodResult> RunAllMethods(const Dataset& data) {
  std::vector<MethodResult> rows;
  rows.push_back(RunCrhMethod(data));
  for (const auto& method : MakeAllBaselines()) {
    MethodResult row;
    row.name = method->name();
    row.has_categorical = method->handles_categorical();
    row.has_continuous = method->handles_continuous();
    Stopwatch watch;
    auto out = method->Run(data);
    row.seconds = watch.ElapsedSeconds();
    if (!out.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", method->name(),
                   out.status().ToString().c_str());
      continue;
    }
    auto eval = Evaluate(data, out->truths);
    if (eval.ok()) {
      row.error_rate = eval->error_rate;
      row.mnad = eval->mnad;
    }
    row.source_scores = out->source_scores;
    rows.push_back(std::move(row));
  }
  return rows;
}

void PrintDatasetStats(const std::string& name, const Dataset& data) {
  std::printf("%s: %zu observations, %zu entries, %zu ground truths, %zu sources, %zu properties\n",
              name.c_str(), data.num_observations(), data.num_entries(),
              data.num_ground_truths(), data.num_sources(), data.num_properties());
}

void PrintComparisonTable(const std::string& title,
                          const std::vector<MethodResult>& results) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%-18s %12s %12s %10s\n", "Method", "Error Rate", "MNAD", "Time (s)");
  std::printf("%-18s %12s %12s %10s\n", "------", "----------", "----", "--------");
  for (const MethodResult& row : results) {
    char err[32], mnad[32];
    if (row.has_categorical && !std::isnan(row.error_rate)) {
      std::snprintf(err, sizeof(err), "%.4f", row.error_rate);
    } else {
      std::snprintf(err, sizeof(err), "NA");
    }
    if (row.has_continuous && !std::isnan(row.mnad)) {
      std::snprintf(mnad, sizeof(mnad), "%.4f", row.mnad);
    } else {
      std::snprintf(mnad, sizeof(mnad), "NA");
    }
    std::printf("%-18s %12s %12s %10.3f\n", row.name.c_str(), err, mnad, row.seconds);
  }
}

void PrintSeries(const std::string& title, const std::vector<std::string>& row_labels,
                 const std::vector<std::string>& column_labels,
                 const std::vector<std::vector<double>>& values) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%-22s", "");
  for (const std::string& col : column_labels) std::printf(" %10s", col.c_str());
  std::printf("\n");
  for (size_t r = 0; r < row_labels.size(); ++r) {
    std::printf("%-22s", row_labels[r].c_str());
    for (double v : values[r]) std::printf(" %10.4f", v);
    std::printf("\n");
  }
}

}  // namespace crh::bench
