/// \file bench_fig1_source_weights.cc
/// Regenerates Figure 1: estimated source reliability degrees on the
/// weather dataset, normalized to [0, 1], against the ground-truth
/// reliability — for CRH (Fig 1a) and for GTM / AccuSim / 3-Estimates /
/// PooledInvestment (Figs 1b, 1c).
///
/// The paper's finding: CRH's weights track the true reliability pattern
/// closely, while the baselines capture it only partially. We also print
/// the Spearman rank correlation of each method's scores with the truth.

#include <cstdio>

#include "bench_util.h"
#include "datagen/real_world.h"

using namespace crh;
using namespace crh::bench;

int main() {
  const uint64_t seed = static_cast<uint64_t>(EnvInt("CRH_SEED", 0));
  WeatherOptions options;
  if (seed != 0) options.seed = seed;
  Dataset weather = MakeWeatherDataset(options);
  std::printf("=== Figure 1: source reliability degrees, weather dataset ===\n");

  const std::vector<double> truth = NormalizeScores(TrueSourceReliability(weather));

  std::vector<std::string> row_labels = {"GroundTruth"};
  std::vector<std::vector<double>> rows = {truth};
  std::vector<double> correlations = {1.0};

  for (const MethodResult& row : RunAllMethods(weather)) {
    // Figure 1 shows CRH plus the stronger representative of each baseline
    // family (GTM, AccuSim, 3-Estimates, PooledInvestment).
    if (row.name != "CRH" && row.name != "GTM" && row.name != "AccuSim" &&
        row.name != "3-Estimates" && row.name != "PooledInvestment") {
      continue;
    }
    row_labels.push_back(row.name);
    rows.push_back(NormalizeScores(row.source_scores));
    correlations.push_back(SpearmanCorrelation(row.source_scores, truth));
  }

  std::vector<std::string> columns;
  for (size_t k = 0; k < weather.num_sources(); ++k) {
    columns.push_back(weather.source_id(k).substr(0, 10));
  }
  PrintSeries("Normalized reliability per source", row_labels, columns, rows);

  std::printf("\nSpearman rank correlation with ground-truth reliability\n");
  for (size_t r = 0; r < row_labels.size(); ++r) {
    std::printf("%-18s %8.4f\n", row_labels[r].c_str(), correlations[r]);
  }
  return 0;
}
