/// \file bench_fig56_window_decay.cc
/// Regenerates Figures 5 and 6: I-CRH's Error Rate and MNAD on the weather
/// dataset (a) as the time-window size varies — too small a window lacks
/// data for stable weights, then performance levels off — and (b) as the
/// decay rate alpha varies — performance is insensitive when source
/// reliability is consistent over time.

#include <cstdio>

#include "bench_util.h"
#include "datagen/real_world.h"
#include "stream/incremental_crh.h"

using namespace crh;
using namespace crh::bench;

int main() {
  const uint64_t seed = static_cast<uint64_t>(EnvInt("CRH_SEED", 0));
  WeatherOptions options;
  if (seed != 0) options.seed = seed;
  Dataset weather = MakeWeatherDataset(options);
  std::printf("=== Figures 5 & 6: I-CRH vs time window and decay rate ===\n");

  {
    std::vector<std::string> rows = {"Error Rate", "MNAD"};
    std::vector<std::string> columns;
    std::vector<std::vector<double>> values(2);
    for (int64_t window : {1, 2, 4, 8, 16, 24, 48, 96, 192}) {
      columns.push_back("w=" + std::to_string(window) + "h");
      IncrementalCrhOptions icrh_options;
      icrh_options.window_size = window;
      auto result = RunIncrementalCrh(weather, icrh_options);
      if (!result.ok()) return 1;
      auto eval = Evaluate(weather, result->truths);
      if (!eval.ok()) return 1;
      values[0].push_back(eval->error_rate);
      values[1].push_back(eval->mnad);
    }
    PrintSeries("Fig 5 — I-CRH vs time-window size (hours; 24 = one day)", rows, columns, values);
  }

  {
    std::vector<std::string> rows = {"Error Rate", "MNAD"};
    std::vector<std::string> columns;
    std::vector<std::vector<double>> values(2);
    for (double alpha : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
      char label[16];
      std::snprintf(label, sizeof(label), "a=%.1f", alpha);
      columns.push_back(label);
      IncrementalCrhOptions icrh_options;
      icrh_options.window_size = 24;
      icrh_options.decay = alpha;
      auto result = RunIncrementalCrh(weather, icrh_options);
      if (!result.ok()) return 1;
      auto eval = Evaluate(weather, result->truths);
      if (!eval.ok()) return 1;
      values[0].push_back(eval->error_rate);
      values[1].push_back(eval->mnad);
    }
    PrintSeries("Fig 6 — I-CRH vs decay rate alpha", rows, columns, values);
  }
  return 0;
}
