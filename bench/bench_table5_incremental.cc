/// \file bench_table5_incremental.cc
/// Regenerates Table 5: CRH vs Incremental CRH (I-CRH) — Error Rate, MNAD
/// and running time on the weather, stock and flight datasets, streamed
/// day by day.
///
/// Expected shape: I-CRH is several times faster (one pass per chunk, no
/// inner iteration) at slightly worse accuracy.

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "datagen/real_world.h"
#include "stream/incremental_crh.h"

using namespace crh;
using namespace crh::bench;

namespace {

void RunOne(const char* name, const Dataset& data, int64_t window = 1) {
  Stopwatch crh_watch;
  auto crh = RunCrh(data);
  const double crh_seconds = crh_watch.ElapsedSeconds();
  IncrementalCrhOptions icrh_options;
  icrh_options.window_size = window;
  Stopwatch icrh_watch;
  auto icrh = RunIncrementalCrh(data, icrh_options);
  const double icrh_seconds = icrh_watch.ElapsedSeconds();
  if (!crh.ok() || !icrh.ok()) {
    std::fprintf(stderr, "%s: run failed\n", name);
    return;
  }
  auto crh_eval = Evaluate(data, crh->truths);
  auto icrh_eval = Evaluate(data, icrh->truths);
  if (!crh_eval.ok() || !icrh_eval.ok()) return;
  std::printf("\nTable 5 — %s\n", name);
  std::printf("%-8s %12s %12s %12s\n", "Method", "Error Rate", "MNAD", "Time (s)");
  std::printf("%-8s %12.4f %12.4f %12.4f\n", "CRH", crh_eval->error_rate, crh_eval->mnad,
              crh_seconds);
  std::printf("%-8s %12.4f %12.4f %12.4f\n", "I-CRH", icrh_eval->error_rate,
              icrh_eval->mnad, icrh_seconds);
  std::printf("speedup: %.2fx\n", crh_seconds / icrh_seconds);
}

}  // namespace

int main() {
  const double scale = EnvDouble("CRH_SCALE", 0.25);
  const uint64_t seed = static_cast<uint64_t>(EnvInt("CRH_SEED", 0));
  std::printf("=== Table 5: CRH vs I-CRH (CRH_SCALE=%.2f) ===\n", scale);

  {
    WeatherOptions options;
    if (seed != 0) options.seed = seed;
    RunOne("Weather", MakeWeatherDataset(options), /*window=*/24);
  }
  {
    StockOptions options;
    options.num_symbols = std::max(20, static_cast<int>(1000 * scale));
    options.num_days = std::max(5, static_cast<int>(21 * scale));
    options.labeled_symbols = std::max(5, static_cast<int>(100 * scale));
    if (seed != 0) options.seed = seed;
    RunOne("Stock", MakeStockDataset(options));
  }
  {
    FlightOptions options;
    options.num_flights = std::max(30, static_cast<int>(1200 * scale));
    options.num_days = std::max(5, static_cast<int>(30 * scale));
    if (seed != 0) options.seed = seed;
    RunOne("Flight", MakeFlightDataset(options));
  }
  return 0;
}
