/// \file bench_ablation.cc
/// Ablations of the CRH design choices called out in DESIGN.md:
///
///  1. weight normalization: max (Section 2.3's preference) vs sum (the
///     exact Eq 5 closed form) vs best-source selection vs top-j;
///  2. continuous truth model: weighted median (robust) vs weighted mean,
///     with and without gross outliers in the claims;
///  3. categorical truth model: 0-1 voting vs soft probability vectors;
///  4. joint heterogeneous estimation vs per-type estimation (the paper's
///     central claim).

#include <cstdio>

#include "bench_util.h"
#include "datagen/noise.h"
#include "datagen/uci_like.h"

using namespace crh;
using namespace crh::bench;

namespace {

Dataset MakeSim(double outlier_rate, uint64_t seed) {
  UciLikeOptions uci;
  uci.num_records = static_cast<size_t>(EnvInt("CRH_RECORDS", 3000));
  uci.seed = seed;
  NoiseOptions noise;
  noise.gammas = PaperSimulationGammas();
  noise.outlier_rate = outlier_rate;
  noise.seed = seed + 1;
  auto noisy = MakeNoisyDataset(MakeAdultGroundTruth(uci), noise);
  return std::move(noisy).ValueOrDie();
}

void Report(const char* label, const Dataset& data, const CrhOptions& options) {
  auto result = RunCrh(data, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed\n", label);
    return;
  }
  auto eval = Evaluate(data, result->truths);
  if (!eval.ok()) return;
  std::printf("%-42s err=%.4f  mnad=%.4f  iters=%d\n", label, eval->error_rate,
              eval->mnad, result->iterations);
}

}  // namespace

int main() {
  const uint64_t seed = static_cast<uint64_t>(EnvInt("CRH_SEED", 7));
  std::printf("=== CRH design-choice ablations (Adult simulation) ===\n");

  Dataset data = MakeSim(/*outlier_rate=*/0.03, seed);
  Dataset clean = MakeSim(/*outlier_rate=*/0.0, seed);

  std::printf("\n-- weight scheme (with outliers) --\n");
  {
    CrhOptions o;
    o.weight_scheme.kind = WeightSchemeKind::kLogMax;
    Report("log weights, max normalization (paper)", data, o);
    o.weight_scheme.kind = WeightSchemeKind::kLogSum;
    Report("log weights, sum normalization (Eq 5)", data, o);
    o.weight_scheme.kind = WeightSchemeKind::kBestSourceLp;
    Report("Lp-norm single-source selection (Eq 6)", data, o);
    o.weight_scheme.kind = WeightSchemeKind::kTopJ;
    o.weight_scheme.top_j = 3;
    Report("top-3 source selection (Eq 7)", data, o);
  }

  std::printf("\n-- continuous truth model --\n");
  {
    CrhOptions o;
    o.continuous_model = ContinuousModel::kMedian;
    Report("weighted median, with outliers", data, o);
    o.continuous_model = ContinuousModel::kMean;
    Report("weighted mean, with outliers", data, o);
    o.continuous_model = ContinuousModel::kMedian;
    Report("weighted median, clean claims", clean, o);
    o.continuous_model = ContinuousModel::kMean;
    Report("weighted mean, clean claims", clean, o);
  }

  std::printf("\n-- categorical truth model --\n");
  {
    CrhOptions o;
    o.categorical_model = CategoricalModel::kVoting;
    Report("0-1 loss, weighted voting (Eq 8/9)", data, o);
    o.categorical_model = CategoricalModel::kSoftProbability;
    Report("probability vectors (Eq 11/12)", data, o);
  }

  std::printf("\n-- normalization choices --\n");
  {
    CrhOptions o;
    Report("per-property sum normalization (default)", data, o);
    o.property_normalization = PropertyLossNormalization::kMax;
    Report("per-property max normalization", data, o);
    o.property_normalization = PropertyLossNormalization::kNone;
    Report("no per-property normalization", data, o);
    o = CrhOptions();
    o.normalize_by_observation_count = false;
    Report("no per-count normalization", data, o);
  }
  return 0;
}
