/// \file bench_table4_simulated.cc
/// Regenerates Table 3 (simulated dataset statistics) and Table 4 (Error
/// Rate + MNAD of all methods on the noisy multi-source simulations built
/// from the UCI Adult and Bank schemas).
///
/// Protocol (Section 3.2.2): the generated records are the ground truth;
/// eight conflicting sources are derived by injecting noise with gamma in
/// {0.1, 0.4, 0.7, 1, 1.3, 1.6, 1.9, 2}. Expected shape: CRH recovers the
/// categorical truths essentially perfectly and posts the lowest MNAD,
/// with PooledInvestment/AccuSim the strongest baselines.
///
/// CRH_SCALE scales the record counts (1.0 = the UCI-faithful 32,561 /
/// 45,211 records).

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "datagen/noise.h"
#include "datagen/uci_like.h"

using namespace crh;
using namespace crh::bench;

int main() {
  const double scale = EnvDouble("CRH_SCALE", 0.1);
  const uint64_t seed = static_cast<uint64_t>(EnvInt("CRH_SEED", 7));
  std::printf("=== Table 3 + Table 4: simulated data sets (CRH_SCALE=%.2f) ===\n", scale);

  const auto run = [&](const char* name, Dataset truth_data) {
    NoiseOptions noise;
    noise.gammas = PaperSimulationGammas();
    noise.seed = seed + 1;
    auto noisy = MakeNoisyDataset(truth_data, noise);
    if (!noisy.ok()) {
      std::fprintf(stderr, "%s generation failed: %s\n", name,
                   noisy.status().ToString().c_str());
      return;
    }
    PrintDatasetStats(name, *noisy);
    PrintComparisonTable(std::string("Table 4 — ") + name, RunAllMethods(*noisy));
  };

  UciLikeOptions adult;
  adult.num_records = std::max<size_t>(500, static_cast<size_t>(32561 * scale));
  adult.seed = seed;
  run("Adult", MakeAdultGroundTruth(adult));

  UciLikeOptions bank;
  bank.num_records = std::max<size_t>(500, static_cast<size_t>(45211 * scale));
  bank.seed = seed;
  run("Bank", MakeBankGroundTruth(bank));
  return 0;
}
