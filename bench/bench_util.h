#ifndef CRH_BENCH_BENCH_UTIL_H_
#define CRH_BENCH_BENCH_UTIL_H_

/// \file bench_util.h
/// Shared harness code for the per-table/per-figure benchmark binaries.
///
/// Every binary regenerates one table or figure of the paper and prints the
/// same rows/series the paper reports. Scales can be adjusted without
/// recompiling:
///
///   CRH_SCALE=1.0   — multiplier on dataset sizes (default varies per bench)
///   CRH_SEED=...    — RNG seed for dataset generation

#include <string>
#include <vector>

#include "baselines/baselines.h"
#include "core/crh.h"
#include "data/dataset.h"
#include "eval/metrics.h"

namespace crh::bench {

/// Reads a double from the environment, with default.
double EnvDouble(const char* name, double default_value);

/// Reads an integer from the environment, with default.
int64_t EnvInt(const char* name, int64_t default_value);

/// Reads a string-valued bench knob (e.g. a weight-scheme name).
std::string EnvString(const char* name, const char* default_value);

/// One method's row in a comparison table.
struct MethodResult {
  std::string name;
  bool has_categorical = false;
  bool has_continuous = false;
  double error_rate = 0.0;
  double mnad = 0.0;
  double seconds = 0.0;
  /// Raw reliability scores, for the Fig 1 style comparisons.
  std::vector<double> source_scores;
};

/// Runs CRH (paper configuration) followed by the ten baselines of Section
/// 3.1.2 on the dataset and evaluates each against the ground truth.
std::vector<MethodResult> RunAllMethods(const Dataset& data);

/// Runs only CRH and returns its row (plus weights in source_scores).
MethodResult RunCrhMethod(const Dataset& data);

/// Prints the Table 1 style dataset statistics block.
void PrintDatasetStats(const std::string& name, const Dataset& data);

/// Prints a Table 2/4 style comparison: Method | Error Rate | MNAD (NA for
/// property types a method does not handle).
void PrintComparisonTable(const std::string& title,
                          const std::vector<MethodResult>& results);

/// Prints a labeled numeric series (figure data) as aligned columns.
void PrintSeries(const std::string& title, const std::vector<std::string>& row_labels,
                 const std::vector<std::string>& column_labels,
                 const std::vector<std::vector<double>>& values);

}  // namespace crh::bench

#endif  // CRH_BENCH_BENCH_UTIL_H_
