/// \file bench_extensions.cc
/// Benchmarks for the framework extensions beyond the paper's evaluation
/// (each motivated by the paper itself — see DESIGN.md, "Extensions"):
///
///  1. CATD confidence weighting on long-tail data (paper reference [23]);
///  2. dependence-aware CRH under copier amplification (the paper's stated
///     future work, Dong et al. 2009);
///  3. fine-grained per-type weights when source-weight consistency is
///     violated (Section 2.5);
///  4. text properties with edit-distance losses (Section 2.4).

#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "core/catd.h"
#include "core/dependence.h"
#include "datagen/noise.h"
#include "losses/text_distance.h"

using namespace crh;
using namespace crh::bench;

namespace {

void ReportRow(const char* label, const Dataset& data, const ValueTable& truths) {
  auto eval = Evaluate(data, truths);
  if (!eval.ok()) return;
  std::printf("  %-38s err=%.4f  mnad=%s\n", label, eval->error_rate,
              eval->continuous_evaluated > 0
                  ? (std::to_string(eval->mnad).substr(0, 6)).c_str()
                  : "NA");
}

/// Long-tail: 2 head sources claim everything; 280 tail sources claim only
/// ~8 entries each (the long-tail regime of the CATD paper). By chance a
/// few tails are perfect on their handful of claims; point-estimate
/// weights over-trust them, confidence intervals do not.
Dataset MakeLongTail(uint64_t seed) {
  Schema schema;
  (void)schema.AddCategorical("y");
  const size_t n = 1500;
  const int num_tails = 280;
  std::vector<std::string> objects;
  for (size_t i = 0; i < n; ++i) objects.push_back("o" + std::to_string(i));
  std::vector<std::string> sources = {"head_good", "head_ok"};
  for (int t = 0; t < num_tails; ++t) sources.push_back("tail_" + std::to_string(t));
  Dataset data(schema, objects, sources);
  for (const char* l : {"a", "b", "c", "d"}) data.mutable_dict(0).GetOrAdd(l);
  Rng rng(seed);
  ValueTable truth(n, 1);
  const auto claim = [&](double acc, CategoryId t) {
    if (rng.Bernoulli(acc)) return Value::Categorical(t);
    CategoryId alt = static_cast<CategoryId>(rng.UniformInt(0, 2));
    if (alt >= t) ++alt;
    return Value::Categorical(alt);
  };
  for (size_t i = 0; i < n; ++i) {
    const CategoryId t = static_cast<CategoryId>(rng.UniformInt(0, 3));
    truth.Set(i, 0, Value::Categorical(t));
    data.SetObservation(0, i, 0, claim(0.9, t));
    data.SetObservation(1, i, 0, claim(0.62, t));
  }
  for (int t = 0; t < num_tails; ++t) {
    const double acc = rng.Uniform(0.35, 0.75);
    for (int c = 0; c < 8; ++c) {
      const size_t i = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(n) - 1));
      data.SetObservation(2 + static_cast<size_t>(t), i, 0,
                          claim(acc, truth.Get(i, 0).category()));
    }
  }
  data.set_ground_truth(std::move(truth));
  return data;
}

}  // namespace

int main() {
  const uint64_t seed = static_cast<uint64_t>(EnvInt("CRH_SEED", 7));

  std::printf("=== Extension benchmarks ===\n");

  {
    std::printf("\n-- 1. long-tail sources: CRH vs CATD --\n");
    Dataset data = MakeLongTail(seed);
    auto crh = RunCrh(data);
    CrhOptions uncapped;
    uncapped.weight_scheme.epsilon_ratio = 1e-8;  // the paper's raw -log weights
    auto crh_uncapped = RunCrh(data, uncapped);
    auto catd = RunCatd(data);
    if (crh_uncapped.ok()) {
      ReportRow("CRH, uncapped weights (paper)", data, crh_uncapped->truths);
    }
    if (crh.ok()) ReportRow("CRH, capped weights (this library)", data, crh->truths);
    if (catd.ok()) ReportRow("CATD (chi-squared confidence)", data, catd->truths);
    std::printf("  (a lucky 8-claim tail source gets the same weight as a 1500-claim\n"
                "   head under point estimates; the chi-squared numerator prevents it)\n");
  }

  {
    std::printf("\n-- 2. copier amplification: CRH vs dependence-aware CRH --\n");
    // 4 honest sources, 1 mediocre original, 2 verbatim copiers.
    Schema schema;
    (void)schema.AddCategorical("y");
    const size_t n = 2000;
    std::vector<std::string> objects;
    for (size_t i = 0; i < n; ++i) objects.push_back("o" + std::to_string(i));
    Dataset data(schema, objects,
                 {"good0", "good1", "good2", "good3", "original", "copier0", "copier1"});
    for (const char* l : {"a", "b", "c", "d", "e", "f"}) data.mutable_dict(0).GetOrAdd(l);
    Rng rng(seed + 1);
    ValueTable truth(n, 1);
    const auto noisy_claim = [&](double acc, CategoryId t) {
      if (rng.Bernoulli(acc)) return t;
      CategoryId alt = static_cast<CategoryId>(rng.UniformInt(0, 4));
      if (alt >= t) ++alt;
      return alt;
    };
    for (size_t i = 0; i < n; ++i) {
      const CategoryId t = static_cast<CategoryId>(rng.UniformInt(0, 5));
      truth.Set(i, 0, Value::Categorical(t));
      for (size_t g = 0; g < 4; ++g) {
        data.SetObservation(g, i, 0, Value::Categorical(noisy_claim(0.85, t)));
      }
      const CategoryId original = noisy_claim(0.55, t);
      data.SetObservation(4, i, 0, Value::Categorical(original));
      for (size_t cidx = 0; cidx < 2; ++cidx) {
        data.SetObservation(5 + cidx, i, 0,
                            Value::Categorical(rng.Bernoulli(0.95) ? original
                                                                   : noisy_claim(0.55, t)));
      }
    }
    data.set_ground_truth(std::move(truth));
    CrhOptions options;
    options.weight_scheme.kind = WeightSchemeKind::kLogSum;
    auto plain = RunCrh(data, options);
    auto aware = RunDependenceAwareCrh(data, options);
    if (plain.ok()) ReportRow("CRH (copies count as confirmation)", data, plain->truths);
    if (aware.ok()) {
      ReportRow("dependence-aware CRH", data, aware->truths);
      std::printf("  detected copier discounts:");
      for (size_t k = 0; k < data.num_sources(); ++k) {
        std::printf(" %.2f", aware->dependence.independence[k]);
      }
      std::printf("\n");
    }
  }

  {
    std::printf("\n-- 3. weight-consistency violation: global vs per-type weights --\n");
    Schema schema;
    (void)schema.AddContinuous("x");
    (void)schema.AddCategorical("y");
    const size_t n = 2000;
    std::vector<std::string> objects;
    for (size_t i = 0; i < n; ++i) objects.push_back("o" + std::to_string(i));
    Dataset data(schema, objects, {"split", "med1", "med2", "med3"});
    for (const char* l : {"a", "b", "c", "d"}) data.mutable_dict(1).GetOrAdd(l);
    Rng rng(seed + 2);
    ValueTable truth(n, 2);
    const auto cat_claim = [&](double acc, CategoryId t) {
      if (rng.Bernoulli(acc)) return t;
      CategoryId alt = static_cast<CategoryId>(rng.UniformInt(0, 2));
      if (alt >= t) ++alt;
      return alt;
    };
    for (size_t i = 0; i < n; ++i) {
      const double x = std::round(rng.Uniform(0, 100));
      const CategoryId y = static_cast<CategoryId>(rng.UniformInt(0, 3));
      truth.Set(i, 0, Value::Continuous(x));
      truth.Set(i, 1, Value::Categorical(y));
      data.SetObservation(0, i, 0, Value::Continuous(x + rng.Gaussian(0, 0.5)));
      data.SetObservation(0, i, 1, Value::Categorical(cat_claim(0.15, y)));
      for (size_t k = 1; k < 4; ++k) {
        data.SetObservation(k, i, 0, Value::Continuous(x + rng.Gaussian(0, 6.0)));
        data.SetObservation(k, i, 1, Value::Categorical(cat_claim(0.65, y)));
      }
    }
    data.set_ground_truth(std::move(truth));
    CrhOptions global;
    global.weight_scheme.kind = WeightSchemeKind::kLogSum;
    CrhOptions per_type = global;
    per_type.weight_granularity = WeightGranularity::kPerType;
    auto a = RunCrh(data, global);
    auto b = RunCrh(data, per_type);
    if (a.ok()) ReportRow("global weights (paper assumption)", data, a->truths);
    if (b.ok()) ReportRow("per-type weights (Section 2.5)", data, b->truths);
  }

  {
    std::printf("\n-- 4. text properties: edit-distance loss vs 0-1 treatment --\n");
    // Four sources with the SAME exact-match accuracy but different typo
    // severity: two make single-character slips, two mangle the string.
    // The 0-1 treatment cannot tell them apart; the edit-distance loss can,
    // and the medoid prefers near-miss claims when nobody is exact.
    const size_t n = 2000;
    Rng rng(seed + 3);
    const std::vector<std::string> stems = {"north bakery", "grand hotel", "river diner",
                                            "central pharmacy", "harbor cafe"};
    std::vector<std::string> names(n);
    for (size_t i = 0; i < n; ++i) {
      names[i] = stems[static_cast<size_t>(rng.UniformInt(0, 4))] + " " +
                 std::to_string(rng.UniformInt(1, 99));
    }
    const auto corrupt = [&](std::string label, int edits) {
      for (int e = 0; e < edits && !label.empty(); ++e) {
        const size_t pos =
            static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(label.size()) - 1));
        label[pos] = static_cast<char>('a' + rng.UniformInt(0, 25));
      }
      return label;
    };
    const int severity[4] = {1, 1, 5, 7};
    const auto build = [&](bool as_text, uint64_t claim_seed) {
      Schema schema;
      if (as_text) {
        (void)schema.AddText("name");
      } else {
        (void)schema.AddCategorical("name");
      }
      std::vector<std::string> objects;
      for (size_t i = 0; i < n; ++i) objects.push_back("o" + std::to_string(i));
      Dataset data(schema, objects, {"light1", "light2", "heavy1", "heavy2"});
      ValueTable truth(n, 1);
      Rng claims(claim_seed);
      rng = Rng(claim_seed + 17);  // corrupt() positions
      for (size_t i = 0; i < n; ++i) {
        truth.Set(i, 0, data.InternCategorical(0, names[i]));
        for (size_t k = 0; k < 4; ++k) {
          std::string label = names[i];
          if (claims.Bernoulli(0.5)) label = corrupt(label, severity[k]);
          data.SetObservation(k, i, 0, data.InternCategorical(0, label));
        }
      }
      data.set_ground_truth(std::move(truth));
      return data;
    };
    Dataset text_data = build(true, seed + 40);
    Dataset cat_data = build(false, seed + 40);
    CrhOptions options;
    options.weight_scheme.kind = WeightSchemeKind::kLogSum;  // no collapse
    auto text_result = RunCrh(text_data, options);
    auto cat_result = RunCrh(cat_data, options);
    // Exact-match error undersells the text loss (a one-character miss
    // counts as fully wrong), so also report how *close* the fused names
    // are to the truth.
    const auto mean_edit = [&](const Dataset& data, const ValueTable& truths) {
      double total = 0;
      size_t count = 0;
      for (size_t i = 0; i < n; ++i) {
        const Value& est = truths.Get(i, 0);
        if (est.is_missing()) continue;
        total += NormalizedEditDistance(data.dict(0).label(est.category()), names[i]);
        ++count;
      }
      return total / static_cast<double>(count);
    };
    if (text_result.ok()) {
      ReportRow("kText + normalized edit distance", text_data, text_result->truths);
      std::printf("    mean edit distance of fused names: %.4f\n",
                  mean_edit(text_data, text_result->truths));
    }
    if (cat_result.ok()) {
      ReportRow("kCategorical + 0-1 loss", cat_data, cat_result->truths);
      std::printf("    mean edit distance of fused names: %.4f\n",
                  mean_edit(cat_data, cat_result->truths));
    }
  }
  return 0;
}
