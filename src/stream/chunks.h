#ifndef CRH_STREAM_CHUNKS_H_
#define CRH_STREAM_CHUNKS_H_

/// \file chunks.h
/// Slicing a timestamped dataset into the sequential chunks the streaming
/// scenario of Section 2.6 consumes.
///
/// Each chunk covers a time window of `window_size` consecutive timestamps
/// and contains the objects (with their observations and ground truths)
/// falling in that window. The chunk remembers each object's index in the
/// parent dataset so per-chunk truths can be scattered back.

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace crh {

/// One time window of a streaming dataset.
struct DataChunk {
  /// The sub-dataset (same schema, sources and dictionaries as the parent).
  Dataset data;
  /// parent_object[i] is the parent-dataset index of the chunk's object i.
  std::vector<size_t> parent_object;
  /// First timestamp of the window (inclusive).
  int64_t window_start = 0;
};

/// Splits \p data into chunks of `window_size` consecutive timestamps.
/// Requires timestamps on the dataset. Windows are aligned to the minimum
/// timestamp; empty windows are skipped. Chunks are returned in time order.
[[nodiscard]]
Result<std::vector<DataChunk>> SplitByWindow(const Dataset& data, int64_t window_size);

}  // namespace crh

#endif  // CRH_STREAM_CHUNKS_H_
