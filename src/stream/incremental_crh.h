#ifndef CRH_STREAM_INCREMENTAL_CRH_H_
#define CRH_STREAM_INCREMENTAL_CRH_H_

/// \file incremental_crh.h
/// Incremental CRH (Algorithm 2 of the paper) for streaming data.
///
/// Data arrives in sequential chunks. For each chunk, I-CRH (i) computes
/// truths from the source weights learned on past data (one truth pass, no
/// inner iteration), then (ii) folds the chunk's per-source deviations into
/// exponentially decayed accumulators and refreshes the weights:
///
///   a_k <- alpha * a_k + sum_{entries in chunk} d_m(v*, v_k)
///   w   <- WeightScheme(a)
///
/// A smaller decay rate alpha forgets the past faster. One pass over the
/// data, so it is several times faster than batch CRH at slightly lower
/// accuracy (Table 5).

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/crh.h"
#include "data/dataset.h"
#include "stream/chunks.h"

namespace crh {

/// Configuration for incremental CRH.
struct IncrementalCrhOptions {
  /// Loss models, weight scheme and normalizations (max_iterations and the
  /// convergence tolerance are ignored: I-CRH runs one pass per chunk).
  CrhOptions base;
  /// Decay rate alpha in [0, 1]: the weight of past deviations when a new
  /// chunk arrives. 0 forgets the past entirely, 1 never discounts it.
  double decay = 0.5;
  /// Number of consecutive timestamps per chunk (the time window).
  int64_t window_size = 1;
  /// Graceful degradation for dirty feeds: instead of aborting the stream,
  /// ProcessChunk excludes malformed claims — non-finite continuous values,
  /// categorical/text labels outside the property's dictionary, and cells
  /// whose kind contradicts the schema — and counts them per source (see
  /// quarantined_per_source()). The retained claims are processed exactly
  /// as if the input had been pre-cleaned, so results on the clean subset
  /// are bit-identical either way.
  bool quarantine_bad_claims = false;
};

/// The complete learned state of an IncrementalCrhProcessor, as captured by
/// ExportState() and restored by ImportState(). This is the unit of
/// persistence for crash recovery (stream/checkpoint.h): everything
/// Algorithm 2 carries between chunks lives here.
struct IncrementalCrhState {
  /// Source weights w_k.
  std::vector<double> weights;
  /// Decayed accumulated deviations a_k.
  std::vector<double> accumulated;
  /// Chunks folded into the accumulators so far.
  uint64_t chunks_processed = 0;
  /// Claims quarantined per source so far (all zeros unless
  /// quarantine_bad_claims is on).
  std::vector<uint64_t> quarantined_per_source;
};

/// Streaming state machine: feed chunks as they arrive.
///
///   IncrementalCrhProcessor proc(num_sources, options);
///   for each arriving chunk c:  auto truths = proc.ProcessChunk(c.data);
class IncrementalCrhProcessor {
 public:
  IncrementalCrhProcessor(size_t num_sources, IncrementalCrhOptions options);
  ~IncrementalCrhProcessor();

  /// Processes one chunk: returns its truth table and updates the source
  /// weights from the decayed accumulated deviations. The chunk's claim
  /// index is built once and shared by the truth and deviation passes, both
  /// of which run on the processor's pool when base.num_threads asks for
  /// more than one worker.
  [[nodiscard]] Result<ValueTable> ProcessChunk(const Dataset& chunk);

  /// Current source weights (w_k = 1 before any chunk arrives).
  const std::vector<double>& source_weights() const { return weights_; }

  /// Decayed accumulated deviation per source (a_k in Algorithm 2).
  const std::vector<double>& accumulated_deviations() const { return accumulated_; }

  /// Number of chunks processed.
  size_t chunks_processed() const { return chunks_processed_; }

  /// Claims excluded per source under quarantine_bad_claims (zeros otherwise).
  const std::vector<uint64_t>& quarantined_per_source() const { return quarantined_; }

  /// Total claims excluded across all sources.
  uint64_t total_quarantined() const;

  /// Snapshots the learned state for persistence (stream/checkpoint.h).
  IncrementalCrhState ExportState() const;

  /// Restores a snapshot taken by ExportState. Rejects states whose source
  /// count does not match this processor or whose numbers are not finite
  /// and non-negative; on error the processor is left unchanged. A restored
  /// processor continues the stream bit-identically to one that never
  /// stopped.
  [[nodiscard]] Status ImportState(const IncrementalCrhState& state);

 private:
  IncrementalCrhOptions options_;
  std::vector<double> weights_;
  std::vector<double> accumulated_;
  std::vector<uint64_t> quarantined_;
  /// Shared executor for every chunk (null when base.num_threads resolves
  /// to a single worker); persists across ProcessChunk calls so the stream
  /// does not pay thread startup per chunk.
  std::unique_ptr<ThreadPool> pool_;
  size_t chunks_processed_ = 0;
};

/// Result of running I-CRH over a whole timestamped dataset.
struct IncrementalCrhResult {
  /// Truths assembled back into the parent dataset's N x M layout.
  ValueTable truths;
  /// Source weights after the final chunk.
  std::vector<double> source_weights;
  /// Decayed accumulated deviations a_k after the final chunk.
  std::vector<double> accumulated_deviations;
  /// Source weights after each chunk (Fig 4a), one row per chunk.
  std::vector<std::vector<double>> weight_history;
  /// Window start timestamp of each chunk.
  std::vector<int64_t> chunk_starts;
  /// Claims quarantined per source (quarantine_bad_claims only).
  std::vector<uint64_t> quarantined_per_source;
  /// Chunks skipped because a checkpoint already covered them (resume runs
  /// through RunIncrementalCrhResilient; always 0 otherwise).
  uint64_t chunks_resumed = 0;
  /// Checkpoints written during the run (resilient driver only).
  uint64_t checkpoints_written = 0;
  /// True when resume had to fall back past a corrupt newest checkpoint
  /// generation to an older good one.
  bool resumed_from_fallback = false;
};

/// Convenience driver: splits \p data by the configured window and streams
/// the chunks through an IncrementalCrhProcessor in time order. Equivalent
/// to RunIncrementalCrhResilient (stream/checkpoint.h) with checkpointing
/// disabled; both share one chunk loop, so their results are bit-identical.
[[nodiscard]]
Result<IncrementalCrhResult> RunIncrementalCrh(const Dataset& data,
                                               const IncrementalCrhOptions& options = {});

}  // namespace crh

#endif  // CRH_STREAM_INCREMENTAL_CRH_H_
