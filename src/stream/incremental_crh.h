#ifndef CRH_STREAM_INCREMENTAL_CRH_H_
#define CRH_STREAM_INCREMENTAL_CRH_H_

/// \file incremental_crh.h
/// Incremental CRH (Algorithm 2 of the paper) for streaming data.
///
/// Data arrives in sequential chunks. For each chunk, I-CRH (i) computes
/// truths from the source weights learned on past data (one truth pass, no
/// inner iteration), then (ii) folds the chunk's per-source deviations into
/// exponentially decayed accumulators and refreshes the weights:
///
///   a_k <- alpha * a_k + sum_{entries in chunk} d_m(v*, v_k)
///   w   <- WeightScheme(a)
///
/// A smaller decay rate alpha forgets the past faster. One pass over the
/// data, so it is several times faster than batch CRH at slightly lower
/// accuracy (Table 5).

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/crh.h"
#include "data/dataset.h"
#include "stream/chunks.h"

namespace crh {

/// How the resilient streaming driver (stream/checkpoint.h) maintains the
/// fused truth table as chunks arrive.
enum class DeltaSolveMode {
  /// Legacy patchwork semantics (the default): each chunk's truths —
  /// computed from the weights in force *before* that chunk's weight
  /// refresh — are scattered into the fused table and never revisited.
  kOff,
  /// Maintain the invariant `truths == truth-update(all claims so far,
  /// current weights)` with a full truth pass over the cumulative claim
  /// index after every chunk's weight refresh.
  kFull,
  /// Same invariant, but re-solve only the entries whose inputs changed:
  /// the chunk's own entries plus every entry claimed by a source whose
  /// weight changed bitwise. Bit-identical to kFull because truth updates
  /// are per-entry independent (see stream/delta_solve.h).
  kDelta,
  /// kDelta plus a shadow full re-solve and a bit-level comparison after
  /// every chunk; any divergence fails the stream with Internal. The
  /// property-testing mode behind --delta-solve=verify.
  kVerify,
};

/// Work counters of the delta re-solver, for tests, benchmarks and the
/// CLI's run notes. All zeros when delta_solve is kOff.
struct DeltaSolveStats {
  /// Chunks folded into the cumulative claim index (including chunks
  /// replayed from a checkpoint on resume).
  uint64_t chunks = 0;
  /// Entry truth updates actually run by this process (the dirty set plus
  /// the weight fan-out per chunk; every non-empty entry per chunk under
  /// kFull).
  uint64_t entries_resolved = 0;
  /// Entry truth updates a full re-solve after every chunk would have run
  /// (the cumulative non-empty entry count, summed over chunks): the
  /// denominator of the delta saving.
  uint64_t entries_full = 0;
  /// Sources whose weight changed bitwise, summed over chunks.
  uint64_t sources_changed = 0;
  /// Chunks where kDelta fell back to the streaming full pass because the
  /// candidate list (dirty set plus fan-out, before dedup) was at least as
  /// long as a full pass. kVerify never falls back.
  uint64_t full_fallbacks = 0;
};

/// Configuration for incremental CRH.
struct IncrementalCrhOptions {
  /// Loss models, weight scheme and normalizations (max_iterations and the
  /// convergence tolerance are ignored: I-CRH runs one pass per chunk).
  CrhOptions base;
  /// Decay rate alpha in [0, 1]: the weight of past deviations when a new
  /// chunk arrives. 0 forgets the past entirely, 1 never discounts it.
  double decay = 0.5;
  /// Number of consecutive timestamps per chunk (the time window).
  int64_t window_size = 1;
  /// Graceful degradation for dirty feeds: instead of aborting the stream,
  /// ProcessChunk excludes malformed claims — non-finite continuous values,
  /// categorical/text labels outside the property's dictionary, and cells
  /// whose kind contradicts the schema — and counts them per source (see
  /// quarantined_per_source()). The retained claims are processed exactly
  /// as if the input had been pre-cleaned, so results on the clean subset
  /// are bit-identical either way.
  bool quarantine_bad_claims = false;
  /// How the streaming drivers maintain the fused truth table. The non-kOff
  /// modes keep `truths == truth-update(all claims so far, current
  /// weights)` — a stronger (and different) semantics than the legacy
  /// per-chunk patchwork — and require base.supervision == nullptr (the
  /// supervision clamp is chunk-shaped, the delta re-solve runs in the
  /// parent entry space). Source weights, accumulators and quarantine
  /// counts are byte-identical across all four modes; only the truth table
  /// differs from kOff. Ignored by ProcessChunk itself (the driver owns
  /// the fused table).
  DeltaSolveMode delta_solve = DeltaSolveMode::kOff;
};

/// The complete learned state of an IncrementalCrhProcessor, as captured by
/// ExportState() and restored by ImportState(). This is the unit of
/// persistence for crash recovery (stream/checkpoint.h): everything
/// Algorithm 2 carries between chunks lives here.
struct IncrementalCrhState {
  /// Source weights w_k.
  std::vector<double> weights;
  /// Decayed accumulated deviations a_k.
  std::vector<double> accumulated;
  /// Chunks folded into the accumulators so far.
  uint64_t chunks_processed = 0;
  /// Claims quarantined per source so far (all zeros unless
  /// quarantine_bad_claims is on).
  std::vector<uint64_t> quarantined_per_source;
};

/// Streaming state machine: feed chunks as they arrive.
///
///   IncrementalCrhProcessor proc(num_sources, options);
///   for each arriving chunk c:  auto truths = proc.ProcessChunk(c.data);
class IncrementalCrhProcessor {
 public:
  IncrementalCrhProcessor(size_t num_sources, IncrementalCrhOptions options);
  ~IncrementalCrhProcessor();

  /// Processes one chunk: returns its truth table and updates the source
  /// weights from the decayed accumulated deviations. The chunk's claim
  /// index is built once and shared by the truth and deviation passes, both
  /// of which run on the processor's pool when base.num_threads asks for
  /// more than one worker.
  [[nodiscard]] Result<ValueTable> ProcessChunk(const Dataset& chunk);

  /// Current source weights (w_k = 1 before any chunk arrives).
  const std::vector<double>& source_weights() const { return weights_; }

  /// Decayed accumulated deviation per source (a_k in Algorithm 2).
  const std::vector<double>& accumulated_deviations() const { return accumulated_; }

  /// Number of chunks processed.
  size_t chunks_processed() const { return chunks_processed_; }

  /// Claims excluded per source under quarantine_bad_claims (zeros otherwise).
  const std::vector<uint64_t>& quarantined_per_source() const { return quarantined_; }

  /// Total claims excluded across all sources.
  uint64_t total_quarantined() const;

  /// Snapshots the learned state for persistence (stream/checkpoint.h).
  IncrementalCrhState ExportState() const;

  /// Restores a snapshot taken by ExportState. Rejects states whose source
  /// count does not match this processor or whose numbers are not finite
  /// and non-negative; on error the processor is left unchanged. A restored
  /// processor continues the stream bit-identically to one that never
  /// stopped.
  [[nodiscard]] Status ImportState(const IncrementalCrhState& state);

 private:
  IncrementalCrhOptions options_;
  std::vector<double> weights_;
  std::vector<double> accumulated_;
  std::vector<uint64_t> quarantined_;
  /// Shared executor for every chunk (null when base.num_threads resolves
  /// to a single worker); persists across ProcessChunk calls so the stream
  /// does not pay thread startup per chunk.
  std::unique_ptr<ThreadPool> pool_;
  size_t chunks_processed_ = 0;
};

/// Result of running I-CRH over a whole timestamped dataset.
struct IncrementalCrhResult {
  /// Truths assembled back into the parent dataset's N x M layout.
  ValueTable truths;
  /// Source weights after the final chunk.
  std::vector<double> source_weights;
  /// Decayed accumulated deviations a_k after the final chunk.
  std::vector<double> accumulated_deviations;
  /// Source weights after each chunk (Fig 4a), one row per chunk.
  std::vector<std::vector<double>> weight_history;
  /// Window start timestamp of each chunk.
  std::vector<int64_t> chunk_starts;
  /// Claims quarantined per source (quarantine_bad_claims only).
  std::vector<uint64_t> quarantined_per_source;
  /// Chunks skipped because a checkpoint already covered them (resume runs
  /// through RunIncrementalCrhResilient; always 0 otherwise).
  uint64_t chunks_resumed = 0;
  /// Checkpoints written during the run (resilient driver only).
  uint64_t checkpoints_written = 0;
  /// True when resume had to fall back past a corrupt newest checkpoint
  /// generation to an older good one.
  bool resumed_from_fallback = false;
  /// Delta re-solver work counters (all zeros when delta_solve is kOff).
  DeltaSolveStats delta_stats;
};

/// True for a claim the quarantine would exclude: a non-finite continuous
/// reading, a label outside the property's dictionary, or a cell whose
/// kind contradicts the schema. Missing cells are never quarantinable.
/// Exposed so the delta re-solver (stream/delta_solve.h) filters exactly
/// the claims the processor filtered when it learned the weights.
bool IsQuarantinableClaim(const Dataset& data, size_t m, const Value& v);

/// Convenience driver: splits \p data by the configured window and streams
/// the chunks through an IncrementalCrhProcessor in time order. Equivalent
/// to RunIncrementalCrhResilient (stream/checkpoint.h) with checkpointing
/// disabled; both share one chunk loop, so their results are bit-identical.
[[nodiscard]]
Result<IncrementalCrhResult> RunIncrementalCrh(const Dataset& data,
                                               const IncrementalCrhOptions& options = {});

}  // namespace crh

#endif  // CRH_STREAM_INCREMENTAL_CRH_H_
