#ifndef CRH_STREAM_DELTA_SOLVE_H_
#define CRH_STREAM_DELTA_SOLVE_H_

/// \file delta_solve.h
/// Dirty-set delta re-solving for the streaming (I-CRH) pipeline.
///
/// The legacy streaming driver scatters each chunk's truths into the fused
/// table and never revisits them, so the final table is a patchwork of
/// truth updates taken at different weight snapshots. The delta modes
/// (DeltaSolveMode, stream/incremental_crh.h) instead maintain the
/// invariant
///
///   truths == truth-update(all claims seen so far, current weights)
///
/// after every chunk. A full re-solve per chunk (kFull) restores the
/// invariant trivially but costs one pass over every claim seen so far.
/// The delta re-solver (kDelta) exploits that the truth update (Eq 3) is
/// per-entry independent: an entry's truth depends only on its own claims
/// and the weights of its claiming sources. After chunk c's weight
/// refresh, the only entries whose inputs changed are
///
///   dirty(c)    the entries chunk c's claims touch (new claims), and
///   fanout(c)   every entry claimed by a source whose weight changed
///               bitwise in the refresh,
///
/// so re-solving dirty(c) UNION fanout(c) — and nothing else — yields a
/// table bit-identical to the full re-solve. kVerify property-tests
/// exactly that equivalence at runtime: it runs the delta update, then a
/// shadow full re-solve, and bit-compares every cell, failing the stream
/// with Internal on any divergence.
///
/// The store keeps one cumulative ClaimIndex in the *parent* dataset's
/// entry space, grown chunk by chunk with ClaimIndex::Append (amortized
/// span extension, no per-chunk rebuild), plus per-source postings lists
/// for the weight fan-out, and one SolverWorkspace so re-solve passes are
/// allocation-free after the first chunk.

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "core/crh.h"
#include "data/claim_index.h"
#include "data/dataset.h"
#include "data/table.h"
#include "stream/incremental_crh.h"

namespace crh {

/// Cumulative claim store + delta re-solver over one parent entry grid.
/// Owned by the streaming driver (stream/checkpoint.cc); one store serves
/// one stream. Not thread-safe (the re-solve passes may fan out over the
/// pool handed to Resolve internally).
class DeltaTruthStore {
 public:
  /// An empty store over the parent dataset's N x M entry grid and K
  /// sources.
  DeltaTruthStore(size_t num_objects, size_t num_properties, size_t num_sources);

  /// Folds one chunk's claims into the cumulative index, mapping chunk
  /// object i to parent object parent_object[i], and records the touched
  /// entries as the current dirty set. With \p quarantine set, claims the
  /// processor's quarantine excluded (IsQuarantinableClaim) are skipped,
  /// so the index holds exactly the claims the weights were learned from.
  /// A source may claim an entry at most once across the stream (checked
  /// by ClaimIndex::Append).
  void AppendChunk(const Dataset& chunk, const std::vector<size_t>& parent_object,
                   bool quarantine);

  /// Restores the truth invariant after a chunk's weight refresh.
  /// \p parent supplies the schema and dictionaries (its entry grid must
  /// match the store); \p prev_weights / \p new_weights are the source
  /// weights before and after the refresh. kDelta re-solves the dirty set
  /// of the latest AppendChunk plus the postings of every source whose
  /// weight changed bitwise; kFull re-solves everything; kVerify runs the
  /// delta update, then a shadow full pass, and returns Internal if any
  /// cell differs bitwise. kOff is a caller error (checked). Only claimed
  /// entries of \p truths are written.
  [[nodiscard]] Status Resolve(const Dataset& parent, const std::vector<double>& prev_weights,
                               const std::vector<double>& new_weights,
                               const CrhOptions& options, ThreadPool* pool, DeltaSolveMode mode,
                               ValueTable* truths);

  /// Work counters accumulated across AppendChunk/Resolve calls.
  const DeltaSolveStats& stats() const { return stats_; }

  /// The cumulative claim index (for tests).
  const ClaimIndex& index() const { return index_; }

 private:
  ClaimIndex index_;
  /// postings_[k]: parent entry ids source k claims (append order;
  /// deduplicated together with the dirty set at Resolve time).
  std::vector<std::vector<size_t>> postings_;
  /// Entries the latest AppendChunk touched.
  std::vector<size_t> chunk_dirty_;
  /// entry -> has at least one claim (maintains nonempty_entries_).
  std::vector<char> entry_claimed_;
  size_t nonempty_entries_ = 0;
  /// Scratch entry ids for Resolve (reused across chunks).
  std::vector<size_t> resolve_entries_;
  SolverWorkspace workspace_;
  DeltaSolveStats stats_;
};

}  // namespace crh

#endif  // CRH_STREAM_DELTA_SOLVE_H_
