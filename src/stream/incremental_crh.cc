#include "stream/incremental_crh.h"

#include <utility>

#include "data/stats.h"
#include "weights/weight_scheme.h"

namespace crh {

IncrementalCrhProcessor::IncrementalCrhProcessor(size_t num_sources,
                                                 IncrementalCrhOptions options)
    : options_(std::move(options)),
      weights_(num_sources, 1.0),
      accumulated_(num_sources, 0.0) {}

Result<ValueTable> IncrementalCrhProcessor::ProcessChunk(const Dataset& chunk) {
  if (chunk.num_sources() != weights_.size()) {
    return Status::InvalidArgument("chunk source count does not match processor");
  }
  // Step (i): truths for the current chunk from the historical weights.
  ValueTable truths = ComputeTruthsGivenWeights(chunk, weights_, options_.base);

  // Step (ii): decay the accumulated deviations and fold in this chunk's.
  const EntryStats stats = ComputeEntryStats(chunk);
  const std::vector<double> chunk_dev =
      ComputeSourceDeviations(chunk, truths, stats, options_.base);
  for (size_t k = 0; k < weights_.size(); ++k) {
    accumulated_[k] = accumulated_[k] * options_.decay + chunk_dev[k];
  }
  auto weights = ComputeSourceWeights(accumulated_, options_.base.weight_scheme);
  if (!weights.ok()) return weights.status();
  weights_ = std::move(weights).ValueOrDie();
  ++chunks_processed_;
  return truths;
}

Result<IncrementalCrhResult> RunIncrementalCrh(const Dataset& data,
                                               const IncrementalCrhOptions& options) {
  if (options.decay < 0 || options.decay > 1) {
    return Status::InvalidArgument("decay must be in [0, 1]");
  }
  auto chunks = SplitByWindow(data, options.window_size);
  if (!chunks.ok()) return chunks.status();

  IncrementalCrhProcessor processor(data.num_sources(), options);
  IncrementalCrhResult result;
  result.truths = ValueTable(data.num_objects(), data.num_properties());
  for (const DataChunk& chunk : *chunks) {
    auto truths = processor.ProcessChunk(chunk.data);
    if (!truths.ok()) return truths.status();
    for (size_t local = 0; local < chunk.parent_object.size(); ++local) {
      for (size_t m = 0; m < data.num_properties(); ++m) {
        result.truths.Set(chunk.parent_object[local], m, truths->Get(local, m));
      }
    }
    result.weight_history.push_back(processor.source_weights());
    result.chunk_starts.push_back(chunk.window_start);
  }
  result.source_weights = processor.source_weights();
  return result;
}

}  // namespace crh
