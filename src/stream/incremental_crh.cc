#include "stream/incremental_crh.h"

#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "analysis/invariants.h"
#include "common/check.h"
#include "common/thread_pool.h"
#include "data/claim_index.h"
#include "data/stats.h"
#include "weights/weight_scheme.h"

namespace crh {

bool IsQuarantinableClaim(const Dataset& data, size_t m, const Value& v) {
  if (v.is_missing()) return false;
  if (data.schema().is_continuous(m)) {
    return !v.is_continuous() || !std::isfinite(v.continuous());
  }
  return !v.is_categorical() || v.category() < 0 ||
         static_cast<size_t>(v.category()) >= data.dict(m).size();
}

IncrementalCrhProcessor::IncrementalCrhProcessor(size_t num_sources,
                                                 IncrementalCrhOptions options)
    : options_(std::move(options)),
      weights_(num_sources, 1.0),
      accumulated_(num_sources, 0.0),
      quarantined_(num_sources, 0) {
  if (ThreadPool::ResolveNumThreads(options_.base.num_threads) > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.base.num_threads);
  }
}

IncrementalCrhProcessor::~IncrementalCrhProcessor() = default;

uint64_t IncrementalCrhProcessor::total_quarantined() const {
  uint64_t total = 0;
  for (uint64_t q : quarantined_) total += q;
  return total;
}

IncrementalCrhState IncrementalCrhProcessor::ExportState() const {
  IncrementalCrhState state;
  state.weights = weights_;
  state.accumulated = accumulated_;
  state.chunks_processed = chunks_processed_;
  state.quarantined_per_source = quarantined_;
  return state;
}

Status IncrementalCrhProcessor::ImportState(const IncrementalCrhState& state) {
  if (state.weights.size() != weights_.size() ||
      state.accumulated.size() != weights_.size() ||
      state.quarantined_per_source.size() != weights_.size()) {
    return Status::InvalidArgument(
        "checkpoint state source count does not match the processor");
  }
  for (size_t k = 0; k < state.weights.size(); ++k) {
    if (!std::isfinite(state.weights[k]) || state.weights[k] < 0) {
      return Status::InvalidArgument("checkpoint state holds an invalid source weight");
    }
    if (!std::isfinite(state.accumulated[k]) || state.accumulated[k] < 0) {
      return Status::InvalidArgument(
          "checkpoint state holds an invalid accumulated deviation");
    }
  }
  weights_ = state.weights;
  accumulated_ = state.accumulated;
  quarantined_ = state.quarantined_per_source;
  chunks_processed_ = static_cast<size_t>(state.chunks_processed);
  return Status::OK();
}

Result<ValueTable> IncrementalCrhProcessor::ProcessChunk(const Dataset& chunk) {
  if (chunk.num_sources() != weights_.size()) {
    return Status::InvalidArgument("chunk source count does not match processor");
  }
  CRH_VERIFY_OR_RETURN(options_.base.supervision == nullptr ||
                           (options_.base.supervision->num_objects() == chunk.num_objects() &&
                            options_.base.supervision->num_properties() ==
                                chunk.num_properties()),
                       "supervision table shape does not match the chunk");
  // Quarantine pass: exclude malformed claims rather than aborting the
  // stream. The clean copy is only materialized when something is actually
  // bad, so well-formed streams pay one read-only scan.
  const Dataset* active = &chunk;
  Dataset sanitized;
  if (options_.quarantine_bad_claims) {
    bool any_bad = false;
    for (size_t k = 0; k < chunk.num_sources() && !any_bad; ++k) {
      for (size_t i = 0; i < chunk.num_objects() && !any_bad; ++i) {
        for (size_t m = 0; m < chunk.num_properties() && !any_bad; ++m) {
          any_bad = IsQuarantinableClaim(chunk, m, chunk.observations(k).Get(i, m));
        }
      }
    }
    if (any_bad) {
      sanitized = chunk;
      for (size_t k = 0; k < chunk.num_sources(); ++k) {
        for (size_t i = 0; i < chunk.num_objects(); ++i) {
          for (size_t m = 0; m < chunk.num_properties(); ++m) {
            if (IsQuarantinableClaim(chunk, m, chunk.observations(k).Get(i, m))) {
              sanitized.mutable_observations(k).Clear(i, m);
              ++quarantined_[k];
            }
          }
        }
      }
      active = &sanitized;
    }
  } else {
    // Without quarantine a malformed claim must fail the chunk loudly here:
    // a NaN that reaches the truth kernels poisons the weighted medians and
    // accumulators instead of surfacing as an error.
    for (size_t k = 0; k < chunk.num_sources(); ++k) {
      for (size_t i = 0; i < chunk.num_objects(); ++i) {
        for (size_t m = 0; m < chunk.num_properties(); ++m) {
          if (IsQuarantinableClaim(chunk, m, chunk.observations(k).Get(i, m))) {
            return Status::InvalidArgument(
                "malformed claim (non-finite or out-of-dictionary) from source " +
                std::to_string(k) + " at object " + std::to_string(i) +
                ", property " + std::to_string(m) +
                "; enable quarantine_bad_claims to exclude it instead");
          }
        }
      }
    }
  }
  // One claim index per chunk, shared by both passes below.
  const ClaimIndex index = ClaimIndex::Build(*active);

  // Step (i): truths for the current chunk from the historical weights.
  ValueTable truths =
      ComputeTruthsGivenWeights(*active, index, weights_, options_.base, pool_.get());

  // Step (ii): decay the accumulated deviations and fold in this chunk's.
  const EntryStats stats = ComputeEntryStats(*active);
  const std::vector<double> chunk_dev =
      ComputeSourceDeviations(*active, index, truths, stats, options_.base, pool_.get());
  for (size_t k = 0; k < weights_.size(); ++k) {
    CRH_VERIFY_OR_RETURN(std::isfinite(chunk_dev[k]) && chunk_dev[k] >= 0,
                         "chunk deviation must be finite and non-negative");
    accumulated_[k] = accumulated_[k] * options_.decay + chunk_dev[k];
  }
  IterationObserver* observer = options_.base.observer;
#ifdef CRH_VERIFY_BUILD
  InvariantVerifier default_verifier;
  if (observer == nullptr) observer = &default_verifier;
#endif
  // Descent certificate of the weight update on the accumulated deviations:
  // the previous weights (all-ones on the first chunk) versus the updated
  // ones, on the functional the scheme minimizes.
  double weight_step_before = std::numeric_limits<double>::quiet_NaN();
  double weight_step_after = std::numeric_limits<double>::quiet_NaN();
  if (observer != nullptr) {
    weight_step_before = WeightStepObjective(weights_, accumulated_, options_.base.weight_scheme);
  }
  auto weights = ComputeSourceWeights(accumulated_, options_.base.weight_scheme);
  if (!weights.ok()) return weights.status();
  weights_ = std::move(weights).ValueOrDie();
  ++chunks_processed_;

  if (observer != nullptr) {
    weight_step_after = WeightStepObjective(weights_, accumulated_, options_.base.weight_scheme);
  }
  if (observer != nullptr) {
    IterationSnapshot snapshot;
    snapshot.engine = "icrh";
    snapshot.iteration = static_cast<int>(chunks_processed_);
    snapshot.data = &chunk;
    snapshot.truths = &truths;
    snapshot.weights = &weights_;
    snapshot.weight_scheme = &options_.base.weight_scheme;
    snapshot.supervision = options_.base.supervision;
    // I-CRH is a single pass; there is no objective sequence to check, and
    // each chunk's truths are computed fresh (no previous truths on the
    // same data), so only the weight step carries a certificate.
    snapshot.objective = std::numeric_limits<double>::quiet_NaN();
    snapshot.weight_step_before = weight_step_before;
    snapshot.weight_step_after = weight_step_after;
    CRH_RETURN_NOT_OK(observer->OnIteration(snapshot));
  }
  return truths;
}

// RunIncrementalCrh is defined in stream/checkpoint.cc: it shares one chunk
// loop with RunIncrementalCrhResilient so the two are bit-identical.

}  // namespace crh
