#include "stream/incremental_crh.h"

#include <cmath>
#include <limits>
#include <utility>

#include "analysis/invariants.h"
#include "common/check.h"
#include "common/thread_pool.h"
#include "data/claim_index.h"
#include "data/stats.h"
#include "weights/weight_scheme.h"

namespace crh {

IncrementalCrhProcessor::IncrementalCrhProcessor(size_t num_sources,
                                                 IncrementalCrhOptions options)
    : options_(std::move(options)),
      weights_(num_sources, 1.0),
      accumulated_(num_sources, 0.0) {
  if (ThreadPool::ResolveNumThreads(options_.base.num_threads) > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.base.num_threads);
  }
}

IncrementalCrhProcessor::~IncrementalCrhProcessor() = default;

Result<ValueTable> IncrementalCrhProcessor::ProcessChunk(const Dataset& chunk) {
  if (chunk.num_sources() != weights_.size()) {
    return Status::InvalidArgument("chunk source count does not match processor");
  }
  CRH_VERIFY_OR_RETURN(options_.base.supervision == nullptr ||
                           (options_.base.supervision->num_objects() == chunk.num_objects() &&
                            options_.base.supervision->num_properties() ==
                                chunk.num_properties()),
                       "supervision table shape does not match the chunk");
  // One claim index per chunk, shared by both passes below.
  const ClaimIndex index = ClaimIndex::Build(chunk);

  // Step (i): truths for the current chunk from the historical weights.
  ValueTable truths = ComputeTruthsGivenWeights(chunk, index, weights_, options_.base, pool_.get());

  // Step (ii): decay the accumulated deviations and fold in this chunk's.
  const EntryStats stats = ComputeEntryStats(chunk);
  const std::vector<double> chunk_dev =
      ComputeSourceDeviations(chunk, index, truths, stats, options_.base, pool_.get());
  for (size_t k = 0; k < weights_.size(); ++k) {
    CRH_VERIFY_OR_RETURN(std::isfinite(chunk_dev[k]) && chunk_dev[k] >= 0,
                         "chunk deviation must be finite and non-negative");
    accumulated_[k] = accumulated_[k] * options_.decay + chunk_dev[k];
  }
  IterationObserver* observer = options_.base.observer;
#ifdef CRH_VERIFY_BUILD
  InvariantVerifier default_verifier;
  if (observer == nullptr) observer = &default_verifier;
#endif
  // Descent certificate of the weight update on the accumulated deviations:
  // the previous weights (all-ones on the first chunk) versus the updated
  // ones, on the functional the scheme minimizes.
  double weight_step_before = std::numeric_limits<double>::quiet_NaN();
  double weight_step_after = std::numeric_limits<double>::quiet_NaN();
  if (observer != nullptr) {
    weight_step_before = WeightStepObjective(weights_, accumulated_, options_.base.weight_scheme);
  }
  auto weights = ComputeSourceWeights(accumulated_, options_.base.weight_scheme);
  if (!weights.ok()) return weights.status();
  weights_ = std::move(weights).ValueOrDie();
  ++chunks_processed_;

  if (observer != nullptr) {
    weight_step_after = WeightStepObjective(weights_, accumulated_, options_.base.weight_scheme);
  }
  if (observer != nullptr) {
    IterationSnapshot snapshot;
    snapshot.engine = "icrh";
    snapshot.iteration = static_cast<int>(chunks_processed_);
    snapshot.data = &chunk;
    snapshot.truths = &truths;
    snapshot.weights = &weights_;
    snapshot.weight_scheme = &options_.base.weight_scheme;
    snapshot.supervision = options_.base.supervision;
    // I-CRH is a single pass; there is no objective sequence to check, and
    // each chunk's truths are computed fresh (no previous truths on the
    // same data), so only the weight step carries a certificate.
    snapshot.objective = std::numeric_limits<double>::quiet_NaN();
    snapshot.weight_step_before = weight_step_before;
    snapshot.weight_step_after = weight_step_after;
    CRH_RETURN_NOT_OK(observer->OnIteration(snapshot));
  }
  return truths;
}

Result<IncrementalCrhResult> RunIncrementalCrh(const Dataset& data,
                                               const IncrementalCrhOptions& options) {
  if (options.decay < 0 || options.decay > 1) {
    return Status::InvalidArgument("decay must be in [0, 1]");
  }
  auto chunks = SplitByWindow(data, options.window_size);
  if (!chunks.ok()) return chunks.status();

  IncrementalCrhProcessor processor(data.num_sources(), options);
  IncrementalCrhResult result;
  result.truths = ValueTable(data.num_objects(), data.num_properties());
  for (const DataChunk& chunk : *chunks) {
    auto truths = processor.ProcessChunk(chunk.data);
    if (!truths.ok()) return truths.status();
    for (size_t local = 0; local < chunk.parent_object.size(); ++local) {
      for (size_t m = 0; m < data.num_properties(); ++m) {
        result.truths.Set(chunk.parent_object[local], m, truths->Get(local, m));
      }
    }
    result.weight_history.push_back(processor.source_weights());
    result.chunk_starts.push_back(chunk.window_start);
  }
  result.source_weights = processor.source_weights();
  return result;
}

}  // namespace crh
