#include "stream/chunks.h"

#include <algorithm>
#include <map>

namespace crh {

Result<std::vector<DataChunk>> SplitByWindow(const Dataset& data, int64_t window_size) {
  if (!data.has_timestamps()) {
    return Status::FailedPrecondition("dataset has no timestamps to split on");
  }
  if (window_size < 1) {
    return Status::InvalidArgument("window_size must be >= 1");
  }

  int64_t min_ts = data.timestamp(0);
  for (size_t i = 1; i < data.num_objects(); ++i) min_ts = std::min(min_ts, data.timestamp(i));

  // Window index -> parent object indices, in time order. The offset from
  // min_ts is computed in uint64_t: `ts - min_ts` can exceed int64_t's
  // range (e.g. INT64_MAX - INT64_MIN), but every timestamp is >= min_ts,
  // so the wrapped unsigned difference is the exact mathematical offset.
  std::map<uint64_t, std::vector<size_t>> windows;
  for (size_t i = 0; i < data.num_objects(); ++i) {
    const uint64_t offset =
        static_cast<uint64_t>(data.timestamp(i)) - static_cast<uint64_t>(min_ts);
    windows[offset / static_cast<uint64_t>(window_size)].push_back(i);
  }

  std::vector<std::string> source_ids;
  for (size_t k = 0; k < data.num_sources(); ++k) source_ids.push_back(data.source_id(k));

  std::vector<DataChunk> chunks;
  chunks.reserve(windows.size());
  for (const auto& [window, members] : windows) {
    DataChunk chunk;
    // Same unsigned trick in reverse: the product and sum can wrap past
    // INT64_MAX transiently, but the true window start always lies in
    // [min_ts, max_ts], so converting the wrapped result back to int64_t
    // (well-defined since C++20) recovers the exact value.
    chunk.window_start = static_cast<int64_t>(static_cast<uint64_t>(min_ts) +
                                              window * static_cast<uint64_t>(window_size));
    chunk.parent_object = members;

    std::vector<std::string> object_ids;
    std::vector<int64_t> timestamps;
    object_ids.reserve(members.size());
    for (size_t i : members) {
      object_ids.push_back(data.object_id(i));
      timestamps.push_back(data.timestamp(i));
    }
    chunk.data = Dataset(data.schema(), std::move(object_ids), source_ids);
    for (size_t m = 0; m < data.num_properties(); ++m) {
      chunk.data.mutable_dict(m) = data.dict(m);
    }
    CRH_RETURN_NOT_OK(chunk.data.set_timestamps(std::move(timestamps)));

    for (size_t k = 0; k < data.num_sources(); ++k) {
      for (size_t local = 0; local < members.size(); ++local) {
        for (size_t m = 0; m < data.num_properties(); ++m) {
          chunk.data.SetObservation(k, local, m, data.observations(k).Get(members[local], m));
        }
      }
    }
    if (data.has_ground_truth()) {
      ValueTable truth(members.size(), data.num_properties());
      for (size_t local = 0; local < members.size(); ++local) {
        for (size_t m = 0; m < data.num_properties(); ++m) {
          truth.Set(local, m, data.ground_truth().Get(members[local], m));
        }
      }
      chunk.data.set_ground_truth(std::move(truth));
    }
    chunks.push_back(std::move(chunk));
  }
  return chunks;
}

}  // namespace crh
