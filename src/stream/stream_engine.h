#ifndef CRH_STREAM_STREAM_ENGINE_H_
#define CRH_STREAM_STREAM_ENGINE_H_

/// \file stream_engine.h
/// Chunk-at-a-time I-CRH engine: the resident core behind both the batch
/// streaming drivers and the `crh_serve` daemon.
///
/// RunIncrementalCrhResilient used to own the whole chunk loop. Extracting
/// it into an engine whose unit of work is "apply one chunk" lets a server
/// feed chunks as they arrive on a socket while the batch driver replays a
/// pre-split dataset — both through the *same* code path, so a served
/// stream and a batch run over the same claims produce bit-identical
/// truths and weights by construction. The serving chaos suite leans on
/// exactly that: it compares a SIGKILLed-and-resumed server against an
/// uninterrupted batch run byte for byte.
///
/// Replay contract: after Open() with resume, chunks_resumed() reports how
/// many chunks the restored checkpoint already covers. Callers must still
/// submit those chunks, in order, through ApplyChunk(): the engine absorbs
/// them as cheap replays — delta-maintained runs re-index their claims,
/// nothing is re-solved, no fail points fire, no checkpoints are written.
/// This keeps resume purely sequential for at-least-once transports: the
/// batch driver just iterates from chunk 0, and the server acks replayed
/// sequence numbers while clients re-send from the start of the stream.
///
/// The engine is not thread-safe; the server serializes all calls on its
/// ingest thread and publishes immutable snapshots for readers.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "stream/checkpoint.h"
#include "stream/chunks.h"
#include "stream/delta_solve.h"
#include "stream/incremental_crh.h"

namespace crh {

/// The resident streaming solver. Owns the I-CRH processor, the fused truth
/// table, the optional delta-re-solve claim store, and the checkpoint
/// manager; one ApplyChunk() call performs exactly one step of the loop the
/// resilient batch driver used to run inline.
class StreamEngine {
 public:
  /// Validates the options, builds the processor (and delta store when
  /// delta_solve is active), and — when `resilience.resume` is set —
  /// restores the newest compatible checkpoint. A missing checkpoint is a
  /// cold start, not an error. `parent` must outlive the engine: it is the
  /// entry space truths are maintained in, and chunks submitted later must
  /// reference its object indices via DataChunk::parent_object.
  [[nodiscard]] static Result<std::unique_ptr<StreamEngine>> Open(
      const Dataset& parent, const IncrementalCrhOptions& options,
      const StreamResilienceOptions& resilience);

  /// Chunks covered so far: replayed (checkpoint-restored) plus freshly
  /// applied. Equals the sequence number of the next chunk expected.
  uint64_t chunks_applied() const { return applied_; }

  /// Chunks the checkpoint restored at Open() time (0 on a cold start).
  uint64_t chunks_resumed() const { return resumed_; }

  /// True when resume had to fall back past a corrupt newest generation.
  bool resumed_from_fallback() const { return resumed_from_fallback_; }

  /// Checkpoints written by this engine instance.
  uint64_t checkpoints_written() const { return checkpoints_written_; }

  /// chunks_applied() at the last successful checkpoint; equals
  /// chunks_resumed() until the first post-resume checkpoint lands.
  uint64_t last_checkpoint_chunks() const { return last_checkpoint_chunks_; }

  /// Applies the next chunk in sequence. Chunks below chunks_resumed() are
  /// replays (claims re-indexed for delta runs, nothing solved); beyond it
  /// the chunk runs one full I-CRH step — truth pass, deviation
  /// accumulation, weight refresh, delta re-solve — followed by a
  /// checkpoint when the cadence (checkpoint_every) or `force_checkpoint`
  /// says so. The fail-point site "stream.process_chunk" fires once per
  /// non-replay chunk before it is processed.
  [[nodiscard]] Status ApplyChunk(const DataChunk& chunk, bool force_checkpoint);

  /// Writes a checkpoint of the current state regardless of cadence; the
  /// server's graceful drain uses this for its final checkpoint. No-op
  /// (OK) when checkpointing is disabled.
  [[nodiscard]] Status WriteCheckpoint();

  // -- Snapshot accessors (the server's epoch publication copies these). --
  const ValueTable& truths() const { return truths_; }
  const std::vector<double>& source_weights() const {
    return processor_.source_weights();
  }
  const std::vector<double>& accumulated_deviations() const {
    return processor_.accumulated_deviations();
  }
  const std::vector<uint64_t>& quarantined_per_source() const {
    return processor_.quarantined_per_source();
  }
  const std::vector<std::vector<double>>& weight_history() const {
    return weight_history_;
  }
  const std::vector<int64_t>& chunk_starts() const { return chunk_starts_; }
  DeltaSolveStats delta_stats() const {
    return store_ ? store_->stats() : DeltaSolveStats{};
  }

  /// Assembles the batch IncrementalCrhResult, consuming the engine.
  IncrementalCrhResult Finish() &&;

 private:
  StreamEngine(const Dataset& parent, const IncrementalCrhOptions& options,
               const StreamResilienceOptions& resilience);

  const Dataset* parent_;
  IncrementalCrhOptions options_;
  StreamResilienceOptions resilience_;
  IncrementalCrhProcessor processor_;
  ValueTable truths_;
  std::vector<std::vector<double>> weight_history_;
  std::vector<int64_t> chunk_starts_;
  /// Cumulative claim store for delta-maintained runs (and its own pool:
  /// the processor's is private to it).
  std::optional<DeltaTruthStore> store_;
  std::unique_ptr<ThreadPool> delta_pool_;
  std::optional<CheckpointManager> manager_;
  uint64_t fingerprint_ = 0;
  uint64_t applied_ = 0;
  uint64_t resumed_ = 0;
  uint64_t checkpoints_written_ = 0;
  uint64_t last_checkpoint_chunks_ = 0;
  bool resumed_from_fallback_ = false;
  /// Scratch: weight snapshot before each refresh (bounds the delta fan-out).
  std::vector<double> prev_weights_;
};

}  // namespace crh

#endif  // CRH_STREAM_STREAM_ENGINE_H_
