#ifndef CRH_STREAM_CHECKPOINT_H_
#define CRH_STREAM_CHECKPOINT_H_

/// \file checkpoint.h
/// Crash-recoverable persistence for the streaming (I-CRH) pipeline.
///
/// A checkpoint is a versioned, CRC-32-checksummed binary snapshot of an
/// IncrementalCrhProcessor's learned state (weights, decayed accumulators,
/// quarantine counters, chunks processed) plus — when taken by the
/// resilient driver — the partial fused truth table and weight history, so
/// a resumed run reproduces the uninterrupted run bit for bit.
///
/// On-disk format (little-endian, see docs/ROBUSTNESS.md):
///
///   offset  size  field
///   0       8     magic "CRHCKPT1"
///   8       4     u32 format version (currently 1)
///   12      8     u64 fingerprint (options + dataset shape; see
///                 CheckpointFingerprint)
///   20      8     u64 chunks_processed
///   28      8     u64 K (number of sources)
///   36      8K    f64 weights[K]
///   ..      8K    f64 accumulated[K]
///   ..      8K    u64 quarantined[K]
///   ..      1     u8  has_driver_section (0 or 1)
///   [driver section, present when the flag is 1:
///     u64 N, u64 M, N*M tagged cells (u8 tag: 0 missing; 1 continuous,
///     f64 payload; 2 categorical, i32 payload), u64 history rows,
///     rows * K f64, u64 chunk-start count, that many i64]
///   ..      4     u32 CRC-32 of every preceding byte (zlib polynomial)
///
/// Writes are atomic: the encoded image goes to `<name>.tmp` in the same
/// directory, is flushed and closed with every return value checked, and
/// is renamed over the final name only then; a failure at any step removes
/// the temp file and leaves prior generations untouched. Loading walks the
/// generations newest-first and falls back past torn or corrupted files to
/// the last good one, reporting that it did so. Every I/O call site is
/// fail-point instrumented (common/fault_injection.h) so tests force each
/// failure path and prove no sequence of I/O errors can lose or corrupt
/// learned state.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/fault_injection.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "stream/incremental_crh.h"

namespace crh {

/// The checkpoint format version written by EncodeCheckpoint.
inline constexpr uint32_t kCheckpointFormatVersion = 1;

/// One decoded checkpoint image.
struct CheckpointState {
  /// Compatibility fingerprint of the run that wrote the checkpoint.
  uint64_t fingerprint = 0;
  /// The processor's learned state.
  IncrementalCrhState processor;
  /// True when the driver section below is populated.
  bool has_driver_state = false;
  /// Partial fused truths over the parent dataset (driver section).
  ValueTable truths;
  /// Per-chunk weight history so far (driver section).
  std::vector<std::vector<double>> weight_history;
  /// Window start of each processed chunk (driver section).
  std::vector<int64_t> chunk_starts;
};

/// Fingerprint of the (options, data-shape) combination a checkpoint is
/// valid for. Restoring is refused when fingerprints differ, so a snapshot
/// cannot leak into a run with different loss models, decay, window size,
/// quarantine semantics, schema, or source roster. `data` (optional) folds
/// in the parent dataset's shape: N, M, property names/types/units, and
/// the source ids in order. num_threads is deliberately excluded — results
/// are bit-identical at every thread count.
uint64_t CheckpointFingerprint(const IncrementalCrhOptions& options, size_t num_sources,
                               const Dataset* data = nullptr);

/// Serializes a checkpoint image to its on-disk byte string.
std::string EncodeCheckpoint(const CheckpointState& state);

/// Parses a checkpoint byte string. Arbitrary bytes yield a clean
/// InvalidArgument — never a crash, hang, over-allocation, or partially
/// filled state (the result is discarded on any error). Fuzzed by
/// fuzz/checkpoint_fuzz.cc.
[[nodiscard]] Result<CheckpointState> DecodeCheckpoint(std::string_view bytes);

/// Configuration for a CheckpointManager.
struct CheckpointManagerOptions {
  /// Directory holding the checkpoint generations. Must exist.
  std::string dir;
  /// Completed generations kept on disk; older ones are pruned after a
  /// successful write. At least 2 so a torn newest file always leaves a
  /// good predecessor.
  int keep_generations = 2;
  /// Retry schedule for transient write failures.
  RetryPolicy retry;
};

/// Outcome details of CheckpointManager::LoadLatest.
struct CheckpointLoadReport {
  /// Generation number actually loaded.
  uint64_t generation = 0;
  /// True when one or more newer generations were rejected first.
  bool fell_back = false;
  /// Human-readable reasons for each rejected newer generation.
  std::vector<std::string> rejected;
};

/// Writes and restores checkpoint generations in a directory.
///
/// Generation files are named "ckpt-<20-digit generation>.crhckpt"; the
/// numbering continues from the highest generation present, so a resumed
/// run never overwrites the files it is restoring from.
///
/// Thread safety: concurrent Save calls are safe — each reserves a unique
/// generation number under mu_ and performs all I/O with the lock
/// released, so writers never serialize on disk speed and no lock is ever
/// held across a fail-point evaluation (ast_lint's lock-across-callback
/// rule). Savers racing prune may report a benign IOError for a file the
/// other already removed; learned state is never lost.
class CheckpointManager {
 public:
  explicit CheckpointManager(CheckpointManagerOptions options);

  /// Atomically persists `state` as the next generation, then prunes
  /// generations beyond keep_generations. On any error the directory is
  /// left with no temp file and all previous generations intact.
  [[nodiscard]] Status Save(const CheckpointState& state) CRH_EXCLUDES(mu_);

  /// Loads the newest generation that decodes cleanly and matches
  /// `expected_fingerprint`, falling back to older generations otherwise.
  /// NotFound when the directory holds no loadable checkpoint.
  [[nodiscard]] Result<CheckpointState> LoadLatest(
      uint64_t expected_fingerprint, CheckpointLoadReport* report = nullptr);

  /// Generation numbers present in the directory, ascending. Temp files
  /// and foreign names are ignored.
  [[nodiscard]] Result<std::vector<uint64_t>> ListGenerations() const;

 private:
  CheckpointManagerOptions options_;
  mutable Mutex mu_;
  /// Next generation number to write; discovered lazily from the directory.
  uint64_t next_generation_ CRH_GUARDED_BY(mu_) = 0;
  bool scanned_ CRH_GUARDED_BY(mu_) = false;

  /// Scans the directory (unlocked — the scan is fail-point instrumented)
  /// and publishes the starting generation under mu_ if still unscanned.
  [[nodiscard]] Status EnsureScanned() CRH_EXCLUDES(mu_);
};

/// Every fail-point site the checkpoint I/O path can hit, for exhaustive
/// fault-injection sweeps (tests and the crash-recovery CI job force each
/// site in turn and assert clean Status propagation).
std::vector<std::string> CheckpointFailPointSites();

/// Fail-point sites of the streaming drivers themselves (chunk-processing
/// boundary), distinct from the checkpoint I/O sites above. Registered so
/// scripts/crh_analyzer.py's fail-point coverage check and the fault
/// sweeps see them.
std::vector<std::string> StreamFailPointSites();

/// Streaming resilience configuration for RunIncrementalCrhResilient.
struct StreamResilienceOptions {
  /// Directory for checkpoints; empty disables checkpointing entirely.
  std::string checkpoint_dir;
  /// Write a checkpoint every this many processed chunks (the final chunk
  /// is always checkpointed). Must be >= 1.
  uint64_t checkpoint_every = 1;
  /// Restore the newest good checkpoint before processing and skip the
  /// chunks it already covers. Requires checkpoint_dir.
  bool resume = false;
  /// Retry schedule applied to each checkpoint write.
  RetryPolicy retry;
};

/// Crash-recoverable variant of RunIncrementalCrh: same chunk loop, same
/// bit-identical results, plus periodic checkpoints and resume. A resumed
/// run restores the processor state and the partial fused truths from the
/// checkpoint and continues with the first uncovered chunk, so the final
/// IncrementalCrhResult — weights, accumulators, truth table, history — is
/// bit-identical to a run that was never interrupted. The fail-point site
/// "stream.process_chunk" fires once per chunk before it is processed,
/// letting tests kill the stream at an exact chunk boundary.
[[nodiscard]] Result<IncrementalCrhResult> RunIncrementalCrhResilient(
    const Dataset& data, const IncrementalCrhOptions& options,
    const StreamResilienceOptions& resilience);

}  // namespace crh

#endif  // CRH_STREAM_CHECKPOINT_H_
