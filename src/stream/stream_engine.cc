#include "stream/stream_engine.h"

#include <utility>

#include "common/fault_injection.h"

namespace crh {

StreamEngine::StreamEngine(const Dataset& parent, const IncrementalCrhOptions& options,
                           const StreamResilienceOptions& resilience)
    : parent_(&parent),
      options_(options),
      resilience_(resilience),
      processor_(parent.num_sources(), options),
      truths_(parent.num_objects(), parent.num_properties()) {}

Result<std::unique_ptr<StreamEngine>> StreamEngine::Open(
    const Dataset& parent, const IncrementalCrhOptions& options,
    const StreamResilienceOptions& resilience) {
  if (options.decay < 0 || options.decay > 1) {
    return Status::InvalidArgument("decay must be in [0, 1]");
  }
  if (resilience.checkpoint_every < 1) {
    return Status::InvalidArgument("checkpoint_every must be >= 1");
  }
  const bool checkpointing = !resilience.checkpoint_dir.empty();
  if (resilience.resume && !checkpointing) {
    return Status::InvalidArgument("resume requires a checkpoint directory");
  }
  CRH_RETURN_NOT_OK(ValidateRetryPolicy(resilience.retry));
  const bool delta_active = options.delta_solve != DeltaSolveMode::kOff;
  if (delta_active && options.base.supervision != nullptr) {
    return Status::InvalidArgument(
        "delta_solve maintains truths in the parent entry space and cannot apply the "
        "chunk-shaped supervision clamp; use DeltaSolveMode::kOff with supervision");
  }

  // The constructor is private so Open is the only way in; make_unique
  // cannot reach it, hence the immediately-owned naked new.
  std::unique_ptr<StreamEngine> engine(
      new StreamEngine(parent, options, resilience));  // lint:allow(naked-new)
  if (delta_active) {
    engine->store_.emplace(parent.num_objects(), parent.num_properties(),
                           parent.num_sources());
    if (ThreadPool::ResolveNumThreads(options.base.num_threads) > 1) {
      engine->delta_pool_ = std::make_unique<ThreadPool>(options.base.num_threads);
    }
  }
  if (checkpointing) {
    engine->fingerprint_ = CheckpointFingerprint(options, parent.num_sources(), &parent);
    CheckpointManagerOptions manager_options;
    manager_options.dir = resilience.checkpoint_dir;
    manager_options.retry = resilience.retry;
    engine->manager_.emplace(std::move(manager_options));
  }

  if (resilience.resume) {
    CheckpointLoadReport report;
    auto loaded = engine->manager_->LoadLatest(engine->fingerprint_, &report);
    if (loaded.ok()) {
      CheckpointState state = std::move(loaded).ValueOrDie();
      if (!state.has_driver_state) {
        return Status::FailedPrecondition("checkpoint has no driver section to resume from");
      }
      if (state.truths.num_objects() != parent.num_objects() ||
          state.truths.num_properties() != parent.num_properties()) {
        return Status::FailedPrecondition(
            "checkpoint truth table shape does not match the dataset");
      }
      CRH_RETURN_NOT_OK(engine->processor_.ImportState(state.processor));
      engine->truths_ = std::move(state.truths);
      engine->weight_history_ = std::move(state.weight_history);
      engine->chunk_starts_ = std::move(state.chunk_starts);
      engine->resumed_ = state.processor.chunks_processed;
      engine->last_checkpoint_chunks_ = engine->resumed_;
      engine->resumed_from_fallback_ = report.fell_back;
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      return loaded.status();
    }
    // NotFound means a cold start: nothing to resume, process everything.
  }
  return engine;
}

Status StreamEngine::ApplyChunk(const DataChunk& chunk, bool force_checkpoint) {
  if (applied_ < resumed_) {
    // Replay: the restored checkpoint already covers this chunk. Its
    // weights and truths came from the checkpoint (whose fingerprint tag
    // guarantees they were maintained under the delta invariant); only the
    // cumulative claim index needs the chunk's claims back.
    if (store_) {
      store_->AppendChunk(chunk.data, chunk.parent_object,
                          options_.quarantine_bad_claims);
    }
    ++applied_;
    return Status::OK();
  }
  CRH_FAIL_POINT("stream.process_chunk");
  // The weight snapshot before the refresh bounds the delta fan-out.
  if (store_) prev_weights_ = processor_.source_weights();
  auto truths = processor_.ProcessChunk(chunk.data);
  if (!truths.ok()) return truths.status();
  if (store_) {
    // Maintain `truths == truth-update(claims so far, current weights)`:
    // fold the chunk's claims in, then re-solve under the refreshed
    // weights. The per-chunk truths ProcessChunk returned were computed
    // under the pre-refresh weights and are superseded.
    store_->AppendChunk(chunk.data, chunk.parent_object,
                        options_.quarantine_bad_claims);
    CRH_RETURN_NOT_OK(store_->Resolve(*parent_, prev_weights_,
                                      processor_.source_weights(), options_.base,
                                      delta_pool_.get(), options_.delta_solve,
                                      &truths_));
  } else {
    for (size_t local = 0; local < chunk.parent_object.size(); ++local) {
      for (size_t m = 0; m < parent_->num_properties(); ++m) {
        truths_.Set(chunk.parent_object[local], m, truths->Get(local, m));
      }
    }
  }
  weight_history_.push_back(processor_.source_weights());
  chunk_starts_.push_back(chunk.window_start);
  ++applied_;
  if (manager_) {
    const uint64_t since_open = applied_ - resumed_;
    if (force_checkpoint || since_open % resilience_.checkpoint_every == 0) {
      return WriteCheckpoint();
    }
  }
  return Status::OK();
}

Status StreamEngine::WriteCheckpoint() {
  if (!manager_) return Status::OK();
  CheckpointState state;
  state.fingerprint = fingerprint_;
  state.processor = processor_.ExportState();
  state.has_driver_state = true;
  state.truths = truths_;
  state.weight_history = weight_history_;
  state.chunk_starts = chunk_starts_;
  CRH_RETURN_NOT_OK(manager_->Save(state));
  ++checkpoints_written_;
  last_checkpoint_chunks_ = applied_;
  return Status::OK();
}

IncrementalCrhResult StreamEngine::Finish() && {
  IncrementalCrhResult result;
  result.truths = std::move(truths_);
  result.source_weights = processor_.source_weights();
  result.accumulated_deviations = processor_.accumulated_deviations();
  result.weight_history = std::move(weight_history_);
  result.chunk_starts = std::move(chunk_starts_);
  result.quarantined_per_source = processor_.quarantined_per_source();
  result.chunks_resumed = resumed_;
  result.checkpoints_written = checkpoints_written_;
  result.resumed_from_fallback = resumed_from_fallback_;
  if (store_) result.delta_stats = store_->stats();
  return result;
}

}  // namespace crh
