#include "stream/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#include "common/check.h"
#include "common/crc32.h"
#include "stream/stream_engine.h"

namespace crh {

namespace {

constexpr char kMagic[8] = {'C', 'R', 'H', 'C', 'K', 'P', 'T', '1'};

// ---------------------------------------------------------------------------
// Little-endian byte string encoding.

void AppendBytes(std::string* out, const void* data, size_t size) {
  out->append(static_cast<const char*>(data), size);
}

void AppendU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

void AppendU32(std::string* out, uint32_t v) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xffu);
  out->append(bytes, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xffu);
  out->append(bytes, 8);
}

void AppendF64(std::string* out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

void AppendI64(std::string* out, int64_t v) { AppendU64(out, static_cast<uint64_t>(v)); }

void AppendI32(std::string* out, int32_t v) { AppendU32(out, static_cast<uint32_t>(v)); }

// ---------------------------------------------------------------------------
// Bounds-checked little-endian decoding. Every read validates the remaining
// byte count first, so arbitrary (fuzzed) inputs can never read out of
// bounds; size headers are validated against the bytes that would have to
// follow them before anything is allocated, so a hostile header cannot
// trigger an over-allocation either.

Status Truncated() { return Status::InvalidArgument("checkpoint is truncated"); }

class Cursor {
 public:
  explicit Cursor(std::string_view bytes) : bytes_(bytes) {}

  size_t remaining() const { return bytes_.size() - pos_; }

  Status Skip(size_t n) {
    if (remaining() < n) return Truncated();
    pos_ += n;
    return Status::OK();
  }

  Status ReadBytes(void* out, size_t n) {
    if (remaining() < n) return Truncated();
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  Status ReadU8(uint8_t* v) { return ReadBytes(v, 1); }

  Status ReadU32(uint32_t* v) {
    uint8_t bytes[4];
    CRH_RETURN_NOT_OK(ReadBytes(bytes, 4));
    *v = 0;
    for (int i = 3; i >= 0; --i) *v = (*v << 8) | bytes[i];
    return Status::OK();
  }

  Status ReadU64(uint64_t* v) {
    uint8_t bytes[8];
    CRH_RETURN_NOT_OK(ReadBytes(bytes, 8));
    *v = 0;
    for (int i = 7; i >= 0; --i) *v = (*v << 8) | bytes[i];
    return Status::OK();
  }

  Status ReadF64(double* v) {
    uint64_t bits = 0;
    CRH_RETURN_NOT_OK(ReadU64(&bits));
    std::memcpy(v, &bits, sizeof(*v));
    return Status::OK();
  }

  Status ReadI64(int64_t* v) {
    uint64_t bits = 0;
    CRH_RETURN_NOT_OK(ReadU64(&bits));
    *v = static_cast<int64_t>(bits);
    return Status::OK();
  }

  Status ReadI32(int32_t* v) {
    uint32_t bits = 0;
    CRH_RETURN_NOT_OK(ReadU32(&bits));
    *v = static_cast<int32_t>(bits);
    return Status::OK();
  }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Fingerprinting (FNV-1a folded through Mix64).

class Fingerprinter {
 public:
  void Add(const void* data, size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) hash_ = (hash_ ^ bytes[i]) * 0x100000001b3u;
  }

  void AddU64(uint64_t v) {
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i) bytes[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xffu);
    Add(bytes, 8);
  }

  void AddF64(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    AddU64(bits);
  }

  void AddString(const std::string& s) {
    AddU64(s.size());
    Add(s.data(), s.size());
  }

  uint64_t Finish() const { return Mix64(hash_); }

 private:
  uint64_t hash_ = 0xcbf29ce484222325u;
};

// ---------------------------------------------------------------------------
// File naming and fail-point-instrumented I/O.

std::string GenerationFileName(uint64_t generation) {
  char name[64];
  std::snprintf(name, sizeof(name), "ckpt-%020llu.crhckpt",
                static_cast<unsigned long long>(generation));
  return name;
}

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty() || dir.back() == '/') return dir + name;
  return dir + "/" + name;
}

bool ParseGenerationFileName(const std::string& name, uint64_t* generation) {
  constexpr std::string_view kPrefix = "ckpt-";
  constexpr std::string_view kSuffix = ".crhckpt";
  constexpr size_t kDigits = 20;
  if (name.size() != kPrefix.size() + kDigits + kSuffix.size()) return false;
  if (name.compare(0, kPrefix.size(), kPrefix) != 0) return false;
  if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) != 0) return false;
  uint64_t g = 0;
  for (size_t i = kPrefix.size(); i < kPrefix.size() + kDigits; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    g = g * 10 + static_cast<uint64_t>(c - '0');
  }
  *generation = g;
  return true;
}

/// Writes `bytes` to `tmp_path` and renames it onto `final_path`. Every
/// return value is checked; on any failure (including injected ones) the
/// temp file is removed, so a failed save never leaves a torn artifact.
Status WriteFileAtomic(const std::string& tmp_path, const std::string& final_path,
                       const std::string& bytes) {
  Status status = FailPoints::Instance().Hit("checkpoint.open_write");
  std::FILE* file = nullptr;
  if (status.ok()) {
    file = std::fopen(tmp_path.c_str(), "wb");
    if (file == nullptr) {
      status = Status::IOError("cannot open '" + tmp_path + "' for writing");
    }
  }
  if (status.ok()) {
    // HitWrite (not Hit) so tests can also inject a *silent* short write:
    // only a prefix reaches the disk yet every return code reports success,
    // the rename lands, and nothing but the CRC on load can tell the tail
    // was lost — the torn-tail case newest-first fallback must survive.
    const WriteFault fault = FailPoints::Instance().HitWrite("checkpoint.fwrite");
    status = fault.status;
    const size_t to_write =
        fault.truncate_to
            ? std::min(static_cast<size_t>(*fault.truncate_to), bytes.size())
            : bytes.size();
    if (status.ok() && to_write > 0 &&
        std::fwrite(bytes.data(), 1, to_write, file) != to_write) {
      status = Status::IOError("short write to '" + tmp_path + "'");
    }
  }
  if (status.ok()) {
    status = FailPoints::Instance().Hit("checkpoint.fflush");
    if (status.ok() && std::fflush(file) != 0) {
      status = Status::IOError("cannot flush '" + tmp_path + "'");
    }
  }
  if (file != nullptr) {
    // Close unconditionally (no descriptor leak on an injected failure) but
    // let a close error fail the save: a buffered write may only surface
    // its error here.
    Status close_status = FailPoints::Instance().Hit("checkpoint.fclose");
    if (std::fclose(file) != 0 && close_status.ok()) {
      close_status = Status::IOError("cannot close '" + tmp_path + "'");
    }
    if (status.ok()) status = close_status;
  }
  if (status.ok()) {
    status = FailPoints::Instance().Hit("checkpoint.rename");
    if (status.ok() && std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
      status = Status::IOError("cannot rename '" + tmp_path + "' to '" + final_path + "'");
    }
  }
  if (!status.ok()) {
    // Best effort: the temp file may not exist if the failure was the open.
    (void)std::remove(tmp_path.c_str());
  }
  return status;
}

Status ReadFileWithFailPoints(const std::string& path, std::string* out) {
  out->clear();
  Status status = FailPoints::Instance().Hit("checkpoint.open_read");
  std::FILE* file = nullptr;
  if (status.ok()) {
    file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) status = Status::IOError("cannot open '" + path + "' for reading");
  }
  if (status.ok()) {
    char buffer[1 << 13];
    for (;;) {
      status = FailPoints::Instance().Hit("checkpoint.fread");
      if (!status.ok()) break;
      const size_t n = std::fread(buffer, 1, sizeof(buffer), file);
      out->append(buffer, n);
      if (n < sizeof(buffer)) {
        if (std::ferror(file) != 0) status = Status::IOError("read error on '" + path + "'");
        break;
      }
    }
  }
  if (file != nullptr && std::fclose(file) != 0 && status.ok()) {
    status = Status::IOError("cannot close '" + path + "'");
  }
  if (!status.ok()) out->clear();
  return status;
}

}  // namespace

uint64_t CheckpointFingerprint(const IncrementalCrhOptions& options, size_t num_sources,
                               const Dataset* data) {
  Fingerprinter fp;
  fp.AddU64(kCheckpointFormatVersion);
  fp.AddF64(options.decay);
  fp.AddU64(static_cast<uint64_t>(options.window_size));
  fp.AddU64(options.quarantine_bad_claims ? 1 : 0);
  const CrhOptions& base = options.base;
  fp.AddU64(static_cast<uint64_t>(base.categorical_model));
  fp.AddU64(static_cast<uint64_t>(base.continuous_model));
  fp.AddU64(static_cast<uint64_t>(base.weight_scheme.kind));
  fp.AddU64(static_cast<uint64_t>(base.weight_scheme.top_j));
  fp.AddF64(base.weight_scheme.epsilon_ratio);
  fp.AddU64(static_cast<uint64_t>(base.property_normalization));
  fp.AddU64(base.normalize_by_observation_count ? 1 : 0);
  fp.AddU64(static_cast<uint64_t>(base.weight_granularity));
  fp.AddU64(base.supervision != nullptr ? 1 : 0);
  fp.AddU64(num_sources);
  if (data != nullptr) {
    fp.AddU64(data->num_objects());
    fp.AddU64(data->num_properties());
    for (size_t m = 0; m < data->num_properties(); ++m) {
      const Property& property = data->schema().property(m);
      fp.AddString(property.name);
      fp.AddU64(static_cast<uint64_t>(property.type));
      fp.AddF64(property.rounding_unit);
    }
    for (size_t k = 0; k < data->num_sources(); ++k) fp.AddString(data->source_id(k));
  }
  // Appended only for delta-maintained runs, so fingerprints of legacy
  // (kOff) runs are unchanged by the field's introduction. kFull, kDelta
  // and kVerify share one tag: their truth tables are bit-identical, so
  // their checkpoints interchange freely — but never with the per-chunk
  // patchwork semantics of kOff.
  if (options.delta_solve != DeltaSolveMode::kOff) fp.AddU64(0x64656c7461u);  // "delta"
  return fp.Finish();
}

std::string EncodeCheckpoint(const CheckpointState& state) {
  const size_t num_sources = state.processor.weights.size();
  CRH_CHECK_EQ(state.processor.accumulated.size(), num_sources);
  CRH_CHECK_EQ(state.processor.quarantined_per_source.size(), num_sources);
  std::string out;
  AppendBytes(&out, kMagic, sizeof(kMagic));
  AppendU32(&out, kCheckpointFormatVersion);
  AppendU64(&out, state.fingerprint);
  AppendU64(&out, state.processor.chunks_processed);
  AppendU64(&out, num_sources);
  for (double w : state.processor.weights) AppendF64(&out, w);
  for (double a : state.processor.accumulated) AppendF64(&out, a);
  for (uint64_t q : state.processor.quarantined_per_source) AppendU64(&out, q);
  AppendU8(&out, state.has_driver_state ? 1 : 0);
  if (state.has_driver_state) {
    CRH_CHECK_EQ(state.weight_history.size(), state.processor.chunks_processed);
    CRH_CHECK_EQ(state.chunk_starts.size(), state.weight_history.size());
    AppendU64(&out, state.truths.num_objects());
    AppendU64(&out, state.truths.num_properties());
    for (const Value& v : state.truths.cells()) {
      if (v.is_missing()) {
        AppendU8(&out, 0);
      } else if (v.is_continuous()) {
        AppendU8(&out, 1);
        AppendF64(&out, v.continuous());
      } else {
        AppendU8(&out, 2);
        AppendI32(&out, v.category());
      }
    }
    AppendU64(&out, state.weight_history.size());
    for (const std::vector<double>& row : state.weight_history) {
      CRH_CHECK_EQ(row.size(), num_sources);
      for (double w : row) AppendF64(&out, w);
    }
    AppendU64(&out, state.chunk_starts.size());
    for (int64_t start : state.chunk_starts) AppendI64(&out, start);
  }
  AppendU32(&out, Crc32(out.data(), out.size()));
  return out;
}

Result<CheckpointState> DecodeCheckpoint(std::string_view bytes) {
  if (bytes.size() < sizeof(kMagic) + 4 + 4) {
    return Status::InvalidArgument("checkpoint is too short");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a checkpoint file (bad magic)");
  }
  // The trailing CRC covers every preceding byte; a mismatch means a torn
  // or corrupted file and rejects it before any field is trusted.
  const size_t body_size = bytes.size() - 4;
  uint32_t stored_crc = 0;
  for (size_t i = 4; i-- > 0;) {
    stored_crc = (stored_crc << 8) | static_cast<unsigned char>(bytes[body_size + i]);
  }
  if (stored_crc != Crc32(bytes.data(), body_size)) {
    return Status::InvalidArgument("checkpoint checksum mismatch (torn or corrupted file)");
  }
  Cursor cursor(bytes.substr(0, body_size));
  CRH_RETURN_NOT_OK(cursor.Skip(sizeof(kMagic)));
  uint32_t version = 0;
  CRH_RETURN_NOT_OK(cursor.ReadU32(&version));
  if (version != kCheckpointFormatVersion) {
    return Status::InvalidArgument("unsupported checkpoint format version " +
                                   std::to_string(version));
  }
  CheckpointState state;
  CRH_RETURN_NOT_OK(cursor.ReadU64(&state.fingerprint));
  CRH_RETURN_NOT_OK(cursor.ReadU64(&state.processor.chunks_processed));
  uint64_t num_sources = 0;
  CRH_RETURN_NOT_OK(cursor.ReadU64(&num_sources));
  if (num_sources > cursor.remaining() / 24) return Truncated();
  state.processor.weights.resize(num_sources);
  state.processor.accumulated.resize(num_sources);
  state.processor.quarantined_per_source.resize(num_sources);
  for (double& w : state.processor.weights) CRH_RETURN_NOT_OK(cursor.ReadF64(&w));
  for (double& a : state.processor.accumulated) CRH_RETURN_NOT_OK(cursor.ReadF64(&a));
  for (uint64_t& q : state.processor.quarantined_per_source) {
    CRH_RETURN_NOT_OK(cursor.ReadU64(&q));
  }
  uint8_t driver_flag = 0;
  CRH_RETURN_NOT_OK(cursor.ReadU8(&driver_flag));
  if (driver_flag > 1) {
    return Status::InvalidArgument("checkpoint holds an invalid driver-section flag");
  }
  state.has_driver_state = driver_flag == 1;
  if (state.has_driver_state) {
    uint64_t num_objects = 0;
    uint64_t num_properties = 0;
    CRH_RETURN_NOT_OK(cursor.ReadU64(&num_objects));
    CRH_RETURN_NOT_OK(cursor.ReadU64(&num_properties));
    if (num_properties != 0 && num_objects > cursor.remaining() / num_properties) {
      return Truncated();  // each cell takes at least its one tag byte
    }
    state.truths = ValueTable(num_objects, num_properties);
    for (size_t i = 0; i < num_objects; ++i) {
      for (size_t m = 0; m < num_properties; ++m) {
        uint8_t tag = 0;
        CRH_RETURN_NOT_OK(cursor.ReadU8(&tag));
        if (tag == 1) {
          double v = 0;
          CRH_RETURN_NOT_OK(cursor.ReadF64(&v));
          state.truths.Set(i, m, Value::Continuous(v));
        } else if (tag == 2) {
          int32_t id = 0;
          CRH_RETURN_NOT_OK(cursor.ReadI32(&id));
          state.truths.Set(i, m, Value::Categorical(id));
        } else if (tag != 0) {
          return Status::InvalidArgument("checkpoint holds an invalid value tag");
        }
      }
    }
    uint64_t rows = 0;
    CRH_RETURN_NOT_OK(cursor.ReadU64(&rows));
    if (rows != state.processor.chunks_processed) {
      return Status::InvalidArgument(
          "checkpoint weight history length does not match chunks processed");
    }
    if (rows > cursor.remaining() / (8 * std::max<uint64_t>(num_sources, 1))) {
      return Truncated();
    }
    state.weight_history.resize(rows);
    for (std::vector<double>& row : state.weight_history) {
      row.resize(num_sources);
      for (double& w : row) CRH_RETURN_NOT_OK(cursor.ReadF64(&w));
    }
    uint64_t num_starts = 0;
    CRH_RETURN_NOT_OK(cursor.ReadU64(&num_starts));
    if (num_starts != rows) {
      return Status::InvalidArgument(
          "checkpoint chunk-start list length does not match the weight history");
    }
    if (num_starts > cursor.remaining() / 8) return Truncated();
    state.chunk_starts.resize(num_starts);
    for (int64_t& start : state.chunk_starts) CRH_RETURN_NOT_OK(cursor.ReadI64(&start));
  }
  if (cursor.remaining() != 0) {
    return Status::InvalidArgument("checkpoint has trailing bytes");
  }
  return state;
}

CheckpointManager::CheckpointManager(CheckpointManagerOptions options)
    : options_(std::move(options)) {
  CRH_CHECK_GE(options_.keep_generations, 1);
}

Status CheckpointManager::EnsureScanned() {
  {
    const MutexLock lock(&mu_);
    if (scanned_) return Status::OK();
  }
  // The filesystem scan runs unlocked: it evaluates fail points and touches
  // the disk, neither of which may happen under mu_. Racing scanners compute
  // the same answer; the first to finish publishes it.
  CRH_RETURN_NOT_OK(FailPoints::Instance().Hit("checkpoint.create_dir"));
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  if (ec) {
    return Status::IOError("cannot create checkpoint directory '" + options_.dir +
                           "': " + ec.message());
  }
  auto generations = ListGenerations();
  if (!generations.ok()) return generations.status();
  const uint64_t next = generations->empty() ? 0 : generations->back() + 1;
  const MutexLock lock(&mu_);
  if (!scanned_) {
    next_generation_ = next;
    scanned_ = true;
  }
  return Status::OK();
}

Result<std::vector<uint64_t>> CheckpointManager::ListGenerations() const {
  CRH_RETURN_NOT_OK(FailPoints::Instance().Hit("checkpoint.list"));
  std::error_code ec;
  std::filesystem::directory_iterator it(options_.dir, ec);
  const std::filesystem::directory_iterator end;
  if (ec) {
    return Status::IOError("cannot list checkpoint directory '" + options_.dir +
                           "': " + ec.message());
  }
  std::vector<uint64_t> generations;
  while (it != end) {
    uint64_t generation = 0;
    if (ParseGenerationFileName(it->path().filename().string(), &generation)) {
      generations.push_back(generation);
    }
    it.increment(ec);
    if (ec) {
      return Status::IOError("cannot list checkpoint directory '" + options_.dir +
                             "': " + ec.message());
    }
  }
  std::sort(generations.begin(), generations.end());
  return generations;
}

Status CheckpointManager::Save(const CheckpointState& state) {
  CRH_RETURN_NOT_OK(EnsureScanned());
  // Reserve a generation number under the lock, then write it out with the
  // lock released: concurrent savers get distinct files and never hold mu_
  // across retries, fail points, or the disk.
  uint64_t generation = 0;
  {
    const MutexLock lock(&mu_);
    generation = next_generation_++;
  }
  const std::string bytes = EncodeCheckpoint(state);
  const std::string final_path = JoinPath(options_.dir, GenerationFileName(generation));
  const std::string tmp_path = final_path + ".tmp";
  CRH_RETURN_NOT_OK(RetryWithBackoff(options_.retry, "checkpoint save", [&] {
    return WriteFileAtomic(tmp_path, final_path, bytes);
  }));
  // Prune generations beyond keep_generations. The new checkpoint is
  // already durable at this point, so a prune failure reports an error but
  // never loses state; the remaining candidates are still attempted.
  auto generations = ListGenerations();
  if (!generations.ok()) return generations.status();
  Status prune_status = Status::OK();
  const size_t keep = static_cast<size_t>(options_.keep_generations);
  for (size_t i = 0; i + keep < generations->size(); ++i) {
    const std::string path = JoinPath(options_.dir, GenerationFileName((*generations)[i]));
    Status removed = FailPoints::Instance().Hit("checkpoint.remove");
    if (removed.ok() && std::remove(path.c_str()) != 0) {
      removed = Status::IOError("cannot remove old checkpoint '" + path + "'");
    }
    if (prune_status.ok()) prune_status = removed;
  }
  return prune_status;
}

Result<CheckpointState> CheckpointManager::LoadLatest(uint64_t expected_fingerprint,
                                                      CheckpointLoadReport* report) {
  auto generations = ListGenerations();
  if (!generations.ok()) return generations.status();
  CheckpointLoadReport local;
  for (size_t idx = generations->size(); idx-- > 0;) {
    const uint64_t generation = (*generations)[idx];
    const std::string path = JoinPath(options_.dir, GenerationFileName(generation));
    std::string bytes;
    Status status = ReadFileWithFailPoints(path, &bytes);
    if (status.ok()) {
      auto decoded = DecodeCheckpoint(bytes);
      if (decoded.ok()) {
        if (decoded->fingerprint == expected_fingerprint) {
          local.generation = generation;
          local.fell_back = !local.rejected.empty();
          if (report != nullptr) *report = std::move(local);
          return decoded;
        }
        status = Status::FailedPrecondition(
            "fingerprint mismatch (written with different options or data)");
      } else {
        status = decoded.status();
      }
    }
    local.rejected.push_back(path + ": " + status.message());
  }
  std::string message = "no loadable checkpoint in '" + options_.dir + "'";
  for (const std::string& reason : local.rejected) message += "; " + reason;
  if (report != nullptr) *report = std::move(local);
  return Status::NotFound(message);
}

std::vector<std::string> CheckpointFailPointSites() {
  return {"checkpoint.list",   "checkpoint.open_write", "checkpoint.fwrite",
          "checkpoint.fflush", "checkpoint.fclose",     "checkpoint.rename",
          "checkpoint.remove", "checkpoint.open_read",  "checkpoint.fread",
          "checkpoint.create_dir"};
}

std::vector<std::string> StreamFailPointSites() {
  return {"stream.process_chunk"};
}

// ---------------------------------------------------------------------------
// Streaming drivers. RunIncrementalCrh, RunIncrementalCrhResilient and the
// crh_serve daemon all drive the same StreamEngine (stream/stream_engine.h)
// one chunk at a time, so their results are bit-identical by construction;
// the plain driver is the resilient one with checkpointing disabled.

Result<IncrementalCrhResult> RunIncrementalCrhResilient(
    const Dataset& data, const IncrementalCrhOptions& options,
    const StreamResilienceOptions& resilience) {
  auto engine = StreamEngine::Open(data, options, resilience);
  if (!engine.ok()) return engine.status();
  auto chunks = SplitByWindow(data, options.window_size);
  if (!chunks.ok()) return chunks.status();
  if ((*engine)->chunks_resumed() > chunks->size()) {
    return Status::FailedPrecondition("checkpoint covers more chunks than the dataset");
  }
  // Replay every chunk from the start: the engine absorbs the ones its
  // checkpoint already covers and solves the rest. The final chunk always
  // forces a checkpoint (cadence-independent durability of the end state).
  for (size_t c = 0; c < chunks->size(); ++c) {
    const bool last = c + 1 == chunks->size();
    CRH_RETURN_NOT_OK((*engine)->ApplyChunk((*chunks)[c], /*force_checkpoint=*/last));
  }
  return std::move(**engine).Finish();
}

Result<IncrementalCrhResult> RunIncrementalCrh(const Dataset& data,
                                               const IncrementalCrhOptions& options) {
  return RunIncrementalCrhResilient(data, options, StreamResilienceOptions{});
}

}  // namespace crh
