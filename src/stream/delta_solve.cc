#include "stream/delta_solve.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>

#include "common/check.h"

namespace crh {

namespace {

/// Bit-level equality on truth cells: NaN payloads compare equal to
/// themselves and +0.0 differs from -0.0 — exactly the "same computation"
/// relation the verify mode asserts (IEEE == would accept a sign flip and
/// reject identical NaNs).
bool BitIdenticalValue(const Value& a, const Value& b) {
  if (a.is_continuous() != b.is_continuous() || a.is_categorical() != b.is_categorical()) {
    return false;
  }
  if (a.is_continuous()) {
    const double da = a.continuous();
    const double db = b.continuous();
    uint64_t bits_a = 0;
    uint64_t bits_b = 0;
    std::memcpy(&bits_a, &da, sizeof(bits_a));
    std::memcpy(&bits_b, &db, sizeof(bits_b));
    return bits_a == bits_b;
  }
  if (a.is_categorical()) return a.category() == b.category();
  return true;  // both missing
}

bool WeightChangedBitwise(double prev, double next) {
  uint64_t prev_bits = 0;
  uint64_t next_bits = 0;
  std::memcpy(&prev_bits, &prev, sizeof(prev_bits));
  std::memcpy(&next_bits, &next, sizeof(next_bits));
  return prev_bits != next_bits;
}

}  // namespace

DeltaTruthStore::DeltaTruthStore(size_t num_objects, size_t num_properties, size_t num_sources)
    : index_(ClaimIndex::CreateEmpty(num_objects, num_properties)),
      postings_(num_sources),
      entry_claimed_(num_objects * num_properties, 0) {}

void DeltaTruthStore::AppendChunk(const Dataset& chunk,
                                  const std::vector<size_t>& parent_object, bool quarantine) {
  CRH_CHECK_EQ(chunk.num_sources(), postings_.size());
  CRH_CHECK_EQ(chunk.num_objects(), parent_object.size());
  CRH_CHECK_EQ(chunk.num_properties(), index_.num_properties());
  // Mirror the processor's quarantine (stream/incremental_crh.cc): the
  // cumulative index must hold exactly the claims the weights were learned
  // from. The clean copy is only materialized when something is bad.
  const Dataset* active = &chunk;
  Dataset sanitized;
  if (quarantine) {
    bool any_bad = false;
    for (size_t k = 0; k < chunk.num_sources() && !any_bad; ++k) {
      for (size_t i = 0; i < chunk.num_objects() && !any_bad; ++i) {
        for (size_t m = 0; m < chunk.num_properties() && !any_bad; ++m) {
          any_bad = IsQuarantinableClaim(chunk, m, chunk.observations(k).Get(i, m));
        }
      }
    }
    if (any_bad) {
      sanitized = chunk;
      for (size_t k = 0; k < chunk.num_sources(); ++k) {
        for (size_t i = 0; i < chunk.num_objects(); ++i) {
          for (size_t m = 0; m < chunk.num_properties(); ++m) {
            if (IsQuarantinableClaim(chunk, m, chunk.observations(k).Get(i, m))) {
              sanitized.mutable_observations(k).Clear(i, m);
            }
          }
        }
      }
      active = &sanitized;
    }
  }
  chunk_dirty_.clear();
  const size_t m_props = index_.num_properties();
  for (size_t k = 0; k < active->num_sources(); ++k) {
    for (size_t i = 0; i < active->num_objects(); ++i) {
      for (size_t m = 0; m < m_props; ++m) {
        if (active->observations(k).Get(i, m).is_missing()) continue;
        const size_t e = parent_object[i] * m_props + m;
        postings_[k].push_back(e);
        chunk_dirty_.push_back(e);
        if (entry_claimed_[e] == 0) {
          entry_claimed_[e] = 1;
          ++nonempty_entries_;
        }
      }
    }
  }
  index_.Append(*active, parent_object);
  ++stats_.chunks;
}

Status DeltaTruthStore::Resolve(const Dataset& parent, const std::vector<double>& prev_weights,
                                const std::vector<double>& new_weights,
                                const CrhOptions& options, ThreadPool* pool,
                                DeltaSolveMode mode, ValueTable* truths) {
  CRH_CHECK(truths != nullptr);
  CRH_CHECK(mode != DeltaSolveMode::kOff);
  CRH_CHECK_EQ(prev_weights.size(), postings_.size());
  CRH_CHECK_EQ(new_weights.size(), postings_.size());
  CRH_CHECK_EQ(parent.num_objects(), index_.num_objects());
  CRH_CHECK_EQ(parent.num_properties(), index_.num_properties());
  // The supervision clamp is chunk-shaped; the re-solve runs in parent
  // entry space. The driver rejects the combination before the loop.
  CRH_CHECK(options.supervision == nullptr);
  stats_.entries_full += nonempty_entries_;
  if (mode == DeltaSolveMode::kFull) {
    *truths = ComputeTruthsGivenWeights(parent, index_, new_weights, options, pool, workspace_);
    stats_.entries_resolved += nonempty_entries_;
    return Status::OK();
  }
  // kDelta / kVerify: the chunk's own entries plus the fan-out of every
  // source whose weight changed bitwise. Every other entry has exactly the
  // same claims and claiming-source weights as before the chunk, and the
  // truth update is a deterministic per-entry function of those inputs, so
  // skipping it cannot change its value.
  size_t candidate_bound = chunk_dirty_.size();
  for (size_t k = 0; k < new_weights.size(); ++k) {
    if (WeightChangedBitwise(prev_weights[k], new_weights[k])) {
      ++stats_.sources_changed;
      candidate_bound += postings_[k].size();
    }
  }
  // Adaptive fallback (kDelta only): when the candidate list is at least as
  // long as a full pass — the log weight schemes perturb every weight every
  // chunk, fanning out to every claimed entry — building and deduplicating
  // it costs more than the streaming full pass it would save. The fallback
  // is bit-identical by the same invariant (a full pass re-solves a
  // superset). kVerify never falls back: its job is to property-test the
  // genuine list-driven path against the shadow full pass.
  if (mode == DeltaSolveMode::kDelta && candidate_bound >= nonempty_entries_) {
    ++stats_.full_fallbacks;
    *truths = ComputeTruthsGivenWeights(parent, index_, new_weights, options, pool, workspace_);
    stats_.entries_resolved += nonempty_entries_;
    return Status::OK();
  }
  resolve_entries_.assign(chunk_dirty_.begin(), chunk_dirty_.end());
  for (size_t k = 0; k < new_weights.size(); ++k) {
    if (WeightChangedBitwise(prev_weights[k], new_weights[k])) {
      resolve_entries_.insert(resolve_entries_.end(), postings_[k].begin(), postings_[k].end());
    }
  }
  std::sort(resolve_entries_.begin(), resolve_entries_.end());
  resolve_entries_.erase(std::unique(resolve_entries_.begin(), resolve_entries_.end()),
                         resolve_entries_.end());
  UpdateTruthsForEntries(parent, index_, resolve_entries_, new_weights, options, pool,
                         workspace_, truths);
  stats_.entries_resolved += resolve_entries_.size();
  if (mode == DeltaSolveMode::kVerify) {
    const ValueTable full =
        ComputeTruthsGivenWeights(parent, index_, new_weights, options, pool, workspace_);
    for (size_t i = 0; i < full.num_objects(); ++i) {
      for (size_t m = 0; m < full.num_properties(); ++m) {
        if (!BitIdenticalValue(truths->Get(i, m), full.Get(i, m))) {
          return Status::Internal(
              "delta re-solve diverged from the full re-solve at object " + std::to_string(i) +
              ", property " + std::to_string(m) +
              " (the dirty-set + weight-fan-out invariant is broken)");
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace crh
