#ifndef CRH_COMMON_RNG_H_
#define CRH_COMMON_RNG_H_

/// \file rng.h
/// Deterministic random number generation.
///
/// Every stochastic component in the library (noise injection, dataset
/// generators, tie breaking) draws from an explicitly seeded Rng so that
/// tests and benchmark runs are exactly reproducible across machines.

#include <cstdint>
#include <random>
#include <vector>

namespace crh {

/// A seeded pseudo-random generator with the distribution helpers the
/// library needs. Thin wrapper over std::mt19937_64.
class Rng {
 public:
  /// Constructs a generator from a seed. Equal seeds produce equal streams.
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Gaussian sample with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli trial; returns true with probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Weights need not be normalized; non-positive weights get no mass.
  size_t Categorical(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w > 0 ? w : 0;
    if (total <= 0) return 0;
    double x = Uniform() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      double w = weights[i] > 0 ? weights[i] : 0;
      if (x < w) return i;
      x -= w;
    }
    return weights.size() - 1;
  }

  /// Exponential sample with the given rate (mean 1/rate).
  double Exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Derives an independent child generator; useful for giving each
  /// source or worker its own stream without coupling their draws.
  Rng Fork() { return Rng(engine_()); }

  /// The underlying engine, for std distributions not wrapped here.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace crh

#endif  // CRH_COMMON_RNG_H_
