#include "common/value.h"

#include <cstdio>

namespace crh {

const char* PropertyTypeToString(PropertyType type) {
  switch (type) {
    case PropertyType::kContinuous:
      return "continuous";
    case PropertyType::kCategorical:
      return "categorical";
    case PropertyType::kText:
      return "text";
  }
  return "unknown";
}

std::string Value::ToString() const {
  switch (kind_) {
    case Kind::kMissing:
      return "missing";
    case Kind::kContinuous: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%g", continuous_);
      return buf;
    }
    case Kind::kCategorical: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "#%d", static_cast<int>(category_));
      return buf;
    }
  }
  return "?";
}

}  // namespace crh
