#ifndef CRH_COMMON_STATISTICS_H_
#define CRH_COMMON_STATISTICS_H_

/// \file statistics.h
/// Small statistical functions needed by the confidence-aware extension
/// (core/catd.h): the standard normal inverse CDF and a chi-squared
/// quantile. Self-contained implementations — no external math library.

namespace crh {

/// Inverse CDF of the standard normal distribution (the probit function),
/// via Acklam's rational approximation (relative error < 1.15e-9 over the
/// open unit interval). Returns +/-infinity at p = 1 / p = 0 and NaN
/// outside [0, 1].
double InverseNormalCdf(double p);

/// The p-quantile of the chi-squared distribution with `dof` degrees of
/// freedom, via the Wilson-Hilferty cube approximation (accurate to a few
/// tenths of a percent for dof >= 3, adequate for confidence weighting).
/// Requires p in (0, 1) and dof > 0.
double ChiSquaredQuantile(double p, double dof);

}  // namespace crh

#endif  // CRH_COMMON_STATISTICS_H_
