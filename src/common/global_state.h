#ifndef CRH_COMMON_GLOBAL_STATE_H_
#define CRH_COMMON_GLOBAL_STATE_H_

/// \file global_state.h
/// The escape hatch for the snapshot-safety (global-state) analysis
/// (scripts/crh_analyzer.py, `global-state` check).
///
/// ROADMAP item 1 turns the engine into a library serving queries from
/// RCU-style epoch snapshots: a published snapshot must be reachable only
/// through the pointer it was published behind, with *no* hidden shared
/// state on the side. The analyzer therefore rejects mutable namespace-
/// scope variables, mutable `static` locals, and singletons in the library
/// layers — each one is state a snapshot reader could observe mid-mutation.
///
/// Process-wide *test and diagnostics infrastructure* that is deliberately
/// global — the fail-point registry, crash handlers — declares so at the
/// declaration site. For a namespace-scope declaration the macro goes on
/// the same line or within the four lines directly above it (the call may
/// wrap); for a function-local static, anywhere inside the enclosing
/// function — the function vouches for all of its statics:
///
///   CRH_GLOBAL_STATE_EXEMPT("fail-point registry is test infrastructure");
///   static FailPoints instance;
///
/// The annotation mirrors CRH_DETERMINISM_EXEMPT (common/determinism.h):
/// the author vouches that the exempted state is never consulted on a
/// snapshot read path. Misuse fails to build — the reason must be a
/// non-empty string literal (literal concatenation only compiles for
/// actual literals; see tests/negative_compile/exempt_global_empty_reason.cc
/// and exempt_global_nonliteral_reason.cc).

/// Marks the adjacent global/static declaration as a reviewed snapshot-
/// safety exemption. `reason` must be a non-empty string literal:
/// `reason ""` only compiles when `reason` is itself a literal, and
/// sizeof > 1 rejects the empty string. Expands to a compile-time no-op.
#define CRH_GLOBAL_STATE_EXEMPT(reason)                                       \
  static_assert(sizeof(reason "") > 1,                                        \
                "CRH_GLOBAL_STATE_EXEMPT requires a non-empty string "        \
                "literal explaining why this process-global state can "       \
                "never be observed through an epoch snapshot")

#endif  // CRH_COMMON_GLOBAL_STATE_H_
