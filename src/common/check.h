#ifndef CRH_COMMON_CHECK_H_
#define CRH_COMMON_CHECK_H_

/// \file check.h
/// Contract-enforcement macros for the CRH library.
///
/// The solvers rest on mathematical invariants (loss monotonicity, the
/// weight constraint delta(W) = 1, domain validity of truths) and on
/// ordinary structural preconditions (index bounds, matching shapes).
/// These macros make both kinds of contract explicit and give each a
/// failure action appropriate to the build:
///
///   CRH_CHECK(cond)            Always-on invariant. On failure, prints
///                              file:line, the expression text, and an
///                              optional context message, then aborts.
///                              Active in every build type.
///   CRH_DCHECK(cond)           Debug-only precondition for hot paths
///                              (cell accessors, per-claim loops). Expands
///                              to the same abort in Debug builds and to
///                              nothing when NDEBUG is defined, so the
///                              RelWithDebInfo tier-1 build pays zero cost.
///   CRH_CHECK_OK(status_expr)  Asserts a crh::Status (or Result) is OK;
///                              the failure report includes the status
///                              message.
///   CRH_CHECK_EQ/NE/LT/LE/GT/GE(a, b)
///                              Binary comparisons that capture and print
///                              both operand values on failure.
///   CRH_CHECK_NEAR(a, b, tol)  |a - b| <= tol with operand capture; the
///                              floating-point counterpart of CRH_CHECK_EQ.
///   CRH_VERIFY_OR_RETURN(cond, msg)
///                              Release-path contract inside functions
///                              returning Status or Result<T>: on failure
///                              returns Status(kInternal) carrying
///                              file:line + expression + msg instead of
///                              aborting. Use it where a violated internal
///                              invariant should surface as an error to the
///                              caller rather than take the process down.
///
/// All failure paths funnel through crh::internal::CheckFailed, which
/// writes the report to stderr and aborts (so sanitizer builds and death
/// tests both observe it).

#include <cmath>
#include <sstream>
#include <string>

#include "common/status.h"

namespace crh {

/// True iff |a - b| <= tolerance, with NaN never near anything. The
/// epsilon comparison helper the float-equality lint rule points at: use
/// this (or CRH_CHECK_NEAR) instead of ==/!= on doubles.
inline bool NearlyEqual(double a, double b, double tolerance) {
  return std::abs(a - b) <= tolerance;
}

namespace internal {

/// Prints "file:line: CRH_CHECK failed: expr (details)" to stderr and
/// aborts. Never returns.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& details);

/// Builds the Status(kInternal) message used by CRH_VERIFY_OR_RETURN.
std::string VerifyFailureMessage(const char* file, int line, const char* expr,
                                 const std::string& details);

/// Renders a value for a failure report. Arithmetic types print exactly
/// (doubles with enough digits to round-trip); anything streamable uses
/// its operator<<; everything else renders as a placeholder.
template <typename T>
std::string CheckValueToString(const T& value) {
  if constexpr (std::is_floating_point_v<T>) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", static_cast<double>(value));
    return buf;
  } else if constexpr (requires(std::ostringstream& os, const T& v) { os << v; }) {
    std::ostringstream os;
    os << value;
    return os.str();
  } else {
    return "<unprintable>";
  }
}

template <typename A, typename B>
std::string FormatOperands(const A& a, const B& b) {
  return "lhs = " + CheckValueToString(a) + ", rhs = " + CheckValueToString(b);
}

}  // namespace internal
}  // namespace crh

/// Always-on contract check; aborts with a report on failure.
#define CRH_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::crh::internal::CheckFailed(__FILE__, __LINE__, #cond, std::string()); \
    }                                                                       \
  } while (false)

/// Always-on contract check with a context message appended to the report.
#define CRH_CHECK_MSG(cond, msg)                                        \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::crh::internal::CheckFailed(__FILE__, __LINE__, #cond, (msg));   \
    }                                                                   \
  } while (false)

/// Asserts a Status-returning expression is OK; the report carries the
/// status message. The expression is evaluated exactly once.
#define CRH_CHECK_OK(expr)                                                  \
  do {                                                                      \
    const ::crh::Status _crh_check_st = (expr);                             \
    if (!_crh_check_st.ok()) {                                              \
      ::crh::internal::CheckFailed(__FILE__, __LINE__, #expr " is OK",      \
                                   _crh_check_st.ToString());               \
    }                                                                       \
  } while (false)

#define CRH_CHECK_OP_IMPL(a, b, op)                                          \
  do {                                                                       \
    const auto& _crh_a = (a);                                                \
    const auto& _crh_b = (b);                                                \
    if (!(_crh_a op _crh_b)) {                                               \
      ::crh::internal::CheckFailed(__FILE__, __LINE__, #a " " #op " " #b,    \
                                   ::crh::internal::FormatOperands(_crh_a,   \
                                                                   _crh_b)); \
    }                                                                        \
  } while (false)

/// Binary comparison checks with operand capture in the failure report.
#define CRH_CHECK_EQ(a, b) CRH_CHECK_OP_IMPL(a, b, ==)
#define CRH_CHECK_NE(a, b) CRH_CHECK_OP_IMPL(a, b, !=)
#define CRH_CHECK_LT(a, b) CRH_CHECK_OP_IMPL(a, b, <)
#define CRH_CHECK_LE(a, b) CRH_CHECK_OP_IMPL(a, b, <=)
#define CRH_CHECK_GT(a, b) CRH_CHECK_OP_IMPL(a, b, >)
#define CRH_CHECK_GE(a, b) CRH_CHECK_OP_IMPL(a, b, >=)

/// Floating-point nearness check: |a - b| <= tol, with operand capture.
/// NaN on either side fails (NaN is never near anything).
#define CRH_CHECK_NEAR(a, b, tol)                                             \
  do {                                                                        \
    const double _crh_a = static_cast<double>(a);                             \
    const double _crh_b = static_cast<double>(b);                             \
    const double _crh_tol = static_cast<double>(tol);                         \
    if (!::crh::NearlyEqual(_crh_a, _crh_b, _crh_tol)) {                      \
      ::crh::internal::CheckFailed(                                           \
          __FILE__, __LINE__, "|" #a " - " #b "| <= " #tol,                   \
          ::crh::internal::FormatOperands(_crh_a, _crh_b) +                   \
              ", tolerance = " + ::crh::internal::CheckValueToString(_crh_tol)); \
    }                                                                         \
  } while (false)

/// Debug-only variants: full checks unless NDEBUG, otherwise nothing (the
/// condition is not evaluated, but still parsed, so it cannot bit-rot).
#ifndef NDEBUG
#define CRH_DCHECK(cond) CRH_CHECK(cond)
#define CRH_DCHECK_EQ(a, b) CRH_CHECK_EQ(a, b)
#define CRH_DCHECK_NE(a, b) CRH_CHECK_NE(a, b)
#define CRH_DCHECK_LT(a, b) CRH_CHECK_LT(a, b)
#define CRH_DCHECK_LE(a, b) CRH_CHECK_LE(a, b)
#define CRH_DCHECK_GT(a, b) CRH_CHECK_GT(a, b)
#define CRH_DCHECK_GE(a, b) CRH_CHECK_GE(a, b)
#else
#define CRH_DCHECK(cond) \
  do {                   \
    if (false) {         \
      (void)(cond);      \
    }                    \
  } while (false)
#define CRH_DCHECK_EQ(a, b) CRH_DCHECK((a) == (b))
#define CRH_DCHECK_NE(a, b) CRH_DCHECK((a) != (b))
#define CRH_DCHECK_LT(a, b) CRH_DCHECK((a) < (b))
#define CRH_DCHECK_LE(a, b) CRH_DCHECK((a) <= (b))
#define CRH_DCHECK_GT(a, b) CRH_DCHECK((a) > (b))
#define CRH_DCHECK_GE(a, b) CRH_DCHECK((a) >= (b))
#endif

/// Release-path contract: on failure, returns Status::Internal (which a
/// Result<T>-returning function converts implicitly) carrying
/// file:line + expression + context, instead of aborting. Only usable
/// inside functions returning crh::Status or crh::Result<T>.
#define CRH_VERIFY_OR_RETURN(cond, msg)                                    \
  do {                                                                     \
    if (!(cond)) {                                                         \
      return ::crh::Status::Internal(::crh::internal::VerifyFailureMessage( \
          __FILE__, __LINE__, #cond, (msg)));                              \
    }                                                                      \
  } while (false)

#endif  // CRH_COMMON_CHECK_H_
