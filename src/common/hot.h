#ifndef CRH_COMMON_HOT_H_
#define CRH_COMMON_HOT_H_

/// \file hot.h
/// The CRH_HOT real-time-discipline annotation.
///
/// ROADMAP item 1 (a resident `crh_serve` daemon answering truth queries
/// from an epoch snapshot) and item 3 (SIMD/arena kernels) both require the
/// solver's inner loops to be *hard* real-time friendly: re-entered once
/// per entry per iteration, they must never allocate, grow a container,
/// take a lock, block on I/O, throw, or evaluate a fail point. A stray
/// `std::vector` copy in `UpdateTruths` is invisible in a code review but
/// dominates serving latency.
///
/// `CRH_HOT` marks a function as belonging to that discipline:
///
///   CRH_HOT double WeightedMeanSpan(const double* values,
///                                   const double* weights, size_t n);
///
/// The whole-program analyzer (scripts/crh_analyzer.py, `hot` check)
/// verifies the property *transitively*: neither the annotated function
/// nor anything it can reach through the call graph may contain a
/// forbidden operation. Scratch memory is therefore caller-owned — the
/// orchestrating pass allocates reusable buffers once per run and the hot
/// kernels only index into them (see SolverScratch in core/crh.cc).
///
/// On GCC/Clang the macro also expands to the `hot` function attribute, so
/// the annotation doubles as an optimizer placement hint.

#if defined(__GNUC__) || defined(__clang__)
#define CRH_HOT __attribute__((hot))
#else
#define CRH_HOT
#endif

#endif  // CRH_COMMON_HOT_H_
