#ifndef CRH_COMMON_STATUS_H_
#define CRH_COMMON_STATUS_H_

/// \file status.h
/// Lightweight error-handling primitives used across the CRH library.
///
/// The public API never throws across module boundaries; fallible
/// operations return a Status (or Result<T> for value-producing calls),
/// in the style of Arrow / RocksDB.

#include <optional>
#include <string>
#include <utility>

namespace crh {

/// Machine-readable error category attached to a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kIOError,
  kNotImplemented,
  kInternal,
};

/// Returns a short human-readable name for a StatusCode ("InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: either OK or a code plus message.
///
/// Status is cheap to copy in the OK case (no allocation) and carries an
/// explanatory message otherwise. Use the factory helpers:
///
///   if (n < 0) return Status::InvalidArgument("n must be non-negative");
///
/// The class itself is [[nodiscard]]: any call returning a Status whose
/// result is ignored fails to compile under -Werror (GCC and Clang both
/// warn on a discarded nodiscard class type). A deliberate drop must be
/// spelled `(void)` and carries a lint:allow (scripts/lint.py,
/// unchecked-status).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory for an OK status.
  [[nodiscard]] static Status OK() { return Status(); }
  /// The caller passed an argument that violates the API contract.
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  /// An index or value fell outside its permitted range.
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  /// A named object (property, source, ...) does not exist.
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  /// A named object already exists where a new one was to be created.
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  /// The object is not in a state that permits the operation.
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  /// A file or stream operation failed.
  [[nodiscard]] static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  /// The operation is not implemented for this configuration.
  [[nodiscard]] static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  /// An invariant inside the library was violated (a bug).
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff the status is OK.
  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  [[nodiscard]] StatusCode code() const { return code_; }
  /// The error message (empty for OK).
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value-or-error sum type: holds T on success, a non-OK Status on failure.
///
///   Result<Dataset> r = LoadCsv(path);
///   if (!r.ok()) return r.status();
///   Dataset d = std::move(r).ValueOrDie();
///
/// [[nodiscard]] like Status: a discarded Result is a discarded error
/// *and* a discarded value, so it never compiles silently.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a successful result holding \p value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs a failed result from a non-OK status.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  /// True iff a value is present.
  [[nodiscard]] bool ok() const { return value_.has_value(); }
  /// The status: OK when a value is present.
  const Status& status() const { return status_; }

  /// The contained value; must only be called when ok().
  const T& ValueOrDie() const& { return *value_; }
  /// Moves the contained value out; must only be called when ok().
  T ValueOrDie() && { return std::move(*value_); }
  /// Alias for ValueOrDie for parity with Arrow naming.
  const T& operator*() const& { return *value_; }
  T operator*() && { return std::move(*value_); }
  const T* operator->() const { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

/// Propagates a non-OK Status to the caller.
#define CRH_RETURN_NOT_OK(expr)             \
  do {                                      \
    ::crh::Status _st = (expr);             \
    if (!_st.ok()) return _st;              \
  } while (false)

}  // namespace crh

#endif  // CRH_COMMON_STATUS_H_
