#include "common/thread_pool.h"

#include <algorithm>

namespace crh {

size_t ThreadPool::ResolveNumThreads(int num_threads) {
  if (num_threads > 0) return static_cast<size_t>(num_threads);
  if (num_threads == 0) {
    return std::max(1u, std::thread::hardware_concurrency());
  }
  return 1;
}

ThreadPool::ThreadPool(int num_threads) : num_workers_(ResolveNumThreads(num_threads)) {
  helpers_.reserve(num_workers_ - 1);
  for (size_t w = 1; w < num_workers_; ++w) {
    helpers_.emplace_back([this, w]() { HelperLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& helper : helpers_) helper.join();
}

void ThreadPool::HelperLoop(size_t worker) {
  uint64_t seen = 0;
  mu_.Lock();
  for (;;) {
    while (!shutdown_ && generation_ == seen) work_cv_.Wait(&mu_);
    if (shutdown_) {
      mu_.Unlock();
      return;
    }
    seen = generation_;
    const size_t count = job_count_;
    const std::function<void(size_t)>* fn = job_fn_;
    // The job body runs unlocked: holding mu_ across user callables would
    // serialize the pool and deadlock any callable touching the registry
    // (ast_lint's lock-across-callback rule enforces this shape).
    mu_.Unlock();
    for (size_t index = worker; index < count; index += num_workers_) (*fn)(index);
    mu_.Lock();
    ++helpers_finished_;
    if (helpers_finished_ == num_workers_ - 1) done_cv_.NotifyOne();
  }
}

void ThreadPool::ParallelFor(size_t count, const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (num_workers_ == 1 || count == 1) {
    // Inline fast path: identical index order, no synchronization.
    for (size_t index = 0; index < count; ++index) fn(index);
    return;
  }
  {
    const MutexLock lock(&mu_);
    job_count_ = count;
    job_fn_ = &fn;
    helpers_finished_ = 0;
    ++generation_;
  }
  work_cv_.NotifyAll();
  // The caller is worker 0.
  for (size_t index = 0; index < count; index += num_workers_) fn(index);
  mu_.Lock();
  while (helpers_finished_ != num_workers_ - 1) done_cv_.Wait(&mu_);
  job_fn_ = nullptr;
  mu_.Unlock();
}

void ThreadPool::Run(const std::vector<std::function<void()>>& tasks) {
  ParallelFor(tasks.size(), [&tasks](size_t t) { tasks[t](); });
}

}  // namespace crh
