#include "common/thread_pool.h"

#include <algorithm>

namespace crh {

size_t ThreadPool::ResolveNumThreads(int num_threads) {
  if (num_threads > 0) return static_cast<size_t>(num_threads);
  if (num_threads == 0) {
    return std::max(1u, std::thread::hardware_concurrency());
  }
  return 1;
}

ThreadPool::ThreadPool(int num_threads) : num_workers_(ResolveNumThreads(num_threads)) {
  helpers_.reserve(num_workers_ - 1);
  for (size_t w = 1; w < num_workers_; ++w) {
    helpers_.emplace_back([this, w]() { HelperLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& helper : helpers_) helper.join();
}

void ThreadPool::HelperLoop(size_t worker) {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&]() { return shutdown_ || generation_ != seen; });
    if (shutdown_) return;
    seen = generation_;
    const size_t count = job_count_;
    const std::function<void(size_t)>* fn = job_fn_;
    lock.unlock();
    for (size_t index = worker; index < count; index += num_workers_) (*fn)(index);
    lock.lock();
    ++helpers_finished_;
    if (helpers_finished_ == num_workers_ - 1) done_cv_.notify_one();
  }
}

void ThreadPool::ParallelFor(size_t count, const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (num_workers_ == 1 || count == 1) {
    // Inline fast path: identical index order, no synchronization.
    for (size_t index = 0; index < count; ++index) fn(index);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    job_count_ = count;
    job_fn_ = &fn;
    helpers_finished_ = 0;
    ++generation_;
  }
  work_cv_.notify_all();
  // The caller is worker 0.
  for (size_t index = 0; index < count; index += num_workers_) fn(index);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&]() { return helpers_finished_ == num_workers_ - 1; });
  job_fn_ = nullptr;
}

void ThreadPool::Run(const std::vector<std::function<void()>>& tasks) {
  ParallelFor(tasks.size(), [&tasks](size_t t) { tasks[t](); });
}

}  // namespace crh
