#ifndef CRH_COMMON_VALUE_H_
#define CRH_COMMON_VALUE_H_

/// \file value.h
/// The heterogeneous observation value type.
///
/// CRH integrates data whose properties have different types. A Value holds
/// either a continuous reading (double), a categorical label (an interned
/// CategoryId local to its property's dictionary), or nothing (a missing
/// observation). The type is deliberately small (16 bytes) so observation
/// tables with tens of millions of cells stay compact.

#include <cmath>
#include <cstdint>
#include <functional>
#include <string>

namespace crh {

/// Data type of a property; decides which loss function / resolver applies.
enum class PropertyType : uint8_t {
  kContinuous = 0,
  kCategorical = 1,
  /// Free-form string data (names, addresses, titles). Stored as interned
  /// labels like categorical data, but compared by normalized edit
  /// distance rather than 0-1 equality (Section 2.4's "edit distance for
  /// text data").
  kText = 2,
};

/// Returns "continuous", "categorical" or "text".
const char* PropertyTypeToString(PropertyType type);

/// Interned identifier of a categorical label within one property's
/// CategoryDict. Ids are dense and start at 0.
using CategoryId = int32_t;

/// Sentinel CategoryId meaning "no label".
inline constexpr CategoryId kInvalidCategory = -1;

/// A single observation cell: continuous, categorical, or missing.
class Value {
 public:
  /// Constructs a missing value.
  Value() = default;

  /// Constructs a continuous value.
  static Value Continuous(double v) {
    Value out;
    out.kind_ = Kind::kContinuous;
    out.continuous_ = v;
    return out;
  }

  /// Constructs a categorical value from an interned id.
  static Value Categorical(CategoryId id) {
    Value out;
    out.kind_ = Kind::kCategorical;
    out.category_ = id;
    return out;
  }

  /// Constructs a missing value (same as the default constructor).
  static Value Missing() { return Value(); }

  /// True iff no observation is present.
  bool is_missing() const { return kind_ == Kind::kMissing; }
  /// True iff the value is a continuous reading.
  bool is_continuous() const { return kind_ == Kind::kContinuous; }
  /// True iff the value is a categorical label.
  bool is_categorical() const { return kind_ == Kind::kCategorical; }

  /// The continuous reading; only valid when is_continuous().
  double continuous() const { return continuous_; }
  /// The categorical id; only valid when is_categorical().
  CategoryId category() const { return category_; }

  /// Exact equality. Missing compares equal only to missing; continuous
  /// values compare with ==, so callers needing tolerance should compare
  /// the doubles themselves.
  bool operator==(const Value& other) const {
    if (kind_ != other.kind_) return false;
    switch (kind_) {
      case Kind::kMissing:
        return true;
      case Kind::kContinuous:
        // Value identity is intentionally exact: two claims are the same
        // claim only when bit-equal; tolerant comparison is a loss-function
        // concern, not an identity concern.
        return continuous_ == other.continuous_;  // lint:allow(float-equality)
      case Kind::kCategorical:
        return category_ == other.category_;
    }
    return false;
  }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Debug representation: "missing", "3.25", or "#7".
  std::string ToString() const;

  /// Hash suitable for unordered containers keyed by Value.
  size_t Hash() const {
    switch (kind_) {
      case Kind::kMissing:
        return 0x9e3779b97f4a7c15ull;
      case Kind::kContinuous:
        return std::hash<double>{}(continuous_);
      case Kind::kCategorical:
        return std::hash<int64_t>{}(0x517cc1b727220a95ll ^ category_);
    }
    return 0;
  }

 private:
  enum class Kind : uint8_t { kMissing = 0, kContinuous = 1, kCategorical = 2 };

  Kind kind_ = Kind::kMissing;
  union {
    double continuous_;
    CategoryId category_ = kInvalidCategory;
  };
};

/// std::hash adapter so Value can key unordered_map / unordered_set.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace crh

#endif  // CRH_COMMON_VALUE_H_
