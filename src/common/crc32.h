#ifndef CRH_COMMON_CRC32_H_
#define CRH_COMMON_CRC32_H_

/// \file crc32.h
/// CRC-32 (ISO-HDLC / zlib polynomial) for integrity-checking on-disk
/// artifacts such as the streaming checkpoints of stream/checkpoint.h.
///
/// The variant implemented here is the standard reflected CRC-32
/// (polynomial 0xEDB88320, initial value and final xor 0xFFFFFFFF), i.e.
/// bit-compatible with zlib's crc32() and Python's zlib.crc32 — so corpus
/// files and external tooling can produce and verify checksums without
/// linking this library.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace crh {

/// Extends a running CRC-32 with `size` bytes. Start (and leave) `crc` at 0
/// for a fresh checksum; feed the previous return value to continue one.
uint32_t Crc32Update(uint32_t crc, const void* data, size_t size);

/// CRC-32 of a whole buffer.
inline uint32_t Crc32(const void* data, size_t size) {
  return Crc32Update(0, data, size);
}

/// CRC-32 of a string's bytes.
inline uint32_t Crc32(std::string_view bytes) {
  return Crc32Update(0, bytes.data(), bytes.size());
}

}  // namespace crh

#endif  // CRH_COMMON_CRC32_H_
