#ifndef CRH_COMMON_MUTEX_H_
#define CRH_COMMON_MUTEX_H_

/// \file mutex.h
/// Annotated mutex / condition-variable wrappers for compile-time thread
/// safety analysis.
///
/// libstdc++'s std::mutex and std::lock_guard carry no thread-safety
/// attributes, so Clang's analysis cannot see which lock protects which
/// data when they are used directly. These thin wrappers (zero overhead:
/// every member is a single inlined forwarding call) put the attributes of
/// common/thread_annotations.h on the lock operations, in the style of
/// Abseil's Mutex and RocksDB's port::Mutex:
///
///   class Queue {
///     void Push(int v) CRH_EXCLUDES(mu_) {
///       MutexLock lock(&mu_);
///       items_.push_back(v);      // OK: mu_ held
///       cv_.NotifyOne();
///     }
///     Mutex mu_;
///     CondVar cv_;
///     std::vector<int> items_ CRH_GUARDED_BY(mu_);
///   };
///
/// Touching `items_` without the lock is then a *compile error* under the
/// `analyze` preset (see tests/negative_compile/). CondVar pairs with
/// Mutex the way std::condition_variable pairs with std::mutex; its Wait
/// requires the mutex to be held and holds it again on return.

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace crh {

class CondVar;

/// A std::mutex the thread-safety analysis can reason about.
class CRH_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CRH_ACQUIRE() { mu_.lock(); }
  void Unlock() CRH_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for a Mutex; the scoped-capability analogue of
/// std::lock_guard.
class CRH_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) CRH_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() CRH_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable paired with crh::Mutex.
///
/// Wait atomically releases the mutex, blocks, and reacquires it before
/// returning — exactly std::condition_variable::wait — so from the
/// analysis's point of view the caller holds the mutex throughout
/// (CRH_REQUIRES). The adopt/release dance hands the already-held native
/// mutex to a transient std::unique_lock without double-locking.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. Spurious wakeups happen; callers loop on their
  /// predicate as with any condition variable.
  void Wait(Mutex* mu) CRH_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace crh

#endif  // CRH_COMMON_MUTEX_H_
