#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace crh::internal {

namespace {

std::string FormatReport(const char* file, int line, const char* expr,
                         const std::string& details) {
  std::string report = std::string(file) + ":" + std::to_string(line) +
                       ": CRH_CHECK failed: " + expr;
  if (!details.empty()) report += " (" + details + ")";
  return report;
}

}  // namespace

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& details) {
  const std::string report = FormatReport(file, line, expr, details);
  std::fputs(report.c_str(), stderr);
  std::fputc('\n', stderr);
  std::fflush(stderr);  // lint:allow(unchecked-io-write) crash path; abort follows
  std::abort();
}

std::string VerifyFailureMessage(const char* file, int line, const char* expr,
                                 const std::string& details) {
  return FormatReport(file, line, expr, details);
}

}  // namespace crh::internal
