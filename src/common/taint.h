#ifndef CRH_COMMON_TAINT_H_
#define CRH_COMMON_TAINT_H_

/// \file taint.h
/// The escape hatch for the whole-program untrusted-input taint analysis
/// (scripts/crh_analyzer.py --check=taint).
///
/// The serving daemon consumes bytes from outside the process: socket
/// reads, wire-protocol fields, ingested chunk CSV, checkpoint payloads.
/// The analyzer marks values derived from those sources as untrusted and
/// rejects any flow into an allocation size, container index, copy
/// length, or loop bound that is not dominated by a range check on the
/// tainted value (an `if`/CRH_CHECK/CRH_VERIFY_OR_RETURN comparison on an
/// earlier line).
///
/// A use that is *provably* safe without a syntactic range check — say, a
/// count already clamped by construction, or a value validated by a
/// checksum covering the whole payload — declares so at the use site:
///
///   out->resize(CRH_SANITIZED(count, "count <= capacity by Reserve()"));
///
/// The annotation is a sanitizer: the analyzer treats the wrapped value
/// as bounds-checked from this line on, so the author is vouching that
/// the value cannot drive an out-of-range access. Misuse fails loudly
/// twice over: the reason must be a non-empty string literal (enforced
/// below via literal concatenation inside a template parameter — see
/// tests/negative_compile/sanitized_*.cc), and wrapping a value the
/// analyzer does not track as untrusted is itself a `taint` finding
/// (blessing trusted data is noise that hides real escapes).

namespace crh {
namespace taint_internal {

/// Carrier for the non-empty-literal check. CRH_SANITIZED must work in
/// expression position (unlike the statement-only CRH_DETERMINISM_EXEMPT),
/// so the static_assert lives in a class template instantiated with the
/// literal check as its argument.
template <bool kNonEmptyReason>
struct SanitizedReason {
  static_assert(kNonEmptyReason,
                "CRH_SANITIZED requires a non-empty string literal "
                "explaining why the untrusted value cannot drive an "
                "out-of-range access");

  template <typename T>
  static constexpr T&& Pass(T&& value) noexcept {
    return static_cast<T&&>(value);
  }
};

}  // namespace taint_internal
}  // namespace crh

/// Marks `expr` as a reviewed untrusted-input sanitization point.
/// `reason` must be a non-empty string literal: `reason ""` only compiles
/// when `reason` is itself a literal (concatenation), and sizeof > 1
/// rejects the empty string. Expands to `expr` unchanged at runtime.
#define CRH_SANITIZED(expr, reason)                                          \
  (::crh::taint_internal::SanitizedReason<(sizeof(reason "") > 1)>::Pass(    \
      expr))

#endif  // CRH_COMMON_TAINT_H_
