#ifndef CRH_COMMON_STOPWATCH_H_
#define CRH_COMMON_STOPWATCH_H_

/// \file stopwatch.h
/// Wall-clock timing used by the benchmark harnesses (Table 5 etc.).

#include <chrono>

namespace crh {

/// Measures elapsed wall-clock time. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement from now.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace crh

#endif  // CRH_COMMON_STOPWATCH_H_
