#ifndef CRH_COMMON_STOPWATCH_H_
#define CRH_COMMON_STOPWATCH_H_

/// \file stopwatch.h
/// Wall-clock timing used by the benchmark harnesses (Table 5 etc.).
///
/// This is the sanctioned wall-clock shim: timing *reports* are the one
/// place nondeterministic clock reads may surface (they are never compared
/// bit-for-bit), so every method carries CRH_DETERMINISM_EXEMPT and the
/// analyzer treats the class as a taint barrier.

#include <chrono>

#include "common/determinism.h"

namespace crh {

/// Measures elapsed wall-clock time. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {
    CRH_DETERMINISM_EXEMPT("timing shim; elapsed time feeds reports only");
  }

  /// Restarts the measurement from now.
  void Reset() {
    CRH_DETERMINISM_EXEMPT("timing shim; elapsed time feeds reports only");
    start_ = Clock::now();
  }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    CRH_DETERMINISM_EXEMPT("timing shim; elapsed time feeds reports only");
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace crh

#endif  // CRH_COMMON_STOPWATCH_H_
