#ifndef CRH_COMMON_THREAD_POOL_H_
#define CRH_COMMON_THREAD_POOL_H_

/// \file thread_pool.h
/// A reusable worker pool with deterministic static scheduling.
///
/// The solvers in this library promise that parallel execution is an
/// *execution strategy*, never a semantic change: a run at any thread count
/// must be bit-identical to the sequential run. That rules out dynamic
/// scheduling (work stealing, atomically popped queues) for anything that
/// feeds a floating-point reduction, because the partition of work — and
/// with it the association order of the partial sums — would depend on
/// runtime timing.
///
/// ThreadPool therefore assigns work statically: ParallelFor(count, fn)
/// executes fn(index) for every index in [0, count), and index i always
/// runs on worker i % W. Which thread executes an index affects timing
/// only; callers that reduce results do so over per-index (or per-shard)
/// slots in index order, so the reduction tree is fixed by the *shard
/// grid*, not by the thread count (see docs/PERFORMANCE.md, "Deterministic
/// reduction"). The calling thread participates as worker 0, so a pool
/// constructed with one worker runs everything inline with zero
/// synchronization.
///
/// Workers are started once and reused across jobs — the per-iteration
/// hot loops of the batch solver issue many small parallel regions, and
/// thread creation per region would dominate them. One job runs at a
/// time; ParallelFor blocks until every index has executed. Callables
/// must not throw.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace crh {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers. 0 means one worker per
  /// hardware thread; values below 0 are clamped to 1. The calling thread
  /// acts as worker 0, so `num_threads - 1` OS threads are spawned.
  explicit ThreadPool(int num_threads = 0);

  /// Joins the helper threads. Must not be called while a ParallelFor is
  /// in flight on another thread.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers (helper threads + the calling thread).
  size_t num_workers() const { return num_workers_; }

  /// Runs fn(index) for every index in [0, count); index i executes on
  /// worker i % num_workers(). Blocks until all indices have run. Safe to
  /// call repeatedly; not reentrant (fn must not call ParallelFor on the
  /// same pool).
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn)
      CRH_EXCLUDES(mu_);

  /// Convenience: runs tasks[t] for every t, task t on worker t % W. The
  /// drop-in equivalent of the MapReduce engine's task-wave executor.
  void Run(const std::vector<std::function<void()>>& tasks) CRH_EXCLUDES(mu_);

  /// Resolves a thread-count knob: n > 0 is taken as-is, n == 0 means
  /// hardware concurrency (at least 1), n < 0 resolves to 1.
  static size_t ResolveNumThreads(int num_threads);

 private:
  void HelperLoop(size_t worker) CRH_EXCLUDES(mu_);

  size_t num_workers_ = 1;
  std::vector<std::thread> helpers_;  // size num_workers_ - 1

  Mutex mu_;
  CondVar work_cv_;
  CondVar done_cv_;
  // Current job, published under mu_. generation_ increments per job so
  // helpers can tell a fresh job from a spurious wakeup.
  uint64_t generation_ CRH_GUARDED_BY(mu_) = 0;
  size_t job_count_ CRH_GUARDED_BY(mu_) = 0;
  const std::function<void(size_t)>* job_fn_ CRH_GUARDED_BY(mu_) = nullptr;
  size_t helpers_finished_ CRH_GUARDED_BY(mu_) = 0;
  bool shutdown_ CRH_GUARDED_BY(mu_) = false;
};

}  // namespace crh

#endif  // CRH_COMMON_THREAD_POOL_H_
