#ifndef CRH_COMMON_ARENA_H_
#define CRH_COMMON_ARENA_H_

/// \file arena.h
/// Bump-pointer arena for caller-owned solver scratch.
///
/// The CRH_HOT discipline (common/hot.h) requires every per-iteration
/// buffer to be allocated before the hot loops start. Before the arena,
/// each scratch struct owned a handful of std::vectors, so sizing the
/// solver's workspace meant a dozen small heap allocations per run and a
/// dozen growth sites the `hot` analyzer check had to reason about. The
/// arena collapses that to one backing allocation: the cold setup path
/// computes the total byte budget, calls Reserve once, and carves every
/// buffer out of it with Carve — a pure pointer bump that is trivially
/// allocation-free and safe to reason about in hot call graphs.
///
/// Lifetime rules (see docs/PERFORMANCE.md, "Arena scratch"):
///
///  * Reserve and Reset are COLD: Reserve may grow (and therefore move)
///    the backing store, invalidating every previously carved pointer;
///    Reset rewinds the bump cursor, invalidating carves logically.
///    Neither may be reached from a CRH_HOT function.
///  * Carve never allocates and never fails into growth: exceeding the
///    reserved capacity is a checked programming error, not a reallocation.
///  * Carved memory is uninitialized; callers overwrite before reading
///    (every carved type is trivially copyable, enforced below).
///  * The canonical pattern is Reset + Reserve(total) + carve everything in
///    one deterministic order, once per solver entry point.

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/check.h"

namespace crh {

/// Single-owner bump allocator. Not thread-safe; one arena per workspace.
class Arena {
 public:
  Arena() = default;

  /// Cold path: grows the backing store to at least \p bytes and rewinds
  /// the cursor. Every pointer carved before this call is invalidated.
  void Reserve(size_t bytes) {
    if (storage_.size() < bytes) storage_.resize(bytes);
    used_ = 0;
  }

  /// Rewinds the cursor without touching capacity; previously carved
  /// pointers are logically invalidated (their memory will be re-carved).
  void Reset() { used_ = 0; }

  /// Bump-carves an array of \p n Ts, aligned for T. Never allocates: the
  /// caller must have Reserve()d enough (checked). The returned memory is
  /// uninitialized.
  template <typename T>
  T* Carve(size_t n) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "arena memory is raw storage; carve trivially copyable types only");
    const size_t aligned = AlignUp(used_, alignof(T));
    const size_t end = aligned + n * sizeof(T);
    CRH_DCHECK_LE(end, storage_.size());
    used_ = end;
    return reinterpret_cast<T*>(storage_.data() + aligned);
  }

  /// Byte budget helper for the Reserve computation: the worst-case cost of
  /// carving \p n Ts after arbitrary prior carves (payload + alignment gap).
  template <typename T>
  static constexpr size_t BytesFor(size_t n) {
    return n * sizeof(T) + alignof(T) - 1;
  }

  size_t capacity() const { return storage_.size(); }
  size_t used() const { return used_; }

 private:
  static size_t AlignUp(size_t offset, size_t alignment) {
    return (offset + alignment - 1) & ~(alignment - 1);
  }

  // operator new memory is aligned for max_align_t, so every fundamental
  // alignment carved above is honored relative to storage_.data().
  std::vector<unsigned char> storage_;
  size_t used_ = 0;
};

}  // namespace crh

#endif  // CRH_COMMON_ARENA_H_
