#include "common/statistics.h"

#include <cmath>
#include <limits>

namespace crh {

double InverseNormalCdf(double p) {
  if (!(p >= 0.0 && p <= 1.0)) return std::numeric_limits<double>::quiet_NaN();
  // Exact boundary checks on the caller-supplied probability, not on a
  // computed value; the open interval (0, 1) goes through the approximation.
  if (p == 0.0) return -std::numeric_limits<double>::infinity();  // lint:allow(float-equality)
  if (p == 1.0) return std::numeric_limits<double>::infinity();  // lint:allow(float-equality)

  // Acklam's rational approximation with the standard breakpoints.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  static constexpr double p_low = 0.02425;

  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

double ChiSquaredQuantile(double p, double dof) {
  if (!(p > 0.0 && p < 1.0) || !(dof > 0.0)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  // Wilson-Hilferty: chi2_p(n) ~ n * (1 - 2/(9n) + z_p * sqrt(2/(9n)))^3.
  const double z = InverseNormalCdf(p);
  const double t = 2.0 / (9.0 * dof);
  const double cube = 1.0 - t + z * std::sqrt(t);
  const double approx = dof * cube * cube * cube;
  // The cube can go negative for tiny dof and extreme p; clamp at a small
  // positive value so confidence weights stay usable.
  return approx > 1e-12 ? approx : 1e-12;
}

}  // namespace crh
