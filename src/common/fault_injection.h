#ifndef CRH_COMMON_FAULT_INJECTION_H_
#define CRH_COMMON_FAULT_INJECTION_H_

/// \file fault_injection.h
/// Deterministic fault injection and retry primitives.
///
/// Production truth-discovery deployments must survive I/O failures without
/// corrupting learned state, and the only way to *prove* that is to force a
/// failure at every I/O call site and watch the error propagate cleanly.
/// This header provides the two halves of that story:
///
///  * FailPoints — a process-wide registry of named fail-point sites.
///    Instrumented code calls `CRH_FAIL_POINT("checkpoint.fwrite")` before
///    the real I/O call; tests arm a site to fail at a chosen hit count and
///    assert the operation surfaces a Status error without leaving torn
///    artifacts behind. Decisions are a pure function of (site, hit count,
///    armed schedule) — no wall clock, no global RNG — in the same spirit
///    as the MapReduce engine's deterministic `fault_injection_rate`
///    (mapreduce/engine.h), whose hash mixer lives here as Mix64.
///    When nothing is armed and recording is off, a hit is a single relaxed
///    atomic load, so shipping the instrumentation costs nothing.
///
///  * RetryPolicy / RetryWithBackoff — capped exponential backoff with
///    deterministic jitter for transient I/O failures, unified in style
///    with the engine's `max_attempts`: attempt numbering, the give-up
///    contract and the determinism guarantee are the same. Only
///    StatusCode::kIOError is considered transient; any other error is
///    returned immediately.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace crh {

/// SplitMix64 finalizer: a well-mixed 64-bit hash of a 64-bit input. Shared
/// by the MapReduce engine's per-(task, attempt) fault decisions and the
/// retry jitter below so every "random" robustness decision in the library
/// comes from one auditable mixer.
uint64_t Mix64(uint64_t x);

/// Maps a 64-bit hash to a uniform double in [0, 1).
double UnitUniformFromHash(uint64_t h);

/// Outcome of consulting a write-capable fail-point site. Either the write
/// fails outright (`status` non-OK, exactly like Hit()), or it must be
/// *silently truncated*: write only the first `truncate_to` bytes yet report
/// success to the caller. The silent mode models an ENOSPC / short-write /
/// lying-disk tail loss that no return code surfaces — only a later read
/// (CRC mismatch, truncated frame) can detect it.
struct [[nodiscard]] WriteFault {
  Status status = Status::OK();
  std::optional<uint64_t> truncate_to;
};

/// Process-wide registry of named fail-point sites (singleton).
///
/// A *site* is a string naming one instrumented call site, e.g.
/// "checkpoint.rename". Each call to Hit() counts one hit of the site and
/// returns a non-OK Status when the armed schedule says this hit fails.
/// Thread-safe; typical test usage:
///
///   FailPoints::Instance().FailOnHit("checkpoint.fwrite", 2);
///   EXPECT_FALSE(manager.Save(state).ok());   // 2nd fwrite dies
///   FailPoints::Instance().ClearAll();
class FailPoints {
 public:
  /// The process-wide registry.
  static FailPoints& Instance();

  /// Arms `site` so its next `times` hits fail (counting from now).
  void FailNext(const std::string& site, uint64_t times = 1) CRH_EXCLUDES(mu_);

  /// Arms `site` so its `hit`-th hit *from this arming* fails (1-based).
  /// Multiple calls accumulate distinct failing hits.
  void FailOnHit(const std::string& site, uint64_t hit) CRH_EXCLUDES(mu_);

  /// Arms `site` so its `hit`-th hit from this arming (1-based) silently
  /// truncates the write to `keep_bytes` bytes: HitWrite() reports success
  /// but instructs the caller to persist only that prefix. Honored only by
  /// sites consulted through HitWrite(); plain Hit() treats a short-write
  /// schedule as a no-op.
  void ShortWriteOnHit(const std::string& site, uint64_t hit,
                       uint64_t keep_bytes) CRH_EXCLUDES(mu_);

  /// Arms `site` so its `hit`-th hit from this arming (1-based) kills the
  /// process with SIGKILL — no destructors, no stream flushes, no atexit —
  /// emulating a hard crash at an exact, deterministic moment. The chaos
  /// suite uses this to kill `crh_serve` mid-ingest and prove resume.
  void KillOnHit(const std::string& site, uint64_t hit) CRH_EXCLUDES(mu_);

  /// Disarms one site (hit counters reset too).
  void Clear(const std::string& site) CRH_EXCLUDES(mu_);

  /// Disarms every site, resets all counters, and stops recording.
  void ClearAll() CRH_EXCLUDES(mu_);

  /// When recording, every Hit() is counted even for unarmed sites, so a
  /// test can discover how many times each site fires during an operation
  /// before sweeping failures over those hits.
  void SetRecording(bool recording) CRH_EXCLUDES(mu_);

  /// Hits recorded per site since recording started (sorted by site name).
  std::vector<std::pair<std::string, uint64_t>> RecordedHits() const
      CRH_EXCLUDES(mu_);

  /// Counts one hit of `site`; returns IOError when this hit is armed to
  /// fail, OK otherwise. The fast path (nothing armed, not recording) is a
  /// single atomic load.
  [[nodiscard]] Status Hit(const std::string& site) CRH_EXCLUDES(mu_);

  /// Hit() for write-capable sites: additionally consults the short-write
  /// schedule armed by ShortWriteOnHit(). Callers must honor a set
  /// `truncate_to` even when `status` is OK.
  [[nodiscard]] WriteFault HitWrite(const std::string& site) CRH_EXCLUDES(mu_);

  /// Parses and arms one external fail-point spec of the form
  /// `site@hit=fail`, `site@hit=kill`, or `site@hit=trunc:bytes` (hit is
  /// 1-based from now). This is how the `crh_serve` daemon's `--fail-point`
  /// flag arms the same deterministic schedules tests arm in-process.
  [[nodiscard]] Status ArmFromSpec(const std::string& spec) CRH_EXCLUDES(mu_);

  FailPoints(const FailPoints&) = delete;
  FailPoints& operator=(const FailPoints&) = delete;

 private:
  FailPoints() = default;

  struct SiteState {
    uint64_t hits = 0;            ///< Hits seen since arming / recording start.
    uint64_t fail_remaining = 0;  ///< FailNext budget.
    std::set<uint64_t> fail_hits; ///< FailOnHit schedule (1-based hit numbers).
    std::map<uint64_t, uint64_t> short_writes;  ///< hit -> keep_bytes.
    std::set<uint64_t> kill_hits; ///< KillOnHit schedule (1-based hit numbers).
  };

  mutable Mutex mu_;
  std::map<std::string, SiteState> sites_ CRH_GUARDED_BY(mu_);
  bool recording_ CRH_GUARDED_BY(mu_) = false;
  /// Number of armed sites plus one when recording; Hit() early-outs on 0.
  /// Written with release under mu_, read with acquire on the unlocked fast
  /// path so an arming thread's schedule is visible before a hit honors it.
  std::atomic<int> active_{0};

  void RecomputeActiveLocked() CRH_REQUIRES(mu_);
  [[nodiscard]] Status HitImpl(const std::string& site, WriteFault* write_fault)
      CRH_EXCLUDES(mu_);
};

/// Checks a fail-point site and propagates the injected failure. Place
/// immediately before the real I/O call it stands for.
#define CRH_FAIL_POINT(site) CRH_RETURN_NOT_OK(::crh::FailPoints::Instance().Hit(site))

/// Retry schedule for transient I/O failures: capped exponential backoff
/// with deterministic jitter. `max_attempts` plays the same role as
/// MapReduceConfig::max_attempts — total tries, not retries — and 1 means
/// "no retry at all".
struct RetryPolicy {
  /// Attempts before giving up (>= 1), as in the engine's max_attempts.
  int max_attempts = 3;
  /// Backoff before retry r (1-based) is min(base * 2^(r-1), max), plus
  /// jitter. base 0 disables sleeping entirely (tests).
  double base_backoff_ms = 1.0;
  double max_backoff_ms = 64.0;
  /// Fraction of the backoff added as deterministic jitter in [0, jitter).
  double jitter = 0.5;
  /// Seed for the jitter stream; equal seeds give equal schedules.
  uint64_t seed = 0x9e3779b97f4a7c15u;
};

/// Validates a RetryPolicy.
[[nodiscard]] Status ValidateRetryPolicy(const RetryPolicy& policy);

/// The backoff in milliseconds before retry `retry` (1-based) of the
/// operation identified by `salt`. Pure function of its arguments.
double RetryBackoffMs(const RetryPolicy& policy, int retry, uint64_t salt);

/// Runs `op` until it returns OK, a non-transient error, or the policy's
/// attempt budget is exhausted (the last attempt's status is returned).
/// Only StatusCode::kIOError is retried; `what` names the operation in the
/// jitter salt and in give-up messages.
[[nodiscard]] Status RetryWithBackoff(const RetryPolicy& policy, const std::string& what,
                                      const std::function<Status()>& op);

/// Replaces the real `sleep_for` that RetryWithBackoff uses between
/// attempts. The hook receives the computed backoff in milliseconds; a test
/// installs a virtual clock (record the value, return immediately) so
/// multi-retry recovery and chaos schedules run in microseconds of wall
/// time while exercising the exact same backoff arithmetic. Pass nullptr
/// (or an empty function) to restore the real sleep. Thread-safe.
void SetRetrySleeperForTest(std::function<void(double)> sleeper);

}  // namespace crh

#endif  // CRH_COMMON_FAULT_INJECTION_H_
