#ifndef CRH_COMMON_DETERMINISM_H_
#define CRH_COMMON_DETERMINISM_H_

/// \file determinism.h
/// The escape hatch for the whole-program determinism-taint analysis
/// (scripts/crh_analyzer.py).
///
/// The repo's headline guarantee is bit-identical output: the same claims
/// produce the same truths, weights and checkpoints at every thread count
/// and across kill-and-resume. The analyzer enforces this statically by
/// tracing values derived from wall-clock reads, unseeded RNG, environment
/// variables, pointer addresses, and unordered-container iteration order
/// through the call graph, and rejecting any flow into published state
/// (checkpoint bytes, CSV rows, bench/CLI reports).
///
/// A function that *legitimately* consumes such a source — timing reports,
/// benchmark scale knobs — declares so in its body:
///
///   double Stopwatch::ElapsedSeconds() const {
///     CRH_DETERMINISM_EXEMPT("timing reports are the sanctioned wall-clock output");
///     ...
///   }
///
/// The annotation is a taint *barrier*: the analyzer treats the function as
/// clean, so the author is vouching that nondeterminism does not leak into
/// anything the repo's bit-identity tests compare. Misuse fails to build:
/// the reason must be a non-empty string literal (enforced below via
/// literal concatenation, which only compiles for actual literals — see
/// tests/negative_compile/exempt_empty_reason.cc and
/// exempt_nonliteral_reason.cc).

/// Marks the enclosing function as a reviewed determinism-taint barrier.
/// `reason` must be a non-empty string literal: `reason ""` only compiles
/// when `reason` is itself a literal (concatenation), and sizeof > 1
/// rejects the empty string. Expands to a compile-time no-op.
#define CRH_DETERMINISM_EXEMPT(reason)                                       \
  static_assert(sizeof(reason "") > 1,                                       \
                "CRH_DETERMINISM_EXEMPT requires a non-empty string "        \
                "literal explaining why nondeterminism cannot reach "        \
                "published state")

#endif  // CRH_COMMON_DETERMINISM_H_
