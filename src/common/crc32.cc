#include "common/crc32.h"

#include <array>

namespace crh {

namespace {

/// The 256-entry lookup table for the reflected 0xEDB88320 polynomial,
/// built once at first use.
const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t size) {
  const auto& table = Crc32Table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace crh
