#include "common/fault_injection.h"

#include <chrono>
#include <cmath>
#include <thread>

#include "common/check.h"
#include "common/global_state.h"

namespace crh {

uint64_t Mix64(uint64_t x) {
  // SplitMix64 finalizer (Steele, Lea & Flood); also used, pre-mixed with
  // the task coordinates, by mapreduce/engine.cc.
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9u;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebu;
  x ^= x >> 31;
  return x;
}

double UnitUniformFromHash(uint64_t h) {
  // Top 53 bits -> [0, 1) with full double precision.
  return static_cast<double>(h >> 11) / 9007199254740992.0;
}

FailPoints& FailPoints::Instance() {
  // Process-wide by design: fail points are fault-sweep *test*
  // infrastructure, compiled to a single relaxed atomic load when no test
  // arms them, and never consulted by snapshot read paths.
  CRH_GLOBAL_STATE_EXEMPT(
      "fail-point registry is process-global test infrastructure; "
      "snapshot read paths never evaluate fail points");
  static FailPoints instance;
  return instance;
}

void FailPoints::RecomputeActiveLocked() {
  int active = recording_ ? 1 : 0;
  for (const auto& [site, state] : sites_) {
    if (state.fail_remaining > 0 || !state.fail_hits.empty()) ++active;
  }
  active_.store(active, std::memory_order_release);
}

void FailPoints::FailNext(const std::string& site, uint64_t times) {
  const MutexLock lock(&mu_);
  SiteState& state = sites_[site];
  state.hits = 0;
  state.fail_remaining += times;
  RecomputeActiveLocked();
}

void FailPoints::FailOnHit(const std::string& site, uint64_t hit) {
  CRH_CHECK_GE(hit, 1u);
  const MutexLock lock(&mu_);
  SiteState& state = sites_[site];
  if (state.fail_hits.empty() && state.fail_remaining == 0) state.hits = 0;
  state.fail_hits.insert(hit);
  RecomputeActiveLocked();
}

void FailPoints::Clear(const std::string& site) {
  const MutexLock lock(&mu_);
  sites_.erase(site);
  RecomputeActiveLocked();
}

void FailPoints::ClearAll() {
  const MutexLock lock(&mu_);
  sites_.clear();
  recording_ = false;
  RecomputeActiveLocked();
}

void FailPoints::SetRecording(bool recording) {
  const MutexLock lock(&mu_);
  recording_ = recording;
  if (recording) {
    for (auto& [site, state] : sites_) state.hits = 0;
  }
  RecomputeActiveLocked();
}

std::vector<std::pair<std::string, uint64_t>> FailPoints::RecordedHits() const {
  const MutexLock lock(&mu_);
  std::vector<std::pair<std::string, uint64_t>> hits;
  hits.reserve(sites_.size());
  for (const auto& [site, state] : sites_) {
    if (state.hits > 0) hits.emplace_back(site, state.hits);
  }
  return hits;  // std::map iteration is already name-sorted
}

Status FailPoints::Hit(const std::string& site) {
  if (active_.load(std::memory_order_acquire) == 0) return Status::OK();
  const MutexLock lock(&mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    if (!recording_) return Status::OK();
    it = sites_.emplace(site, SiteState{}).first;
  }
  SiteState& state = it->second;
  ++state.hits;
  bool fail = false;
  if (state.fail_remaining > 0) {
    --state.fail_remaining;
    fail = true;
  } else if (state.fail_hits.erase(state.hits) > 0) {
    fail = true;
  }
  if (fail) {
    const uint64_t hit_no = state.hits;
    RecomputeActiveLocked();
    return Status::IOError("fail point '" + site + "' injected a failure at hit " +
                           std::to_string(hit_no));
  }
  return Status::OK();
}

Status ValidateRetryPolicy(const RetryPolicy& policy) {
  if (policy.max_attempts < 1) {
    return Status::InvalidArgument("retry max_attempts must be >= 1");
  }
  if (!(policy.base_backoff_ms >= 0) || !std::isfinite(policy.base_backoff_ms)) {
    return Status::InvalidArgument("retry base_backoff_ms must be finite and >= 0");
  }
  if (!(policy.max_backoff_ms >= policy.base_backoff_ms) ||
      !std::isfinite(policy.max_backoff_ms)) {
    return Status::InvalidArgument("retry max_backoff_ms must be >= base_backoff_ms");
  }
  if (!(policy.jitter >= 0) || !std::isfinite(policy.jitter)) {
    return Status::InvalidArgument("retry jitter must be finite and >= 0");
  }
  return Status::OK();
}

double RetryBackoffMs(const RetryPolicy& policy, int retry, uint64_t salt) {
  CRH_DCHECK_GE(retry, 1);
  if (policy.base_backoff_ms <= 0) return 0.0;
  // Capped exponential: base * 2^(retry-1), saturating at max.
  double backoff = policy.base_backoff_ms;
  for (int r = 1; r < retry && backoff < policy.max_backoff_ms; ++r) backoff *= 2;
  if (backoff > policy.max_backoff_ms) backoff = policy.max_backoff_ms;
  const uint64_t h = Mix64(policy.seed ^ Mix64(salt) ^ static_cast<uint64_t>(retry));
  return backoff * (1.0 + policy.jitter * UnitUniformFromHash(h));
}

Status RetryWithBackoff(const RetryPolicy& policy, const std::string& what,
                        const std::function<Status()>& op) {
  CRH_RETURN_NOT_OK(ValidateRetryPolicy(policy));
  uint64_t salt = 0xcbf29ce484222325u;  // FNV-1a over the operation name
  for (char c : what) salt = (salt ^ static_cast<unsigned char>(c)) * 0x100000001b3u;
  Status last = Status::OK();
  for (int attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    last = op();
    if (last.ok() || last.code() != StatusCode::kIOError) return last;
    if (attempt == policy.max_attempts) break;
    const double backoff_ms = RetryBackoffMs(policy, attempt, salt);
    if (backoff_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
    }
  }
  return Status::IOError(what + " failed after " + std::to_string(policy.max_attempts) +
                         " attempt(s): " + last.message());
}

}  // namespace crh
