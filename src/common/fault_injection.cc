#include "common/fault_injection.h"

#include <charconv>
#include <chrono>
#include <cmath>
#include <csignal>
#include <thread>

#include "common/check.h"
#include "common/global_state.h"

namespace crh {

uint64_t Mix64(uint64_t x) {
  // SplitMix64 finalizer (Steele, Lea & Flood); also used, pre-mixed with
  // the task coordinates, by mapreduce/engine.cc.
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9u;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebu;
  x ^= x >> 31;
  return x;
}

double UnitUniformFromHash(uint64_t h) {
  // Top 53 bits -> [0, 1) with full double precision.
  return static_cast<double>(h >> 11) / 9007199254740992.0;
}

FailPoints& FailPoints::Instance() {
  // Process-wide by design: fail points are fault-sweep *test*
  // infrastructure, compiled to a single relaxed atomic load when no test
  // arms them, and never consulted by snapshot read paths.
  CRH_GLOBAL_STATE_EXEMPT(
      "fail-point registry is process-global test infrastructure; "
      "snapshot read paths never evaluate fail points");
  static FailPoints instance;
  return instance;
}

void FailPoints::RecomputeActiveLocked() {
  int active = recording_ ? 1 : 0;
  for (const auto& [site, state] : sites_) {
    if (state.fail_remaining > 0 || !state.fail_hits.empty() ||
        !state.short_writes.empty() || !state.kill_hits.empty()) {
      ++active;
    }
  }
  active_.store(active, std::memory_order_release);
}

void FailPoints::FailNext(const std::string& site, uint64_t times) {
  const MutexLock lock(&mu_);
  SiteState& state = sites_[site];
  state.hits = 0;
  state.fail_remaining += times;
  RecomputeActiveLocked();
}

void FailPoints::FailOnHit(const std::string& site, uint64_t hit) {
  CRH_CHECK_GE(hit, 1u);
  const MutexLock lock(&mu_);
  SiteState& state = sites_[site];
  if (state.fail_hits.empty() && state.fail_remaining == 0 &&
      state.short_writes.empty() && state.kill_hits.empty()) {
    state.hits = 0;
  }
  state.fail_hits.insert(hit);
  RecomputeActiveLocked();
}

void FailPoints::ShortWriteOnHit(const std::string& site, uint64_t hit,
                                 uint64_t keep_bytes) {
  CRH_CHECK_GE(hit, 1u);
  const MutexLock lock(&mu_);
  SiteState& state = sites_[site];
  if (state.fail_hits.empty() && state.fail_remaining == 0 &&
      state.short_writes.empty() && state.kill_hits.empty()) {
    state.hits = 0;
  }
  state.short_writes[hit] = keep_bytes;
  RecomputeActiveLocked();
}

void FailPoints::KillOnHit(const std::string& site, uint64_t hit) {
  CRH_CHECK_GE(hit, 1u);
  const MutexLock lock(&mu_);
  SiteState& state = sites_[site];
  if (state.fail_hits.empty() && state.fail_remaining == 0 &&
      state.short_writes.empty() && state.kill_hits.empty()) {
    state.hits = 0;
  }
  state.kill_hits.insert(hit);
  RecomputeActiveLocked();
}

void FailPoints::Clear(const std::string& site) {
  const MutexLock lock(&mu_);
  sites_.erase(site);
  RecomputeActiveLocked();
}

void FailPoints::ClearAll() {
  const MutexLock lock(&mu_);
  sites_.clear();
  recording_ = false;
  RecomputeActiveLocked();
}

void FailPoints::SetRecording(bool recording) {
  const MutexLock lock(&mu_);
  recording_ = recording;
  if (recording) {
    for (auto& [site, state] : sites_) state.hits = 0;
  }
  RecomputeActiveLocked();
}

std::vector<std::pair<std::string, uint64_t>> FailPoints::RecordedHits() const {
  const MutexLock lock(&mu_);
  std::vector<std::pair<std::string, uint64_t>> hits;
  hits.reserve(sites_.size());
  for (const auto& [site, state] : sites_) {
    if (state.hits > 0) hits.emplace_back(site, state.hits);
  }
  return hits;  // std::map iteration is already name-sorted
}

Status FailPoints::Hit(const std::string& site) { return HitImpl(site, nullptr); }

WriteFault FailPoints::HitWrite(const std::string& site) {
  WriteFault fault;
  fault.status = HitImpl(site, &fault);
  return fault;
}

Status FailPoints::HitImpl(const std::string& site, WriteFault* write_fault) {
  if (active_.load(std::memory_order_acquire) == 0) return Status::OK();
  const MutexLock lock(&mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    if (!recording_) return Status::OK();
    it = sites_.emplace(site, SiteState{}).first;
  }
  SiteState& state = it->second;
  ++state.hits;
  if (state.kill_hits.erase(state.hits) > 0) {
    // A hard crash at this exact hit: SIGKILL skips destructors, stream
    // buffers, and atexit — the strongest possible test of recovery.
    std::raise(SIGKILL);
  }
  if (write_fault != nullptr) {
    const auto trunc = state.short_writes.find(state.hits);
    if (trunc != state.short_writes.end()) {
      write_fault->truncate_to = trunc->second;
      state.short_writes.erase(trunc);
      RecomputeActiveLocked();
      return Status::OK();  // silent: the caller reports success upstream
    }
  }
  bool fail = false;
  if (state.fail_remaining > 0) {
    --state.fail_remaining;
    fail = true;
  } else if (state.fail_hits.erase(state.hits) > 0) {
    fail = true;
  }
  if (fail) {
    const uint64_t hit_no = state.hits;
    RecomputeActiveLocked();
    return Status::IOError("fail point '" + site + "' injected a failure at hit " +
                           std::to_string(hit_no));
  }
  return Status::OK();
}

namespace {

bool ParseU64(const std::string& text, size_t begin, size_t end, uint64_t* out) {
  if (begin >= end) return false;
  const char* first = text.data() + begin;
  const char* last = text.data() + end;
  const auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last;
}

}  // namespace

Status FailPoints::ArmFromSpec(const std::string& spec) {
  const Status malformed = Status::InvalidArgument(
      "fail-point spec must look like 'site@hit=fail|kill|trunc:bytes', got '" +
      spec + "'");
  const size_t at = spec.find('@');
  if (at == std::string::npos || at == 0) return malformed;
  const size_t eq = spec.find('=', at + 1);
  if (eq == std::string::npos) return malformed;
  uint64_t hit = 0;
  if (!ParseU64(spec, at + 1, eq, &hit) || hit == 0) return malformed;
  const std::string site = spec.substr(0, at);
  const std::string action = spec.substr(eq + 1);
  if (action == "fail") {
    FailOnHit(site, hit);
  } else if (action == "kill") {
    KillOnHit(site, hit);
  } else if (action.rfind("trunc:", 0) == 0) {
    uint64_t keep_bytes = 0;
    if (!ParseU64(spec, eq + 1 + 6, spec.size(), &keep_bytes)) return malformed;
    ShortWriteOnHit(site, hit, keep_bytes);
  } else {
    return malformed;
  }
  return Status::OK();
}

namespace {

/// Holder for the injectable retry sleep. Guarded by its own mutex so tests
/// can swap the hook while retries are in flight on other threads.
struct RetrySleeperState {
  Mutex mu;
  std::function<void(double)> fn CRH_GUARDED_BY(mu);
};

RetrySleeperState& GlobalRetrySleeper() {
  CRH_GLOBAL_STATE_EXEMPT(
      "retry sleep hook is process-global test infrastructure; production "
      "code never installs one and the default is the real sleep_for");
  static RetrySleeperState state;
  return state;
}

}  // namespace

void SetRetrySleeperForTest(std::function<void(double)> sleeper) {
  RetrySleeperState& state = GlobalRetrySleeper();
  const MutexLock lock(&state.mu);
  state.fn = std::move(sleeper);
}

Status ValidateRetryPolicy(const RetryPolicy& policy) {
  if (policy.max_attempts < 1) {
    return Status::InvalidArgument("retry max_attempts must be >= 1");
  }
  if (!(policy.base_backoff_ms >= 0) || !std::isfinite(policy.base_backoff_ms)) {
    return Status::InvalidArgument("retry base_backoff_ms must be finite and >= 0");
  }
  if (!(policy.max_backoff_ms >= policy.base_backoff_ms) ||
      !std::isfinite(policy.max_backoff_ms)) {
    return Status::InvalidArgument("retry max_backoff_ms must be >= base_backoff_ms");
  }
  if (!(policy.jitter >= 0) || !std::isfinite(policy.jitter)) {
    return Status::InvalidArgument("retry jitter must be finite and >= 0");
  }
  return Status::OK();
}

double RetryBackoffMs(const RetryPolicy& policy, int retry, uint64_t salt) {
  CRH_DCHECK_GE(retry, 1);
  if (policy.base_backoff_ms <= 0) return 0.0;
  // Capped exponential: base * 2^(retry-1), saturating at max.
  double backoff = policy.base_backoff_ms;
  for (int r = 1; r < retry && backoff < policy.max_backoff_ms; ++r) backoff *= 2;
  if (backoff > policy.max_backoff_ms) backoff = policy.max_backoff_ms;
  const uint64_t h = Mix64(policy.seed ^ Mix64(salt) ^ static_cast<uint64_t>(retry));
  return backoff * (1.0 + policy.jitter * UnitUniformFromHash(h));
}

Status RetryWithBackoff(const RetryPolicy& policy, const std::string& what,
                        const std::function<Status()>& op) {
  CRH_RETURN_NOT_OK(ValidateRetryPolicy(policy));
  uint64_t salt = 0xcbf29ce484222325u;  // FNV-1a over the operation name
  for (char c : what) salt = (salt ^ static_cast<unsigned char>(c)) * 0x100000001b3u;
  Status last = Status::OK();
  for (int attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    last = op();
    if (last.ok() || last.code() != StatusCode::kIOError) return last;
    if (attempt == policy.max_attempts) break;
    const double backoff_ms = RetryBackoffMs(policy, attempt, salt);
    if (backoff_ms > 0) {
      std::function<void(double)> sleeper;
      {
        RetrySleeperState& state = GlobalRetrySleeper();
        const MutexLock lock(&state.mu);
        sleeper = state.fn;
      }
      if (sleeper) {
        sleeper(backoff_ms);
      } else {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff_ms));
      }
    }
  }
  return Status::IOError(what + " failed after " + std::to_string(policy.max_attempts) +
                         " attempt(s): " + last.message());
}

}  // namespace crh
