#ifndef CRH_COMMON_THREAD_ANNOTATIONS_H_
#define CRH_COMMON_THREAD_ANNOTATIONS_H_

/// \file thread_annotations.h
/// Clang Thread Safety Analysis attribute macros.
///
/// The concurrency contracts of this library — which mutex protects which
/// member, which private functions may only run with a lock held, which
/// functions must never be called with it held — are stated in code with
/// these macros and *proved at compile time* by Clang's thread safety
/// analysis (`-Wthread-safety -Wthread-safety-beta`, enabled as errors by
/// the `analyze` CMake preset; see docs/TOOLING.md, "Compile-time thread
/// safety"). Under GCC, or under Clang without the analysis, every macro
/// expands to nothing, so annotated code builds everywhere.
///
/// libstdc++'s std::mutex / std::lock_guard carry no attributes, so the
/// analysis cannot see through them; annotated code uses the crh::Mutex /
/// crh::MutexLock / crh::CondVar wrappers from common/mutex.h instead,
/// which put the attributes on the lock operations themselves.
///
/// Naming follows the current capability vocabulary (acquire/release/
/// requires), as used by Abseil and the Clang documentation:
///
///   CRH_GUARDED_BY(mu)     data member readable/writable only with mu held
///   CRH_PT_GUARDED_BY(mu)  pointee of the annotated pointer guarded by mu
///   CRH_REQUIRES(mu)       function callable only with mu already held
///   CRH_EXCLUDES(mu)       function callable only with mu NOT held
///   CRH_ACQUIRE(...)       function acquires the capability and holds it
///   CRH_RELEASE(...)       function releases the capability
///   CRH_CAPABILITY(name)   type acts as a capability (a lock)
///   CRH_SCOPED_CAPABILITY  RAII type acquiring in ctor / releasing in dtor
///   CRH_RETURN_CAPABILITY(mu)  function returns a reference to mu
///   CRH_ASSERT_CAPABILITY(mu)  runtime assertion that mu is held
///   CRH_NO_THREAD_SAFETY_ANALYSIS  opt a function out (last resort)

#if defined(__clang__)
#define CRH_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define CRH_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off clang
#endif

#define CRH_CAPABILITY(x) CRH_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

#define CRH_SCOPED_CAPABILITY CRH_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

#define CRH_GUARDED_BY(x) CRH_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

#define CRH_PT_GUARDED_BY(x) CRH_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

#define CRH_ACQUIRE(...) \
  CRH_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define CRH_RELEASE(...) \
  CRH_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define CRH_REQUIRES(...) \
  CRH_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

#define CRH_EXCLUDES(...) CRH_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

#define CRH_RETURN_CAPABILITY(x) CRH_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

#define CRH_ASSERT_CAPABILITY(x) \
  CRH_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

#define CRH_NO_THREAD_SAFETY_ANALYSIS \
  CRH_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // CRH_COMMON_THREAD_ANNOTATIONS_H_
