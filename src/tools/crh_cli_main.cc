/// \file crh_cli_main.cc
/// Thin entry point for the crh_cli tool; all logic is in tools/cli.h.

#include <iostream>
#include <string>
#include <vector>

#include "tools/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  for (const std::string& arg : args) {
    if (arg == "--help" || arg == "-h") {
      std::cout << crh::cli::UsageString();
      return 0;
    }
  }
  auto options = crh::cli::ParseCliArgs(args);
  if (!options.ok()) {
    std::cerr << options.status().message() << "\n";
    return 2;
  }
  const crh::Status status = crh::cli::RunCli(*options, std::cout);
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    return 1;
  }
  return 0;
}
