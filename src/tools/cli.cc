#include "tools/cli.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "analysis/invariants.h"
#include "baselines/baselines.h"
#include "common/fault_injection.h"
#include "core/catd.h"
#include "core/crh.h"
#include "core/dependence.h"
#include "data/csv.h"
#include "eval/metrics.h"
#include "mapreduce/parallel_crh.h"
#include "stream/checkpoint.h"
#include "stream/incremental_crh.h"

namespace crh::cli {

namespace {

std::vector<std::string> SplitOn(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream in(text);
  while (std::getline(in, part, sep)) parts.push_back(part);
  return parts;
}

}  // namespace

std::string UsageString() {
  return
      "usage: crh_cli --schema SPEC --input CLAIMS.csv [options]\n"
      "  --schema SPEC        property list, e.g. \"temp:continuous,cond:categorical\"\n"
      "                       (continuous accepts an optional rounding unit:\n"
      "                       \"price:continuous:0.01\"; types: continuous,\n"
      "                       categorical, text)\n"
      "  --input FILE         claim tuples: object_id,property,source_id,value\n"
      "  --truth FILE         optional ground truth: object_id,property,value\n"
      "  --output FILE        optional: write the fused truths as CSV\n"
      "  --algorithm NAME     crh (default), icrh, parallel, catd, dep-aware,\n"
      "                       or a baseline: mean, median, voting, gtm,\n"
      "                       investment, pooledinvestment, 2-estimates,\n"
      "                       3-estimates, truthfinder, accusim\n"
      "  --weights max|sum    CRH weight normalization (default max)\n"
      "  --window N           icrh: timestamps per chunk (object ids must end\n"
      "                       in \"_t<number>\" to carry timestamps)\n"
      "  --decay A            icrh: decay rate in [0,1] (default 0.5)\n"
      "  --reducers N         parallel: reducer count (default 10)\n"
      "  --verify             check algorithmic invariants (loss monotonicity,\n"
      "                       weight constraint, truth-domain validity) during\n"
      "                       the run; exits non-zero on any violation\n"
      "  --checkpoint-dir D   icrh: write crash-recovery checkpoints into D\n"
      "                       (see docs/ROBUSTNESS.md)\n"
      "  --checkpoint-every N icrh: checkpoint every N chunks (default 1)\n"
      "  --resume             icrh: resume from the newest good checkpoint in\n"
      "                       --checkpoint-dir; the finished run is bit-identical\n"
      "                       to one that was never interrupted\n"
      "  --quarantine         icrh: exclude malformed claims (non-finite numbers,\n"
      "                       unknown labels) and report them per source instead\n"
      "                       of failing the stream\n"
      "  --delta-solve M      icrh: fused-truth maintenance: off (default; each\n"
      "                       chunk's truths are frozen at its own weight\n"
      "                       snapshot), full (full re-solve under the current\n"
      "                       weights after every chunk), on (dirty-set delta\n"
      "                       re-solve; bit-identical to full), verify (delta\n"
      "                       plus a shadow full re-solve, bit-compared)\n";
}

Result<CliOptions> ParseCliArgs(const std::vector<std::string>& args) {
  CliOptions options;
  const auto need_value = [&](size_t i) { return i + 1 < args.size(); };
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto take = [&](std::string* into) -> Status {
      if (!need_value(i)) {
        return Status::InvalidArgument(arg + " requires a value\n" + UsageString());
      }
      *into = args[++i];
      return Status::OK();
    };
    std::string value;
    if (arg == "--schema") {
      CRH_RETURN_NOT_OK(take(&options.schema_spec));
    } else if (arg == "--input") {
      CRH_RETURN_NOT_OK(take(&options.input_path));
    } else if (arg == "--truth") {
      CRH_RETURN_NOT_OK(take(&options.truth_path));
    } else if (arg == "--output") {
      CRH_RETURN_NOT_OK(take(&options.output_path));
    } else if (arg == "--algorithm") {
      CRH_RETURN_NOT_OK(take(&options.algorithm));
      std::transform(options.algorithm.begin(), options.algorithm.end(),
                     options.algorithm.begin(), ::tolower);
    } else if (arg == "--weights") {
      CRH_RETURN_NOT_OK(take(&options.weights));
      if (options.weights != "max" && options.weights != "sum") {
        return Status::InvalidArgument("--weights must be max or sum");
      }
    } else if (arg == "--window") {
      CRH_RETURN_NOT_OK(take(&value));
      options.window = std::atoll(value.c_str());
      if (options.window < 1) return Status::InvalidArgument("--window must be >= 1");
    } else if (arg == "--decay") {
      CRH_RETURN_NOT_OK(take(&value));
      options.decay = std::atof(value.c_str());
      if (options.decay < 0 || options.decay > 1) {
        return Status::InvalidArgument("--decay must be in [0, 1]");
      }
    } else if (arg == "--reducers") {
      CRH_RETURN_NOT_OK(take(&value));
      options.reducers = std::atoi(value.c_str());
      if (options.reducers < 1) return Status::InvalidArgument("--reducers must be >= 1");
    } else if (arg == "--verify") {
      options.verify = true;
    } else if (arg == "--checkpoint-dir") {
      CRH_RETURN_NOT_OK(take(&options.checkpoint_dir));
    } else if (arg == "--checkpoint-every") {
      CRH_RETURN_NOT_OK(take(&value));
      options.checkpoint_every = std::atoll(value.c_str());
      if (options.checkpoint_every < 1) {
        return Status::InvalidArgument("--checkpoint-every must be >= 1");
      }
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--quarantine") {
      options.quarantine = true;
    } else if (arg == "--delta-solve") {
      CRH_RETURN_NOT_OK(take(&options.delta_solve));
      if (options.delta_solve != "off" && options.delta_solve != "full" &&
          options.delta_solve != "on" && options.delta_solve != "verify") {
        return Status::InvalidArgument("--delta-solve must be off, full, on or verify");
      }
    } else {
      return Status::InvalidArgument("unknown flag '" + arg + "'\n" + UsageString());
    }
  }
  if (options.schema_spec.empty() || options.input_path.empty()) {
    return Status::InvalidArgument("--schema and --input are required\n" + UsageString());
  }
  if (options.resume && options.checkpoint_dir.empty()) {
    return Status::InvalidArgument("--resume requires --checkpoint-dir");
  }
  if ((!options.checkpoint_dir.empty() || options.resume || options.quarantine ||
       options.delta_solve != "off") &&
      options.algorithm != "icrh") {
    return Status::InvalidArgument(
        "--checkpoint-dir, --resume, --quarantine and --delta-solve apply to "
        "--algorithm icrh only");
  }
  return options;
}

Result<Schema> ParseSchemaSpec(const std::string& spec) {
  Schema schema;
  for (const std::string& field : SplitOn(spec, ',')) {
    const std::vector<std::string> parts = SplitOn(field, ':');
    if (parts.size() < 2 || parts.size() > 3 || parts[0].empty()) {
      return Status::InvalidArgument("bad schema field '" + field +
                                     "' (want name:type[:unit])");
    }
    if (parts[1] == "continuous") {
      const double unit = parts.size() == 3 ? std::atof(parts[2].c_str()) : 0.0;
      CRH_RETURN_NOT_OK(schema.AddContinuous(parts[0], unit));
    } else if (parts[1] == "categorical") {
      if (parts.size() == 3) {
        return Status::InvalidArgument("categorical properties take no unit");
      }
      CRH_RETURN_NOT_OK(schema.AddCategorical(parts[0]));
    } else if (parts[1] == "text") {
      if (parts.size() == 3) {
        return Status::InvalidArgument("text properties take no unit");
      }
      CRH_RETURN_NOT_OK(schema.AddText(parts[0]));
    } else {
      return Status::InvalidArgument("unknown property type '" + parts[1] + "'");
    }
  }
  if (schema.num_properties() == 0) {
    return Status::InvalidArgument("schema spec declares no properties");
  }
  return schema;
}

namespace {

/// Derives timestamps from "..._t<number>" object-id suffixes (for icrh).
Status AttachSuffixTimestamps(Dataset* data) {
  std::vector<int64_t> timestamps(data->num_objects(), 0);
  for (size_t i = 0; i < data->num_objects(); ++i) {
    const std::string& id = data->object_id(i);
    const size_t pos = id.rfind("_t");
    if (pos == std::string::npos || pos + 2 >= id.size()) {
      return Status::InvalidArgument("icrh requires object ids ending in _t<number>; got '" +
                                     id + "'");
    }
    timestamps[i] = std::atoll(id.c_str() + pos + 2);
  }
  return data->set_timestamps(std::move(timestamps));
}

struct AlgorithmOutput {
  ValueTable truths;
  std::vector<double> source_scores;
  /// Human-readable run notes (resume/checkpoint/quarantine summaries).
  std::vector<std::string> notes;
};

Result<AlgorithmOutput> RunAlgorithm(const CliOptions& options, const Dataset& data,
                                     IterationObserver* observer) {
  CrhOptions crh_options;
  crh_options.weight_scheme.kind =
      options.weights == "sum" ? WeightSchemeKind::kLogSum : WeightSchemeKind::kLogMax;
  // Iterative engines check every coordinate-descent step; algorithms
  // without the observer hook (catd, baselines) are covered by the
  // post-hoc truth-domain check in RunCli.
  crh_options.observer = observer;

  if (options.algorithm == "crh") {
    auto result = RunCrh(data, crh_options);
    if (!result.ok()) return result.status();
    return AlgorithmOutput{std::move(result->truths), std::move(result->source_weights), {}};
  }
  if (options.algorithm == "icrh") {
    Dataset stream = data;  // needs timestamps attached
    CRH_RETURN_NOT_OK(AttachSuffixTimestamps(&stream));
    IncrementalCrhOptions icrh_options;
    icrh_options.base = crh_options;
    icrh_options.window_size = options.window;
    icrh_options.decay = options.decay;
    icrh_options.quarantine_bad_claims = options.quarantine;
    if (options.delta_solve == "full") {
      icrh_options.delta_solve = DeltaSolveMode::kFull;
    } else if (options.delta_solve == "on") {
      icrh_options.delta_solve = DeltaSolveMode::kDelta;
    } else if (options.delta_solve == "verify") {
      icrh_options.delta_solve = DeltaSolveMode::kVerify;
    }
    StreamResilienceOptions resilience;
    resilience.checkpoint_dir = options.checkpoint_dir;
    resilience.checkpoint_every = static_cast<uint64_t>(options.checkpoint_every);
    resilience.resume = options.resume;
    auto result = RunIncrementalCrhResilient(stream, icrh_options, resilience);
    if (!result.ok()) return result.status();
    AlgorithmOutput output{std::move(result->truths), std::move(result->source_weights), {}};
    if (options.resume) {
      output.notes.push_back(
          "resumed from checkpoint: " + std::to_string(result->chunks_resumed) +
          " chunk(s) restored" +
          (result->resumed_from_fallback ? " (fell back past a corrupt newer generation)"
                                         : ""));
    }
    if (!options.checkpoint_dir.empty()) {
      output.notes.push_back("wrote " + std::to_string(result->checkpoints_written) +
                             " checkpoint(s) to " + options.checkpoint_dir);
    }
    if (icrh_options.delta_solve != DeltaSolveMode::kOff) {
      const DeltaSolveStats& ds = result->delta_stats;
      output.notes.push_back(
          "delta re-solve: ran " + std::to_string(ds.entries_resolved) + " of the " +
          std::to_string(ds.entries_full) + " entry updates full re-solving would run" +
          (options.delta_solve == "verify"
               ? " (every chunk verified bit-identical to the full re-solve)"
               : ""));
    }
    if (options.quarantine) {
      uint64_t total = 0;
      std::string per_source;
      for (size_t k = 0; k < result->quarantined_per_source.size(); ++k) {
        const uint64_t q = result->quarantined_per_source[k];
        total += q;
        if (q > 0) {
          if (!per_source.empty()) per_source += ", ";
          per_source += stream.source_id(k) + ": " + std::to_string(q);
        }
      }
      output.notes.push_back("quarantined " + std::to_string(total) +
                             " malformed claim(s)" +
                             (per_source.empty() ? "" : " (" + per_source + ")"));
    }
    return output;
  }
  if (options.algorithm == "parallel") {
    ParallelCrhOptions parallel_options;
    parallel_options.base = crh_options;
    parallel_options.mr.num_reducers = options.reducers;
    auto result = RunParallelCrh(data, parallel_options);
    if (!result.ok()) return result.status();
    return AlgorithmOutput{std::move(result->truths), std::move(result->source_weights), {}};
  }
  if (options.algorithm == "catd") {
    CatdOptions catd_options;
    catd_options.base = crh_options;
    auto result = RunCatd(data, catd_options);
    if (!result.ok()) return result.status();
    return AlgorithmOutput{std::move(result->truths), std::move(result->source_weights), {}};
  }
  if (options.algorithm == "dep-aware") {
    auto result = RunDependenceAwareCrh(data, crh_options);
    if (!result.ok()) return result.status();
    return AlgorithmOutput{std::move(result->truths), std::move(result->adjusted_weights), {}};
  }
  for (const auto& baseline : MakeAllBaselines()) {
    std::string name = baseline->name();
    std::transform(name.begin(), name.end(), name.begin(), ::tolower);
    if (name == options.algorithm) {
      auto result = baseline->Run(data);
      if (!result.ok()) return result.status();
      return AlgorithmOutput{std::move(result->truths), std::move(result->source_scores), {}};
    }
  }
  return Status::InvalidArgument("unknown algorithm '" + options.algorithm + "'\n" +
                                 UsageString());
}

}  // namespace

Status RunCli(const CliOptions& options, std::ostream& out) {
  auto schema = ParseSchemaSpec(options.schema_spec);
  if (!schema.ok()) return schema.status();

  // CSV I/O goes through the retry policy so a transient file-system error
  // (or an injected one) does not kill an otherwise healthy run.
  const RetryPolicy retry;
  Dataset dataset;
  CRH_RETURN_NOT_OK(RetryWithBackoff(retry, "claims CSV load", [&] {
    auto data = ReadObservationsCsv(*schema, options.input_path);
    if (!data.ok()) return data.status();
    dataset = std::move(data).ValueOrDie();
    return Status::OK();
  }));
  out << "loaded " << dataset.num_observations() << " claims: " << dataset.num_objects()
      << " objects x " << dataset.num_properties() << " properties from "
      << dataset.num_sources() << " sources\n";

  if (!options.truth_path.empty()) {
    CRH_RETURN_NOT_OK(RetryWithBackoff(retry, "ground-truth CSV load", [&] {
      return ReadGroundTruthCsv(options.truth_path, &dataset);
    }));
    out << "loaded " << dataset.num_ground_truths() << " ground-truth entries\n";
  }

  InvariantVerifier verifier;
  auto result = RunAlgorithm(options, dataset, options.verify ? &verifier : nullptr);
  if (!result.ok()) return result.status();

  for (const std::string& note : result->notes) out << note << "\n";

  if (options.verify) {
    CRH_RETURN_NOT_OK(CheckTruthDomain(dataset, result->truths));
    out << "verified: " << verifier.steps_verified()
        << " iteration snapshots and the final truth table passed all invariant checks\n";
  }

  out << "\nsource scores (higher = more reliable):\n";
  for (size_t k = 0; k < dataset.num_sources(); ++k) {
    char line[160];
    std::snprintf(line, sizeof(line), "  %-24s %10.4f\n", dataset.source_id(k).c_str(),
                  result->source_scores[k]);
    out << line;
  }

  if (dataset.has_ground_truth()) {
    auto eval = Evaluate(dataset, result->truths);
    if (!eval.ok()) return eval.status();
    out << "\nevaluation vs ground truth:\n";
    if (eval->categorical_evaluated > 0) {
      out << "  error rate: " << eval->error_rate << " (" << eval->categorical_errors
          << "/" << eval->categorical_evaluated << " discrete entries wrong)\n";
    }
    if (eval->continuous_evaluated > 0) {
      out << "  MNAD:       " << eval->mnad << " over " << eval->continuous_evaluated
          << " continuous entries\n";
    }
  }

  if (!options.output_path.empty()) {
    // Reuse the ground-truth CSV format for the fused output.
    Dataset fused = dataset;
    fused.set_ground_truth(result->truths);
    CRH_RETURN_NOT_OK(RetryWithBackoff(retry, "fused-truths CSV write", [&] {
      return WriteGroundTruthCsv(fused, options.output_path);
    }));
    out << "\nwrote fused truths to " << options.output_path << "\n";
  }
  return Status::OK();
}

}  // namespace crh::cli
