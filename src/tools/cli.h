#ifndef CRH_TOOLS_CLI_H_
#define CRH_TOOLS_CLI_H_

/// \file cli.h
/// Library behind the `crh_cli` command-line tool: resolve conflicts in a
/// CSV of multi-source claims without writing any C++.
///
///   crh_cli --schema "temp:continuous,cond:categorical"
///           --input claims.csv [--truth truth.csv] [--output fused.csv]
///           [--algorithm crh|icrh|parallel|catd|dep-aware|voting|mean|...]
///           [--weights max|sum] [--window N] [--decay A]
///
/// Input format: the claim-tuple CSV of data/csv.h
/// (object_id,property,source_id,value). With --truth given, the tool also
/// prints Error Rate / MNAD against it. All logic lives here so it is unit
/// testable; the binary is a thin main().

#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/schema.h"

namespace crh::cli {

/// Parsed command-line options.
struct CliOptions {
  std::string schema_spec;
  std::string input_path;
  std::string truth_path;   // optional
  std::string output_path;  // optional
  std::string algorithm = "crh";
  std::string weights = "max";  // "max" or "sum"
  int64_t window = 1;           // icrh chunk size (requires --timestamp-prefix)
  double decay = 0.5;           // icrh decay rate
  int reducers = 10;            // parallel engine
  /// Run under the invariant verifier (analysis/invariants.h): iterative
  /// engines are checked after every coordinate-descent step, and every
  /// algorithm's final truth table is checked for domain validity.
  bool verify = false;
  /// icrh: checkpoint directory (stream/checkpoint.h); empty disables
  /// checkpointing.
  std::string checkpoint_dir;
  /// icrh: write a checkpoint every this many chunks (default 1).
  int64_t checkpoint_every = 1;
  /// icrh: resume from the newest good checkpoint in --checkpoint-dir.
  bool resume = false;
  /// icrh: quarantine malformed claims instead of failing the stream.
  bool quarantine = false;
  /// icrh: fused-truth maintenance — "off" (legacy per-chunk patchwork),
  /// "full" (full re-solve per chunk), "on" (dirty-set delta re-solve) or
  /// "verify" (delta + shadow full re-solve, bit-compared every chunk).
  std::string delta_solve = "off";
};

/// Parses argv into CliOptions. Returns InvalidArgument with a usage hint
/// on unknown flags, missing values or missing required options.
[[nodiscard]] Result<CliOptions> ParseCliArgs(const std::vector<std::string>& args);

/// Parses a schema spec "name:type,name:type,..." where type is
/// continuous | categorical | text. An optional ":unit" suffix on
/// continuous properties sets the rounding unit ("price:continuous:0.01").
[[nodiscard]] Result<Schema> ParseSchemaSpec(const std::string& spec);

/// Returns the usage string printed on parse errors and --help.
std::string UsageString();

/// Executes the tool: loads the CSVs, runs the selected algorithm, prints
/// source weights (and metrics when ground truth is given) to `out`, and
/// writes the fused truths CSV when requested. Returns a non-OK status on
/// any failure.
[[nodiscard]] Status RunCli(const CliOptions& options, std::ostream& out);

}  // namespace crh::cli

#endif  // CRH_TOOLS_CLI_H_
