/// \file crh_serve_main.cc
/// The crh_serve daemon: resident truth serving over a Unix-domain socket.
///
///   crh_serve --socket /tmp/crh.sock --schema "temp:continuous"
///             --universe claims.csv [--checkpoint-dir D [--resume]] ...
///
/// The universe CSV (claim tuples, as for crh_cli) defines the entry space
/// — objects, sources, dictionaries — truths are maintained and served in;
/// its claims are NOT pre-ingested. Clients stream chunks in with `ingest`
/// requests and read truths/weights/status back; see serve/server.h for
/// the protocol and docs/ROBUSTNESS.md for the overload, drain and
/// kill/resume semantics. SIGTERM and SIGINT trigger a graceful drain with
/// a final checkpoint.
///
/// --fail-point SITE@HIT=fail|kill|trunc:N arms deterministic faults in
/// the daemon (common/fault_injection.h) — the chaos suite uses `kill` to
/// SIGKILL the daemon at exact moments and then proves resume converges.

#include <sys/signalfd.h>

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "data/csv.h"
#include "serve/server.h"
#include "tools/cli.h"

namespace {

std::string Usage() {
  return
      "usage: crh_serve --socket PATH --schema SPEC --universe CLAIMS.csv [options]\n"
      "  --socket PATH        Unix-domain socket to listen on (required)\n"
      "  --schema SPEC        property list, e.g. \"temp:continuous,cond:categorical\"\n"
      "  --universe FILE      claim CSV defining the object/source universe\n"
      "  --checkpoint-dir D   write crash-recovery checkpoints into D\n"
      "  --checkpoint-every N checkpoint every N ingested chunks (default 1)\n"
      "  --resume             resume from the newest good checkpoint in D\n"
      "  --window N           timestamps per chunk window (default 1)\n"
      "  --decay A            decay rate in [0,1] (default 0.5)\n"
      "  --quarantine         quarantine malformed claims instead of failing\n"
      "  --delta-solve M      off (default) | full | on | verify\n"
      "  --threads N          solver threads (default 1; 0 = hardware)\n"
      "  --queue-capacity N   ingest admission queue bound (default 8)\n"
      "  --retry-after-ms N   retry hint returned on shed ingests (default 50)\n"
      "  --io-timeout-ms N    per-connection request deadline (default 5000)\n"
      "  --max-connections N  concurrent connection cap (default 8)\n"
      "  --fail-point SPEC    arm a deterministic fault, SITE@HIT=fail|kill|trunc:N\n"
      "                       (repeatable; e.g. stream.process_chunk@2=kill)\n";
}

struct ServeArgs {
  std::string socket_path;
  std::string schema_spec;
  std::string universe_path;
  std::string checkpoint_dir;
  int64_t checkpoint_every = 1;
  bool resume = false;
  int64_t window = 1;
  double decay = 0.5;
  bool quarantine = false;
  std::string delta_solve = "off";
  int threads = 1;
  int64_t queue_capacity = 8;
  int64_t retry_after_ms = 50;
  int64_t io_timeout_ms = 5000;
  int64_t max_connections = 8;
  std::vector<std::string> fail_points;
};

crh::Result<ServeArgs> ParseArgs(const std::vector<std::string>& args) {
  ServeArgs parsed;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto take = [&]() -> crh::Result<std::string> {
      if (i + 1 >= args.size()) {
        return crh::Status::InvalidArgument(arg + " requires a value\n" + Usage());
      }
      return args[++i];
    };
    const auto take_int = [&](int64_t* into) -> crh::Status {
      auto value = take();
      if (!value.ok()) return value.status();
      *into = std::atoll(value->c_str());
      return crh::Status::OK();
    };
    if (arg == "--socket") {
      auto value = take();
      if (!value.ok()) return value.status();
      parsed.socket_path = *value;
    } else if (arg == "--schema") {
      auto value = take();
      if (!value.ok()) return value.status();
      parsed.schema_spec = *value;
    } else if (arg == "--universe") {
      auto value = take();
      if (!value.ok()) return value.status();
      parsed.universe_path = *value;
    } else if (arg == "--checkpoint-dir") {
      auto value = take();
      if (!value.ok()) return value.status();
      parsed.checkpoint_dir = *value;
    } else if (arg == "--checkpoint-every") {
      CRH_RETURN_NOT_OK(take_int(&parsed.checkpoint_every));
    } else if (arg == "--resume") {
      parsed.resume = true;
    } else if (arg == "--window") {
      CRH_RETURN_NOT_OK(take_int(&parsed.window));
    } else if (arg == "--decay") {
      auto value = take();
      if (!value.ok()) return value.status();
      parsed.decay = std::atof(value->c_str());
    } else if (arg == "--quarantine") {
      parsed.quarantine = true;
    } else if (arg == "--delta-solve") {
      auto value = take();
      if (!value.ok()) return value.status();
      parsed.delta_solve = *value;
    } else if (arg == "--threads") {
      int64_t threads = 1;
      CRH_RETURN_NOT_OK(take_int(&threads));
      parsed.threads = static_cast<int>(threads);
    } else if (arg == "--queue-capacity") {
      CRH_RETURN_NOT_OK(take_int(&parsed.queue_capacity));
    } else if (arg == "--retry-after-ms") {
      CRH_RETURN_NOT_OK(take_int(&parsed.retry_after_ms));
    } else if (arg == "--io-timeout-ms") {
      CRH_RETURN_NOT_OK(take_int(&parsed.io_timeout_ms));
    } else if (arg == "--max-connections") {
      CRH_RETURN_NOT_OK(take_int(&parsed.max_connections));
    } else if (arg == "--fail-point") {
      auto value = take();
      if (!value.ok()) return value.status();
      parsed.fail_points.push_back(*value);
    } else {
      return crh::Status::InvalidArgument("unknown flag " + arg + "\n" + Usage());
    }
  }
  if (parsed.socket_path.empty() || parsed.schema_spec.empty() ||
      parsed.universe_path.empty()) {
    return crh::Status::InvalidArgument(
        "--socket, --schema and --universe are required\n" + Usage());
  }
  if (parsed.queue_capacity < 1 || parsed.max_connections < 1 ||
      parsed.io_timeout_ms < 1 || parsed.retry_after_ms < 0) {
    return crh::Status::InvalidArgument("server limits must be positive");
  }
  return parsed;
}

crh::Result<crh::DeltaSolveMode> ParseDeltaSolve(const std::string& mode) {
  if (mode == "off") return crh::DeltaSolveMode::kOff;
  if (mode == "full") return crh::DeltaSolveMode::kFull;
  if (mode == "on") return crh::DeltaSolveMode::kDelta;
  if (mode == "verify") return crh::DeltaSolveMode::kVerify;
  return crh::Status::InvalidArgument("--delta-solve must be off, full, on or verify");
}

int Run(const std::vector<std::string>& args) {
  auto parsed = ParseArgs(args);
  if (!parsed.ok()) {
    std::cerr << parsed.status().message() << "\n";
    return 2;
  }
  for (const std::string& spec : parsed->fail_points) {
    const crh::Status armed = crh::FailPoints::Instance().ArmFromSpec(spec);
    if (!armed.ok()) {
      std::cerr << "crh_serve: " << armed.ToString() << "\n";
      return 2;
    }
  }

  auto schema = crh::cli::ParseSchemaSpec(parsed->schema_spec);
  if (!schema.ok()) {
    std::cerr << "crh_serve: " << schema.status().ToString() << "\n";
    return 1;
  }
  auto universe = crh::ReadObservationsCsv(*schema, parsed->universe_path);
  if (!universe.ok()) {
    std::cerr << "crh_serve: " << universe.status().ToString() << "\n";
    return 1;
  }

  crh::IncrementalCrhOptions options;
  options.decay = parsed->decay;
  options.window_size = parsed->window;
  options.quarantine_bad_claims = parsed->quarantine;
  options.base.num_threads = parsed->threads;
  auto delta = ParseDeltaSolve(parsed->delta_solve);
  if (!delta.ok()) {
    std::cerr << "crh_serve: " << delta.status().ToString() << "\n";
    return 2;
  }
  options.delta_solve = *delta;

  crh::StreamResilienceOptions resilience;
  resilience.checkpoint_dir = parsed->checkpoint_dir;
  resilience.checkpoint_every = parsed->checkpoint_every < 1
                                    ? 1u
                                    : static_cast<uint64_t>(parsed->checkpoint_every);
  resilience.resume = parsed->resume;

  // SIGTERM/SIGINT arrive on a signalfd the acceptor polls, so shutdown is
  // an ordinary readable event — no async-signal-safety puzzles, no
  // globals, and the drain path is the same one the `drain` command takes.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGTERM);
  sigaddset(&mask, SIGINT);
  if (sigprocmask(SIG_BLOCK, &mask, nullptr) != 0) {
    std::cerr << "crh_serve: sigprocmask failed\n";
    return 1;
  }
  const int shutdown_fd = signalfd(-1, &mask, SFD_CLOEXEC);
  if (shutdown_fd < 0) {
    std::cerr << "crh_serve: signalfd failed\n";
    return 1;
  }

  crh::ServeOptions serve;
  serve.socket_path = parsed->socket_path;
  serve.ingest_queue_capacity = static_cast<size_t>(parsed->queue_capacity);
  serve.shed_retry_after_ms = static_cast<uint64_t>(parsed->retry_after_ms);
  serve.io_timeout_ms = static_cast<int>(parsed->io_timeout_ms);
  serve.max_connections = static_cast<int>(parsed->max_connections);
  serve.shutdown_fd = shutdown_fd;

  crh::CrhServer server(*universe, options, resilience, serve);
  const crh::Status started = server.Start();
  if (!started.ok()) {
    std::cerr << "crh_serve: " << started.ToString() << "\n";
    return 1;
  }
  // The readiness line scripts wait for before connecting.
  std::cout << "crh_serve: listening on " << parsed->socket_path << "\n" << std::flush;
  const crh::Status final_status = server.Wait();
  if (!final_status.ok()) {
    std::cerr << "crh_serve: " << final_status.ToString() << "\n";
    return 1;
  }
  std::cout << "crh_serve: drained cleanly\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  for (const std::string& arg : args) {
    if (arg == "--help" || arg == "-h") {
      std::cout << Usage();
      return 0;
    }
  }
  return Run(args);
}
