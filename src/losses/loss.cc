#include "losses/loss.h"

namespace crh {

double ProbVectorSquaredLoss(const double* truth_dist, size_t num_labels, CategoryId obs) {
  double norm_sq = 0.0;
  for (size_t l = 0; l < num_labels; ++l) norm_sq += truth_dist[l] * truth_dist[l];
  const double p_obs = truth_dist[static_cast<size_t>(obs)];
  return norm_sq - 2.0 * p_obs + 1.0;
}

double ProbVectorSquaredLoss(const std::vector<double>& truth_dist, CategoryId obs) {
  return ProbVectorSquaredLoss(truth_dist.data(), truth_dist.size(), obs);
}

std::unique_ptr<LossFunction> DefaultLossForType(PropertyType type) {
  if (type == PropertyType::kCategorical) {
    return std::make_unique<ZeroOneLoss>();
  }
  return std::make_unique<NormalizedAbsoluteLoss>();
}

}  // namespace crh
