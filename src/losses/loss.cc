#include "losses/loss.h"

namespace crh {

double ProbVectorSquaredLoss(const std::vector<double>& truth_dist, CategoryId obs) {
  double norm_sq = 0.0;
  for (double p : truth_dist) norm_sq += p * p;
  const double p_obs = truth_dist[static_cast<size_t>(obs)];
  return norm_sq - 2.0 * p_obs + 1.0;
}

std::unique_ptr<LossFunction> DefaultLossForType(PropertyType type) {
  if (type == PropertyType::kCategorical) {
    return std::make_unique<ZeroOneLoss>();
  }
  return std::make_unique<NormalizedAbsoluteLoss>();
}

}  // namespace crh
