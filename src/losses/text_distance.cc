#include "losses/text_distance.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace crh {

size_t LevenshteinDistance(const std::string& a, const std::string& b) {
  if (a.empty()) return b.size();
  if (b.empty()) return a.size();
  // Two-row dynamic program; O(|a| * |b|) time, O(min) space would need a
  // swap — the shorter string goes in the inner dimension.
  const std::string& outer = a.size() >= b.size() ? a : b;
  const std::string& inner = a.size() >= b.size() ? b : a;
  std::vector<size_t> prev(inner.size() + 1), curr(inner.size() + 1);
  for (size_t j = 0; j <= inner.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= outer.size(); ++i) {
    curr[0] = i;
    for (size_t j = 1; j <= inner.size(); ++j) {
      const size_t substitute = prev[j - 1] + (outer[i - 1] == inner[j - 1] ? 0 : 1);
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, substitute});
    }
    std::swap(prev, curr);
  }
  return prev[inner.size()];
}

double NormalizedEditDistance(const std::string& a, const std::string& b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 0.0;
  return static_cast<double>(LevenshteinDistance(a, b)) / static_cast<double>(longest);
}

CRH_HOT size_t LevenshteinDistanceSpan(const std::string& a, const std::string& b,
                               EditDistanceScratch& scratch) {
  if (a.empty()) return b.size();
  if (b.empty()) return a.size();
  const std::string& outer = a.size() >= b.size() ? a : b;
  const std::string& inner = a.size() >= b.size() ? b : a;
  CRH_DCHECK_GE(scratch.capacity, inner.size() + 1);
  size_t* prev = scratch.prev;
  size_t* curr = scratch.curr;
  for (size_t j = 0; j <= inner.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= outer.size(); ++i) {
    curr[0] = i;
    for (size_t j = 1; j <= inner.size(); ++j) {
      const size_t substitute = prev[j - 1] + (outer[i - 1] == inner[j - 1] ? 0 : 1);
      curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, substitute});
    }
    std::swap(prev, curr);
  }
  return prev[inner.size()];
}

CRH_HOT double NormalizedEditDistanceSpan(const std::string& a, const std::string& b,
                                  EditDistanceScratch& scratch) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 0.0;
  return static_cast<double>(LevenshteinDistanceSpan(a, b, scratch)) /
         static_cast<double>(longest);
}

}  // namespace crh
