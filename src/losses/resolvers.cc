#include "losses/resolvers.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_map>

namespace crh {

namespace {

/// Deterministic "smaller" ordering across Values of the same type, used
/// only for tie-breaking in WeightedVote.
bool ValueLess(const Value& a, const Value& b) {
  if (a.is_categorical() && b.is_categorical()) return a.category() < b.category();
  if (a.is_continuous() && b.is_continuous()) return a.continuous() < b.continuous();
  // Mixed types (should not happen within one property): categorical first.
  return a.is_categorical() && !b.is_categorical();
}

/// The shared Eq-14 accumulator: (sum w*v, sum w) with ONE association
/// order used by both the vector and span means, so dense and sparse
/// results stay bit-identical within a build. Default is the sequential
/// left-to-right sum; CRH_SIMD switches BOTH callers to a fixed 4-lane
/// ordered reduction tree — claim k feeds lane k%4, lanes combine as
/// (l0+l1)+(l2+l3) — which is deterministic for a given claim order and
/// lets the compiler keep 4 independent FMA chains in flight.
CRH_HOT inline void WeightedSumPair(const double* values, const double* weights, size_t n,
                                    double* total, double* total_weight) {
#if defined(CRH_SIMD)
  double t0 = 0.0, t1 = 0.0, t2 = 0.0, t3 = 0.0;
  double w0 = 0.0, w1 = 0.0, w2 = 0.0, w3 = 0.0;
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    t0 += weights[k] * values[k];
    t1 += weights[k + 1] * values[k + 1];
    t2 += weights[k + 2] * values[k + 2];
    t3 += weights[k + 3] * values[k + 3];
    w0 += weights[k];
    w1 += weights[k + 1];
    w2 += weights[k + 2];
    w3 += weights[k + 3];
  }
  // Deterministic tail: claim k still lands in lane k % 4.
  for (; k < n; ++k) {
    switch (k % 4) {
      case 0: t0 += weights[k] * values[k]; w0 += weights[k]; break;
      case 1: t1 += weights[k] * values[k]; w1 += weights[k]; break;
      case 2: t2 += weights[k] * values[k]; w2 += weights[k]; break;
      default: t3 += weights[k] * values[k]; w3 += weights[k]; break;
    }
  }
  *total = (t0 + t1) + (t2 + t3);
  *total_weight = (w0 + w1) + (w2 + w3);
#else
  double t = 0.0, w = 0.0;
  for (size_t k = 0; k < n; ++k) {
    t += weights[k] * values[k];
    w += weights[k];
  }
  *total = t;
  *total_weight = w;
#endif
}

/// The shared Eq-16 ordering: sorts \p order (a 0..n-1 permutation) by
/// ascending value, with ONE tie permutation shared by the vector and span
/// medians (ties feed the group weight sums, so their order is
/// load-bearing for bit-identity). Small spans — the common case at low
/// density — use a stable insertion sort, skipping std::sort's dispatch
/// overhead; larger ones fall through to std::sort, whose final
/// insertion pass makes it equivalent for n <= 16 anyway.
CRH_HOT inline void SortOrderByValue(size_t* order, size_t n, const double* values) {
  constexpr size_t kInsertionThreshold = 32;
  if (n <= kInsertionThreshold) {
    for (size_t i = 1; i < n; ++i) {
      const size_t key = order[i];
      const double v = values[key];
      size_t j = i;
      while (j > 0 && v < values[order[j - 1]]) {
        order[j] = order[j - 1];
        --j;
      }
      order[j] = key;
    }
    return;
  }
  std::sort(order, order + n, [&](size_t a, size_t b) { return values[a] < values[b]; });
}

}  // namespace

Value WeightedVote(const std::vector<Value>& values, const std::vector<double>& weights) {
  // Tally into claim-ordered vectors; the hash map is a lookup-only dedup
  // index, never iterated. Scanning candidates in first-claim order keeps
  // the winner — and the association order of each candidate's weight sum —
  // a pure function of the claims, independent of hash-bucket layout
  // (ast_lint, unordered-iteration).
  std::unordered_map<Value, size_t, ValueHash> index;
  std::vector<Value> candidates;
  std::vector<double> tally;
  for (size_t k = 0; k < values.size(); ++k) {
    if (values[k].is_missing()) continue;
    const auto [it, added] = index.emplace(values[k], candidates.size());
    if (added) {
      candidates.push_back(values[k]);
      tally.push_back(0.0);
    }
    tally[it->second] += weights[k];
  }
  if (candidates.empty()) return Value::Missing();
  Value best = Value::Missing();
  double best_weight = -std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < candidates.size(); ++c) {
    if (tally[c] > best_weight ||
        (tally[c] == best_weight && ValueLess(candidates[c], best))) {
      best = candidates[c];
      best_weight = tally[c];
    }
  }
  return best;
}

double WeightedMean(const std::vector<double>& values, const std::vector<double>& weights) {
  double total = 0.0, total_weight = 0.0;
  WeightedSumPair(values.data(), weights.data(), values.size(), &total, &total_weight);
  if (total_weight <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  return total / total_weight;
}

double WeightedMedian(std::vector<double> values, std::vector<double> weights) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  // Drop non-positive weights; fall back to uniform if nothing remains.
  double total = 0.0;
  for (double w : weights) total += std::max(w, 0.0);
  if (total <= 0.0) {
    std::fill(weights.begin(), weights.end(), 1.0);
    total = static_cast<double>(values.size());
  }

  std::vector<size_t> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  SortOrderByValue(order.data(), order.size(), values.data());

  // Walk the sorted claims grouped by equal value; pick the first group
  // whose strictly-below weight is < total/2 and strictly-above weight is
  // <= total/2 (Eq 16).
  const double half = total / 2.0;
  double below = 0.0;
  size_t pos = 0;
  while (pos < order.size()) {
    const double v = values[order[pos]];
    double group = 0.0;
    size_t end = pos;
    while (end < order.size() && values[order[end]] == v) {
      group += std::max(weights[order[end]], 0.0);
      ++end;
    }
    const double above = total - below - group;
    if (below < half && above <= half) return v;
    below += group;
    pos = end;
  }
  // Numerically unreachable, but return the largest claim as a safe answer.
  return values[order.back()];
}

double WeightedMedianLinear(std::vector<double> values, std::vector<double> weights) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  double total = 0.0;
  for (double w : weights) total += std::max(w, 0.0);
  if (total <= 0.0) {
    std::fill(weights.begin(), weights.end(), 1.0);
    total = static_cast<double>(values.size());
  }
  // The weighted (lower) median is the smallest claim v whose cumulative
  // weight over {claims <= v} reaches total/2 — equivalent to Eq (16).
  const double target = total / 2.0;

  std::vector<std::pair<double, double>> pool;
  pool.reserve(values.size());
  for (size_t k = 0; k < values.size(); ++k) {
    pool.emplace_back(values[k], std::max(weights[k], 0.0));
  }

  double below = 0.0;  // total weight already discarded to the left
  std::vector<std::pair<double, double>> less, greater;
  while (true) {
    // Non-finite claims compare false against every pivot, so their weight
    // can leave the recursion while the target still counts it; the pool
    // then drains empty. Surface NaN rather than selecting from nothing.
    if (pool.empty()) return std::numeric_limits<double>::quiet_NaN();
    if (pool.size() == 1) return pool[0].first;
    // Deterministic median-of-three pivot.
    const double a = pool.front().first;
    const double b = pool[pool.size() / 2].first;
    const double c = pool.back().first;
    const double pivot = std::max(std::min(a, b), std::min(std::max(a, b), c));

    less.clear();
    greater.clear();
    double weight_less = 0.0, weight_equal = 0.0;
    for (const auto& [v, w] : pool) {
      if (v < pivot) {
        less.emplace_back(v, w);
        weight_less += w;
      } else if (v > pivot) {
        greater.emplace_back(v, w);
      } else {
        weight_equal += w;
      }
    }
    if (below + weight_less >= target) {
      pool.swap(less);
    } else if (below + weight_less + weight_equal >= target) {
      return pivot;
    } else {
      below += weight_less + weight_equal;
      pool.swap(greater);
    }
  }
}

std::vector<double> WeightedLabelDistribution(const std::vector<CategoryId>& labels,
                                              const std::vector<double>& weights,
                                              size_t num_labels) {
  std::vector<double> dist(num_labels, 0.0);
  double total = 0.0;
  for (size_t k = 0; k < labels.size(); ++k) {
    dist[static_cast<size_t>(labels[k])] += weights[k];
    total += weights[k];
  }
  if (total <= 0.0) {
    // Zero total weight: every claim is equally credible. The uniform
    // fallback covers only the *claimed* labels — spreading mass over the
    // whole dictionary would let the mode land on a label no source ever
    // claimed, violating the Eq-3 domain invariant.
    for (const CategoryId label : labels) dist[static_cast<size_t>(label)] = 1.0;
    double claimed = 0.0;
    for (const double p : dist) claimed += p;
    if (claimed > 0.0) {
      for (double& p : dist) p /= claimed;
    }
    return dist;
  }
  for (double& p : dist) p /= total;
  return dist;
}

Value WeightedMedoid(const std::vector<Value>& values, const std::vector<double>& weights,
                     const std::function<double(const Value&, const Value&)>& distance) {
  // Group duplicate claims so distances are evaluated once per distinct
  // pair; the medoid is always one of the claimed values.
  std::vector<Value> distinct;
  std::vector<double> mass;
  for (size_t k = 0; k < values.size(); ++k) {
    if (values[k].is_missing()) continue;
    bool found = false;
    for (size_t d = 0; d < distinct.size(); ++d) {
      if (distinct[d] == values[k]) {
        mass[d] += weights[k];
        found = true;
        break;
      }
    }
    if (!found) {
      distinct.push_back(values[k]);
      mass.push_back(weights[k]);
    }
  }
  if (distinct.empty()) return Value::Missing();

  Value best = distinct[0];
  double best_cost = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < distinct.size(); ++c) {
    double cost = 0.0;
    for (size_t d = 0; d < distinct.size(); ++d) {
      if (d != c) cost += mass[d] * distance(distinct[c], distinct[d]);
    }
    if (cost < best_cost) {
      best_cost = cost;
      best = distinct[c];
    }
  }
  return best;
}

size_t ArgMax(const std::vector<double>& xs) {
  size_t best = 0;
  for (size_t i = 1; i < xs.size(); ++i) {
    if (xs[i] > xs[best]) best = i;
  }
  return best;
}

// ---------------------------------------------------------------------------
// Span variants. Each mirrors its vector counterpart exactly: candidates are
// scanned in first-claim order, weights accumulate with the same association
// order, and ties break through the same comparators, so results are
// bit-identical at any claim count.

CRH_HOT Value WeightedVoteSpan(const Value* values, const double* weights, size_t n,
                       ResolverScratch& scratch) {
  CRH_DCHECK_GE(scratch.capacity, n);
  Value* candidates = scratch.candidates;
  double* tally = scratch.tally;
  size_t num_candidates = 0;
  for (size_t k = 0; k < n; ++k) {
    if (values[k].is_missing()) continue;
    size_t c = 0;
    while (c < num_candidates && !(candidates[c] == values[k])) ++c;
    if (c == num_candidates) {
      candidates[num_candidates] = values[k];
      tally[num_candidates] = 0.0;
      ++num_candidates;
    }
    tally[c] += weights[k];
  }
  if (num_candidates == 0) return Value::Missing();
  Value best = Value::Missing();
  double best_weight = -std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < num_candidates; ++c) {
    if (tally[c] > best_weight ||
        (tally[c] == best_weight && ValueLess(candidates[c], best))) {
      best = candidates[c];
      best_weight = tally[c];
    }
  }
  return best;
}

CRH_HOT CategoryId WeightedVoteLabelsSpan(const CategoryId* labels, const double* weights,
                                          size_t n, ResolverScratch& scratch) {
  CRH_DCHECK_GE(scratch.capacity, n);
  CategoryId* candidates = scratch.labels;
  double* tally = scratch.tally;
  size_t num_candidates = 0;
  for (size_t k = 0; k < n; ++k) {
    size_t c = 0;
    while (c < num_candidates && candidates[c] != labels[k]) ++c;
    if (c == num_candidates) {
      candidates[num_candidates] = labels[k];
      tally[num_candidates] = 0.0;
      ++num_candidates;
    }
    tally[c] += weights[k];
  }
  if (num_candidates == 0) return kInvalidCategory;
  CategoryId best = kInvalidCategory;
  double best_weight = -std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < num_candidates; ++c) {
    if (tally[c] > best_weight ||
        (tally[c] == best_weight && candidates[c] < best)) {
      best = candidates[c];
      best_weight = tally[c];
    }
  }
  return best;
}

CRH_HOT double WeightedMeanSpan(const double* values, const double* weights, size_t n) {
  double total = 0.0, total_weight = 0.0;
  WeightedSumPair(values, weights, n, &total, &total_weight);
  if (total_weight <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  return total / total_weight;
}

CRH_HOT double WeightedMedianSpan(const double* values, const double* weights, size_t n,
                          ResolverScratch& scratch) {
  if (n == 0) return std::numeric_limits<double>::quiet_NaN();
  CRH_DCHECK_GE(scratch.capacity, n);
  // Non-positive weights are dropped at use; a weight total of zero (or a
  // null weights pointer) selects the uniform fallback, matching
  // WeightedMedian's fill(1.0).
  double total = 0.0;
  if (weights != nullptr) {
    for (size_t k = 0; k < n; ++k) total += std::max(weights[k], 0.0);
  }
  bool uniform = false;
  if (weights == nullptr || total <= 0.0) {
    uniform = true;
    total = static_cast<double>(n);
  }

  size_t* order = scratch.order;
  for (size_t k = 0; k < n; ++k) order[k] = k;
  SortOrderByValue(order, n, values);

  const double half = total / 2.0;
  double below = 0.0;
  size_t pos = 0;
  while (pos < n) {
    const double v = values[order[pos]];
    double group = 0.0;
    size_t end = pos;
    while (end < n && values[order[end]] == v) {
      group += uniform ? 1.0 : std::max(weights[order[end]], 0.0);
      ++end;
    }
    const double above = total - below - group;
    if (below < half && above <= half) return v;
    below += group;
    pos = end;
  }
  return values[order[n - 1]];
}

CRH_HOT void WeightedLabelDistributionSpan(const CategoryId* labels, const double* weights,
                                   size_t n, double* dist, size_t num_labels) {
  std::fill(dist, dist + num_labels, 0.0);
  double total = 0.0;
  for (size_t k = 0; k < n; ++k) {
    dist[static_cast<size_t>(labels[k])] += weights[k];
    total += weights[k];
  }
  if (total <= 0.0) {
    // Same claimed-labels-only uniform fallback as WeightedLabelDistribution.
    for (size_t k = 0; k < n; ++k) dist[static_cast<size_t>(labels[k])] = 1.0;
    double claimed = 0.0;
    for (size_t i = 0; i < num_labels; ++i) claimed += dist[i];
    if (claimed > 0.0) {
      for (size_t i = 0; i < num_labels; ++i) dist[i] /= claimed;
    }
    return;
  }
  for (size_t i = 0; i < num_labels; ++i) dist[i] /= total;
}

CRH_HOT size_t ArgMaxSpan(const double* xs, size_t n) {
  size_t best = 0;
  for (size_t i = 1; i < n; ++i) {
    if (xs[i] > xs[best]) best = i;
  }
  return best;
}

}  // namespace crh
