#ifndef CRH_LOSSES_LOSS_H_
#define CRH_LOSSES_LOSS_H_

/// \file loss.h
/// Loss functions d_m(truth, observation) for heterogeneous data types.
///
/// The CRH objective (Eq 1) sums, per source, per-entry losses between the
/// current truth estimate and that source's claim. The loss is the hook by
/// which each data type's notion of "closeness" enters the framework:
///
///  * ZeroOneLoss          — Eq (8), categorical hard loss.
///  * NormalizedSquaredLoss — Eq (13), continuous, squared deviation over
///    the entry's claim dispersion (std across sources).
///  * NormalizedAbsoluteLoss — Eq (15), continuous, absolute deviation over
///    dispersion; robust to outliers.
///
/// The probability-vector squared loss for soft categorical truths (Eq 11)
/// does not fit the (Value, Value) signature because the truth is a
/// distribution; it is provided as the free function ProbVectorSquaredLoss.

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"

namespace crh {

/// Interface for a per-entry loss d_m(v*, v^k).
///
/// \p scale is the entry's normalization factor (std of claims across
/// sources for continuous entries, 1 otherwise); see data/stats.h.
class LossFunction {
 public:
  virtual ~LossFunction() = default;

  /// Stable identifier, e.g. "zero_one".
  virtual const char* name() const = 0;

  /// The loss of observing \p obs when the truth is \p truth. Both values
  /// must be non-missing and of the type the loss is defined for.
  virtual double Loss(const Value& truth, const Value& obs, double scale) const = 0;
};

/// Eq (8): 1 if the claim differs from the truth, else 0.
class ZeroOneLoss final : public LossFunction {
 public:
  const char* name() const override { return "zero_one"; }
  double Loss(const Value& truth, const Value& obs, double /*scale*/) const override {
    return truth == obs ? 0.0 : 1.0;
  }
};

/// Eq (13): (v* - v^k)^2 / std of claims on the entry.
class NormalizedSquaredLoss final : public LossFunction {
 public:
  const char* name() const override { return "normalized_squared"; }
  double Loss(const Value& truth, const Value& obs, double scale) const override {
    const double d = truth.continuous() - obs.continuous();
    return d * d / scale;
  }
};

/// Eq (15): |v* - v^k| / std of claims on the entry.
class NormalizedAbsoluteLoss final : public LossFunction {
 public:
  const char* name() const override { return "normalized_absolute"; }
  double Loss(const Value& truth, const Value& obs, double scale) const override {
    const double d = truth.continuous() - obs.continuous();
    return (d < 0 ? -d : d) / scale;
  }
};

/// Eq (11): squared Euclidean distance between a truth probability vector
/// I* over the L_m labels of a categorical property and the one-hot claim
/// vector of label \p obs:
///
///   ||I* - e_obs||^2 = ||I*||^2 - 2 * I*[obs] + 1.
///
/// \p truth_dist must be a probability vector of length L_m; \p obs must be
/// a valid CategoryId in [0, L_m).
double ProbVectorSquaredLoss(const std::vector<double>& truth_dist, CategoryId obs);

/// Pointer-view variant for hot paths: scores the distribution stored at
/// truth_dist[0 .. num_labels) in place — per-claim callers point straight
/// into a property's soft block instead of copying the entry's row into a
/// fresh vector.
double ProbVectorSquaredLoss(const double* truth_dist, size_t num_labels, CategoryId obs);

/// Factory: the loss function conventionally paired with a property type in
/// the paper's main experiments (0-1 for categorical, normalized absolute
/// deviation for continuous).
std::unique_ptr<LossFunction> DefaultLossForType(PropertyType type);

}  // namespace crh

#endif  // CRH_LOSSES_LOSS_H_
