#ifndef CRH_LOSSES_TEXT_DISTANCE_H_
#define CRH_LOSSES_TEXT_DISTANCE_H_

/// \file text_distance.h
/// Edit-distance losses for text properties.
///
/// Section 2.4 of the paper notes that the framework "can take any loss
/// function that is selected based on data types and distributions", naming
/// edit distance for text data. A text property stores interned strings;
/// its loss is the Levenshtein distance normalized by the longer string's
/// length, so values lie in [0, 1] like the 0-1 loss. The induced truth
/// update (Eq 3) is the weighted medoid: the claimed string minimizing the
/// weighted total edit distance to all claims (see core/resolvers.h).

#include <cstddef>
#include <string>

namespace crh {

/// Levenshtein (unit-cost insert/delete/substitute) distance.
size_t LevenshteinDistance(const std::string& a, const std::string& b);

/// LevenshteinDistance normalized by the longer string's length; 0 for
/// equal strings, 1 for completely disjoint ones. Two empty strings have
/// distance 0.
double NormalizedEditDistance(const std::string& a, const std::string& b);

}  // namespace crh

#endif  // CRH_LOSSES_TEXT_DISTANCE_H_
