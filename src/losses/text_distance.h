#ifndef CRH_LOSSES_TEXT_DISTANCE_H_
#define CRH_LOSSES_TEXT_DISTANCE_H_

/// \file text_distance.h
/// Edit-distance losses for text properties.
///
/// Section 2.4 of the paper notes that the framework "can take any loss
/// function that is selected based on data types and distributions", naming
/// edit distance for text data. A text property stores interned strings;
/// its loss is the Levenshtein distance normalized by the longer string's
/// length, so values lie in [0, 1] like the 0-1 loss. The induced truth
/// update (Eq 3) is the weighted medoid: the claimed string minimizing the
/// weighted total edit distance to all claims (see losses/resolvers.h).

#include <cstddef>
#include <string>

#include "common/arena.h"
#include "common/hot.h"

namespace crh {

/// Levenshtein (unit-cost insert/delete/substitute) distance.
size_t LevenshteinDistance(const std::string& a, const std::string& b);

/// LevenshteinDistance normalized by the longer string's length; 0 for
/// equal strings, 1 for completely disjoint ones. Two empty strings have
/// distance 0.
double NormalizedEditDistance(const std::string& a, const std::string& b);

/// Caller-owned rows for the two-row Levenshtein dynamic program, carved
/// out of a bump arena (common/arena.h). Size once (outside any hot loop)
/// to the longest label that can appear, then reuse across claims: the
/// scratch variants below never allocate. Standalone callers Reserve();
/// the solver CarveFrom()s its shared workspace arena.
struct EditDistanceScratch {
  /// Standalone sizing for strings up to \p max_len characters. Cold path.
  void Reserve(size_t max_len) {
    owned_.Reserve(BytesNeeded(max_len));
    CarveFrom(owned_, max_len);
  }

  /// Carves the rows from \p arena (needs BytesNeeded(max_len) headroom
  /// reserved). Cold path; invalidated by the arena's next Reserve/Reset.
  void CarveFrom(Arena& arena, size_t max_len) {
    prev = arena.Carve<size_t>(max_len + 1);
    curr = arena.Carve<size_t>(max_len + 1);
    capacity = max_len + 1;
  }

  /// Worst-case arena bytes CarveFrom(_, max_len) consumes.
  static constexpr size_t BytesNeeded(size_t max_len) {
    return 2 * Arena::BytesFor<size_t>(max_len + 1);
  }

  size_t* prev = nullptr;
  size_t* curr = nullptr;
  size_t capacity = 0;  // row length (longest string + 1)

 private:
  Arena owned_;  // backs the rows only in Reserve() mode
};

/// Allocation-free LevenshteinDistance over caller-owned scratch rows.
/// Precondition (checked): \p scratch was Reserve()d to at least
/// min(|a|, |b|). Bit-identical to the allocating variant. Distinctly
/// named (not an overload) so call graphs keep the hot and allocating
/// variants apart.
CRH_HOT size_t LevenshteinDistanceSpan(const std::string& a, const std::string& b,
                                       EditDistanceScratch& scratch);

/// Allocation-free NormalizedEditDistance; see LevenshteinDistanceSpan.
CRH_HOT double NormalizedEditDistanceSpan(const std::string& a, const std::string& b,
                                          EditDistanceScratch& scratch);

}  // namespace crh

#endif  // CRH_LOSSES_TEXT_DISTANCE_H_
