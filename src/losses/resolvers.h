#ifndef CRH_LOSSES_RESOLVERS_H_
#define CRH_LOSSES_RESOLVERS_H_

/// \file resolvers.h
/// Per-entry truth computation primitives (Section 2.4 of the paper).
///
/// Each loss function induces a closed-form (or efficiently computable)
/// minimizer for the truth-update step (Eq 3):
///
///  * 0-1 loss            -> weighted vote        (Eq 9)
///  * prob-vector sq loss -> weighted distribution (Eq 12), truth = argmax
///  * normalized squared  -> weighted mean        (Eq 14)
///  * normalized absolute -> weighted median      (Eq 16)
///
/// All functions skip nothing: callers pass only the non-missing claims on
/// an entry. Tie-breaking is deterministic (smallest value / label id) so
/// runs are reproducible.

#include <cstddef>
#include <functional>
#include <limits>
#include <vector>

#include "common/arena.h"
#include "common/check.h"
#include "common/hot.h"
#include "common/value.h"

namespace crh {

/// Eq (9): the value with the largest total weight among the claims.
/// Ties break toward the smallest value (category id, then continuous
/// magnitude). Returns Value::Missing() when there are no claims.
Value WeightedVote(const std::vector<Value>& values, const std::vector<double>& weights);

/// Eq (14): weighted arithmetic mean of the claims. Returns NaN when the
/// total weight is zero (callers fall back to the unweighted mean).
double WeightedMean(const std::vector<double>& values, const std::vector<double>& weights);

/// Eq (16): weighted median. Given claims v^k with weights w_k, returns the
/// claim v^j such that the total weight strictly below it is < W/2 and the
/// total weight strictly above it is <= W/2, where W is the total weight.
/// With uniform weights this is the classical (lower) median. Claims with
/// non-positive weight are ignored; if all weights are non-positive the
/// unweighted median of the claims is returned.
double WeightedMedian(std::vector<double> values, std::vector<double> weights);

/// Expected-linear-time weighted median via quickselect-style partitioning
/// (the CLRS chapter-9 algorithm the paper cites). Produces exactly the
/// same result as WeightedMedian; preferable when entries have many claims.
double WeightedMedianLinear(std::vector<double> values, std::vector<double> weights);

/// Eq (12): the weighted mean of one-hot claim vectors, i.e. the truth
/// probability distribution over the num_labels labels of a categorical
/// property. Claims are CategoryIds; the result sums to 1 when any claims
/// are given (uniform over the claimed labels when the total weight is
/// zero, so the mode always stays in the observed candidate set).
std::vector<double> WeightedLabelDistribution(const std::vector<CategoryId>& labels,
                                              const std::vector<double>& weights,
                                              size_t num_labels);

/// Weighted medoid: the claim minimizing the weighted total distance to
/// all claims — the truth update induced by an arbitrary metric loss (used
/// for text properties with edit distance). Ties break toward the claim
/// with the smaller index. O(n^2) distance evaluations over the distinct
/// claims. Returns Missing on no claims.
Value WeightedMedoid(const std::vector<Value>& values, const std::vector<double>& weights,
                     const std::function<double(const Value&, const Value&)>& distance);

/// Index of the largest element, smallest index on ties.
size_t ArgMax(const std::vector<double>& xs);

// ---------------------------------------------------------------------------
// Span variants: the CRH_HOT, allocation-free forms of the resolvers above,
// used by the solver's per-entry kernels (core/crh.cc). They read raw claim
// spans, write results through caller-owned buffers, and are bit-identical
// to their vector counterparts — same candidate order, same floating-point
// association, same tie-breaking. Callers size the scratch once per run
// (outside any hot loop); the span functions never grow it.

/// Caller-owned scratch for the span resolvers, carved out of a bump arena
/// (common/arena.h). One instance serves one thread. Two sizing modes:
/// standalone callers Reserve() against the scratch's own arena; the solver
/// embeds it in a larger workspace and CarveFrom()s a shared arena, so the
/// whole workspace is one allocation. Size to the largest claim count an
/// entry can have (ClaimIndex::max_span_size(), at most the source count).
struct ResolverScratch {
  /// Standalone sizing: one allocation into the owned arena. Cold path.
  void Reserve(size_t max_claims) {
    owned_.Reserve(BytesNeeded(max_claims));
    CarveFrom(owned_, max_claims);
  }

  /// Carves the buffers from \p arena (which must have BytesNeeded(
  /// max_claims) headroom reserved). Cold path; pointers are invalidated by
  /// the arena's next Reserve/Reset.
  void CarveFrom(Arena& arena, size_t max_claims) {
    candidates = arena.Carve<Value>(max_claims);
    labels = arena.Carve<CategoryId>(max_claims);
    tally = arena.Carve<double>(max_claims);
    order = arena.Carve<size_t>(max_claims);
    capacity = max_claims;
  }

  /// Worst-case arena bytes CarveFrom(_, max_claims) consumes.
  static constexpr size_t BytesNeeded(size_t max_claims) {
    return Arena::BytesFor<Value>(max_claims) + Arena::BytesFor<CategoryId>(max_claims) +
           Arena::BytesFor<double>(max_claims) + Arena::BytesFor<size_t>(max_claims);
  }

  Value* candidates = nullptr;  // vote candidates / medoid distinct claims
  CategoryId* labels = nullptr;  // label-lane candidates / distinct labels
  double* tally = nullptr;       // vote tallies / medoid masses
  size_t* order = nullptr;       // median sort permutation
  size_t capacity = 0;           // claim capacity of each buffer above

 private:
  Arena owned_;  // backs the buffers only in Reserve() mode
};

/// Eq (9) on a raw claim span; see WeightedVote. Missing values among the
/// first \p n claims are skipped. Precondition: scratch.Reserve(n).
CRH_HOT Value WeightedVoteSpan(const Value* values, const double* weights, size_t n,
                               ResolverScratch& scratch);

/// Eq (9) on the unboxed label lane (ClaimIndex::entry().labels): the
/// weighted vote over CategoryIds, bit-identical to WeightedVoteSpan over
/// the equivalent categorical Values (same first-claim candidate order,
/// association and smallest-id tie-break). Returns kInvalidCategory when
/// n == 0. Precondition: scratch.Reserve(n).
CRH_HOT CategoryId WeightedVoteLabelsSpan(const CategoryId* labels, const double* weights,
                                          size_t n, ResolverScratch& scratch);

/// Eq (14) on a raw claim span; see WeightedMean.
CRH_HOT double WeightedMeanSpan(const double* values, const double* weights, size_t n);

/// Eq (16) on a raw claim span; see WeightedMedian. A null \p weights is
/// the uniform weighting (the callers' zero-total-weight fallback without
/// materializing a ones vector). Precondition: scratch.Reserve(n).
CRH_HOT double WeightedMedianSpan(const double* values, const double* weights, size_t n,
                                  ResolverScratch& scratch);

/// Eq (12) on a raw claim span; see WeightedLabelDistribution. Writes the
/// distribution over \p num_labels labels into dist[0 .. num_labels),
/// zeroing it first.
CRH_HOT void WeightedLabelDistributionSpan(const CategoryId* labels, const double* weights,
                                           size_t n, double* dist, size_t num_labels);

/// ArgMax over a raw span; smallest index on ties.
CRH_HOT size_t ArgMaxSpan(const double* xs, size_t n);

/// Weighted medoid on a raw claim span; see WeightedMedoid. The distance
/// is a template parameter (no std::function type erasure on the hot
/// path). Precondition: scratch.Reserve(n).
template <typename DistanceFn>
CRH_HOT Value WeightedMedoidSpan(const Value* values, const double* weights, size_t n,
                                 ResolverScratch& scratch, const DistanceFn& dist_fn) {
  CRH_DCHECK_GE(scratch.capacity, n);
  Value* distinct = scratch.candidates;
  double* mass = scratch.tally;
  size_t num_distinct = 0;
  for (size_t k = 0; k < n; ++k) {
    if (values[k].is_missing()) continue;
    bool found = false;
    for (size_t d = 0; d < num_distinct; ++d) {
      if (distinct[d] == values[k]) {
        mass[d] += weights[k];
        found = true;
        break;
      }
    }
    if (!found) {
      distinct[num_distinct] = values[k];
      mass[num_distinct] = weights[k];
      ++num_distinct;
    }
  }
  if (num_distinct == 0) return Value::Missing();

  Value best = distinct[0];
  double best_cost = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < num_distinct; ++c) {
    double cost = 0.0;
    for (size_t d = 0; d < num_distinct; ++d) {
      if (d != c) cost += mass[d] * dist_fn(distinct[c], distinct[d]);
    }
    if (cost < best_cost) {
      best_cost = cost;
      best = distinct[c];
    }
  }
  return best;
}

/// Weighted medoid on the unboxed label lane: distinct claims are
/// CategoryIds and the distance is keyed by id pairs. Bit-identical to
/// WeightedMedoidSpan over the equivalent interned Values — Value equality
/// on same-kind labels IS id equality, so the distinct scan, mass
/// association and smaller-index tie-break coincide. Returns
/// kInvalidCategory on no claims. Precondition: scratch.Reserve(n).
template <typename DistanceFn>
CRH_HOT CategoryId WeightedMedoidLabelsSpan(const CategoryId* labels, const double* weights,
                                            size_t n, ResolverScratch& scratch,
                                            const DistanceFn& dist_fn) {
  CRH_DCHECK_GE(scratch.capacity, n);
  CategoryId* distinct = scratch.labels;
  double* mass = scratch.tally;
  size_t num_distinct = 0;
  for (size_t k = 0; k < n; ++k) {
    bool found = false;
    for (size_t d = 0; d < num_distinct; ++d) {
      if (distinct[d] == labels[k]) {
        mass[d] += weights[k];
        found = true;
        break;
      }
    }
    if (!found) {
      distinct[num_distinct] = labels[k];
      mass[num_distinct] = weights[k];
      ++num_distinct;
    }
  }
  if (num_distinct == 0) return kInvalidCategory;

  CategoryId best = distinct[0];
  double best_cost = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < num_distinct; ++c) {
    double cost = 0.0;
    for (size_t d = 0; d < num_distinct; ++d) {
      if (d != c) cost += mass[d] * dist_fn(distinct[c], distinct[d]);
    }
    if (cost < best_cost) {
      best_cost = cost;
      best = distinct[c];
    }
  }
  return best;
}

}  // namespace crh

#endif  // CRH_LOSSES_RESOLVERS_H_
