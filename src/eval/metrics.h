#ifndef CRH_EVAL_METRICS_H_
#define CRH_EVAL_METRICS_H_

/// \file metrics.h
/// Evaluation measures from Section 3.1.1 of the paper.
///
///  * Error Rate — fraction of categorical outputs differing from the
///    ground truth, over labeled categorical entries.
///  * MNAD (Mean Normalized Absolute Distance) — per labeled continuous
///    entry, |estimate - truth| normalized by the dispersion of claims on
///    that entry, averaged.
///
/// Lower is better for both. Also provides the ground-truth source
/// reliability used for Figure 1 and correlation helpers for comparing
/// estimated weights against it.

#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "data/table.h"

namespace crh {

/// Error Rate + MNAD of an estimated truth table against ground truth.
struct EvaluationResult {
  /// Fraction of labeled categorical entries answered incorrectly (or left
  /// missing). NaN if no labeled categorical entry exists.
  double error_rate = 0.0;
  /// Number of labeled categorical entries evaluated.
  size_t categorical_evaluated = 0;
  /// Number of categorical mismatches.
  size_t categorical_errors = 0;
  /// Mean normalized absolute distance over labeled continuous entries.
  /// NaN if no labeled continuous entry exists.
  double mnad = 0.0;
  /// Number of labeled continuous entries evaluated.
  size_t continuous_evaluated = 0;
};

/// Evaluates \p estimate against the dataset's ground truth. Entries whose
/// ground truth is missing are skipped; entries the estimate leaves missing
/// count as errors (categorical) or contribute the per-entry claim scale
/// (continuous), so methods cannot win by abstaining.
[[nodiscard]] Result<EvaluationResult> Evaluate(const Dataset& data, const ValueTable& estimate);

/// One property's evaluation row in a per-property breakdown.
struct PropertyEvaluation {
  std::string property;
  PropertyType type = PropertyType::kContinuous;
  /// Labeled entries evaluated for this property.
  size_t evaluated = 0;
  /// Error rate (discrete properties) or MNAD (continuous); NaN when no
  /// labeled entry exists.
  double score = 0.0;
};

/// Per-property breakdown of Evaluate — which properties a method gets
/// right and which drag it down. Same conventions as Evaluate.
[[nodiscard]]
Result<std::vector<PropertyEvaluation>> EvaluateByProperty(const Dataset& data,
                                                           const ValueTable& estimate);

/// Ground-truth reliability of each source (used for Fig 1): the
/// probability of a correct claim on labeled categorical entries, combined
/// with a closeness score exp(-MNAD_k) on labeled continuous entries; the
/// two parts are averaged when both exist.
std::vector<double> TrueSourceReliability(const Dataset& data);

/// Min-max normalizes scores into [0, 1] (constant vectors map to all 1s),
/// as the paper does before plotting reliability degrees.
std::vector<double> NormalizeScores(std::vector<double> scores);

/// Pearson linear correlation; NaN when either side is constant.
double PearsonCorrelation(const std::vector<double>& a, const std::vector<double>& b);

/// Spearman rank correlation; NaN when either side is constant.
double SpearmanCorrelation(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace crh

#endif  // CRH_EVAL_METRICS_H_
