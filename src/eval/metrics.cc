#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "data/stats.h"

namespace crh {

Result<EvaluationResult> Evaluate(const Dataset& data, const ValueTable& estimate) {
  if (!data.has_ground_truth()) {
    return Status::FailedPrecondition("dataset has no ground truth attached");
  }
  if (estimate.num_objects() != data.num_objects() ||
      estimate.num_properties() != data.num_properties()) {
    return Status::InvalidArgument("estimate shape does not match dataset");
  }

  const ValueTable& truth = data.ground_truth();
  const EntryStats stats = ComputeEntryStats(data);

  EvaluationResult out;
  double nad_total = 0.0;
  for (size_t i = 0; i < data.num_objects(); ++i) {
    for (size_t m = 0; m < data.num_properties(); ++m) {
      const Value& gt = truth.Get(i, m);
      if (gt.is_missing()) continue;
      const Value& est = estimate.Get(i, m);
      if (data.schema().is_discrete(m)) {
        ++out.categorical_evaluated;
        if (est.is_missing() || est != gt) ++out.categorical_errors;
      } else {
        ++out.continuous_evaluated;
        const double scale = stats.scale_at(i, m);
        if (est.is_missing()) {
          // An abstention is charged one claim-dispersion unit.
          nad_total += 1.0;
        } else {
          nad_total += std::abs(est.continuous() - gt.continuous()) / scale;
        }
      }
    }
  }
  out.error_rate = out.categorical_evaluated > 0
                       ? static_cast<double>(out.categorical_errors) /
                             static_cast<double>(out.categorical_evaluated)
                       : std::numeric_limits<double>::quiet_NaN();
  out.mnad = out.continuous_evaluated > 0
                 ? nad_total / static_cast<double>(out.continuous_evaluated)
                 : std::numeric_limits<double>::quiet_NaN();
  return out;
}

Result<std::vector<PropertyEvaluation>> EvaluateByProperty(const Dataset& data,
                                                           const ValueTable& estimate) {
  if (!data.has_ground_truth()) {
    return Status::FailedPrecondition("dataset has no ground truth attached");
  }
  if (estimate.num_objects() != data.num_objects() ||
      estimate.num_properties() != data.num_properties()) {
    return Status::InvalidArgument("estimate shape does not match dataset");
  }

  const ValueTable& truth = data.ground_truth();
  const EntryStats stats = ComputeEntryStats(data);
  std::vector<PropertyEvaluation> rows(data.num_properties());
  for (size_t m = 0; m < data.num_properties(); ++m) {
    PropertyEvaluation& row = rows[m];
    row.property = data.schema().property(m).name;
    row.type = data.schema().property(m).type;
    double total = 0.0;
    for (size_t i = 0; i < data.num_objects(); ++i) {
      const Value& gt = truth.Get(i, m);
      if (gt.is_missing()) continue;
      ++row.evaluated;
      const Value& est = estimate.Get(i, m);
      if (data.schema().is_discrete(m)) {
        total += (est.is_missing() || est != gt) ? 1.0 : 0.0;
      } else if (est.is_missing()) {
        total += 1.0;
      } else {
        total += std::abs(est.continuous() - gt.continuous()) / stats.scale_at(i, m);
      }
    }
    row.score = row.evaluated > 0 ? total / static_cast<double>(row.evaluated)
                                  : std::numeric_limits<double>::quiet_NaN();
  }
  return rows;
}

std::vector<double> TrueSourceReliability(const Dataset& data) {
  const size_t k_sources = data.num_sources();
  std::vector<double> reliability(k_sources, 0.0);
  if (!data.has_ground_truth()) return reliability;

  const ValueTable& truth = data.ground_truth();
  const EntryStats stats = ComputeEntryStats(data);

  for (size_t k = 0; k < k_sources; ++k) {
    size_t cat_total = 0, cat_correct = 0;
    size_t cont_total = 0;
    double nad_total = 0.0;
    const ValueTable& table = data.observations(k);
    for (size_t i = 0; i < data.num_objects(); ++i) {
      for (size_t m = 0; m < data.num_properties(); ++m) {
        const Value& gt = truth.Get(i, m);
        const Value& obs = table.Get(i, m);
        if (gt.is_missing() || obs.is_missing()) continue;
        if (data.schema().is_discrete(m)) {
          ++cat_total;
          if (obs == gt) ++cat_correct;
        } else {
          ++cont_total;
          nad_total += std::abs(obs.continuous() - gt.continuous()) / stats.scale_at(i, m);
        }
      }
    }
    double score = 0.0;
    int parts = 0;
    if (cat_total > 0) {
      score += static_cast<double>(cat_correct) / static_cast<double>(cat_total);
      ++parts;
    }
    if (cont_total > 0) {
      score += std::exp(-nad_total / static_cast<double>(cont_total));
      ++parts;
    }
    reliability[k] = parts > 0 ? score / parts : 0.0;
  }
  return reliability;
}

std::vector<double> NormalizeScores(std::vector<double> scores) {
  if (scores.empty()) return scores;
  const auto [lo_it, hi_it] = std::minmax_element(scores.begin(), scores.end());
  const double lo = *lo_it, hi = *hi_it;
  if (hi - lo < 1e-15) {
    std::fill(scores.begin(), scores.end(), 1.0);
    return scores;
  }
  for (double& s : scores) s = (s - lo) / (hi - lo);
  return scores;
}

double PearsonCorrelation(const std::vector<double>& a, const std::vector<double>& b) {
  const size_t n = std::min(a.size(), b.size());
  if (n < 2) return std::numeric_limits<double>::quiet_NaN();
  const auto count = static_cast<std::ptrdiff_t>(n);
  const double mean_a = std::accumulate(a.begin(), a.begin() + count, 0.0) / static_cast<double>(n);
  const double mean_b = std::accumulate(b.begin(), b.begin() + count, 0.0) / static_cast<double>(n);
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a < 1e-30 || var_b < 1e-30) return std::numeric_limits<double>::quiet_NaN();
  return cov / std::sqrt(var_a * var_b);
}

namespace {

std::vector<double> Ranks(const std::vector<double>& xs) {
  std::vector<size_t> order(xs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(xs.size(), 0.0);
  size_t pos = 0;
  while (pos < order.size()) {
    size_t end = pos;
    while (end < order.size() && xs[order[end]] == xs[order[pos]]) ++end;
    const double rank = (static_cast<double>(pos) + static_cast<double>(end - 1)) / 2.0;
    for (size_t j = pos; j < end; ++j) ranks[order[j]] = rank;
    pos = end;
  }
  return ranks;
}

}  // namespace

double SpearmanCorrelation(const std::vector<double>& a, const std::vector<double>& b) {
  return PearsonCorrelation(Ranks(a), Ranks(b));
}

}  // namespace crh
