#include "serve/snapshot.h"

#include <algorithm>

#include "stream/stream_engine.h"

namespace crh {

ServeSnapshot SnapshotFromEngine(const StreamEngine& engine, uint64_t epoch) {
  ServeSnapshot snapshot;
  snapshot.epoch = epoch;
  snapshot.chunks_solved =
      std::max(engine.chunks_applied(), engine.chunks_resumed());
  snapshot.next_seq = engine.chunks_applied();
  snapshot.chunks_resumed = engine.chunks_resumed();
  snapshot.resumed_from_fallback = engine.resumed_from_fallback();
  snapshot.checkpoints_written = engine.checkpoints_written();
  snapshot.last_checkpoint_chunks = engine.last_checkpoint_chunks();
  snapshot.truths = engine.truths();
  snapshot.source_weights = engine.source_weights();
  snapshot.accumulated_deviations = engine.accumulated_deviations();
  snapshot.quarantined_per_source = engine.quarantined_per_source();
  snapshot.delta_stats = engine.delta_stats();
  return snapshot;
}

}  // namespace crh
