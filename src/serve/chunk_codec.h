#ifndef CRH_SERVE_CHUNK_CODEC_H_
#define CRH_SERVE_CHUNK_CODEC_H_

/// \file chunk_codec.h
/// Decoding ingested claim CSV into DataChunks over the universe dataset.
///
/// An ingest request carries one chunk's claims as observation CSV (the
/// same `object_id,property,source_id,value` tuples data/csv.h reads and
/// writes). The codec re-expresses them as a DataChunk in the universe's
/// entry space — objects ordered by ascending universe index, the full
/// universe source roster, universe dictionaries — which is exactly the
/// shape SplitByWindow gives the batch driver. That shape equality is what
/// makes a served stream bit-identical to a batch run over the same
/// claims: the chunk ClaimIndex, the deviation sums and the truth passes
/// all iterate in the same order either way.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "stream/chunks.h"

namespace crh {

/// Hard cap on the CSV payload of one ingested chunk. Matches the serving
/// default for a whole request line (ServeOptions::max_request_bytes); a
/// larger chunk is rejected with kOutOfRange before any parsing work.
inline constexpr size_t kMaxChunkCsvBytes = 8u << 20;

/// Stateless decoder bound to one universe dataset (the id -> index maps
/// are built once; Decode is const and thread-compatible).
class ChunkCodec {
 public:
  /// `universe` must outlive the codec. Its object ids, source roster and
  /// per-property dictionaries define the space chunks are decoded into.
  explicit ChunkCodec(const Dataset& universe);

  /// Parses `csv` and builds the chunk. The payload must fit
  /// kMaxChunkCsvBytes and may not name more objects or sources than the
  /// universe holds (both kOutOfRange — the CSV is untrusted bytes, so its
  /// counts are bounds-checked before they size anything). Every object
  /// and source must exist in the universe. Categorical/text labels are re-interned against the
  /// universe dictionary; a label the universe has never seen is an error
  /// unless `quarantine_bad_claims` is set, in which case the claim decodes
  /// to the invalid-category sentinel and the solver's quarantine excludes
  /// and counts it — mirroring how the batch path treats out-of-dictionary
  /// claims.
  [[nodiscard]] Result<DataChunk> Decode(const std::string& csv, int64_t window_start,
                                         bool quarantine_bad_claims) const;

 private:
  const Dataset* universe_;
  std::map<std::string, size_t> object_index_;
  std::map<std::string, size_t> source_index_;
  std::vector<std::string> source_ids_;
};

}  // namespace crh

#endif  // CRH_SERVE_CHUNK_CODEC_H_
