#include "serve/chunk_codec.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "data/csv.h"

namespace crh {

ChunkCodec::ChunkCodec(const Dataset& universe) : universe_(&universe) {
  for (size_t i = 0; i < universe.num_objects(); ++i) {
    object_index_[universe.object_id(i)] = i;
  }
  for (size_t k = 0; k < universe.num_sources(); ++k) {
    source_index_[universe.source_id(k)] = k;
    source_ids_.push_back(universe.source_id(k));
  }
}

Result<DataChunk> ChunkCodec::Decode(const std::string& csv, int64_t window_start,
                                     bool quarantine_bad_claims) const {
  if (csv.size() > kMaxChunkCsvBytes) {
    return Status::OutOfRange(
        "ingested chunk CSV is " + std::to_string(csv.size()) +
        " bytes; the limit is " + std::to_string(kMaxChunkCsvBytes));
  }
  std::istringstream in(csv);
  auto parsed = ReadObservationsCsv(universe_->schema(), in);
  if (!parsed.ok()) return parsed.status();
  // The parsed counts come from untrusted bytes: bound them by the
  // universe before they size anything. A chunk is always a subset of the
  // universe's entry space, so exceeding either count is malformed input,
  // not scale.
  if (parsed->num_objects() > object_index_.size() ||
      parsed->num_sources() > source_index_.size()) {
    return Status::OutOfRange(
        "ingested chunk names " + std::to_string(parsed->num_objects()) +
        " objects / " + std::to_string(parsed->num_sources()) +
        " sources, more than the universe holds (" +
        std::to_string(object_index_.size()) + " / " +
        std::to_string(source_index_.size()) + ")");
  }

  // members[i] = (universe index, parsed index): ascending universe order,
  // the order SplitByWindow emits, so iteration order — and therefore every
  // reduction — matches the batch path bit for bit.
  std::vector<std::pair<size_t, size_t>> members;
  members.reserve(parsed->num_objects());
  for (size_t i = 0; i < parsed->num_objects(); ++i) {
    const auto it = object_index_.find(parsed->object_id(i));
    if (it == object_index_.end()) {
      return Status::InvalidArgument("ingested chunk names object '" +
                                     parsed->object_id(i) +
                                     "' absent from the universe");
    }
    members.emplace_back(it->second, i);
  }
  std::sort(members.begin(), members.end());

  std::vector<size_t> source_map(parsed->num_sources());
  for (size_t k = 0; k < parsed->num_sources(); ++k) {
    const auto it = source_index_.find(parsed->source_id(k));
    if (it == source_index_.end()) {
      return Status::InvalidArgument("ingested chunk names source '" +
                                     parsed->source_id(k) +
                                     "' absent from the universe");
    }
    source_map[k] = it->second;
  }

  DataChunk chunk;
  chunk.window_start = window_start;
  std::vector<std::string> object_ids;
  object_ids.reserve(members.size());
  for (const auto& [universe_index, parsed_index] : members) {
    (void)parsed_index;
    chunk.parent_object.push_back(universe_index);
    object_ids.push_back(universe_->object_id(universe_index));
  }
  chunk.data = Dataset(universe_->schema(), std::move(object_ids), source_ids_);
  for (size_t m = 0; m < universe_->num_properties(); ++m) {
    chunk.data.mutable_dict(m) = universe_->dict(m);
  }

  for (size_t k = 0; k < parsed->num_sources(); ++k) {
    const size_t universe_source = source_map[k];
    for (size_t local = 0; local < members.size(); ++local) {
      const size_t parsed_index = members[local].second;
      for (size_t m = 0; m < universe_->num_properties(); ++m) {
        const Value v = parsed->observations(k).Get(parsed_index, m);
        if (v.is_missing()) continue;
        Value translated = v;
        if (v.is_categorical()) {
          // Re-intern the label id from the parsed-local dictionary into
          // the universe dictionary.
          const std::string& label = parsed->dict(m).label(v.category());
          const CategoryId id = universe_->dict(m).Find(label);
          if (id == kInvalidCategory && !quarantine_bad_claims) {
            return Status::InvalidArgument(
                "ingested chunk uses label '" + label + "' for property '" +
                universe_->schema().property(m).name +
                "' that the universe has never seen (enable quarantine to "
                "shed such claims instead)");
          }
          translated = Value::Categorical(id);
        }
        chunk.data.SetObservation(universe_source, local, m, translated);
      }
    }
  }
  return chunk;
}

}  // namespace crh
