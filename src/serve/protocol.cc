#include "serve/protocol.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace crh {

namespace {

Status Malformed(const std::string& what) {
  return Status::InvalidArgument("malformed request: " + what);
}

Status OverLimit(const std::string& what, size_t limit) {
  return Status::OutOfRange("request " + what + " exceeds the limit of " +
                            std::to_string(limit));
}

/// Recursive-descent-free parser over a bounded string_view. Every read
/// checks the remaining byte count first, like the checkpoint Cursor.
class JsonCursor {
 public:
  explicit JsonCursor(std::string_view text) : text_(text) {}

  bool AtEnd() const { return pos_ >= text_.size(); }

  char Peek() const { return text_[pos_]; }

  void SkipSpace() {
    while (!AtEnd()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\r' && c != '\n') break;
      ++pos_;
    }
  }

  Status Expect(char c) {
    if (AtEnd() || text_[pos_] != c) {
      return Malformed(std::string("expected '") + c + "'");
    }
    ++pos_;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    CRH_RETURN_NOT_OK(Expect('"'));
    out->clear();
    while (true) {
      if (AtEnd()) return Malformed("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Malformed("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        if (out->size() > kMaxProtocolStringBytes) {
          return OverLimit("string", kMaxProtocolStringBytes);
        }
        continue;
      }
      if (AtEnd()) return Malformed("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (text_.size() - pos_ < 4) return Malformed("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Malformed("invalid \\u escape digit");
            }
          }
          // Encode the BMP code point as UTF-8. Surrogate pairs (non-BMP)
          // never appear in this protocol's ASCII-oriented traffic and are
          // rejected rather than silently mangled.
          if (code >= 0xd800 && code <= 0xdfff) {
            return Malformed("surrogate \\u escapes are not supported");
          }
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xc0u | (code >> 6)));
            out->push_back(static_cast<char>(0x80u | (code & 0x3fu)));
          } else {
            out->push_back(static_cast<char>(0xe0u | (code >> 12)));
            out->push_back(static_cast<char>(0x80u | ((code >> 6) & 0x3fu)));
            out->push_back(static_cast<char>(0x80u | (code & 0x3fu)));
          }
          break;
        }
        default:
          return Malformed("unknown escape");
      }
      if (out->size() > kMaxProtocolStringBytes) {
        return OverLimit("string", kMaxProtocolStringBytes);
      }
    }
  }

  Status ParseNumber(JsonValue* out) {
    const size_t begin = pos_;
    if (!AtEnd() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (!AtEnd()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == begin) return Malformed("expected a number");
    // A bounded copy gives the strto* family its NUL terminator.
    const std::string token(text_.substr(begin, pos_ - begin));
    char* end = nullptr;
    // "-0" must stay a double: integer parsing would drop the sign bit and
    // break the exact round-trip the serving chaos suite asserts.
    if (token == "-0") integral = false;
    if (integral) {
      errno = 0;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        out->kind = JsonValue::Kind::kInt;
        out->int_value = v;
        return Status::OK();
      }
      // Integer overflow: fall through to double semantics.
    }
    errno = 0;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(v)) {
      return Malformed("invalid number '" + token + "'");
    }
    out->kind = JsonValue::Kind::kDouble;
    out->double_value = v;
    return Status::OK();
  }

  Status ParseLiteral(std::string_view literal) {
    if (text_.size() - pos_ < literal.size() ||
        text_.substr(pos_, literal.size()) != literal) {
      return Malformed("invalid literal");
    }
    pos_ += literal.size();
    return Status::OK();
  }

  Status ParseScalar(JsonValue* out) {
    if (AtEnd()) return Malformed("expected a value");
    const char c = Peek();
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string_value);
    }
    if (c == 't') {
      CRH_RETURN_NOT_OK(ParseLiteral("true"));
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      return Status::OK();
    }
    if (c == 'f') {
      CRH_RETURN_NOT_OK(ParseLiteral("false"));
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
      return Status::OK();
    }
    if (c == 'n') {
      CRH_RETURN_NOT_OK(ParseLiteral("null"));
      out->kind = JsonValue::Kind::kNull;
      return Status::OK();
    }
    if (c == '{' || c == '[') {
      return Malformed("nested objects and arrays are not supported here");
    }
    return ParseNumber(out);
  }

  Status ParseValue(JsonValue* out) {
    if (AtEnd()) return Malformed("expected a value");
    if (Peek() != '[') return ParseScalar(out);
    // One level of array, scalar elements only.
    CRH_RETURN_NOT_OK(Expect('['));
    out->kind = JsonValue::Kind::kArray;
    out->items.clear();
    SkipSpace();
    if (!AtEnd() && Peek() == ']') return Expect(']');
    while (true) {
      SkipSpace();
      JsonValue element;
      CRH_RETURN_NOT_OK(ParseScalar(&element));
      if (out->items.size() == kMaxProtocolArrayItems) {
        return OverLimit("array", kMaxProtocolArrayItems);
      }
      out->items.push_back(std::move(element));
      SkipSpace();
      if (AtEnd()) return Malformed("unterminated array");
      if (Peek() == ',') {
        CRH_RETURN_NOT_OK(Expect(','));
        continue;
      }
      return Expect(']');
    }
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonObject::Find(const std::string& key) const {
  const auto it = fields.find(key);
  return it == fields.end() ? nullptr : &it->second;
}

Result<std::string> JsonObject::GetString(const std::string& key) const {
  const JsonValue* value = Find(key);
  if (value == nullptr || value->kind != JsonValue::Kind::kString) {
    return Status::InvalidArgument("request needs a string field '" + key + "'");
  }
  return value->string_value;
}

Result<int64_t> JsonObject::GetInt(const std::string& key) const {
  const JsonValue* value = Find(key);
  if (value == nullptr || value->kind != JsonValue::Kind::kInt) {
    return Status::InvalidArgument("request needs an integer field '" + key + "'");
  }
  return value->int_value;
}

Result<uint64_t> JsonObject::GetUint(const std::string& key) const {
  auto value = GetInt(key);
  if (!value.ok()) return value.status();
  if (*value < 0) {
    return Status::InvalidArgument("field '" + key + "' must be >= 0");
  }
  return static_cast<uint64_t>(*value);
}

Result<double> JsonObject::GetDouble(const std::string& key) const {
  const JsonValue* value = Find(key);
  if (value == nullptr) {
    return Status::InvalidArgument("request needs a number field '" + key + "'");
  }
  if (value->kind == JsonValue::Kind::kInt) {
    return static_cast<double>(value->int_value);
  }
  if (value->kind == JsonValue::Kind::kDouble) return value->double_value;
  return Status::InvalidArgument("field '" + key + "' must be a number");
}

Result<std::vector<double>> JsonObject::GetDoubleArray(const std::string& key) const {
  const JsonValue* value = Find(key);
  if (value == nullptr || value->kind != JsonValue::Kind::kArray) {
    return Status::InvalidArgument("expected an array field '" + key + "'");
  }
  std::vector<double> out;
  out.reserve(value->items.size());
  for (const JsonValue& item : value->items) {
    if (item.kind == JsonValue::Kind::kInt) {
      out.push_back(static_cast<double>(item.int_value));
    } else if (item.kind == JsonValue::Kind::kDouble) {
      out.push_back(item.double_value);
    } else {
      return Status::InvalidArgument("array '" + key + "' holds a non-number");
    }
  }
  return out;
}

Result<std::vector<std::string>> JsonObject::GetStringArray(
    const std::string& key) const {
  const JsonValue* value = Find(key);
  if (value == nullptr || value->kind != JsonValue::Kind::kArray) {
    return Status::InvalidArgument("expected an array field '" + key + "'");
  }
  std::vector<std::string> out;
  out.reserve(value->items.size());
  for (const JsonValue& item : value->items) {
    if (item.kind != JsonValue::Kind::kString) {
      return Status::InvalidArgument("array '" + key + "' holds a non-string");
    }
    out.push_back(item.string_value);
  }
  return out;
}

Result<JsonObject> ParseJsonObject(std::string_view text, size_t max_bytes) {
  if (text.size() > max_bytes) {
    return Status::InvalidArgument("request exceeds the " +
                                   std::to_string(max_bytes) + "-byte limit");
  }
  JsonCursor cursor(text);
  cursor.SkipSpace();
  CRH_RETURN_NOT_OK(cursor.Expect('{'));
  JsonObject object;
  cursor.SkipSpace();
  if (!cursor.AtEnd() && cursor.Peek() == '}') {
    CRH_RETURN_NOT_OK(cursor.Expect('}'));
  } else {
    while (true) {
      cursor.SkipSpace();
      std::string key;
      CRH_RETURN_NOT_OK(cursor.ParseString(&key));
      cursor.SkipSpace();
      CRH_RETURN_NOT_OK(cursor.Expect(':'));
      cursor.SkipSpace();
      JsonValue value;
      CRH_RETURN_NOT_OK(cursor.ParseValue(&value));
      if (!object.fields.emplace(std::move(key), std::move(value)).second) {
        return Malformed("duplicate key");
      }
      if (object.fields.size() > kMaxProtocolFields) {
        return OverLimit("object field count", kMaxProtocolFields);
      }
      cursor.SkipSpace();
      if (cursor.AtEnd()) return Malformed("unterminated object");
      if (cursor.Peek() == ',') {
        CRH_RETURN_NOT_OK(cursor.Expect(','));
        continue;
      }
      CRH_RETURN_NOT_OK(cursor.Expect('}'));
      break;
    }
  }
  cursor.SkipSpace();
  if (!cursor.AtEnd()) return Malformed("trailing bytes after object");
  return object;
}

void AppendJsonString(std::string* out, std::string_view value) {
  out->push_back('"');
  for (const char c : value) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buffer);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonDouble(std::string* out, double value) {
  if (!std::isfinite(value)) {
    out->append("null");
    return;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out->append(buffer);
}

void JsonWriter::AddKey(const std::string& key) {
  if (!first_) out_.push_back(',');
  first_ = false;
  AppendJsonString(&out_, key);
  out_.push_back(':');
}

void JsonWriter::AddString(const std::string& key, std::string_view value) {
  AddKey(key);
  AppendJsonString(&out_, value);
}

void JsonWriter::AddInt(const std::string& key, int64_t value) {
  AddKey(key);
  out_.append(std::to_string(value));
}

void JsonWriter::AddUint(const std::string& key, uint64_t value) {
  AddKey(key);
  out_.append(std::to_string(value));
}

void JsonWriter::AddDouble(const std::string& key, double value) {
  AddKey(key);
  AppendJsonDouble(&out_, value);
}

void JsonWriter::AddBool(const std::string& key, bool value) {
  AddKey(key);
  out_.append(value ? "true" : "false");
}

void JsonWriter::AddNull(const std::string& key) {
  AddKey(key);
  out_.append("null");
}

void JsonWriter::AddDoubleArray(const std::string& key,
                                const std::vector<double>& values) {
  AddKey(key);
  out_.push_back('[');
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out_.push_back(',');
    AppendJsonDouble(&out_, values[i]);
  }
  out_.push_back(']');
}

void JsonWriter::AddUintArray(const std::string& key,
                              const std::vector<uint64_t>& values) {
  AddKey(key);
  out_.push_back('[');
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out_.push_back(',');
    out_.append(std::to_string(values[i]));
  }
  out_.push_back(']');
}

void JsonWriter::AddStringArray(const std::string& key,
                                const std::vector<std::string>& values) {
  AddKey(key);
  out_.push_back('[');
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out_.push_back(',');
    AppendJsonString(&out_, values[i]);
  }
  out_.push_back(']');
}

std::string JsonWriter::Finish() && {
  out_.push_back('}');
  return std::move(out_);
}

}  // namespace crh
