#ifndef CRH_SERVE_SNAPSHOT_H_
#define CRH_SERVE_SNAPSHOT_H_

/// \file snapshot.h
/// Immutable epoch snapshots of the served truth state.
///
/// The serving daemon's contract is that query threads never block on
/// solver iterations. The mechanism is RCU-style epoch publication: after
/// every applied chunk the ingest thread copies the engine's truth table,
/// weights and counters into a fresh, immutable ServeSnapshot and swaps it
/// behind an atomic shared_ptr. Readers load the pointer (lock-free, one
/// atomic operation), answer every query of a request from that one
/// object, and drop the reference; an old epoch stays alive exactly until
/// its last in-flight reader releases it. There is no read lock, no
/// copy-on-read, and no torn state — a reader either sees epoch N in its
/// entirety or epoch N+1 in its entirety, never a mix (the tsan-labeled
/// concurrent-reader test proves it).

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "data/table.h"
#include "stream/incremental_crh.h"

namespace crh {

class StreamEngine;

/// One immutable published epoch: everything a query can ask about, copied
/// out of the engine at a single chunk boundary.
struct ServeSnapshot {
  /// Publication counter: bumps by one per publish, starting at 0 for the
  /// snapshot published before the first chunk (or right after resume).
  uint64_t epoch = 0;
  /// Chunks whose claims the truths/weights below reflect (replayed +
  /// freshly solved).
  uint64_t chunks_solved = 0;
  /// Next ingest sequence number the engine expects.
  uint64_t next_seq = 0;
  uint64_t chunks_resumed = 0;
  bool resumed_from_fallback = false;
  uint64_t checkpoints_written = 0;
  /// chunks_solved at the last durable checkpoint (0 = none yet).
  uint64_t last_checkpoint_chunks = 0;
  /// Fused truths over the universe dataset (N x M).
  ValueTable truths;
  std::vector<double> source_weights;
  std::vector<double> accumulated_deviations;
  std::vector<uint64_t> quarantined_per_source;
  DeltaSolveStats delta_stats;
};

/// Copies the engine's current state into a snapshot stamped `epoch`.
ServeSnapshot SnapshotFromEngine(const StreamEngine& engine, uint64_t epoch);

/// The atomic publication point between the ingest thread (single writer)
/// and query threads (any number of readers).
class SnapshotPublisher {
 public:
  /// The latest published epoch; nullptr before the first Publish.
  std::shared_ptr<const ServeSnapshot> Current() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Atomically replaces the published epoch. The previous snapshot is
  /// released once its last reader drops it.
  void Publish(std::shared_ptr<const ServeSnapshot> snapshot) {
    current_.store(std::move(snapshot), std::memory_order_release);
  }

 private:
  std::atomic<std::shared_ptr<const ServeSnapshot>> current_;
};

}  // namespace crh

#endif  // CRH_SERVE_SNAPSHOT_H_
