#include "serve/admission.h"

#include <utility>

namespace crh {

bool IngestQueue::TryPush(PendingChunk item) {
  const MutexLock lock(&mu_);
  if (closed_ || items_.size() >= capacity_) {
    ++shed_;
    return false;
  }
  items_.push_back(std::move(item));
  cv_.NotifyAll();
  return true;
}

std::optional<PendingChunk> IngestQueue::PopBlocking() {
  const MutexLock lock(&mu_);
  while (true) {
    if (closed_) {
      // Drain semantics: remaining items flow out in order even when
      // paused; nullopt only once the queue is both closed and empty.
      if (items_.empty()) return std::nullopt;
      break;
    }
    if (!items_.empty() && !paused_) break;
    // CondVar::Wait returns void; the allow disarms a name collision with
    // the Status-returning CrhServer::Wait in the call-graph resolver.
    cv_.Wait(&mu_);  // analyzer:allow(status-path)
  }
  PendingChunk item = std::move(items_.front());
  items_.pop_front();
  return item;
}

void IngestQueue::SetPaused(bool paused) {
  const MutexLock lock(&mu_);
  paused_ = paused;
  cv_.NotifyAll();
}

void IngestQueue::Close() {
  const MutexLock lock(&mu_);
  closed_ = true;
  cv_.NotifyAll();
}

size_t IngestQueue::depth() const {
  const MutexLock lock(&mu_);
  return items_.size();
}

uint64_t IngestQueue::shed_count() const {
  const MutexLock lock(&mu_);
  return shed_;
}

bool IngestQueue::paused() const {
  const MutexLock lock(&mu_);
  return paused_;
}

}  // namespace crh
