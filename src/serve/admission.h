#ifndef CRH_SERVE_ADMISSION_H_
#define CRH_SERVE_ADMISSION_H_

/// \file admission.h
/// Bounded ingest admission control for the serving daemon.
///
/// Overload policy (docs/ROBUSTNESS.md): the ingest queue holds at most
/// `capacity` decoded chunks. Admission never blocks a connection thread —
/// when the queue is full the chunk is *shed*: the client gets an explicit
/// `overloaded` reply with a retry-after hint and the sequence number is
/// not consumed, so a well-behaved client re-sends the same chunk later
/// and nothing is lost or reordered. Queries are unaffected by ingest
/// pressure: they answer from the last published epoch snapshot and never
/// touch this queue. Shedding is deliberate load *rejection*, not
/// buffering: an unbounded queue would turn a slow solver into unbounded
/// memory growth and silently growing staleness.

#include <cstdint>
#include <deque>
#include <optional>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "stream/chunks.h"

namespace crh {

/// One admitted chunk awaiting the ingest thread.
struct PendingChunk {
  uint64_t seq = 0;
  DataChunk chunk;
};

/// MPSC bounded queue between connection handlers (producers) and the
/// ingest thread (single consumer). Producers never block; the consumer
/// blocks until an item arrives, the queue is paused off, or it is closed.
class IngestQueue {
 public:
  explicit IngestQueue(size_t capacity) : capacity_(capacity) {}

  /// Admits `item` unless the queue is full or closed; a full queue counts
  /// one shed and returns false (the caller replies `overloaded`).
  [[nodiscard]] bool TryPush(PendingChunk item) CRH_EXCLUDES(mu_);

  /// Blocks until an item is available (and the queue is not paused) or
  /// the queue is closed. After Close(), remaining items drain in order;
  /// nullopt means closed-and-empty, the consumer's signal to finish.
  std::optional<PendingChunk> PopBlocking() CRH_EXCLUDES(mu_);

  /// Pausing stops the consumer (items keep queueing until full) — the
  /// deterministic way to fill the queue in overload tests and to hold
  /// ingest during administrative operations. Close() overrides pause so a
  /// drain always completes.
  void SetPaused(bool paused) CRH_EXCLUDES(mu_);

  /// Rejects future pushes and lets PopBlocking drain what remains.
  void Close() CRH_EXCLUDES(mu_);

  size_t depth() const CRH_EXCLUDES(mu_);
  size_t capacity() const { return capacity_; }
  uint64_t shed_count() const CRH_EXCLUDES(mu_);
  bool paused() const CRH_EXCLUDES(mu_);

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<PendingChunk> items_ CRH_GUARDED_BY(mu_);
  bool closed_ CRH_GUARDED_BY(mu_) = false;
  bool paused_ CRH_GUARDED_BY(mu_) = false;
  uint64_t shed_ CRH_GUARDED_BY(mu_) = 0;
};

}  // namespace crh

#endif  // CRH_SERVE_ADMISSION_H_
