#ifndef CRH_SERVE_PROTOCOL_H_
#define CRH_SERVE_PROTOCOL_H_

/// \file protocol.h
/// The crh_serve wire protocol: newline-delimited flat JSON objects.
///
/// Each request is one line holding one JSON object; each reply is one
/// line holding one JSON object with at least an "ok" field. The protocol
/// deliberately supports only *flat* objects whose values are strings,
/// numbers, booleans, null, or one-level arrays of those scalars (the shape
/// weight/roster replies use) — because that is all truth/weight/status
/// traffic needs, and a ~200-line bounds-checked parser is auditable in a
/// way a vendored JSON library is not (no new dependencies, per the repo's
/// rules).
///
/// Parsing never trusts a length before checking the remaining bytes, the
/// same discipline as the checkpoint Cursor (stream/checkpoint.cc):
/// arbitrary input yields InvalidArgument, never a crash or
/// over-allocation. Doubles are printed with 17 significant digits, so a
/// value that round-trips through the protocol compares bitwise equal —
/// the serving chaos suite asserts byte-identity of queried truths and
/// weights across kill/resume cycles through exactly this path.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace crh {

/// Structural limits on one request, enforced during the parse on top of
/// the caller's whole-line `max_bytes` cap. Each violation is a typed
/// kOutOfRange (distinct from kInvalidArgument malformed-syntax errors),
/// so handlers and tests can tell "too big" from "garbage". The string cap
/// matches ServeOptions::max_request_bytes — an ingest request's "csv"
/// field may span the whole line; nothing legitimate is bigger.
inline constexpr size_t kMaxProtocolFields = 64;
inline constexpr size_t kMaxProtocolArrayItems = size_t{1} << 16;
inline constexpr size_t kMaxProtocolStringBytes = size_t{8} << 20;

/// One parsed JSON value: a scalar, or a flat array of scalars (one level,
/// no arrays-of-arrays — the only aggregate the protocol emits).
struct JsonValue {
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray };
  Kind kind = Kind::kNull;
  bool bool_value = false;
  int64_t int_value = 0;
  double double_value = 0;
  std::string string_value;
  /// Array elements (scalars only); meaningful only for kArray.
  std::vector<JsonValue> items;
};

/// One parsed flat JSON object. Field lookups are by exact key; typed
/// getters return InvalidArgument on a missing key or mismatched kind, so
/// request handlers stay one CRH_RETURN_NOT_OK per field.
class JsonObject {
 public:
  const JsonValue* Find(const std::string& key) const;
  bool Has(const std::string& key) const { return Find(key) != nullptr; }

  [[nodiscard]] Result<std::string> GetString(const std::string& key) const;
  /// Accepts kInt only (exact integers).
  [[nodiscard]] Result<int64_t> GetInt(const std::string& key) const;
  /// GetInt plus a non-negativity check.
  [[nodiscard]] Result<uint64_t> GetUint(const std::string& key) const;
  /// Accepts kInt and kDouble.
  [[nodiscard]] Result<double> GetDouble(const std::string& key) const;
  /// A flat array whose elements are all numbers (kInt or kDouble).
  [[nodiscard]] Result<std::vector<double>> GetDoubleArray(const std::string& key) const;
  /// A flat array whose elements are all strings.
  [[nodiscard]] Result<std::vector<std::string>> GetStringArray(
      const std::string& key) const;

  std::map<std::string, JsonValue> fields;
};

/// Parses one request line. Input beyond `max_bytes` is rejected before
/// any work happens (the server's request-size limit).
[[nodiscard]] Result<JsonObject> ParseJsonObject(std::string_view text,
                                                 size_t max_bytes);

/// Builds one flat JSON object line (no trailing newline). Keys are
/// emitted in insertion order; values are escaped per RFC 8259.
class JsonWriter {
 public:
  void AddString(const std::string& key, std::string_view value);
  void AddInt(const std::string& key, int64_t value);
  void AddUint(const std::string& key, uint64_t value);
  /// 17 significant digits: exact double round-trip.
  void AddDouble(const std::string& key, double value);
  void AddBool(const std::string& key, bool value);
  void AddNull(const std::string& key);
  void AddDoubleArray(const std::string& key, const std::vector<double>& values);
  void AddUintArray(const std::string& key, const std::vector<uint64_t>& values);
  void AddStringArray(const std::string& key, const std::vector<std::string>& values);

  std::string Finish() &&;

 private:
  void AddKey(const std::string& key);
  std::string out_ = "{";
  bool first_ = true;
};

/// Appends `value` JSON-escaped (quotes included) to `out`.
void AppendJsonString(std::string* out, std::string_view value);

/// Appends `value` formatted with 17 significant digits (round-trip exact;
/// NaN and infinities — unrepresentable in JSON — are emitted as null).
void AppendJsonDouble(std::string* out, double value);

}  // namespace crh

#endif  // CRH_SERVE_PROTOCOL_H_
