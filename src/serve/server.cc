#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/fault_injection.h"

namespace crh {
namespace {

/// A reply every handler failure path goes through, so error lines always
/// carry the same shape: {"ok":false,"error":code,"message":...}.
std::string ErrorReply(const std::string& code, const std::string& message) {
  JsonWriter writer;
  writer.AddBool("ok", false);
  writer.AddString("error", code);
  writer.AddString("message", message);
  return std::move(writer).Finish();
}

}  // namespace

std::vector<std::string> ServeFailPointSites() {
  return {
      "serve.socket", "serve.bind", "serve.listen",        "serve.accept",
      "serve.recv",   "serve.send", "serve.remove_socket", "serve.publish",
  };
}

CrhServer::CrhServer(const Dataset& universe, const IncrementalCrhOptions& options,
                     const StreamResilienceOptions& resilience, ServeOptions serve)
    : universe_(&universe),
      options_(options),
      resilience_(resilience),
      serve_(std::move(serve)),
      queue_(serve_.ingest_queue_capacity) {
  for (size_t i = 0; i < universe.num_objects(); ++i) {
    object_index_[universe.object_id(i)] = i;
  }
  for (size_t m = 0; m < universe.schema().num_properties(); ++m) {
    property_index_[universe.schema().property(m).name] = m;
  }
  for (size_t k = 0; k < universe.num_sources(); ++k) {
    source_index_[universe.source_id(k)] = k;
  }
}

CrhServer::~CrhServer() {
  if (started_) {
    RequestDrain();
    (void)Wait();  // lint:allow unchecked-status destructor cleanup
  }
}

Status CrhServer::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  auto engine = StreamEngine::Open(*universe_, options_, resilience_);
  if (!engine.ok()) return engine.status();
  engine_ = std::move(engine).ValueOrDie();
  codec_ = std::make_unique<ChunkCodec>(*universe_);
  // Epoch 0 is visible before the first chunk: a freshly started (or
  // freshly resumed) server answers queries immediately.
  PublishFromEngine();
  CRH_RETURN_NOT_OK(SetupSocket());
  started_ = true;
  ingest_ = std::thread(&CrhServer::IngestLoop, this);
  acceptor_ = std::thread(&CrhServer::AcceptLoop, this);
  return Status::OK();
}

Status CrhServer::SetupSocket() {
  if (serve_.socket_path.empty()) {
    return Status::InvalidArgument("ServeOptions::socket_path must be set");
  }
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (serve_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path exceeds the AF_UNIX limit of " +
                                   std::to_string(sizeof(addr.sun_path) - 1) +
                                   " bytes: " + serve_.socket_path);
  }
  std::memcpy(addr.sun_path, serve_.socket_path.c_str(), serve_.socket_path.size());

  if (::pipe(stop_pipe_) != 0) {
    return Status::IOError("pipe() failed: " + std::string(std::strerror(errno)));
  }
  CRH_FAIL_POINT("serve.remove_socket");
  // A stale socket file from a SIGKILLed predecessor must not block
  // restart; ENOENT on a clean start is the normal case.
  (void)::unlink(serve_.socket_path.c_str());
  CRH_FAIL_POINT("serve.socket");
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("socket() failed: " + std::string(std::strerror(errno)));
  }
  Status status = FailPoints::Instance().Hit("serve.bind");
  if (status.ok() &&
      ::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    status = Status::IOError("bind(" + serve_.socket_path +
                             ") failed: " + std::string(std::strerror(errno)));
  }
  if (status.ok()) status = FailPoints::Instance().Hit("serve.listen");
  if (status.ok() && ::listen(listen_fd_, 16) != 0) {
    status = Status::IOError("listen() failed: " + std::string(std::strerror(errno)));
  }
  if (!status.ok()) {
    TearDownSocket();
    return status;
  }
  return Status::OK();
}

void CrhServer::TearDownSocket() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : stop_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  if (!serve_.socket_path.empty()) {
    (void)::unlink(serve_.socket_path.c_str());
  }
}

Status CrhServer::Wait() {
  {
    MutexLock lock(&mu_);
    while (!finished_) finished_cv_.Wait(&mu_);
  }
  stop_.store(true, std::memory_order_release);
  if (stop_pipe_[1] >= 0) {
    const char byte = 'x';
    (void)!::write(stop_pipe_[1], &byte, 1);
  }
  if (acceptor_.joinable()) acceptor_.join();
  if (ingest_.joinable()) ingest_.join();
  // Connection threads observe stop_ within one poll interval.
  std::vector<std::thread> remaining;
  {
    MutexLock lock(&mu_);
    for (auto& [id, thread] : connections_) {
      (void)id;
      remaining.push_back(std::move(thread));
    }
    connections_.clear();
    finished_connection_ids_.clear();
  }
  for (std::thread& thread : remaining) {
    if (thread.joinable()) thread.join();
  }
  TearDownSocket();
  started_ = false;
  MutexLock lock(&mu_);
  return final_status_;
}

void CrhServer::RequestDrain() {
  draining_.store(true, std::memory_order_release);
  queue_.SetPaused(false);
  queue_.Close();
}

void CrhServer::RecordIngestFailure(const Status& status) {
  ingest_failed_.store(true, std::memory_order_release);
  MutexLock lock(&mu_);
  if (final_status_.ok()) final_status_ = status;
  last_error_ = status.ToString();
}

void CrhServer::IngestLoop() {
  while (true) {
    std::optional<PendingChunk> item = queue_.PopBlocking();
    if (!item.has_value()) break;  // closed and drained
    if (ingest_failed_.load(std::memory_order_acquire)) continue;  // discard
    const Status applied = ApplyAndPublish(item->chunk);
    if (!applied.ok()) RecordIngestFailure(applied);
  }
  if (!ingest_failed_.load(std::memory_order_acquire)) {
    // Graceful drain: one final checkpoint regardless of cadence, then one
    // final epoch so late status queries see last_checkpoint_chunks catch
    // up. A failed ingest skips both — its state is suspect.
    const Status final_checkpoint = engine_->WriteCheckpoint();
    if (!final_checkpoint.ok()) {
      RecordIngestFailure(final_checkpoint);
    } else {
      const Status publish = FailPoints::Instance().Hit("serve.publish");
      if (publish.ok()) {
        PublishFromEngine();
      } else {
        io_errors_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  MutexLock lock(&mu_);
  finished_ = true;
  finished_cv_.NotifyAll();
}

Status CrhServer::ApplyAndPublish(const DataChunk& chunk) {
  CRH_RETURN_NOT_OK(engine_->ApplyChunk(chunk, /*force_checkpoint=*/false));
  // Publication is the only step after a successful apply; a publish fail
  // point leaves readers one epoch behind (they catch up on the next
  // publish), it never unwinds the applied chunk.
  const Status publish = FailPoints::Instance().Hit("serve.publish");
  if (!publish.ok()) {
    io_errors_.fetch_add(1, std::memory_order_relaxed);
    MutexLock lock(&mu_);
    last_error_ = publish.ToString();
    return Status::OK();
  }
  PublishFromEngine();
  return Status::OK();
}

void CrhServer::PublishFromEngine() {
  publisher_.Publish(
      std::make_shared<const ServeSnapshot>(SnapshotFromEngine(*engine_, epoch_)));
  ++epoch_;
}

void CrhServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    ReapFinishedConnections();
    struct pollfd fds[3];
    nfds_t count = 0;
    fds[count].fd = stop_pipe_[0];
    fds[count].events = POLLIN;
    ++count;
    fds[count].fd = listen_fd_;
    fds[count].events = POLLIN;
    ++count;
    const bool watch_shutdown_fd =
        serve_.shutdown_fd >= 0 && !draining_.load(std::memory_order_acquire);
    if (watch_shutdown_fd) {
      fds[count].fd = serve_.shutdown_fd;
      fds[count].events = POLLIN;
      ++count;
    }
    const int rc = ::poll(fds, count, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if ((fds[0].revents & (POLLIN | POLLERR | POLLHUP)) != 0) break;  // stop pipe
    if (watch_shutdown_fd && (fds[2].revents & POLLIN) != 0) {
      // Consume the signalfd/pipe payload, then begin the drain. Queries
      // keep answering until the queue flushes and Wait() tears down.
      char buffer[128];
      (void)!::read(serve_.shutdown_fd, buffer, sizeof(buffer));
      RequestDrain();
    }
    if ((fds[1].revents & POLLIN) == 0) continue;

    const Status accept_status = FailPoints::Instance().Hit("serve.accept");
    if (!accept_status.ok()) {
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK &&
          errno != ECONNABORTED) {
        io_errors_.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    // Short receive slices let handlers re-check the stop flag and enforce
    // the request deadline; the send timeout bounds reply writes.
    struct timeval receive_slice;
    receive_slice.tv_sec = serve_.poll_interval_ms / 1000;
    receive_slice.tv_usec =
        static_cast<suseconds_t>(serve_.poll_interval_ms % 1000) * 1000;
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &receive_slice,
                       sizeof(receive_slice));
    struct timeval send_deadline;
    send_deadline.tv_sec = serve_.io_timeout_ms / 1000;
    send_deadline.tv_usec = static_cast<suseconds_t>(serve_.io_timeout_ms % 1000) * 1000;
    (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_deadline,
                       sizeof(send_deadline));

    bool at_limit = false;
    uint64_t id = 0;
    {
      MutexLock lock(&mu_);
      if (active_connections_ >= serve_.max_connections) {
        at_limit = true;
      } else {
        ++active_connections_;
        id = next_connection_id_++;
      }
    }
    if (at_limit) {
      // Accept-then-reject: the client learns why instead of waiting in the
      // listen backlog until its own deadline fires. The reply is sent with
      // no lock held (SendLine hits the serve.send fail point).
      (void)SendLine(fd, ErrorReply("busy", "connection limit reached; retry"));
      ::close(fd);
      continue;
    }
    MutexLock lock(&mu_);
    connections_.emplace(id, std::thread(&CrhServer::ConnectionThread, this, id, fd));
  }
}

void CrhServer::ReapFinishedConnections() {
  std::vector<std::thread> done;
  {
    MutexLock lock(&mu_);
    for (const uint64_t id : finished_connection_ids_) {
      auto it = connections_.find(id);
      if (it != connections_.end()) {
        done.push_back(std::move(it->second));
        connections_.erase(it);
      }
    }
    finished_connection_ids_.clear();
  }
  for (std::thread& thread : done) {
    if (thread.joinable()) thread.join();
  }
}

void CrhServer::ConnectionThread(uint64_t id, int fd) {
  ConnectionLoop(fd);
  ::close(fd);
  MutexLock lock(&mu_);
  --active_connections_;
  finished_connection_ids_.push_back(id);
}

void CrhServer::ConnectionLoop(int fd) {
  std::string buffer;
  int idle_ms = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    const size_t newline = buffer.find('\n');
    if (newline == std::string::npos) {
      if (buffer.size() > serve_.max_request_bytes) {
        (void)SendLine(fd, ErrorReply("bad_request", "request line too large"));
        return;
      }
      const Status receive_status = FailPoints::Instance().Hit("serve.recv");
      if (!receive_status.ok()) {
        io_errors_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n == 0) return;  // client closed
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          // One receive slice elapsed without bytes. The same budget bounds
          // a half-sent request (deadline reply) and a silent idle
          // connection (plain close): either way no handler slot is pinned
          // past io_timeout_ms without progress.
          idle_ms += serve_.poll_interval_ms;
          if (idle_ms >= serve_.io_timeout_ms) {
            if (!buffer.empty()) {
              (void)SendLine(fd, ErrorReply("deadline", "request read deadline exceeded"));
            }
            return;
          }
          continue;
        }
        if (errno == EINTR) continue;
        io_errors_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      idle_ms = 0;
      buffer.append(chunk, static_cast<size_t>(n));
      continue;
    }
    std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (!SendLine(fd, HandleRequestLine(line))) return;
  }
}

bool CrhServer::SendLine(int fd, const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  size_t offset = 0;
  while (offset < framed.size()) {
    const Status send_status = FailPoints::Instance().Hit("serve.send");
    if (!send_status.ok()) {
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    const ssize_t n =
        ::send(fd, framed.data() + offset, framed.size() - offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      // EAGAIN here is the send deadline (SO_SNDTIMEO) firing on a client
      // that stopped reading; drop it rather than pin the handler.
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    offset += static_cast<size_t>(n);
  }
  return true;
}

std::string CrhServer::HandleRequestLine(const std::string& line) {
  auto parsed = ParseJsonObject(line, serve_.max_request_bytes);
  if (!parsed.ok()) return ErrorReply("bad_request", parsed.status().message());
  auto cmd = parsed->GetString("cmd");
  if (!cmd.ok()) return ErrorReply("bad_request", cmd.status().message());
  const std::string& command = *cmd;
  if (command == "ping") {
    JsonWriter writer;
    writer.AddBool("ok", true);
    return std::move(writer).Finish();
  }
  if (command == "truth") return HandleTruth(*parsed);
  if (command == "weights") return HandleWeights();
  if (command == "source") return HandleSource(*parsed);
  if (command == "status") return HandleStatus();
  if (command == "ingest") return HandleIngest(*parsed);
  if (command == "pause_ingest" || command == "resume_ingest") {
    queue_.SetPaused(command == "pause_ingest");
    JsonWriter writer;
    writer.AddBool("ok", true);
    writer.AddBool("ingest_paused", queue_.paused());
    return std::move(writer).Finish();
  }
  if (command == "drain" || command == "shutdown") {
    RequestDrain();
    JsonWriter writer;
    writer.AddBool("ok", true);
    writer.AddBool("draining", true);
    return std::move(writer).Finish();
  }
  return ErrorReply("unknown_command", "unknown cmd '" + command + "'");
}

std::string CrhServer::HandleTruth(const JsonObject& request) {
  auto object = request.GetString("object");
  if (!object.ok()) return ErrorReply("bad_request", object.status().message());
  auto property = request.GetString("property");
  if (!property.ok()) return ErrorReply("bad_request", property.status().message());
  const auto object_it = object_index_.find(*object);
  if (object_it == object_index_.end()) {
    return ErrorReply("not_found", "unknown object '" + *object + "'");
  }
  const auto property_it = property_index_.find(*property);
  if (property_it == property_index_.end()) {
    return ErrorReply("not_found", "unknown property '" + *property + "'");
  }
  const std::shared_ptr<const ServeSnapshot> snapshot = publisher_.Current();
  if (snapshot == nullptr) return ErrorReply("not_ready", "no epoch published yet");
  const Value& value = snapshot->truths.Get(object_it->second, property_it->second);
  JsonWriter writer;
  writer.AddBool("ok", true);
  writer.AddUint("epoch", snapshot->epoch);
  if (value.is_missing()) {
    writer.AddNull("value");
  } else if (value.is_continuous()) {
    writer.AddDouble("value", value.continuous());
  } else if (value.category() == kInvalidCategory) {
    writer.AddNull("value");
  } else {
    writer.AddString("value", universe_->dict(property_it->second).label(value.category()));
  }
  return std::move(writer).Finish();
}

std::string CrhServer::HandleWeights() {
  const std::shared_ptr<const ServeSnapshot> snapshot = publisher_.Current();
  if (snapshot == nullptr) return ErrorReply("not_ready", "no epoch published yet");
  std::vector<std::string> sources;
  sources.reserve(universe_->num_sources());
  for (size_t k = 0; k < universe_->num_sources(); ++k) {
    sources.push_back(universe_->source_id(k));
  }
  JsonWriter writer;
  writer.AddBool("ok", true);
  writer.AddUint("epoch", snapshot->epoch);
  writer.AddStringArray("sources", sources);
  writer.AddDoubleArray("weights", snapshot->source_weights);
  return std::move(writer).Finish();
}

std::string CrhServer::HandleSource(const JsonObject& request) {
  auto source = request.GetString("source");
  if (!source.ok()) return ErrorReply("bad_request", source.status().message());
  const auto it = source_index_.find(*source);
  if (it == source_index_.end()) {
    return ErrorReply("not_found", "unknown source '" + *source + "'");
  }
  const std::shared_ptr<const ServeSnapshot> snapshot = publisher_.Current();
  if (snapshot == nullptr) return ErrorReply("not_ready", "no epoch published yet");
  const size_t k = it->second;
  double total = 0;
  for (const double w : snapshot->source_weights) total += w;
  JsonWriter writer;
  writer.AddBool("ok", true);
  writer.AddUint("epoch", snapshot->epoch);
  writer.AddDouble("weight", snapshot->source_weights[k]);
  // Confidence is the weight share: the paper's reliability normalized over
  // the roster, so values are comparable across epochs and datasets.
  writer.AddDouble("confidence", total > 0 ? snapshot->source_weights[k] / total : 0.0);
  writer.AddDouble("accumulated_deviation", snapshot->accumulated_deviations[k]);
  writer.AddUint("quarantined", snapshot->quarantined_per_source[k]);
  return std::move(writer).Finish();
}

std::string CrhServer::HandleStatus() {
  const std::shared_ptr<const ServeSnapshot> snapshot = publisher_.Current();
  if (snapshot == nullptr) return ErrorReply("not_ready", "no epoch published yet");
  JsonWriter writer;
  writer.AddBool("ok", true);
  writer.AddUint("epoch", snapshot->epoch);
  writer.AddUint("chunks_solved", snapshot->chunks_solved);
  writer.AddUint("next_seq", snapshot->next_seq);
  writer.AddUint("chunks_resumed", snapshot->chunks_resumed);
  writer.AddBool("resumed_from_fallback", snapshot->resumed_from_fallback);
  writer.AddUint("checkpoints_written", snapshot->checkpoints_written);
  writer.AddUint("last_checkpoint_chunks", snapshot->last_checkpoint_chunks);
  writer.AddUint("delta_entries_resolved", snapshot->delta_stats.entries_resolved);
  writer.AddUint("queue_depth", static_cast<uint64_t>(queue_.depth()));
  writer.AddUint("queue_capacity", static_cast<uint64_t>(queue_.capacity()));
  writer.AddUint("shed", queue_.shed_count());
  writer.AddBool("ingest_paused", queue_.paused());
  writer.AddBool("draining", draining_.load(std::memory_order_acquire));
  writer.AddBool("ingest_failed", ingest_failed_.load(std::memory_order_acquire));
  writer.AddUint("io_errors", io_errors_.load(std::memory_order_relaxed));
  {
    MutexLock lock(&mu_);
    writer.AddString("last_error", last_error_);
  }
  return std::move(writer).Finish();
}

std::string CrhServer::HandleIngest(const JsonObject& request) {
  if (codec_ == nullptr) return ErrorReply("not_ready", "server not started");
  if (draining_.load(std::memory_order_acquire)) {
    return ErrorReply("draining", "server is draining; ingest is closed");
  }
  if (ingest_failed_.load(std::memory_order_acquire)) {
    return ErrorReply("ingest_failed", "ingest stopped on a fatal error; see status");
  }
  auto seq = request.GetUint("seq");
  if (!seq.ok()) return ErrorReply("bad_request", seq.status().message());
  auto window_start = request.GetInt("window_start");
  if (!window_start.ok()) {
    return ErrorReply("bad_request", window_start.status().message());
  }
  auto csv = request.GetString("csv");
  if (!csv.ok()) return ErrorReply("bad_request", csv.status().message());

  // Quick sequence check before paying for the decode. next_enqueue_seq_
  // counts *admitted* chunks; a shed chunk does not consume its number.
  {
    MutexLock lock(&mu_);
    if (*seq > next_enqueue_seq_) {
      JsonWriter writer;
      writer.AddBool("ok", false);
      writer.AddString("error", "out_of_order");
      writer.AddUint("expected", next_enqueue_seq_);
      return std::move(writer).Finish();
    }
    if (*seq < next_enqueue_seq_) {
      JsonWriter writer;
      writer.AddBool("ok", true);
      writer.AddBool("duplicate", true);
      writer.AddUint("seq", *seq);
      return std::move(writer).Finish();
    }
  }

  auto chunk = codec_->Decode(*csv, *window_start, options_.quarantine_bad_claims);
  if (!chunk.ok()) return ErrorReply("bad_chunk", chunk.status().message());

  MutexLock lock(&mu_);
  // Re-check under the lock: another connection may have admitted this
  // sequence number while we were decoding.
  if (*seq != next_enqueue_seq_) {
    if (*seq < next_enqueue_seq_) {
      JsonWriter writer;
      writer.AddBool("ok", true);
      writer.AddBool("duplicate", true);
      writer.AddUint("seq", *seq);
      return std::move(writer).Finish();
    }
    JsonWriter writer;
    writer.AddBool("ok", false);
    writer.AddString("error", "out_of_order");
    writer.AddUint("expected", next_enqueue_seq_);
    return std::move(writer).Finish();
  }
  if (!queue_.TryPush(PendingChunk{*seq, std::move(chunk).ValueOrDie()})) {
    // Shed: explicit rejection plus a deterministic retry hint. The
    // sequence number is not consumed, so the retried chunk is not a
    // duplicate and the stream stays gapless.
    JsonWriter writer;
    writer.AddBool("ok", false);
    writer.AddString("error", "overloaded");
    writer.AddUint("retry_after_ms", serve_.shed_retry_after_ms);
    return std::move(writer).Finish();
  }
  ++next_enqueue_seq_;
  JsonWriter writer;
  writer.AddBool("ok", true);
  writer.AddUint("seq", *seq);
  writer.AddUint("queue_depth", static_cast<uint64_t>(queue_.depth()));
  return std::move(writer).Finish();
}

}  // namespace crh
