#ifndef CRH_SERVE_SERVER_H_
#define CRH_SERVE_SERVER_H_

/// \file server.h
/// The resident truth-serving daemon core (ROADMAP item 1).
///
/// CrhServer ties the pieces together around one StreamEngine:
///
///   * A Unix-domain stream socket speaking the newline-delimited JSON
///     protocol (serve/protocol.h): truth/weight/confidence lookups, a
///     /healthz-style `status` command, chunk ingest, and admin commands.
///   * A single ingest thread that drains the bounded admission queue
///     (serve/admission.h), applies each chunk through the engine (delta
///     re-solve + checkpoints), and publishes an immutable epoch snapshot
///     (serve/snapshot.h) after every chunk. Query handlers answer from
///     the last published epoch and never block on solver iterations.
///   * Overload protection: a full queue sheds the ingest with an explicit
///     `overloaded` + retry-after reply; queries are unaffected.
///   * Deadlines: per-connection read deadlines (a stalled or slow-writing
///     client is disconnected, never allowed to pin a handler) and send
///     timeouts on replies.
///   * Graceful drain: SIGTERM (via `ServeOptions::shutdown_fd`), or the
///     `drain`/`shutdown` commands, stop admission, flush the queue,
///     write a final checkpoint and let Wait() return; a SIGKILL at any
///     moment instead is recovered by restarting with resume — the chaos
///     suite (tests/serve_chaos_test.cc) proves the resumed server's
///     truths and weights are byte-identical to an uninterrupted run.
///
/// Every raw socket operation sits behind a fail-point site (accept, recv,
/// send, publish, socket setup) registered in ServeFailPointSites(), so
/// fault sweeps can force each server I/O failure path, and the chaos
/// suite can kill the daemon at exact, deterministic moments.
///
/// Ingest sequencing: chunks carry explicit sequence numbers starting at 0.
/// After a restart the server expects sequence 0 again — clients replay the
/// stream from the start and the engine absorbs already-covered chunks as
/// cheap replays (see stream/stream_engine.h). Replies tell the client the
/// expected sequence on any mismatch, so at-least-once delivery converges.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "serve/admission.h"
#include "serve/chunk_codec.h"
#include "serve/protocol.h"
#include "serve/snapshot.h"
#include "stream/stream_engine.h"

namespace crh {

/// Server-specific knobs (solver behavior comes from IncrementalCrhOptions,
/// durability from StreamResilienceOptions).
struct ServeOptions {
  /// Path of the Unix-domain listening socket. A stale file from a killed
  /// predecessor is removed at startup.
  std::string socket_path;
  /// Bounded ingest queue capacity; a full queue sheds (overload policy).
  size_t ingest_queue_capacity = 8;
  /// Deterministic retry-after hint returned with `overloaded` replies.
  uint64_t shed_retry_after_ms = 50;
  /// Per-connection deadline: a request that has not completed (read or
  /// reply write) within this budget disconnects the client. Idle
  /// connections are closed on the same budget.
  int io_timeout_ms = 5000;
  /// Granularity at which blocked reads re-check the stop flag.
  int poll_interval_ms = 200;
  /// Maximum request line size (ingest CSV payloads included).
  size_t max_request_bytes = 8u << 20;
  /// Concurrent connections beyond this are answered `busy` and closed.
  int max_connections = 8;
  /// Optional: a readable fd (signalfd, pipe) that triggers a graceful
  /// drain, letting main() translate SIGTERM without any global state.
  /// Not owned; -1 disables.
  int shutdown_fd = -1;
};

/// Fail-point sites of the serving layer, for fault sweeps and the
/// analyzer's coverage check.
std::vector<std::string> ServeFailPointSites();

class CrhServer {
 public:
  /// `universe` must outlive the server: it defines the entry space
  /// (objects, sources, schema, dictionaries) truths are maintained and
  /// served in.
  CrhServer(const Dataset& universe, const IncrementalCrhOptions& options,
            const StreamResilienceOptions& resilience, ServeOptions serve);
  ~CrhServer();

  CrhServer(const CrhServer&) = delete;
  CrhServer& operator=(const CrhServer&) = delete;

  /// Opens the engine (resuming from the newest checkpoint when asked),
  /// publishes epoch 0, binds the socket and starts the acceptor and
  /// ingest threads. On error nothing is left running.
  [[nodiscard]] Status Start();

  /// Blocks until a drain completes (SIGTERM via shutdown_fd, or a
  /// `drain`/`shutdown` command), then stops the acceptor, joins every
  /// thread and removes the socket. Returns the first fatal ingest error,
  /// or OK for a clean drain.
  [[nodiscard]] Status Wait();

  /// Initiates a graceful drain: admission stops, queued chunks flush,
  /// a final checkpoint is written, Wait() returns. Idempotent.
  void RequestDrain();

  /// Handles one protocol request line and returns the reply line (no
  /// trailing newline). Public as the unit-test surface: everything the
  /// socket path does beyond this is framing and I/O.
  std::string HandleRequestLine(const std::string& line);

  /// The publication point, exposed for the concurrent-reader race test.
  const SnapshotPublisher& publisher() const { return publisher_; }

 private:
  void AcceptLoop();
  void ConnectionThread(uint64_t id, int fd);
  void ConnectionLoop(int fd);
  void IngestLoop();
  /// Applies one chunk and publishes the next epoch. A publish fail point
  /// failure leaves readers on the previous epoch (they catch up with the
  /// next publish); an apply failure is fatal for ingest.
  [[nodiscard]] Status ApplyAndPublish(const DataChunk& chunk);
  void PublishFromEngine();
  [[nodiscard]] Status SetupSocket();
  void TearDownSocket();
  /// Writes `line` + '\n', honoring the send fail point and send timeout.
  bool SendLine(int fd, const std::string& line);
  /// Joins connection threads that have signalled completion.
  void ReapFinishedConnections();
  void RecordIngestFailure(const Status& status) CRH_EXCLUDES(mu_);

  std::string HandleTruth(const JsonObject& request);
  std::string HandleWeights();
  std::string HandleSource(const JsonObject& request);
  std::string HandleStatus();
  std::string HandleIngest(const JsonObject& request);

  const Dataset* universe_;
  IncrementalCrhOptions options_;
  StreamResilienceOptions resilience_;
  ServeOptions serve_;

  std::unique_ptr<StreamEngine> engine_;  ///< Ingest thread only after Start.
  std::unique_ptr<ChunkCodec> codec_;
  std::map<std::string, size_t> object_index_;
  std::map<std::string, size_t> property_index_;
  std::map<std::string, size_t> source_index_;

  IngestQueue queue_;
  SnapshotPublisher publisher_;
  uint64_t epoch_ = 0;  ///< Ingest thread only.

  std::atomic<bool> stop_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> ingest_failed_{false};
  std::atomic<uint64_t> io_errors_{0};

  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  bool started_ = false;
  std::thread acceptor_;
  std::thread ingest_;

  mutable Mutex mu_;
  CondVar finished_cv_;
  std::map<uint64_t, std::thread> connections_ CRH_GUARDED_BY(mu_);
  std::vector<uint64_t> finished_connection_ids_ CRH_GUARDED_BY(mu_);
  uint64_t next_connection_id_ CRH_GUARDED_BY(mu_) = 0;
  int active_connections_ CRH_GUARDED_BY(mu_) = 0;
  uint64_t next_enqueue_seq_ CRH_GUARDED_BY(mu_) = 0;
  bool finished_ CRH_GUARDED_BY(mu_) = false;
  Status final_status_ CRH_GUARDED_BY(mu_);
  std::string last_error_ CRH_GUARDED_BY(mu_);
};

}  // namespace crh

#endif  // CRH_SERVE_SERVER_H_
