#ifndef CRH_DATA_CATEGORY_DICT_H_
#define CRH_DATA_CATEGORY_DICT_H_

/// \file category_dict.h
/// String-label interning for categorical properties.
///
/// Categorical observations are stored as dense CategoryIds local to their
/// property. The CategoryDict maps labels <-> ids; keeping ids dense lets
/// the solver represent probability vectors (Eq 11-12 of the paper) as
/// plain arrays indexed by CategoryId.

#include <string>
#include <unordered_map>
#include <vector>

#include "common/value.h"

namespace crh {

/// Bidirectional label <-> CategoryId map for one categorical property.
class CategoryDict {
 public:
  /// Returns the id of \p label, interning it if new.
  CategoryId GetOrAdd(const std::string& label) {
    auto it = index_.find(label);
    if (it != index_.end()) return it->second;
    CategoryId id = static_cast<CategoryId>(labels_.size());
    index_.emplace(label, id);
    labels_.push_back(label);
    return id;
  }

  /// Returns the id of \p label, or kInvalidCategory if not interned.
  CategoryId Find(const std::string& label) const {
    auto it = index_.find(label);
    return it == index_.end() ? kInvalidCategory : it->second;
  }

  /// The label for an interned id. Precondition: 0 <= id < size().
  const std::string& label(CategoryId id) const {
    return labels_[static_cast<size_t>(id)];
  }

  /// Number of distinct labels (L_m in the paper).
  size_t size() const { return labels_.size(); }

  bool empty() const { return labels_.empty(); }

 private:
  std::vector<std::string> labels_;
  std::unordered_map<std::string, CategoryId> index_;
};

}  // namespace crh

#endif  // CRH_DATA_CATEGORY_DICT_H_
