#ifndef CRH_DATA_STATS_H_
#define CRH_DATA_STATS_H_

/// \file stats.h
/// Per-entry dispersion statistics across sources.
///
/// The paper's continuous loss functions (Eq 13 and Eq 15) and the MNAD
/// metric normalize each entry's deviation by the standard deviation of
/// the K sources' claims on that entry, so that properties measured on
/// different scales (temperatures vs trading volumes) contribute
/// comparably to the weight update (Section 2.5, "Normalization").

#include <vector>

#include "common/check.h"
#include "data/dataset.h"

namespace crh {

/// Per-entry normalization scales, row-major over (object, property).
struct EntryStats {
  size_t num_properties = 0;
  /// scale[i*M + m] is the standard deviation of the non-missing claims on
  /// entry (i, m) for continuous properties. Entries with no dispersion of
  /// their own (fewer than two claims, or all sources agreeing) fall back
  /// to the property's mean claim dispersion — otherwise a lone glitched
  /// claim would be charged in raw units and dominate every aggregate.
  /// Categorical entries get scale 1.
  std::vector<double> scale;
  /// count[i*M + m] is the number of sources with a claim on entry (i, m).
  std::vector<int> count;

  double scale_at(size_t i, size_t m) const {
    CRH_DCHECK_LT(i * num_properties + m, scale.size());
    return scale[i * num_properties + m];
  }
  int count_at(size_t i, size_t m) const {
    CRH_DCHECK_LT(i * num_properties + m, count.size());
    return count[i * num_properties + m];
  }
};

/// Computes per-entry scales and observation counts for a dataset.
EntryStats ComputeEntryStats(const Dataset& data);

}  // namespace crh

#endif  // CRH_DATA_STATS_H_
