#ifndef CRH_DATA_TABLE_H_
#define CRH_DATA_TABLE_H_

/// \file table.h
/// Dense N x M value tables with missing cells.
///
/// One ValueTable holds either the observations of a single source over all
/// objects and properties (X^(k) in the paper) or a truth table (X^(*)).
/// Missing observations are first-class: a cell defaults to Value::Missing()
/// and all downstream computations skip missing cells.

#include <cstddef>
#include <vector>

#include "common/check.h"
#include "common/value.h"

namespace crh {

/// A dense table of Values over (object, property) cells.
class ValueTable {
 public:
  ValueTable() = default;

  /// Creates a table of num_objects x num_properties missing cells.
  ValueTable(size_t num_objects, size_t num_properties)
      : num_objects_(num_objects),
        num_properties_(num_properties),
        cells_(num_objects * num_properties) {}

  /// Number of objects (rows, N).
  size_t num_objects() const { return num_objects_; }
  /// Number of properties (columns, M).
  size_t num_properties() const { return num_properties_; }

  /// The cell for object i, property m.
  const Value& Get(size_t i, size_t m) const {
    CRH_DCHECK_LT(i, num_objects_);
    CRH_DCHECK_LT(m, num_properties_);
    return cells_[i * num_properties_ + m];
  }

  /// Sets the cell for object i, property m.
  void Set(size_t i, size_t m, Value v) {
    CRH_DCHECK_LT(i, num_objects_);
    CRH_DCHECK_LT(m, num_properties_);
    cells_[i * num_properties_ + m] = v;
  }

  /// Marks the cell missing.
  void Clear(size_t i, size_t m) {
    CRH_DCHECK_LT(i, num_objects_);
    CRH_DCHECK_LT(m, num_properties_);
    cells_[i * num_properties_ + m] = Value::Missing();
  }

  /// Number of non-missing cells (observations this table contributes).
  size_t CountPresent() const {
    size_t n = 0;
    for (const Value& v : cells_) {
      if (!v.is_missing()) ++n;
    }
    return n;
  }

  /// Flat row-major cell storage, for bulk scans.
  const std::vector<Value>& cells() const { return cells_; }

 private:
  size_t num_objects_ = 0;
  size_t num_properties_ = 0;
  std::vector<Value> cells_;
};

}  // namespace crh

#endif  // CRH_DATA_TABLE_H_
