#include "data/stats.h"

#include <cmath>

namespace crh {

EntryStats ComputeEntryStats(const Dataset& data) {
  const size_t n = data.num_objects();
  const size_t m_props = data.num_properties();
  const size_t k_sources = data.num_sources();

  EntryStats stats;
  stats.num_properties = m_props;
  stats.scale.assign(n * m_props, 1.0);
  stats.count.assign(n * m_props, 0);

  for (size_t i = 0; i < n; ++i) {
    for (size_t m = 0; m < m_props; ++m) {
      const size_t idx = i * m_props + m;
      int count = 0;
      double sum = 0.0, sum_sq = 0.0;
      const bool continuous = data.schema().is_continuous(m);
      for (size_t k = 0; k < k_sources; ++k) {
        const Value& v = data.observations(k).Get(i, m);
        if (v.is_missing()) continue;
        ++count;
        if (continuous) {
          sum += v.continuous();
          sum_sq += v.continuous() * v.continuous();
        }
      }
      stats.count[idx] = count;
      if (continuous) {
        double sd = 0.0;
        if (count >= 2) {
          const double mean = sum / count;
          // Population variance; the paper's std(v^1..v^K) over claims.
          double var = sum_sq / count - mean * mean;
          if (var < 0) var = 0;  // numerical guard
          sd = std::sqrt(var);
        }
        stats.scale[idx] = sd;  // 0 marks "no dispersion available"
      }
    }
  }

  // Degenerate continuous entries — a single claim, or all sources in
  // perfect agreement — have no per-entry dispersion. Normalizing them by
  // 1.0 would let one raw-unit glitch (say, a lone fnlwgt claim off by 1e5)
  // dominate every aggregate, so fall back to the property's typical claim
  // dispersion; only when the whole property is degenerate use 1.0.
  for (size_t m = 0; m < m_props; ++m) {
    if (!data.schema().is_continuous(m)) continue;
    double total = 0.0;
    size_t valid = 0;
    for (size_t i = 0; i < n; ++i) {
      const double sd = stats.scale[i * m_props + m];
      if (sd > 1e-12) {
        total += sd;
        ++valid;
      }
    }
    const double fallback = valid > 0 ? total / static_cast<double>(valid) : 1.0;
    for (size_t i = 0; i < n; ++i) {
      double& sd = stats.scale[i * m_props + m];
      if (sd <= 1e-12) sd = fallback;
    }
  }
  return stats;
}

}  // namespace crh
