#ifndef CRH_DATA_CSV_H_
#define CRH_DATA_CSV_H_

/// \file csv.h
/// CSV import/export of multi-source observation tuples.
///
/// The on-disk format mirrors the tuple stream the paper's parallel CRH
/// consumes (Section 2.7.1): one claim per row,
///
///   object_id,property,source_id,value
///
/// with a header row. Continuous values are decimal literals; categorical
/// values are labels interned into the dataset's per-property dictionary.
/// Ground truth uses the same format minus the source_id column.
///
/// Quoting follows RFC 4180: fields containing commas, quotes or line
/// breaks are written wrapped in double quotes with embedded quotes
/// doubled, and the readers accept such fields. Malformed *content* —
/// wrong field counts, unknown properties, unterminated quotes, overlong
/// lines, non-numeric continuous cells — is rejected with
/// StatusCode::kInvalidArgument; kIOError is reserved for file-system
/// failures (unopenable or unreadable files, failed writes).
///
/// Every entry point has an iostream overload so in-memory data (tests,
/// fuzzing harnesses, network buffers) can skip the filesystem.
///
/// The path-based overloads are fail-point instrumented (see
/// common/fault_injection.h and CsvFailPointSites) so robustness tests can
/// force each file-system failure; callers needing resilience against
/// transient failures wrap them in RetryWithBackoff, as tools/cli.cc does.

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace crh {

/// Writes all non-missing observations of \p data as claim tuples.
[[nodiscard]] Status WriteObservationsCsv(const Dataset& data, const std::string& path);
[[nodiscard]] Status WriteObservationsCsv(const Dataset& data, std::ostream& out);

/// Writes the labeled ground-truth entries of \p data (requires ground truth).
[[nodiscard]] Status WriteGroundTruthCsv(const Dataset& data, const std::string& path);
[[nodiscard]] Status WriteGroundTruthCsv(const Dataset& data, std::ostream& out);

/// Reads claim tuples into a new Dataset with the given schema. Objects and
/// sources are created in order of first appearance; categorical labels are
/// interned per property. Rows naming a property absent from the schema are
/// an error.
[[nodiscard]] Result<Dataset> ReadObservationsCsv(const Schema& schema, const std::string& path);
[[nodiscard]] Result<Dataset> ReadObservationsCsv(const Schema& schema, std::istream& in);

/// Reads ground-truth rows (object_id,property,value) into \p data. Objects
/// named here must already exist in the dataset.
[[nodiscard]] Status ReadGroundTruthCsv(const std::string& path, Dataset* data);
[[nodiscard]] Status ReadGroundTruthCsv(std::istream& in, Dataset* data);

/// Every fail-point site the path-based CSV entry points can hit, for
/// exhaustive fault-injection sweeps.
std::vector<std::string> CsvFailPointSites();

}  // namespace crh

#endif  // CRH_DATA_CSV_H_
