#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace crh {

Dataset::Dataset(Schema schema, std::vector<std::string> object_ids,
                 std::vector<std::string> source_ids)
    : schema_(std::move(schema)),
      object_ids_(std::move(object_ids)),
      source_ids_(std::move(source_ids)) {
  observations_.assign(source_ids_.size(),
                       ValueTable(object_ids_.size(), schema_.num_properties()));
  dicts_.assign(schema_.num_properties(), CategoryDict());
}

size_t Dataset::num_observations() const {
  size_t total = 0;
  for (const ValueTable& t : observations_) total += t.CountPresent();
  return total;
}

Status Dataset::set_timestamps(std::vector<int64_t> timestamps) {
  if (timestamps.size() != num_objects()) {
    return Status::InvalidArgument("timestamps size must equal num_objects");
  }
  timestamps_ = std::move(timestamps);
  return Status::OK();
}

std::vector<int64_t> Dataset::DistinctTimestamps() const {
  std::set<int64_t> distinct(timestamps_.begin(), timestamps_.end());
  return std::vector<int64_t>(distinct.begin(), distinct.end());
}

namespace {

Status CheckTable(const Dataset& data, const ValueTable& table, const char* what) {
  const Schema& schema = data.schema();
  if (table.num_objects() != data.num_objects() ||
      table.num_properties() != data.num_properties()) {
    return Status::Internal(std::string(what) + " table shape mismatch");
  }
  for (size_t i = 0; i < table.num_objects(); ++i) {
    for (size_t m = 0; m < table.num_properties(); ++m) {
      const Value& v = table.Get(i, m);
      if (v.is_missing()) continue;
      if (schema.is_discrete(m)) {
        if (!v.is_categorical()) {
          return Status::Internal(std::string(what) + ": continuous value in categorical property '" +
                                  schema.property(m).name + "'");
        }
        if (v.category() < 0 ||
            static_cast<size_t>(v.category()) >= std::max<size_t>(data.dict(m).size(), 1)) {
          return Status::Internal(std::string(what) + ": category id out of dictionary range in '" +
                                  schema.property(m).name + "'");
        }
      } else {
        if (!v.is_continuous()) {
          return Status::Internal(std::string(what) + ": categorical value in continuous property '" +
                                  schema.property(m).name + "'");
        }
        if (!std::isfinite(v.continuous())) {
          return Status::Internal(std::string(what) + ": non-finite value in '" +
                                  schema.property(m).name + "'");
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status Dataset::Validate() const {
  if (observations_.size() != num_sources()) {
    return Status::Internal("observation table count != num_sources");
  }
  if (dicts_.size() != num_properties()) {
    return Status::Internal("dictionary count != num_properties");
  }
  for (size_t k = 0; k < num_sources(); ++k) {
    CRH_RETURN_NOT_OK(CheckTable(*this, observations_[k], "observation"));
  }
  if (has_ground_truth()) {
    CRH_RETURN_NOT_OK(CheckTable(*this, *ground_truth_, "ground-truth"));
  }
  if (!timestamps_.empty() && timestamps_.size() != num_objects()) {
    return Status::Internal("timestamps size != num_objects");
  }
  return Status::OK();
}

}  // namespace crh
