#ifndef CRH_DATA_CLAIM_INDEX_H_
#define CRH_DATA_CLAIM_INDEX_H_

/// \file claim_index.h
/// Claim-major inverted index over a multi-source dataset.
///
/// The complexity claim of the paper (Section 2.5) is that one CRH
/// iteration is linear in the number of *observed* claims, yet the Dataset
/// container stores K dense N x M tables — so any per-entry computation
/// that walks the tables scans all K sources even when most cells are
/// missing. The ClaimIndex is the sparse view that restores the paper's
/// bound: a CSR-style index that stores, per (object, property) entry, the
/// compact list of (source, value) claims.
///
/// Layout (classic compressed-sparse-row over entry id e = i * M + m):
///
///   offsets_[e] .. offsets_[e+1]   the claim range of entry e
///   sources_[c]                    claiming source of claim c (ascending
///                                  per entry, so iteration order matches
///                                  a dense K-scan exactly)
///   values_[c]                     the claimed Value
///
/// Build cost is two dense passes (one count, one fill) — paid once per
/// solver run instead of once per entry per iteration. All accessors are
/// const and the index is immutable after Build, so concurrent readers
/// need no synchronization. The index is a snapshot: observations recorded
/// on the Dataset after Build are not reflected.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/value.h"
#include "data/dataset.h"

namespace crh {

/// Borrowed view of one entry's claims; valid while the index lives.
struct ClaimSpan {
  const uint32_t* sources = nullptr;
  const Value* values = nullptr;
  size_t size = 0;

  bool empty() const { return size == 0; }
};

/// Immutable claim-major index over one Dataset. Cheap to move.
class ClaimIndex {
 public:
  ClaimIndex() = default;

  /// Builds the index from the dataset's observation tables.
  static ClaimIndex Build(const Dataset& data);

  size_t num_objects() const { return num_objects_; }
  size_t num_properties() const { return num_properties_; }
  /// Number of (object, property) entries (N * M).
  size_t num_entries() const { return num_objects_ * num_properties_; }
  /// Total non-missing claims across all sources and entries.
  size_t num_claims() const { return values_.size(); }

  /// The claims on entry id e = i * num_properties + m.
  ClaimSpan entry(size_t e) const {
    CRH_DCHECK_LT(e + 1, offsets_.size());
    const size_t begin = offsets_[e];
    return {sources_.data() + begin, values_.data() + begin, offsets_[e + 1] - begin};
  }

  /// The claims on entry (object i, property m).
  ClaimSpan entry(size_t i, size_t m) const {
    CRH_DCHECK_LT(i, num_objects_);
    CRH_DCHECK_LT(m, num_properties_);
    return entry(i * num_properties_ + m);
  }

 private:
  size_t num_objects_ = 0;
  size_t num_properties_ = 0;
  std::vector<size_t> offsets_;    // num_entries() + 1
  std::vector<uint32_t> sources_;  // ascending within each entry
  std::vector<Value> values_;
};

}  // namespace crh

#endif  // CRH_DATA_CLAIM_INDEX_H_
