#ifndef CRH_DATA_CLAIM_INDEX_H_
#define CRH_DATA_CLAIM_INDEX_H_

/// \file claim_index.h
/// Claim-major inverted index over a multi-source dataset.
///
/// The complexity claim of the paper (Section 2.5) is that one CRH
/// iteration is linear in the number of *observed* claims, yet the Dataset
/// container stores K dense N x M tables — so any per-entry computation
/// that walks the tables scans all K sources even when most cells are
/// missing. The ClaimIndex is the sparse view that restores the paper's
/// bound: a CSR-style index that stores, per (object, property) entry, the
/// compact list of (source, value) claims.
///
/// Layout (classic compressed-sparse-row over entry id e = i * M + m),
/// structure-of-arrays so the solver kernels stream each lane they need:
///
///   offsets_[e] .. offsets_[e+1]   the claim range of entry e
///   sources_[c]                    claiming source of claim c (ascending
///                                  per entry, so iteration order matches
///                                  a dense K-scan exactly)
///   values_[c]                     the claimed Value (tagged union)
///   numeric_[c]                    the claim as a double (continuous
///                                  claims only; NaN otherwise)
///   labels_[c]                     the claim as a CategoryId (categorical
///                                  and text claims; kInvalidCategory
///                                  otherwise)
///
/// The numeric_ / labels_ lanes duplicate values_ in unboxed form: the
/// truth and deviation kernels read one contiguous double (or int32) array
/// per entry instead of gathering through the 16-byte tagged union, which
/// keeps their inner loops branchless and auto-vectorizable (see
/// docs/PERFORMANCE.md, "Structure-of-arrays claim lanes").
///
/// Build cost is two dense passes (one count, one fill) — paid once per
/// solver run instead of once per entry per iteration. All accessors are
/// const, so concurrent readers need no synchronization. The index is a
/// snapshot: observations recorded on the Dataset after Build are not
/// reflected. For streaming callers, CreateEmpty + Append grow one
/// cumulative index chunk by chunk instead of rebuilding from scratch
/// (amortized span extension; see Append).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/value.h"
#include "data/dataset.h"

namespace crh {

/// Borrowed view of one entry's claims; valid while the index lives and
/// until the next Append. `numeric` and `labels` are the unboxed lanes of
/// `values` (see file comment).
struct ClaimSpan {
  const uint32_t* sources = nullptr;
  const Value* values = nullptr;
  const double* numeric = nullptr;
  const CategoryId* labels = nullptr;
  size_t size = 0;

  bool empty() const { return size == 0; }
};

/// Claim-major index over one Dataset (or a stream of chunks sharing one
/// entry grid). Cheap to move. Immutable through the const accessors;
/// Append is the only mutator and invalidates outstanding ClaimSpans.
class ClaimIndex {
 public:
  ClaimIndex() = default;

  /// Builds the index from the dataset's observation tables.
  static ClaimIndex Build(const Dataset& data);

  /// An empty index over a fixed N x M entry grid, ready for Append. The
  /// streaming (I-CRH) drivers use this to accumulate chunk claims in the
  /// parent dataset's entry space.
  static ClaimIndex CreateEmpty(size_t num_objects, size_t num_properties);

  /// Appends every claim of \p chunk, mapping chunk object i to parent
  /// object parent_object[i] (stream/chunks.h invariant: the chunk shares
  /// the parent's schema, sources and dictionaries). Existing entry spans
  /// are extended in place with the merged-by-source order a full rebuild
  /// would produce, so an appended index is claim-for-claim identical to
  /// Build over the union dataset (asserted in claim_index_test.cc).
  ///
  /// Cost: O(num_entries + claims_so_far + chunk claims) moves per call —
  /// the CSR offset table is rebuilt and shifted spans slide right — with
  /// geometric array growth, versus the O(K * N * M) dense rescan of a
  /// full rebuild. A source may claim an entry at most once across all
  /// appends (checked): duplicate (entry, source) pairs would make the
  /// union dataset ill-defined.
  void Append(const Dataset& chunk, const std::vector<size_t>& parent_object);

  size_t num_objects() const { return num_objects_; }
  size_t num_properties() const { return num_properties_; }
  /// Number of (object, property) entries (N * M).
  size_t num_entries() const { return num_objects_ * num_properties_; }
  /// Total non-missing claims across all sources and entries.
  size_t num_claims() const { return values_.size(); }
  /// Largest claim count any entry has (0 for an empty index). Maintained
  /// incrementally so scratch sizing is O(1), not an index scan.
  size_t max_span_size() const { return max_span_size_; }

  /// The claims on entry id e = i * num_properties + m.
  ClaimSpan entry(size_t e) const {
    CRH_DCHECK_LT(e + 1, offsets_.size());
    const size_t begin = offsets_[e];
    return {sources_.data() + begin, values_.data() + begin, numeric_.data() + begin,
            labels_.data() + begin, offsets_[e + 1] - begin};
  }

  /// The claims on entry (object i, property m).
  ClaimSpan entry(size_t i, size_t m) const {
    CRH_DCHECK_LT(i, num_objects_);
    CRH_DCHECK_LT(m, num_properties_);
    return entry(i * num_properties_ + m);
  }

 private:
  size_t num_objects_ = 0;
  size_t num_properties_ = 0;
  size_t max_span_size_ = 0;
  std::vector<size_t> offsets_;     // num_entries() + 1
  std::vector<uint32_t> sources_;   // ascending within each entry
  std::vector<Value> values_;
  std::vector<double> numeric_;     // unboxed continuous lane (NaN elsewhere)
  std::vector<CategoryId> labels_;  // unboxed label lane (kInvalidCategory elsewhere)
};

}  // namespace crh

#endif  // CRH_DATA_CLAIM_INDEX_H_
