#include "data/claim_index.h"

#include <limits>

namespace crh {

ClaimIndex ClaimIndex::Build(const Dataset& data) {
  ClaimIndex index;
  index.num_objects_ = data.num_objects();
  index.num_properties_ = data.num_properties();
  const size_t num_entries = index.num_entries();
  const size_t k_sources = data.num_sources();
  CRH_CHECK_LE(k_sources, size_t{std::numeric_limits<uint32_t>::max()});

  // Pass 1: claims per entry. Table cells are row-major over (i, m), so a
  // flat cell index IS the entry id.
  std::vector<size_t> counts(num_entries, 0);
  for (size_t k = 0; k < k_sources; ++k) {
    const std::vector<Value>& cells = data.observations(k).cells();
    CRH_DCHECK_EQ(cells.size(), num_entries);
    for (size_t e = 0; e < num_entries; ++e) {
      if (!cells[e].is_missing()) ++counts[e];
    }
  }

  index.offsets_.assign(num_entries + 1, 0);
  for (size_t e = 0; e < num_entries; ++e) {
    index.offsets_[e + 1] = index.offsets_[e] + counts[e];
  }
  const size_t num_claims = index.offsets_[num_entries];
  index.sources_.resize(num_claims);
  index.values_.resize(num_claims);

  // Pass 2: fill. Iterating k ascending in the outer loop leaves each
  // entry's claims sorted by source id, matching a dense K-scan's order.
  std::vector<size_t> cursor = index.offsets_;  // drops the trailing total
  for (size_t k = 0; k < k_sources; ++k) {
    const std::vector<Value>& cells = data.observations(k).cells();
    for (size_t e = 0; e < num_entries; ++e) {
      if (cells[e].is_missing()) continue;
      const size_t at = cursor[e]++;
      index.sources_[at] = static_cast<uint32_t>(k);
      index.values_[at] = cells[e];
    }
  }
  return index;
}

}  // namespace crh
