#include "data/claim_index.h"

#include <algorithm>
#include <limits>

namespace crh {
namespace {

// Unboxed lane values for one claim (see the header's layout comment).
double NumericLane(const Value& v) {
  return v.is_continuous() ? v.continuous() : std::numeric_limits<double>::quiet_NaN();
}

CategoryId LabelLane(const Value& v) {
  return v.is_categorical() ? v.category() : kInvalidCategory;
}

}  // namespace

ClaimIndex ClaimIndex::Build(const Dataset& data) {
  ClaimIndex index;
  index.num_objects_ = data.num_objects();
  index.num_properties_ = data.num_properties();
  const size_t num_entries = index.num_entries();
  const size_t k_sources = data.num_sources();
  CRH_CHECK_LE(k_sources, size_t{std::numeric_limits<uint32_t>::max()});

  // Pass 1: claims per entry. Table cells are row-major over (i, m), so a
  // flat cell index IS the entry id.
  std::vector<size_t> counts(num_entries, 0);
  for (size_t k = 0; k < k_sources; ++k) {
    const std::vector<Value>& cells = data.observations(k).cells();
    CRH_DCHECK_EQ(cells.size(), num_entries);
    for (size_t e = 0; e < num_entries; ++e) {
      if (!cells[e].is_missing()) ++counts[e];
    }
  }

  index.offsets_.assign(num_entries + 1, 0);
  for (size_t e = 0; e < num_entries; ++e) {
    index.offsets_[e + 1] = index.offsets_[e] + counts[e];
    index.max_span_size_ = std::max(index.max_span_size_, counts[e]);
  }
  const size_t num_claims = index.offsets_[num_entries];
  index.sources_.resize(num_claims);
  index.values_.resize(num_claims);
  index.numeric_.resize(num_claims);
  index.labels_.resize(num_claims);

  // Pass 2: fill. Iterating k ascending in the outer loop leaves each
  // entry's claims sorted by source id, matching a dense K-scan's order.
  std::vector<size_t> cursor = index.offsets_;  // drops the trailing total
  for (size_t k = 0; k < k_sources; ++k) {
    const std::vector<Value>& cells = data.observations(k).cells();
    for (size_t e = 0; e < num_entries; ++e) {
      if (cells[e].is_missing()) continue;
      const size_t at = cursor[e]++;
      index.sources_[at] = static_cast<uint32_t>(k);
      index.values_[at] = cells[e];
      index.numeric_[at] = NumericLane(cells[e]);
      index.labels_[at] = LabelLane(cells[e]);
    }
  }
  return index;
}

ClaimIndex ClaimIndex::CreateEmpty(size_t num_objects, size_t num_properties) {
  ClaimIndex index;
  index.num_objects_ = num_objects;
  index.num_properties_ = num_properties;
  index.offsets_.assign(index.num_entries() + 1, 0);
  return index;
}

void ClaimIndex::Append(const Dataset& chunk, const std::vector<size_t>& parent_object) {
  CRH_CHECK_EQ(chunk.num_properties(), num_properties_);
  CRH_CHECK_EQ(parent_object.size(), chunk.num_objects());
  const size_t num_entries = this->num_entries();
  const size_t m_props = num_properties_;
  const size_t chunk_objects = chunk.num_objects();
  const size_t k_sources = chunk.num_sources();
  CRH_CHECK_LE(k_sources, size_t{std::numeric_limits<uint32_t>::max()});

  // Stage the chunk's claims as their own small CSR over PARENT entry ids,
  // sorted by source within each entry (outer k ascending, as in Build).
  std::vector<size_t> added(num_entries, 0);
  size_t batch_total = 0;
  for (size_t k = 0; k < k_sources; ++k) {
    const std::vector<Value>& cells = chunk.observations(k).cells();
    CRH_DCHECK_EQ(cells.size(), chunk_objects * m_props);
    for (size_t local = 0; local < chunk_objects; ++local) {
      const size_t parent = parent_object[local];
      CRH_CHECK_LT(parent, num_objects_);
      for (size_t m = 0; m < m_props; ++m) {
        if (cells[local * m_props + m].is_missing()) continue;
        ++added[parent * m_props + m];
        ++batch_total;
      }
    }
  }
  if (batch_total == 0) return;

  std::vector<size_t> batch_offsets(num_entries + 1, 0);
  for (size_t e = 0; e < num_entries; ++e) {
    batch_offsets[e + 1] = batch_offsets[e] + added[e];
  }
  std::vector<uint32_t> batch_sources(batch_total);
  std::vector<Value> batch_values(batch_total);
  std::vector<size_t> batch_cursor = batch_offsets;
  for (size_t k = 0; k < k_sources; ++k) {
    const std::vector<Value>& cells = chunk.observations(k).cells();
    for (size_t local = 0; local < chunk_objects; ++local) {
      const size_t base = parent_object[local] * m_props;
      for (size_t m = 0; m < m_props; ++m) {
        const Value& v = cells[local * m_props + m];
        if (v.is_missing()) continue;
        const size_t at = batch_cursor[base + m]++;
        batch_sources[at] = static_cast<uint32_t>(k);
        batch_values[at] = v;
      }
    }
  }

  // Grow the claim arrays geometrically so a chunk stream costs amortized
  // O(1) per claim in reallocation, then slide spans right in place.
  const size_t old_total = values_.size();
  const size_t new_total = old_total + batch_total;
  const size_t grown = std::max(new_total, values_.capacity() * 2);
  sources_.reserve(grown);
  values_.reserve(grown);
  numeric_.reserve(grown);
  labels_.reserve(grown);
  sources_.resize(new_total);
  values_.resize(new_total);
  numeric_.resize(new_total);
  labels_.resize(new_total);

  // Merge entry by entry from the BACK. Writing entry e's merged span
  // backward from its new end never clobbers unread old claims: the write
  // cursor stays ahead of the old read cursor by exactly the number of
  // batch claims still to be placed at or below entry e (>= 0).
  size_t write = new_total;
  size_t shift = batch_total;  // batch claims destined for entries <= e
  for (size_t e = num_entries; e-- > 0;) {
    const size_t old_begin = offsets_[e];
    size_t old_read = offsets_[e + 1];          // one past the old span
    size_t batch_read = batch_offsets[e + 1];   // one past the batch span
    const size_t batch_begin = batch_offsets[e];
    while (old_read > old_begin || batch_read > batch_begin) {
      const bool take_batch =
          batch_read > batch_begin &&
          (old_read == old_begin || batch_sources[batch_read - 1] > sources_[old_read - 1]);
      --write;
      if (take_batch) {
        --batch_read;
        --shift;
        sources_[write] = batch_sources[batch_read];
        values_[write] = batch_values[batch_read];
        numeric_[write] = NumericLane(batch_values[batch_read]);
        labels_[write] = LabelLane(batch_values[batch_read]);
      } else {
        --old_read;
        // A duplicate (entry, source) pair would make the union ill-defined.
        CRH_CHECK(batch_read == batch_begin ||
                  batch_sources[batch_read - 1] != sources_[old_read]);
        sources_[write] = sources_[old_read];
        values_[write] = values_[old_read];
        numeric_[write] = numeric_[old_read];
        labels_[write] = labels_[old_read];
      }
    }
    // The span's new end is its old end plus every batch claim below it.
    offsets_[e + 1] += shift + (batch_offsets[e + 1] - batch_begin);
    max_span_size_ = std::max(max_span_size_, offsets_[e + 1] - write);
  }
  CRH_DCHECK_EQ(write, size_t{0});
  CRH_DCHECK_EQ(shift, size_t{0});
  CRH_DCHECK_EQ(offsets_[num_entries], new_total);
}

}  // namespace crh
