#include "data/schema.h"

namespace crh {

Status Schema::AddProperty(Property property) {
  if (property.name.empty()) {
    return Status::InvalidArgument("property name must be non-empty");
  }
  if (index_.count(property.name) > 0) {
    return Status::AlreadyExists("property '" + property.name + "' already defined");
  }
  index_.emplace(property.name, properties_.size());
  properties_.push_back(std::move(property));
  return Status::OK();
}

int Schema::FindProperty(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : static_cast<int>(it->second);
}

std::vector<size_t> Schema::PropertiesOfType(PropertyType type) const {
  std::vector<size_t> out;
  for (size_t m = 0; m < properties_.size(); ++m) {
    if (properties_[m].type == type) out.push_back(m);
  }
  return out;
}

}  // namespace crh
