#include "data/csv.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/fault_injection.h"

namespace crh {

namespace {

/// Rows longer than this are rejected rather than buffered: a missing
/// newline in a multi-gigabyte file must not become an allocation bomb.
constexpr size_t kMaxLineBytes = 1 << 20;

Status MalformedLine(size_t line_no, const std::string& what) {
  return Status::InvalidArgument("line " + std::to_string(line_no) + ": " + what);
}

/// Splits one CSV line on commas with RFC 4180 quoting: a field starting
/// with a double quote runs to the matching unescaped quote and may
/// contain commas; embedded quotes are doubled (""). Quotes inside an
/// unquoted field are taken literally.
Result<std::vector<std::string>> SplitCsvLine(const std::string& line, size_t line_no) {
  std::vector<std::string> fields;
  std::string field;
  size_t pos = 0;
  const size_t n = line.size();
  while (true) {
    field.clear();
    if (pos < n && line[pos] == '"') {
      ++pos;  // opening quote
      bool closed = false;
      while (pos < n) {
        if (line[pos] == '"') {
          if (pos + 1 < n && line[pos + 1] == '"') {  // escaped quote
            field.push_back('"');
            pos += 2;
            continue;
          }
          ++pos;  // closing quote
          closed = true;
          break;
        }
        field.push_back(line[pos++]);
      }
      if (!closed) return MalformedLine(line_no, "unterminated quoted field");
      if (pos < n && line[pos] != ',') {
        return MalformedLine(line_no, "unexpected character after closing quote");
      }
    } else {
      while (pos < n && line[pos] != ',') field.push_back(line[pos++]);
    }
    fields.push_back(field);
    if (pos >= n) break;
    ++pos;  // the comma
    if (pos == n) {  // trailing comma: one final empty field
      fields.emplace_back();
      break;
    }
  }
  return fields;
}

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteCsvField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted.push_back('"');
    quoted.push_back(c);
  }
  quoted.push_back('"');
  return quoted;
}

std::string FormatValue(const Dataset& data, size_t m, const Value& v) {
  if (v.is_continuous()) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v.continuous());
    return buf;
  }
  return QuoteCsvField(data.dict(m).label(v.category()));
}

Result<Value> ParseValue(Dataset* data, size_t m, const std::string& text,
                         size_t line_no) {
  if (data->schema().is_discrete(m)) {
    return data->InternCategorical(m, text);
  }
  // Strict numeric parse: the whole field must be one finite decimal
  // literal. strtod's laxness — leading whitespace, hex ("0x10"), inf/nan,
  // trailing garbage ("1.5abc") — is not accepted.
  if (text.empty() || std::isspace(static_cast<unsigned char>(text.front())) ||
      text.find_first_of("xX") != std::string::npos) {
    return MalformedLine(line_no, "cannot parse continuous value '" + text + "'");
  }
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  // Overflow surfaces as +-inf and fails the finiteness test; underflow to
  // a subnormal (strtod reports it via ERANGE) is a legitimate value that
  // the writer itself produces, so errno is deliberately not consulted.
  if (end != text.c_str() + text.size() || end == text.c_str() ||
      !std::isfinite(parsed)) {
    return MalformedLine(line_no, "cannot parse continuous value '" + text + "'");
  }
  return Value::Continuous(parsed);
}

/// Reads the next line, stripping a trailing CR (CRLF input) and enforcing
/// the length cap. Returns false at EOF, non-OK on an overlong line.
Result<bool> NextLine(std::istream& in, std::string* line, size_t line_no) {
  if (!std::getline(in, *line)) return false;
  if (line->size() > kMaxLineBytes) {
    return MalformedLine(line_no, "line exceeds " + std::to_string(kMaxLineBytes) +
                                      " bytes");
  }
  if (!line->empty() && line->back() == '\r') line->pop_back();
  return true;
}

}  // namespace

Status WriteObservationsCsv(const Dataset& data, std::ostream& out) {
  out << "object_id,property,source_id,value\n";
  for (size_t k = 0; k < data.num_sources(); ++k) {
    for (size_t i = 0; i < data.num_objects(); ++i) {
      for (size_t m = 0; m < data.num_properties(); ++m) {
        const Value& v = data.observations(k).Get(i, m);
        if (v.is_missing()) continue;
        // A quarantined claim carries the invalid-category sentinel, which
        // names no dictionary label: the CSV format cannot represent it,
        // and indexing the dictionary with it would read out of bounds.
        if (!v.is_continuous() && v.category() == kInvalidCategory) {
          return Status::InvalidArgument(
              "object '" + data.object_id(i) + "' property '" +
              data.schema().property(m).name + "' from source '" +
              data.source_id(k) +
              "' holds a quarantined (invalid-category) claim, which "
              "observation CSV cannot represent");
        }
        out << QuoteCsvField(data.object_id(i)) << ','
            << QuoteCsvField(data.schema().property(m).name) << ','
            << QuoteCsvField(data.source_id(k)) << ',' << FormatValue(data, m, v)
            << '\n';
      }
    }
  }
  if (!out) return Status::IOError("observation CSV write failed");
  return Status::OK();
}

Status WriteObservationsCsv(const Dataset& data, const std::string& path) {
  CRH_FAIL_POINT("csv.open_write");
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  Status status = FailPoints::Instance().Hit("csv.write");
  if (status.ok()) status = WriteObservationsCsv(data, out);
  if (status.ok() && !out) status = Status::IOError("write to '" + path + "' failed");
  return status;
}

Status WriteGroundTruthCsv(const Dataset& data, std::ostream& out) {
  if (!data.has_ground_truth()) {
    return Status::FailedPrecondition("dataset has no ground truth");
  }
  out << "object_id,property,value\n";
  for (size_t i = 0; i < data.num_objects(); ++i) {
    for (size_t m = 0; m < data.num_properties(); ++m) {
      const Value& v = data.ground_truth().Get(i, m);
      if (v.is_missing()) continue;
      out << QuoteCsvField(data.object_id(i)) << ','
          << QuoteCsvField(data.schema().property(m).name) << ','
          << FormatValue(data, m, v) << '\n';
    }
  }
  if (!out) return Status::IOError("ground-truth CSV write failed");
  return Status::OK();
}

Status WriteGroundTruthCsv(const Dataset& data, const std::string& path) {
  if (!data.has_ground_truth()) {
    return Status::FailedPrecondition("dataset has no ground truth");
  }
  CRH_FAIL_POINT("csv.open_write");
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  Status status = FailPoints::Instance().Hit("csv.write");
  if (status.ok()) status = WriteGroundTruthCsv(data, out);
  if (status.ok() && !out) status = Status::IOError("write to '" + path + "' failed");
  return status;
}

Result<Dataset> ReadObservationsCsv(const Schema& schema, std::istream& in) {
  struct Claim {
    size_t object, property, source;
    std::string value;
    size_t line_no;
  };
  std::vector<Claim> claims;
  std::vector<std::string> objects, sources;
  std::unordered_map<std::string, size_t> object_index, source_index;

  std::string line;
  size_t line_no = 1;
  auto header = NextLine(in, &line, line_no);
  if (!header.ok()) return header.status();
  if (!*header) return Status::InvalidArgument("empty CSV input: missing header row");
  while (true) {
    ++line_no;
    auto more = NextLine(in, &line, line_no);
    if (!more.ok()) return more.status();
    if (!*more) break;
    if (line.empty()) continue;
    auto fields = SplitCsvLine(line, line_no);
    if (!fields.ok()) return fields.status();
    if (fields->size() != 4) {
      return MalformedLine(line_no, "expected 4 fields, got " +
                                        std::to_string(fields->size()));
    }
    const int m = schema.FindProperty((*fields)[1]);
    if (m < 0) {
      return MalformedLine(line_no, "unknown property '" + (*fields)[1] + "'");
    }
    auto [obj_it, obj_new] = object_index.emplace((*fields)[0], objects.size());
    if (obj_new) objects.push_back((*fields)[0]);
    auto [src_it, src_new] = source_index.emplace((*fields)[2], sources.size());
    if (src_new) sources.push_back((*fields)[2]);
    claims.push_back({obj_it->second, static_cast<size_t>(m), src_it->second,
                      (*fields)[3], line_no});
  }

  Dataset data(schema, std::move(objects), std::move(sources));
  for (const Claim& c : claims) {
    Result<Value> v = ParseValue(&data, c.property, c.value, c.line_no);
    if (!v.ok()) return v.status();
    data.SetObservation(c.source, c.object, c.property, *v);
  }
  return data;
}

Result<Dataset> ReadObservationsCsv(const Schema& schema, const std::string& path) {
  CRH_FAIL_POINT("csv.open_read");
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  CRH_FAIL_POINT("csv.read");
  return ReadObservationsCsv(schema, in);
}

Status ReadGroundTruthCsv(std::istream& in, Dataset* data) {
  CRH_CHECK_MSG(data != nullptr, "ReadGroundTruthCsv requires a dataset");
  std::unordered_map<std::string, size_t> object_index;
  for (size_t i = 0; i < data->num_objects(); ++i) object_index.emplace(data->object_id(i), i);

  ValueTable truth(data->num_objects(), data->num_properties());
  std::string line;
  size_t line_no = 1;
  auto header = NextLine(in, &line, line_no);
  if (!header.ok()) return header.status();
  if (!*header) return Status::InvalidArgument("empty CSV input: missing header row");
  while (true) {
    ++line_no;
    auto more = NextLine(in, &line, line_no);
    if (!more.ok()) return more.status();
    if (!*more) break;
    if (line.empty()) continue;
    auto fields = SplitCsvLine(line, line_no);
    if (!fields.ok()) return fields.status();
    if (fields->size() != 3) {
      return MalformedLine(line_no, "expected 3 fields, got " +
                                        std::to_string(fields->size()));
    }
    const auto obj_it = object_index.find((*fields)[0]);
    if (obj_it == object_index.end()) {
      return MalformedLine(line_no, "unknown object '" + (*fields)[0] + "'");
    }
    const int m = data->schema().FindProperty((*fields)[1]);
    if (m < 0) {
      return MalformedLine(line_no, "unknown property '" + (*fields)[1] + "'");
    }
    Result<Value> v = ParseValue(data, static_cast<size_t>(m), (*fields)[2], line_no);
    if (!v.ok()) return v.status();
    truth.Set(obj_it->second, static_cast<size_t>(m), *v);
  }
  data->set_ground_truth(std::move(truth));
  return Status::OK();
}

Status ReadGroundTruthCsv(const std::string& path, Dataset* data) {
  CRH_FAIL_POINT("csv.open_read");
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  CRH_FAIL_POINT("csv.read");
  return ReadGroundTruthCsv(in, data);
}

std::vector<std::string> CsvFailPointSites() {
  return {"csv.open_write", "csv.write", "csv.open_read", "csv.read"};
}

}  // namespace crh
