#include "data/csv.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>

namespace crh {

namespace {

/// Splits one CSV line on commas. Fields in this format never contain
/// commas or quotes, so no quoting logic is required.
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, ',')) fields.push_back(field);
  if (!line.empty() && line.back() == ',') fields.emplace_back();
  return fields;
}

std::string FormatValue(const Dataset& data, size_t m, const Value& v) {
  if (v.is_continuous()) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v.continuous());
    return buf;
  }
  return data.dict(m).label(v.category());
}

Result<Value> ParseValue(Dataset* data, size_t m, const std::string& text) {
  if (data->schema().is_discrete(m)) {
    return data->InternCategorical(m, text);
  }
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || errno == ERANGE) {
    return Status::IOError("cannot parse continuous value '" + text + "'");
  }
  return Value::Continuous(parsed);
}

}  // namespace

Status WriteObservationsCsv(const Dataset& data, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << "object_id,property,source_id,value\n";
  for (size_t k = 0; k < data.num_sources(); ++k) {
    for (size_t i = 0; i < data.num_objects(); ++i) {
      for (size_t m = 0; m < data.num_properties(); ++m) {
        const Value& v = data.observations(k).Get(i, m);
        if (v.is_missing()) continue;
        out << data.object_id(i) << ',' << data.schema().property(m).name << ','
            << data.source_id(k) << ',' << FormatValue(data, m, v) << '\n';
      }
    }
  }
  if (!out) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

Status WriteGroundTruthCsv(const Dataset& data, const std::string& path) {
  if (!data.has_ground_truth()) {
    return Status::FailedPrecondition("dataset has no ground truth");
  }
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << "object_id,property,value\n";
  for (size_t i = 0; i < data.num_objects(); ++i) {
    for (size_t m = 0; m < data.num_properties(); ++m) {
      const Value& v = data.ground_truth().Get(i, m);
      if (v.is_missing()) continue;
      out << data.object_id(i) << ',' << data.schema().property(m).name << ','
          << FormatValue(data, m, v) << '\n';
    }
  }
  if (!out) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

Result<Dataset> ReadObservationsCsv(const Schema& schema, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");

  struct Claim {
    size_t object, property, source;
    std::string value;
  };
  std::vector<Claim> claims;
  std::vector<std::string> objects, sources;
  std::unordered_map<std::string, size_t> object_index, source_index;

  std::string line;
  if (!std::getline(in, line)) return Status::IOError("empty file '" + path + "'");
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() != 4) {
      return Status::IOError("line " + std::to_string(line_no) + ": expected 4 fields");
    }
    const int m = schema.FindProperty(fields[1]);
    if (m < 0) {
      return Status::IOError("line " + std::to_string(line_no) + ": unknown property '" +
                             fields[1] + "'");
    }
    auto [obj_it, obj_new] = object_index.emplace(fields[0], objects.size());
    if (obj_new) objects.push_back(fields[0]);
    auto [src_it, src_new] = source_index.emplace(fields[2], sources.size());
    if (src_new) sources.push_back(fields[2]);
    claims.push_back({obj_it->second, static_cast<size_t>(m), src_it->second, fields[3]});
  }

  Dataset data(schema, std::move(objects), std::move(sources));
  for (const Claim& c : claims) {
    Result<Value> v = ParseValue(&data, c.property, c.value);
    if (!v.ok()) return v.status();
    data.SetObservation(c.source, c.object, c.property, *v);
  }
  return data;
}

Status ReadGroundTruthCsv(const std::string& path, Dataset* data) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");

  std::unordered_map<std::string, size_t> object_index;
  for (size_t i = 0; i < data->num_objects(); ++i) object_index.emplace(data->object_id(i), i);

  ValueTable truth(data->num_objects(), data->num_properties());
  std::string line;
  if (!std::getline(in, line)) return Status::IOError("empty file '" + path + "'");
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() != 3) {
      return Status::IOError("line " + std::to_string(line_no) + ": expected 3 fields");
    }
    const auto obj_it = object_index.find(fields[0]);
    if (obj_it == object_index.end()) {
      return Status::IOError("line " + std::to_string(line_no) + ": unknown object '" +
                             fields[0] + "'");
    }
    const int m = data->schema().FindProperty(fields[1]);
    if (m < 0) {
      return Status::IOError("line " + std::to_string(line_no) + ": unknown property '" +
                             fields[1] + "'");
    }
    Result<Value> v = ParseValue(data, static_cast<size_t>(m), fields[2]);
    if (!v.ok()) return v.status();
    truth.Set(obj_it->second, static_cast<size_t>(m), *v);
  }
  data->set_ground_truth(std::move(truth));
  return Status::OK();
}

}  // namespace crh
