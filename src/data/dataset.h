#ifndef CRH_DATA_DATASET_H_
#define CRH_DATA_DATASET_H_

/// \file dataset.h
/// The multi-source dataset container consumed by all conflict-resolution
/// algorithms in this library.
///
/// A Dataset bundles: the property Schema, the identities of N objects and
/// K sources, one observation ValueTable per source, per-property category
/// dictionaries, an optional ground-truth table (used for evaluation only,
/// never by the algorithms), and optional per-object timestamps used to cut
/// the data into chunks for the streaming (I-CRH) scenario.

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "common/value.h"
#include "data/category_dict.h"
#include "data/schema.h"
#include "data/table.h"

namespace crh {

/// Multi-source observations about N objects x M properties from K sources.
class Dataset {
 public:
  Dataset() = default;

  /// Creates a dataset with the given schema, object names and source names.
  /// Every source starts with an all-missing observation table.
  Dataset(Schema schema, std::vector<std::string> object_ids,
          std::vector<std::string> source_ids);

  /// The property schema.
  const Schema& schema() const { return schema_; }

  /// Number of objects (N).
  size_t num_objects() const { return object_ids_.size(); }
  /// Number of properties (M).
  size_t num_properties() const { return schema_.num_properties(); }
  /// Number of sources (K).
  size_t num_sources() const { return source_ids_.size(); }
  /// Number of entries (N * M).
  size_t num_entries() const { return num_objects() * num_properties(); }

  /// Name of the i-th object.
  const std::string& object_id(size_t i) const {
    CRH_DCHECK_LT(i, object_ids_.size());
    return object_ids_[i];
  }
  /// Name of the k-th source.
  const std::string& source_id(size_t k) const {
    CRH_DCHECK_LT(k, source_ids_.size());
    return source_ids_[k];
  }

  /// Observation table of source k (X^(k)).
  const ValueTable& observations(size_t k) const {
    CRH_DCHECK_LT(k, observations_.size());
    return observations_[k];
  }
  ValueTable& mutable_observations(size_t k) {
    CRH_DCHECK_LT(k, observations_.size());
    return observations_[k];
  }

  /// Records one observation v^(k)_im.
  void SetObservation(size_t k, size_t i, size_t m, Value v) {
    observations_[k].Set(i, m, v);
  }

  /// Total number of non-missing observations across all sources.
  size_t num_observations() const;

  /// Category dictionary of property m (empty for continuous properties).
  const CategoryDict& dict(size_t m) const {
    CRH_DCHECK_LT(m, dicts_.size());
    return dicts_[m];
  }
  CategoryDict& mutable_dict(size_t m) {
    CRH_DCHECK_LT(m, dicts_.size());
    return dicts_[m];
  }

  /// Interns a label for categorical property m and returns its Value.
  Value InternCategorical(size_t m, const std::string& label) {
    return Value::Categorical(dicts_[m].GetOrAdd(label));
  }

  /// True iff a ground-truth table is attached.
  bool has_ground_truth() const { return ground_truth_.has_value(); }
  /// The ground-truth table; cells may be missing (= unlabeled entries).
  const ValueTable& ground_truth() const {
    CRH_DCHECK(has_ground_truth());
    return *ground_truth_;
  }
  /// Attaches a ground-truth table (N x M). Used by evaluation only.
  void set_ground_truth(ValueTable truth) { ground_truth_ = std::move(truth); }
  /// Number of labeled ground-truth entries.
  size_t num_ground_truths() const {
    return has_ground_truth() ? ground_truth_->CountPresent() : 0;
  }

  /// True iff per-object timestamps are attached (streaming scenario).
  bool has_timestamps() const { return !timestamps_.empty(); }
  /// Timestamp (chunk key) of object i.
  int64_t timestamp(size_t i) const {
    CRH_DCHECK_LT(i, timestamps_.size());
    return timestamps_[i];
  }
  /// Attaches per-object timestamps; size must equal num_objects().
  [[nodiscard]] Status set_timestamps(std::vector<int64_t> timestamps);
  /// Sorted list of the distinct timestamps present.
  std::vector<int64_t> DistinctTimestamps() const;

  /// Checks structural invariants: table shapes match N x M, categorical
  /// cells hold valid dictionary ids, continuous cells are finite, and the
  /// type of every cell matches its property's declared type.
  [[nodiscard]] Status Validate() const;

 private:
  Schema schema_;
  std::vector<std::string> object_ids_;
  std::vector<std::string> source_ids_;
  std::vector<ValueTable> observations_;
  std::vector<CategoryDict> dicts_;
  std::optional<ValueTable> ground_truth_;
  std::vector<int64_t> timestamps_;
};

}  // namespace crh

#endif  // CRH_DATA_DATASET_H_
