#ifndef CRH_DATA_SCHEMA_H_
#define CRH_DATA_SCHEMA_H_

/// \file schema.h
/// Typed property schema for multi-source datasets.
///
/// In CRH terminology (Definition 1): an *object* is described by M
/// *properties*; each property has a data type that determines the loss
/// function used for it. The Schema names the properties and records their
/// types plus optional per-property metadata used by generators and the
/// solver (rounding unit, i.e. the physical resolution values are reported
/// at: 1 for integer degrees, 0.01 for prices, ...).

#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "common/value.h"

namespace crh {

/// One property (column) of the object universe.
struct Property {
  /// Human-readable unique name, e.g. "high_temperature".
  std::string name;
  /// Data type; selects the loss function / truth resolver.
  PropertyType type = PropertyType::kContinuous;
  /// Physical resolution for continuous properties. Generators round
  /// injected noise to a multiple of this; 0 disables rounding.
  double rounding_unit = 0.0;
};

/// Ordered collection of uniquely named properties.
class Schema {
 public:
  Schema() = default;

  /// Appends a property. Fails with AlreadyExists on a duplicate name.
  [[nodiscard]] Status AddProperty(Property property);

  /// Convenience: appends a continuous property.
  [[nodiscard]] Status AddContinuous(const std::string& name, double rounding_unit = 0.0) {
    return AddProperty({name, PropertyType::kContinuous, rounding_unit});
  }

  /// Convenience: appends a categorical property.
  [[nodiscard]] Status AddCategorical(const std::string& name) {
    return AddProperty({name, PropertyType::kCategorical, 0.0});
  }

  /// Convenience: appends a text property (interned strings compared by
  /// normalized edit distance).
  [[nodiscard]] Status AddText(const std::string& name) {
    return AddProperty({name, PropertyType::kText, 0.0});
  }

  /// Number of properties (M).
  size_t num_properties() const { return properties_.size(); }

  /// The m-th property. Precondition: m < num_properties().
  const Property& property(size_t m) const {
    CRH_DCHECK_LT(m, properties_.size());
    return properties_[m];
  }

  /// Index of the property with the given name, or -1 if absent.
  int FindProperty(const std::string& name) const;

  /// True iff property m is categorical.
  bool is_categorical(size_t m) const {
    CRH_DCHECK_LT(m, properties_.size());
    return properties_[m].type == PropertyType::kCategorical;
  }

  /// True iff property m is continuous.
  bool is_continuous(size_t m) const {
    CRH_DCHECK_LT(m, properties_.size());
    return properties_[m].type == PropertyType::kContinuous;
  }

  /// True iff property m holds interned labels (categorical or text).
  bool is_discrete(size_t m) const { return !is_continuous(m); }

  /// Indices of all properties of the given type, in schema order.
  std::vector<size_t> PropertiesOfType(PropertyType type) const;

 private:
  std::vector<Property> properties_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace crh

#endif  // CRH_DATA_SCHEMA_H_
