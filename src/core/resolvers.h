#ifndef CRH_CORE_RESOLVERS_H_
#define CRH_CORE_RESOLVERS_H_

/// \file resolvers.h
/// Per-entry truth computation primitives (Section 2.4 of the paper).
///
/// Each loss function induces a closed-form (or efficiently computable)
/// minimizer for the truth-update step (Eq 3):
///
///  * 0-1 loss            -> weighted vote        (Eq 9)
///  * prob-vector sq loss -> weighted distribution (Eq 12), truth = argmax
///  * normalized squared  -> weighted mean        (Eq 14)
///  * normalized absolute -> weighted median      (Eq 16)
///
/// All functions skip nothing: callers pass only the non-missing claims on
/// an entry. Tie-breaking is deterministic (smallest value / label id) so
/// runs are reproducible.

#include <cstddef>
#include <functional>
#include <vector>

#include "common/value.h"

namespace crh {

/// Eq (9): the value with the largest total weight among the claims.
/// Ties break toward the smallest value (category id, then continuous
/// magnitude). Returns Value::Missing() when there are no claims.
Value WeightedVote(const std::vector<Value>& values, const std::vector<double>& weights);

/// Eq (14): weighted arithmetic mean of the claims. Returns NaN when the
/// total weight is zero (callers fall back to the unweighted mean).
double WeightedMean(const std::vector<double>& values, const std::vector<double>& weights);

/// Eq (16): weighted median. Given claims v^k with weights w_k, returns the
/// claim v^j such that the total weight strictly below it is < W/2 and the
/// total weight strictly above it is <= W/2, where W is the total weight.
/// With uniform weights this is the classical (lower) median. Claims with
/// non-positive weight are ignored; if all weights are non-positive the
/// unweighted median of the claims is returned.
double WeightedMedian(std::vector<double> values, std::vector<double> weights);

/// Expected-linear-time weighted median via quickselect-style partitioning
/// (the CLRS chapter-9 algorithm the paper cites). Produces exactly the
/// same result as WeightedMedian; preferable when entries have many claims.
double WeightedMedianLinear(std::vector<double> values, std::vector<double> weights);

/// Eq (12): the weighted mean of one-hot claim vectors, i.e. the truth
/// probability distribution over the num_labels labels of a categorical
/// property. Claims are CategoryIds; the result sums to 1 when any claims
/// are given (uniform over the claimed labels when the total weight is
/// zero, so the mode always stays in the observed candidate set).
std::vector<double> WeightedLabelDistribution(const std::vector<CategoryId>& labels,
                                              const std::vector<double>& weights,
                                              size_t num_labels);

/// Weighted medoid: the claim minimizing the weighted total distance to
/// all claims — the truth update induced by an arbitrary metric loss (used
/// for text properties with edit distance). Ties break toward the claim
/// with the smaller index. O(n^2) distance evaluations over the distinct
/// claims. Returns Missing on no claims.
Value WeightedMedoid(const std::vector<Value>& values, const std::vector<double>& weights,
                     const std::function<double(const Value&, const Value&)>& distance);

/// Index of the largest element, smallest index on ties.
size_t ArgMax(const std::vector<double>& xs);

}  // namespace crh

#endif  // CRH_CORE_RESOLVERS_H_
