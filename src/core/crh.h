#ifndef CRH_CORE_CRH_H_
#define CRH_CORE_CRH_H_

/// \file crh.h
/// The CRH framework (Algorithm 1 of the paper): joint truth discovery and
/// source-reliability estimation on heterogeneous data.
///
/// CRH solves
///
///   min_{X*, W}  sum_k w_k * sum_{i,m} d_m(v*_im, v^k_im)
///   s.t.         delta(W) = 1
///
/// by block coordinate descent, alternating a closed-form source-weight
/// update (Eq 2 / Eq 5) with per-entry truth updates (Eq 3) until the
/// objective stops decreasing. Categorical and continuous properties use
/// different loss functions but contribute to a single joint weight
/// estimate — the paper's central idea.
///
/// Typical use:
///
///   crh::CrhOptions options;                       // paper defaults
///   auto result = crh::RunCrh(dataset, options);
///   if (!result.ok()) { ... }
///   const crh::ValueTable& truths = result->truths;
///   const std::vector<double>& weights = result->source_weights;

#include <memory>
#include <vector>

#include "common/status.h"
#include "data/claim_index.h"
#include "data/dataset.h"
#include "data/stats.h"
#include "data/table.h"
#include "weights/weight_scheme.h"

namespace crh {

class IterationObserver;  // analysis/invariants.h
class ThreadPool;         // common/thread_pool.h

/// Truth model for categorical properties.
enum class CategoricalModel {
  /// 0-1 loss (Eq 8) with weighted-vote truth update (Eq 9). The paper's
  /// default: fast and memory-light.
  kVoting,
  /// Probability-vector squared loss (Eq 11) with weighted-mean
  /// distribution update (Eq 12); the reported truth is the mode. Soft
  /// decisions at the cost of O(L_m) memory per entry.
  kSoftProbability,
};

/// Truth model for continuous properties.
enum class ContinuousModel {
  /// Normalized absolute loss (Eq 15) with weighted-median truth update
  /// (Eq 16). The paper's default: robust to outliers.
  kMedian,
  /// Normalized squared loss (Eq 13) with weighted-mean truth update
  /// (Eq 14). Sensitive to outliers.
  kMean,
};

/// How per-property loss totals are normalized across sources before they
/// are summed into a per-source deviation (Section 2.5, "Normalization").
/// Without it, a property whose loss has a larger range would dominate the
/// weight estimate.
enum class PropertyLossNormalization {
  kNone,
  /// Divide each property's per-source losses by their sum over sources.
  kSum,
  /// Divide each property's per-source losses by their max over sources.
  kMax,
};

/// Granularity of the source-reliability estimate (Section 2.5, "Source
/// weight consistency"). CRH normally assumes one reliability degree per
/// source; when that assumption is violated — a sensor with a precise
/// thermometer but a broken status register — w_k can be split into
/// fine-grained weights over subsets of properties.
enum class WeightGranularity {
  /// One weight per source (the paper's default assumption).
  kGlobal,
  /// One weight per source per property *type* (continuous / categorical /
  /// text).
  kPerType,
  /// One weight per source per property.
  kPerProperty,
};

/// Configuration for RunCrh. The defaults reproduce the configuration the
/// paper evaluates: weighted voting for categorical data, weighted median
/// for continuous data, and log weights with max normalization (see
/// weights/weight_scheme.h for the trade-off between the max and sum
/// normalizations).
struct CrhOptions {
  CategoricalModel categorical_model = CategoricalModel::kVoting;
  ContinuousModel continuous_model = ContinuousModel::kMedian;
  WeightSchemeOptions weight_scheme = {};
  PropertyLossNormalization property_normalization = PropertyLossNormalization::kSum;
  /// Divide each source's per-property loss by the number of observations
  /// that source made on that property, so sparsely reporting sources are
  /// not judged on volume (Section 2.5, "Missing values").
  bool normalize_by_observation_count = true;
  /// Iteration cap for the block coordinate descent.
  int max_iterations = 100;
  /// Worker threads for the truth update and the loss/objective
  /// accumulations. 1 (the default) runs sequentially on the calling
  /// thread; 0 uses one worker per hardware thread; negative values are
  /// rejected. Results are bit-identical at every thread count: work is
  /// cut on a fixed shard grid whose boundaries depend only on the data
  /// size, and per-shard partials are reduced in shard order (see
  /// docs/PERFORMANCE.md, "Deterministic reduction").
  int num_threads = 1;
  /// Stop when the relative decrease of the objective falls below this.
  double convergence_tolerance = 1e-9;
  /// How finely source reliability is resolved. Non-global granularities
  /// relax the source-weight-consistency assumption at the cost of less
  /// evidence per weight (each weight is then estimated from a subset of
  /// the properties only).
  WeightGranularity weight_granularity = WeightGranularity::kGlobal;
  /// Optional supervision: a table of known truths (semi-supervised truth
  /// discovery). Non-missing cells are clamped during every truth update,
  /// so source weights are estimated against verified values where
  /// available. Must outlive the RunCrh call and match the dataset shape.
  const ValueTable* supervision = nullptr;
  /// Optional observer invoked after every coordinate-descent step (see
  /// analysis/invariants.h); a non-OK status from it aborts the run with
  /// that status. Borrowed; must outlive the call. When the library is
  /// built with -DCRH_VERIFY=ON, a full InvariantVerifier is installed
  /// here automatically for every run that leaves this null.
  IterationObserver* observer = nullptr;
};

/// Per-categorical-property soft truth distributions (filled only under
/// CategoricalModel::kSoftProbability).
struct SoftDistributions {
  /// Property index this block belongs to.
  size_t property = 0;
  /// Number of labels L_m.
  size_t num_labels = 0;
  /// Row-major N x L_m probabilities.
  std::vector<double> probabilities;

  /// The probability of label l for object i.
  double at(size_t i, CategoryId l) const {
    return probabilities[i * num_labels + static_cast<size_t>(l)];
  }
};

/// Output of RunCrh.
struct CrhResult {
  /// The estimated truth table X^(*). Entries no source observed stay missing.
  ValueTable truths;
  /// Estimated source weights W (reliability degrees). Under a non-global
  /// weight granularity this is each source's mean weight across groups;
  /// the per-group weights are in fine_grained_weights.
  std::vector<double> source_weights;
  /// Per-group weights, K x num_groups (only filled for non-global
  /// granularity). Group g covers the properties with property_group == g.
  std::vector<std::vector<double>> fine_grained_weights;
  /// Property -> weight-group index (size M; all zeros for kGlobal).
  std::vector<size_t> property_group;
  /// Soft label distributions per categorical property (kSoftProbability only).
  std::vector<SoftDistributions> soft_distributions;
  /// Objective value after each iteration (raw weighted loss, Eq 1).
  std::vector<double> objective_history;
  /// Iterations executed.
  int iterations = 0;
  /// Whether the convergence tolerance was met before max_iterations.
  bool converged = false;
};

/// Reusable solver scratch: one bump-arena allocation backing every
/// per-iteration buffer of the pass entry points below. Callers that run
/// many passes — the incremental solver, the delta re-solver, the
/// benchmark harness — hold one workspace per concurrent caller and pass
/// it to every call; after the first sizing, passes run allocation-free.
/// Sized (and resized) automatically by the passes; reusable across
/// datasets. Not thread-safe: one workspace serves one call at a time
/// (the pass itself may fan work out over a pool internally).
class SolverWorkspace {
 public:
  SolverWorkspace();
  ~SolverWorkspace();
  SolverWorkspace(SolverWorkspace&&) noexcept;
  SolverWorkspace& operator=(SolverWorkspace&&) noexcept;

  /// Opaque scratch (defined in crh.cc).
  struct Impl;
  Impl& impl() { return *impl_; }

 private:
  std::unique_ptr<Impl> impl_;
};

/// Runs CRH (Algorithm 1) on a multi-source dataset.
///
/// Truths are initialized by unweighted voting (categorical) and the
/// unweighted median/mean (continuous, per the configured model), then the
/// weight and truth updates alternate until convergence. Missing
/// observations are skipped everywhere.
[[nodiscard]] Result<CrhResult> RunCrh(const Dataset& data, const CrhOptions& options = {});

/// One truth-update pass (Eq 3): computes per-entry truths from fixed
/// source weights, using the loss models configured in \p options. Soft
/// categorical distributions are not materialized here; the categorical
/// truth is the weighted vote (the mode). Used by the incremental and
/// parallel CRH variants, which interleave the two steps differently.
ValueTable ComputeTruthsGivenWeights(const Dataset& data, const std::vector<double>& weights,
                                     const CrhOptions& options);

/// Claim-major variant over a prebuilt index (must have been built from
/// \p data): callers that run many passes — the incremental solver, the
/// benchmark harness — amortize the index build and may share a
/// ThreadPool. A null \p pool runs sequentially.
ValueTable ComputeTruthsGivenWeights(const Dataset& data, const ClaimIndex& index,
                                     const std::vector<double>& weights,
                                     const CrhOptions& options, ThreadPool* pool = nullptr);

/// Workspace-reusing variant: identical results, but the pass's scratch
/// persists in \p workspace across calls (allocation-free after the first).
ValueTable ComputeTruthsGivenWeights(const Dataset& data, const ClaimIndex& index,
                                     const std::vector<double>& weights,
                                     const CrhOptions& options, ThreadPool* pool,
                                     SolverWorkspace& workspace);

/// One truth update restricted to a sorted, duplicate-free list of entry
/// ids (e = i * M + m): the delta re-solver's kernel. Only the listed
/// entries of \p truths are written; each receives exactly the value a
/// full ComputeTruthsGivenWeights pass over the same index and weights
/// would produce (truth updates are per-entry independent, so the subset
/// pass is bit-identical on its subset at any thread count). Categorical
/// truths use the hard (voting) model, as in ComputeTruthsGivenWeights.
/// \p truths must match the index's entry grid.
void UpdateTruthsForEntries(const Dataset& data, const ClaimIndex& index,
                            const std::vector<size_t>& entries,
                            const std::vector<double>& weights, const CrhOptions& options,
                            ThreadPool* pool, SolverWorkspace& workspace, ValueTable* truths);

/// One weight-aggregation pass: each source's total deviation between its
/// observations and \p truths, with the per-observation-count and
/// per-property normalizations configured in \p options applied. Feed the
/// result to ComputeSourceWeights to finish the weight update (Eq 2).
std::vector<double> ComputeSourceDeviations(const Dataset& data, const ValueTable& truths,
                                            const EntryStats& stats, const CrhOptions& options);

/// Claim-major variant over a prebuilt index; see ComputeTruthsGivenWeights.
std::vector<double> ComputeSourceDeviations(const Dataset& data, const ClaimIndex& index,
                                            const ValueTable& truths, const EntryStats& stats,
                                            const CrhOptions& options,
                                            ThreadPool* pool = nullptr);

/// Workspace-reusing variant of the claim-major deviation pass.
std::vector<double> ComputeSourceDeviations(const Dataset& data, const ClaimIndex& index,
                                            const ValueTable& truths, const EntryStats& stats,
                                            const CrhOptions& options, ThreadPool* pool,
                                            SolverWorkspace& workspace);

/// Computes the raw CRH objective (Eq 1) of a candidate solution: the
/// weighted sum over sources of per-entry losses between \p truths and the
/// observations, using the losses implied by \p options and entry scales
/// from \p stats. Exposed for tests and diagnostics.
double CrhObjective(const Dataset& data, const ValueTable& truths,
                    const std::vector<double>& weights, const EntryStats& stats,
                    const CrhOptions& options);

}  // namespace crh

#endif  // CRH_CORE_CRH_H_
