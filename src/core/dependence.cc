#include "core/dependence.h"

#include <algorithm>
#include <cmath>
#include <functional>

namespace crh {

namespace {

/// Per-source accuracy against the estimated truths (exact match over all
/// claimed entries with a non-missing truth), clamped away from 0/1.
std::vector<double> AccuracyAgainstTruths(const Dataset& data, const ValueTable& truths) {
  std::vector<double> accuracy(data.num_sources(), 0.5);
  for (size_t k = 0; k < data.num_sources(); ++k) {
    size_t total = 0, correct = 0;
    const ValueTable& table = data.observations(k);
    for (size_t i = 0; i < data.num_objects(); ++i) {
      for (size_t m = 0; m < data.num_properties(); ++m) {
        const Value& obs = table.Get(i, m);
        const Value& truth = truths.Get(i, m);
        if (obs.is_missing() || truth.is_missing()) continue;
        ++total;
        if (obs == truth) ++correct;
      }
    }
    if (total > 0) {
      accuracy[k] =
          std::clamp(static_cast<double>(correct) / static_cast<double>(total), 0.05, 0.95);
    }
  }
  return accuracy;
}

}  // namespace

Result<DependenceResult> DetectSourceDependence(const Dataset& data,
                                                const ValueTable& truths,
                                                const DependenceOptions& options) {
  if (truths.num_objects() != data.num_objects() ||
      truths.num_properties() != data.num_properties()) {
    return Status::InvalidArgument("truths shape does not match dataset");
  }
  if (!(options.prior > 0.0 && options.prior < 1.0)) {
    return Status::InvalidArgument("prior must be in (0, 1)");
  }
  if (!(options.copy_rate > 0.0 && options.copy_rate < 1.0)) {
    return Status::InvalidArgument("copy_rate must be in (0, 1)");
  }
  if (options.false_value_count < 1.0) {
    return Status::InvalidArgument("false_value_count must be >= 1");
  }

  const size_t k_sources = data.num_sources();
  const std::vector<double> accuracy = AccuracyAgainstTruths(data, truths);

  DependenceResult result;
  result.copy_probability.assign(k_sources, std::vector<double>(k_sources, 0.0));
  result.independence.assign(k_sources, 1.0);

  const double n_false = options.false_value_count;
  const double c = options.copy_rate;
  const double log_prior_odds = std::log(options.prior / (1.0 - options.prior));

  for (size_t a = 0; a < k_sources; ++a) {
    for (size_t b = a + 1; b < k_sources; ++b) {
      // Count agreement patterns over the entries both sources claim.
      size_t agree_true = 0, agree_false = 0, disagree = 0;
      for (size_t i = 0; i < data.num_objects(); ++i) {
        for (size_t m = 0; m < data.num_properties(); ++m) {
          const Value& va = data.observations(a).Get(i, m);
          const Value& vb = data.observations(b).Get(i, m);
          if (va.is_missing() || vb.is_missing()) continue;
          const Value& truth = truths.Get(i, m);
          if (truth.is_missing()) continue;
          if (va == vb) {
            if (va == truth) {
              ++agree_true;
            } else {
              ++agree_false;
            }
          } else {
            ++disagree;
          }
        }
      }
      const size_t shared = agree_true + agree_false + disagree;
      if (shared < options.min_shared_entries) continue;

      // Likelihoods per Dong et al.: under independence the two sources
      // agree on the truth w.p. a1*a2 and on any particular false value
      // w.p. (1-a1)(1-a2)/n; under dependence a fraction c of claims is
      // copied verbatim (and therefore agrees), the rest behaves
      // independently.
      const double a1 = accuracy[a], a2 = accuracy[b];
      const double pt_ind = a1 * a2;
      const double pf_ind = (1.0 - a1) * (1.0 - a2) / n_false;
      const double pd_ind = std::max(1.0 - pt_ind - pf_ind, 1e-12);

      // Mean accuracy of a copied claim: the original's accuracy.
      const double pt_dep = c * std::max(a1, a2) + (1.0 - c) * pt_ind;
      const double pf_dep = c * (1.0 - std::max(a1, a2)) + (1.0 - c) * pf_ind;
      const double pd_dep = std::max(1.0 - pt_dep - pf_dep, 1e-12);

      double log_odds = log_prior_odds;
      log_odds += static_cast<double>(agree_true) * std::log(pt_dep / pt_ind);
      log_odds += static_cast<double>(agree_false) * std::log(pf_dep / pf_ind);
      log_odds += static_cast<double>(disagree) * std::log(pd_dep / pd_ind);

      // Posterior from the clamped log odds (avoids overflow).
      const double clamped = std::clamp(log_odds, -50.0, 50.0);
      const double posterior = 1.0 / (1.0 + std::exp(-clamped));
      result.copy_probability[a][b] = posterior;
      result.copy_probability[b][a] = posterior;
    }
  }

  // Cluster mutually dependent sources (union-find over pairs with
  // posterior > 0.5). Within each cluster the most accurate member is kept
  // as the representative at full weight; every other member — the likely
  // copiers, including copiers-of-copiers that look pairwise dependent on
  // each other — is discounted by its strongest dependence link.
  std::vector<size_t> parent(k_sources);
  for (size_t k = 0; k < k_sources; ++k) parent[k] = k;
  const std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (size_t a = 0; a < k_sources; ++a) {
    for (size_t b = a + 1; b < k_sources; ++b) {
      if (result.copy_probability[a][b] > 0.5) parent[find(a)] = find(b);
    }
  }
  std::vector<size_t> representative(k_sources);
  for (size_t k = 0; k < k_sources; ++k) representative[k] = k;
  for (size_t k = 0; k < k_sources; ++k) {
    const size_t root = find(k);
    if (accuracy[k] > accuracy[representative[root]]) representative[root] = k;
  }
  for (size_t k = 0; k < k_sources; ++k) {
    const size_t root = find(k);
    if (representative[root] == k) continue;  // cluster representative
    double strongest = 0.0;
    for (size_t j = 0; j < k_sources; ++j) {
      if (find(j) == root && j != k) {
        strongest = std::max(strongest, result.copy_probability[k][j]);
      }
    }
    result.independence[k] *= 1.0 - c * strongest;
  }
  return result;
}

Result<DependenceAwareResult> RunDependenceAwareCrh(
    const Dataset& data, const CrhOptions& crh_options,
    const DependenceOptions& dependence_options) {
  auto crh = RunCrh(data, crh_options);
  if (!crh.ok()) return crh.status();

  // Iterate detection and discounting: each round's cleaner truths expose
  // more of the copiers' shared false values (Dong et al. interleave the
  // same three estimates). Two extra rounds suffice in practice.
  DependenceAwareResult result;
  result.truths = crh->truths;
  result.adjusted_weights = crh->source_weights;
  for (int round = 0; round < 3; ++round) {
    auto dependence = DetectSourceDependence(data, result.truths, dependence_options);
    if (!dependence.ok()) return dependence.status();
    for (size_t k = 0; k < data.num_sources(); ++k) {
      result.adjusted_weights[k] = crh->source_weights[k] * dependence->independence[k];
    }
    result.truths = ComputeTruthsGivenWeights(data, result.adjusted_weights, crh_options);
    result.dependence = std::move(dependence).ValueOrDie();
  }
  return result;
}

}  // namespace crh
