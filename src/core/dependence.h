#ifndef CRH_CORE_DEPENDENCE_H_
#define CRH_CORE_DEPENDENCE_H_

/// \file dependence.h
/// Source-dependence (copy) detection and dependence-aware CRH.
///
/// The paper leaves source dependence as future work (Section 3.1.2, "we
/// do not consider source dependency in this paper but leave it for future
/// work"), pointing at Dong, Berti-Equille & Srivastava (VLDB 2009). This
/// module implements that direction:
///
///  * DetectSourceDependence — a Bayesian test per source pair. Two
///    independent sources agree on a *false* value only by accident
///    (probability (1-a1)(1-a2)/n for n false values per entry); a copier
///    reproduces its original's false values wholesale. The posterior
///    odds of dependence are computed from the counts of
///    agreements-on-truth, agreements-on-false and disagreements over the
///    entries both sources claim.
///  * RunDependenceAwareCrh — runs CRH, detects dependence against the
///    estimated truths, discounts the likely copier of each dependent
///    pair, and recomputes truths with the discounted weights. Copies then
///    no longer masquerade as independent confirmation.

#include <vector>

#include "common/status.h"
#include "core/crh.h"
#include "data/dataset.h"

namespace crh {

/// Options for the pairwise dependence test.
struct DependenceOptions {
  /// Prior probability that a given pair of sources is dependent.
  double prior = 0.2;
  /// Assumed probability that a copier copies (rather than independently
  /// observes) any particular value — `c` in Dong et al.
  double copy_rate = 0.8;
  /// Assumed number of distinct false values per entry (`n`).
  double false_value_count = 10.0;
  /// Pairs sharing fewer claimed entries than this are left independent
  /// (not enough evidence either way).
  size_t min_shared_entries = 5;
};

/// Result of DetectSourceDependence.
struct DependenceResult {
  /// copy_probability[a][b]: posterior probability that sources a and b
  /// are dependent (symmetric, zero diagonal).
  std::vector<std::vector<double>> copy_probability;
  /// Per-source vote discount in (0, 1]: the product over dependent pairs
  /// of (1 - copy_rate * P(dependent)), applied to the pair's less
  /// accurate member (the likely copier).
  std::vector<double> independence;
};

/// Detects pairwise source dependence given an estimate of the truths
/// (typically CRH output). Only discrete (categorical/text) properties
/// carry the false-value-agreement signal; continuous claims are compared
/// for exact equality, which on real data is equally diagnostic of copying.
[[nodiscard]]
Result<DependenceResult> DetectSourceDependence(const Dataset& data,
                                                const ValueTable& truths,
                                                const DependenceOptions& options = {});

/// Output of RunDependenceAwareCrh.
struct DependenceAwareResult {
  ValueTable truths;
  /// CRH weights after the copier discount.
  std::vector<double> adjusted_weights;
  /// The detection output (for inspection).
  DependenceResult dependence;
};

/// CRH with copy discounting: CRH -> dependence detection -> discounted
/// weights -> final truth pass.
[[nodiscard]] Result<DependenceAwareResult> RunDependenceAwareCrh(
    const Dataset& data, const CrhOptions& crh_options = {},
    const DependenceOptions& dependence_options = {});

}  // namespace crh

#endif  // CRH_CORE_DEPENDENCE_H_
