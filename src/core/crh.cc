#include "core/crh.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "analysis/invariants.h"
#include "common/check.h"
#include "core/resolvers.h"
#include "losses/loss.h"
#include "losses/text_distance.h"

namespace crh {

namespace {

/// Mutable solver state: hard truths plus, for the soft categorical model,
/// per-entry label distributions.
struct SolverState {
  ValueTable truths;
  // soft[m] is empty unless property m is categorical and the soft model is
  // active; otherwise an N x L_m row-major probability matrix.
  std::vector<std::vector<double>> soft;
  std::vector<size_t> num_labels;  // L_m per property (0 for continuous)
};

/// Property -> weight-group mapping for the configured granularity.
/// Returns the group of each property; sets *num_groups.
std::vector<size_t> BuildPropertyGroups(const Schema& schema, WeightGranularity granularity,
                                        size_t* num_groups) {
  const size_t m_props = schema.num_properties();
  std::vector<size_t> group(m_props, 0);
  switch (granularity) {
    case WeightGranularity::kGlobal:
      *num_groups = 1;
      return group;
    case WeightGranularity::kPerType: {
      // Dense group ids over the types actually present, in first-seen order.
      std::vector<int> type_group(3, -1);
      size_t next = 0;
      for (size_t m = 0; m < m_props; ++m) {
        const size_t type = static_cast<size_t>(schema.property(m).type);
        if (type_group[type] < 0) type_group[type] = static_cast<int>(next++);
        group[m] = static_cast<size_t>(type_group[type]);
      }
      *num_groups = next;
      return group;
    }
    case WeightGranularity::kPerProperty:
      for (size_t m = 0; m < m_props; ++m) group[m] = m;
      *num_groups = m_props;
      return group;
  }
  *num_groups = 1;
  return group;
}

/// Gathers the non-missing claims of all sources on entry (i, m).
void GatherClaims(const Dataset& data, size_t i, size_t m, std::vector<Value>* values,
                  std::vector<double>* weights, const std::vector<double>& w) {
  CRH_DCHECK_EQ(w.size(), data.num_sources());
  values->clear();
  weights->clear();
  for (size_t k = 0; k < data.num_sources(); ++k) {
    const Value& v = data.observations(k).Get(i, m);
    if (v.is_missing()) continue;
    values->push_back(v);
    weights->push_back(w[k]);
  }
}

/// Updates the truth (and soft distribution) of every entry given per-group
/// source weights; supervised cells are clamped to their labels.
void UpdateTruths(const Dataset& data, const std::vector<std::vector<double>>& group_weights,
                  const std::vector<size_t>& property_group, const CrhOptions& options,
                  SolverState* state) {
  const size_t n = data.num_objects();
  const size_t m_props = data.num_properties();
  std::vector<Value> claim_values;
  std::vector<double> claim_weights;
  std::vector<double> cont_values;
  std::vector<CategoryId> labels;

  for (size_t m = 0; m < m_props; ++m) {
    const PropertyType type = data.schema().property(m).type;
    const bool categorical = type == PropertyType::kCategorical;
    const bool soft = categorical && options.categorical_model == CategoricalModel::kSoftProbability;
    const std::vector<double>& weights = group_weights[property_group[m]];
    // Text truths: the claim minimizing the weighted total normalized edit
    // distance to all claims (the medoid induced by the text loss).
    const auto text_distance = [&data, m](const Value& a, const Value& b) {
      return NormalizedEditDistance(data.dict(m).label(a.category()),
                                    data.dict(m).label(b.category()));
    };
    for (size_t i = 0; i < n; ++i) {
      if (options.supervision != nullptr) {
        const Value& label = options.supervision->Get(i, m);
        if (!label.is_missing()) {
          state->truths.Set(i, m, label);
          continue;
        }
      }
      GatherClaims(data, i, m, &claim_values, &claim_weights, weights);
      if (claim_values.empty()) {
        state->truths.Set(i, m, Value::Missing());
        continue;
      }
      if (type == PropertyType::kText) {
        state->truths.Set(i, m, WeightedMedoid(claim_values, claim_weights, text_distance));
      } else if (categorical) {
        if (soft) {
          labels.clear();
          for (const Value& v : claim_values) labels.push_back(v.category());
          std::vector<double> dist =
              WeightedLabelDistribution(labels, claim_weights, state->num_labels[m]);
          const CategoryId mode = static_cast<CategoryId>(ArgMax(dist));
          std::copy(dist.begin(), dist.end(),
                    state->soft[m].begin() + static_cast<long>(i * state->num_labels[m]));
          state->truths.Set(i, m, Value::Categorical(mode));
        } else {
          state->truths.Set(i, m, WeightedVote(claim_values, claim_weights));
        }
      } else {
        cont_values.clear();
        for (const Value& v : claim_values) cont_values.push_back(v.continuous());
        double truth;
        if (options.continuous_model == ContinuousModel::kMedian) {
          truth = WeightedMedian(cont_values, claim_weights);
        } else {
          truth = WeightedMean(cont_values, claim_weights);
          if (std::isnan(truth)) {
            truth = WeightedMedian(cont_values, std::vector<double>(cont_values.size(), 1.0));
          }
        }
        state->truths.Set(i, m, Value::Continuous(truth));
      }
    }
  }
}

/// The per-claim loss of source k's claim on entry (i, m) under the
/// configured models, given the current state.
double ClaimLoss(const Dataset& data, const SolverState& state, const EntryStats& stats,
                 const CrhOptions& options, size_t i, size_t m, const Value& obs) {
  const PropertyType type = data.schema().property(m).type;
  if (type == PropertyType::kText) {
    const Value& truth = state.truths.Get(i, m);
    return NormalizedEditDistance(data.dict(m).label(truth.category()),
                                  data.dict(m).label(obs.category()));
  }
  if (type == PropertyType::kCategorical) {
    if (options.categorical_model == CategoricalModel::kSoftProbability) {
      const std::vector<double>& block = state.soft[m];
      const size_t l_m = state.num_labels[m];
      // View of the entry's distribution inside the property block.
      std::vector<double> dist(block.begin() + static_cast<long>(i * l_m),
                               block.begin() + static_cast<long>((i + 1) * l_m));
      return ProbVectorSquaredLoss(dist, obs.category());
    }
    return state.truths.Get(i, m) == obs ? 0.0 : 1.0;
  }
  const double diff = state.truths.Get(i, m).continuous() - obs.continuous();
  const double scale = stats.scale_at(i, m);
  CRH_DCHECK_GT(scale, 0.0);
  if (options.continuous_model == ContinuousModel::kMedian) {
    return std::abs(diff) / scale;
  }
  return diff * diff / scale;
}

/// Computes the K x M matrix of per-source per-property losses with the
/// configured observation-count and per-property normalizations applied.
std::vector<std::vector<double>> NormalizedLossMatrix(const Dataset& data,
                                                      const SolverState& state,
                                                      const EntryStats& stats,
                                                      const CrhOptions& options) {
  const size_t k_sources = data.num_sources();
  const size_t m_props = data.num_properties();
  const size_t n = data.num_objects();

  std::vector<std::vector<double>> loss(k_sources, std::vector<double>(m_props, 0.0));
  std::vector<std::vector<size_t>> count(k_sources, std::vector<size_t>(m_props, 0));
  for (size_t k = 0; k < k_sources; ++k) {
    const ValueTable& table = data.observations(k);
    for (size_t i = 0; i < n; ++i) {
      for (size_t m = 0; m < m_props; ++m) {
        const Value& obs = table.Get(i, m);
        if (obs.is_missing() || state.truths.Get(i, m).is_missing()) continue;
        loss[k][m] += ClaimLoss(data, state, stats, options, i, m, obs);
        ++count[k][m];
      }
    }
  }

  if (options.normalize_by_observation_count) {
    for (size_t k = 0; k < k_sources; ++k) {
      for (size_t m = 0; m < m_props; ++m) {
        if (count[k][m] > 0) loss[k][m] /= static_cast<double>(count[k][m]);
      }
    }
  }

  if (options.property_normalization != PropertyLossNormalization::kNone) {
    for (size_t m = 0; m < m_props; ++m) {
      double norm = 0.0;
      for (size_t k = 0; k < k_sources; ++k) {
        if (options.property_normalization == PropertyLossNormalization::kSum) {
          norm += loss[k][m];
        } else {
          norm = std::max(norm, loss[k][m]);
        }
      }
      if (norm > 0) {
        for (size_t k = 0; k < k_sources; ++k) loss[k][m] /= norm;
      }
    }
  }
  return loss;
}

/// Sums the normalized loss matrix over all properties (the global
/// per-source deviations feeding the weight update).
std::vector<double> AggregateSourceLosses(const Dataset& data, const SolverState& state,
                                          const EntryStats& stats, const CrhOptions& options) {
  const auto loss = NormalizedLossMatrix(data, state, stats, options);
  std::vector<double> totals(data.num_sources(), 0.0);
  for (size_t k = 0; k < data.num_sources(); ++k) {
    for (size_t m = 0; m < data.num_properties(); ++m) totals[k] += loss[k][m];
  }
  return totals;
}

/// Eq-1 objective with per-group weights: sum over claims of
/// w_{group(m), k} * ClaimLoss, evaluated with the hard categorical model.
/// This is exactly the functional the truth update minimizes entry by entry
/// given the weights, so it backs the truth-step descent certificate.
double GroupedObjective(const Dataset& data, const ValueTable& truths,
                        const std::vector<std::vector<double>>& group_weights,
                        const std::vector<size_t>& property_group, const EntryStats& stats,
                        const CrhOptions& options) {
  SolverState state;
  state.truths = truths;
  CrhOptions hard = options;
  hard.categorical_model = CategoricalModel::kVoting;

  double objective = 0.0;
  for (size_t k = 0; k < data.num_sources(); ++k) {
    const ValueTable& table = data.observations(k);
    for (size_t i = 0; i < data.num_objects(); ++i) {
      for (size_t m = 0; m < data.num_properties(); ++m) {
        const Value& obs = table.Get(i, m);
        if (obs.is_missing() || truths.Get(i, m).is_missing()) continue;
        objective += group_weights[property_group[m]][k] *
                     ClaimLoss(data, state, stats, hard, i, m, obs);
      }
    }
  }
  return objective;
}

}  // namespace

ValueTable ComputeTruthsGivenWeights(const Dataset& data, const std::vector<double>& weights,
                                     const CrhOptions& options) {
  SolverState state;
  state.truths = ValueTable(data.num_objects(), data.num_properties());
  state.num_labels.assign(data.num_properties(), 0);
  state.soft.assign(data.num_properties(), {});
  CrhOptions hard = options;
  hard.categorical_model = CategoricalModel::kVoting;
  const std::vector<size_t> groups(data.num_properties(), 0);
  UpdateTruths(data, {weights}, groups, hard, &state);
  return std::move(state.truths);
}

std::vector<double> ComputeSourceDeviations(const Dataset& data, const ValueTable& truths,
                                            const EntryStats& stats, const CrhOptions& options) {
  SolverState state;
  state.truths = truths;
  CrhOptions hard = options;
  hard.categorical_model = CategoricalModel::kVoting;
  return AggregateSourceLosses(data, state, stats, hard);
}

double CrhObjective(const Dataset& data, const ValueTable& truths,
                    const std::vector<double>& weights, const EntryStats& stats,
                    const CrhOptions& options) {
  // The raw objective uses hard truths; under the soft model this is the
  // 0-1 surrogate evaluated at the mode, which is what the history reports.
  SolverState state;
  state.truths = truths;
  CrhOptions hard = options;
  hard.categorical_model = CategoricalModel::kVoting;

  double objective = 0.0;
  for (size_t k = 0; k < data.num_sources(); ++k) {
    double source_total = 0.0;
    const ValueTable& table = data.observations(k);
    for (size_t i = 0; i < data.num_objects(); ++i) {
      for (size_t m = 0; m < data.num_properties(); ++m) {
        const Value& obs = table.Get(i, m);
        if (obs.is_missing() || truths.Get(i, m).is_missing()) continue;
        source_total += ClaimLoss(data, state, stats, hard, i, m, obs);
      }
    }
    objective += weights[k] * source_total;
  }
  return objective;
}

Result<CrhResult> RunCrh(const Dataset& data, const CrhOptions& options) {
  if (data.num_sources() == 0) {
    return Status::InvalidArgument("dataset has no sources");
  }
  if (data.num_entries() == 0) {
    return Status::InvalidArgument("dataset has no entries");
  }
  if (options.max_iterations < 1) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  if (options.supervision != nullptr &&
      (options.supervision->num_objects() != data.num_objects() ||
       options.supervision->num_properties() != data.num_properties())) {
    return Status::InvalidArgument("supervision table shape does not match dataset");
  }

  const size_t k_sources = data.num_sources();
  const EntryStats stats = ComputeEntryStats(data);

  // Observer priority: an explicitly configured observer wins; under a
  // CRH_VERIFY build every unobserved run gets the full invariant bundle.
  IterationObserver* observer = options.observer;
#ifdef CRH_VERIFY_BUILD
  InvariantVerifier default_verifier;
  if (observer == nullptr) observer = &default_verifier;
#endif

  size_t num_groups = 1;
  const std::vector<size_t> property_group =
      BuildPropertyGroups(data.schema(), options.weight_granularity, &num_groups);

  SolverState state;
  state.truths = ValueTable(data.num_objects(), data.num_properties());
  state.num_labels.assign(data.num_properties(), 0);
  state.soft.assign(data.num_properties(), {});
  for (size_t m = 0; m < data.num_properties(); ++m) {
    if (data.schema().is_categorical(m)) {
      // Every interned label is a possible truth; guarantee at least one
      // slot so distributions stay well-formed on empty dictionaries.
      state.num_labels[m] = std::max<size_t>(data.dict(m).size(), 1);
      if (options.categorical_model == CategoricalModel::kSoftProbability) {
        state.soft[m].assign(data.num_objects() * state.num_labels[m], 0.0);
      }
    }
  }

  // Step 0: initialize truths with uniform weights (Voting / Median / Mean).
  std::vector<std::vector<double>> group_weights(num_groups,
                                                 std::vector<double>(k_sources, 1.0));
  UpdateTruths(data, group_weights, property_group, options, &state);

  CrhResult result;
  double prev_objective = std::numeric_limits<double>::infinity();
  const bool observing = observer != nullptr;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Step I: source weight update (Eq 2 / Eq 5), one update per group.
    // When observed, the update's descent certificate (the exact functional
    // it minimizes, before vs after) is accumulated across groups.
    double weight_step_before = std::numeric_limits<double>::quiet_NaN();
    double weight_step_after = std::numeric_limits<double>::quiet_NaN();
    if (observing) weight_step_before = weight_step_after = 0.0;
    const auto loss_matrix = NormalizedLossMatrix(data, state, stats, options);
    for (size_t g = 0; g < num_groups; ++g) {
      std::vector<double> totals(k_sources, 0.0);
      for (size_t k = 0; k < k_sources; ++k) {
        for (size_t m = 0; m < data.num_properties(); ++m) {
          if (property_group[m] == g) totals[k] += loss_matrix[k][m];
        }
      }
      if (observing) {
        weight_step_before += WeightStepObjective(group_weights[g], totals, options.weight_scheme);
      }
      auto weights_result = ComputeSourceWeights(totals, options.weight_scheme);
      if (!weights_result.ok()) return weights_result.status();
      group_weights[g] = std::move(weights_result).ValueOrDie();
      CRH_VERIFY_OR_RETURN(group_weights[g].size() == k_sources,
                           "weight scheme returned a wrong-sized weight vector");
      if (observing) {
        weight_step_after += WeightStepObjective(group_weights[g], totals, options.weight_scheme);
      }
    }

    // Step II: truth update (Eq 3). The observed snapshot of the previous
    // truths backs the truth-step certificate.
    ValueTable truths_before_update;
    if (observing) truths_before_update = state.truths;
    UpdateTruths(data, group_weights, property_group, options, &state);

    // Convergence is judged on the mean-across-groups weights via the raw
    // objective (Eq 1).
    std::vector<double> mean_weights(k_sources, 0.0);
    for (size_t k = 0; k < k_sources; ++k) {
      for (size_t g = 0; g < num_groups; ++g) mean_weights[k] += group_weights[g][k];
      mean_weights[k] /= static_cast<double>(num_groups);
    }
    result.iterations = iter + 1;
    const double objective = CrhObjective(data, state.truths, mean_weights, stats, options);
    result.objective_history.push_back(objective);
    if (observing) {
      IterationSnapshot snapshot;
      snapshot.engine = "crh";
      snapshot.iteration = iter + 1;
      snapshot.data = &data;
      snapshot.truths = &state.truths;
      snapshot.weights = &mean_weights;
      snapshot.group_weights = &group_weights;
      snapshot.weight_scheme = &options.weight_scheme;
      snapshot.supervision = options.supervision;
      snapshot.objective = objective;
      snapshot.weight_step_before = weight_step_before;
      snapshot.weight_step_after = weight_step_after;
      snapshot.truth_step_before =
          GroupedObjective(data, truths_before_update, group_weights, property_group, stats,
                           options);
      snapshot.truth_step_after =
          GroupedObjective(data, state.truths, group_weights, property_group, stats, options);
      CRH_RETURN_NOT_OK(observer->OnIteration(snapshot));
    }
    const double denom = std::max(std::abs(prev_objective), 1.0);
    if (std::isfinite(prev_objective) &&
        std::abs(prev_objective - objective) / denom < options.convergence_tolerance) {
      result.converged = true;
      break;
    }
    prev_objective = objective;
  }

  result.truths = std::move(state.truths);
  result.property_group = property_group;
  result.source_weights.assign(k_sources, 0.0);
  for (size_t k = 0; k < k_sources; ++k) {
    for (size_t g = 0; g < num_groups; ++g) result.source_weights[k] += group_weights[g][k];
    result.source_weights[k] /= static_cast<double>(num_groups);
  }
  if (options.weight_granularity != WeightGranularity::kGlobal) {
    // fine_grained_weights is K x G.
    result.fine_grained_weights.assign(k_sources, std::vector<double>(num_groups, 0.0));
    for (size_t k = 0; k < k_sources; ++k) {
      for (size_t g = 0; g < num_groups; ++g) {
        result.fine_grained_weights[k][g] = group_weights[g][k];
      }
    }
  }
  if (options.categorical_model == CategoricalModel::kSoftProbability) {
    for (size_t m = 0; m < data.num_properties(); ++m) {
      if (!data.schema().is_categorical(m)) continue;
      SoftDistributions block;
      block.property = m;
      block.num_labels = state.num_labels[m];
      block.probabilities = std::move(state.soft[m]);
      result.soft_distributions.push_back(std::move(block));
    }
  }
  return result;
}

}  // namespace crh
