#include "core/crh.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>

#include "analysis/invariants.h"
#include "common/arena.h"
#include "common/check.h"
#include "common/hot.h"
#include "common/thread_pool.h"
#include "losses/loss.h"
#include "losses/resolvers.h"
#include "losses/text_distance.h"

namespace crh {

namespace {

/// Mutable solver state: hard truths plus, for the soft categorical model,
/// per-entry label distributions.
struct SolverState {
  ValueTable truths;
  // soft[m] is empty unless property m is categorical and the soft model is
  // active; otherwise an N x L_m row-major probability matrix.
  std::vector<std::vector<double>> soft;
  std::vector<size_t> num_labels;  // L_m per property (0 for continuous)
};

/// Read-only view of a candidate solution for loss evaluation. `soft` and
/// `num_labels` are null under the hard categorical model; when set, the
/// soft loss (Eq 11) is scored directly against the property blocks.
struct TruthView {
  const ValueTable* truths = nullptr;
  const std::vector<std::vector<double>>* soft = nullptr;
  const std::vector<size_t>* num_labels = nullptr;
};

// --- Deterministic shard grid ------------------------------------------------
//
// Every accumulation over claims is cut on a fixed grid of contiguous
// entry ranges whose boundaries depend only on the number of entries,
// never on the thread count. Each shard's partial is computed in entry
// order by exactly one worker, and partials are reduced in shard order —
// so the floating-point association tree is a property of the data shape
// and results are bit-identical at any thread count (including the
// sequential path, which walks the same shards in order).

constexpr size_t kMinEntriesPerShard = 1024;
constexpr size_t kMaxEntryShards = 64;

size_t NumEntryShards(size_t num_entries) {
  if (num_entries <= kMinEntriesPerShard) return 1;
  const size_t by_size = (num_entries + kMinEntriesPerShard - 1) / kMinEntriesPerShard;
  return std::min(kMaxEntryShards, by_size);
}

struct EntryRange {
  size_t begin = 0;
  size_t end = 0;
};

EntryRange ShardRange(size_t num_entries, size_t num_shards, size_t shard) {
  return {num_entries * shard / num_shards, num_entries * (shard + 1) / num_shards};
}

/// Runs fn(shard) for every shard; on the pool when one is available,
/// inline (in shard order) otherwise. Shard-to-worker assignment is static
/// (ThreadPool contract), so which worker runs a shard never affects what
/// the shard computes.
void RunShards(size_t num_shards, ThreadPool* pool, const std::function<void(size_t)>& fn) {
  if (pool != nullptr && pool->num_workers() > 1 && num_shards > 1) {
    pool->ParallelFor(num_shards, fn);
    return;
  }
  for (size_t s = 0; s < num_shards; ++s) fn(s);
}

}  // namespace

// --- Caller-owned solver scratch ---------------------------------------------
//
// Every buffer the per-iteration passes need is carved out of ONE bump
// arena per workspace (EnsureSolverScratch) and reused across iterations;
// the CRH_HOT shard kernels below only read and index into it.
// scripts/crh_analyzer.py (--check=hot) statically verifies the kernels
// stay allocation-, lock- and I/O-free. The structs have external linkage
// (not the anonymous namespace) only so SolverWorkspace::Impl can embed
// them without GCC's -Wsubobject-linkage tripping; they are private to
// this translation unit in every other respect.

/// Per-shard scratch: exactly one worker touches a shard's EntryScratch at
/// a time (static shard-to-worker assignment), so no synchronization. All
/// pointers are carves of the owning SolverScratch's arena.
struct EntryScratch {
  double* claim_weights = nullptr;  // per-claim source weights (gather)
  ResolverScratch resolver;
  EditDistanceScratch edit;
};

/// Whole-run scratch owned by the orchestrators. Flat partial buffers are
/// num_shards consecutive slices, reduced in shard order. Everything below
/// `arena` points into it.
struct SolverScratch {
  Arena arena;
  size_t num_shards = 0;
  std::vector<EntryScratch> per_shard;   // one per shard
  double* partial_loss = nullptr;        // num_shards x (K * M)
  uint32_t* partial_count = nullptr;     // num_shards x (K * M)
  double* partial_source = nullptr;      // num_shards x K
  double* partial_scalar = nullptr;      // num_shards
  double* loss = nullptr;                // K * M reduced + normalized matrix
  size_t* count = nullptr;               // K * M reduced observation counts
};

/// The workspace pimpl is exactly one SolverScratch.
struct SolverWorkspace::Impl {
  SolverScratch scratch;
};

SolverWorkspace::SolverWorkspace() : impl_(std::make_unique<Impl>()) {}
SolverWorkspace::~SolverWorkspace() = default;
SolverWorkspace::SolverWorkspace(SolverWorkspace&&) noexcept = default;
SolverWorkspace& SolverWorkspace::operator=(SolverWorkspace&&) noexcept = default;

namespace {

/// Sizes \p scratch for the dataset: computes the whole byte budget —
/// shard grid, the largest claim span any entry has (O(1) via
/// ClaimIndex::max_span_size), the longest text label — then reserves the
/// arena ONCE and re-carves every buffer in a fixed order. Runs once per
/// solver entry point, outside every hot loop; with a reused workspace the
/// steady state is zero allocations (Reserve only grows).
void EnsureSolverScratch(const Dataset& data, const ClaimIndex& index,
                         SolverScratch* scratch) {
  const size_t k_sources = data.num_sources();
  const size_t m_props = data.num_properties();
  const size_t num_shards = NumEntryShards(index.num_entries());
  scratch->num_shards = num_shards;

  const size_t max_claims = index.max_span_size();
  size_t max_label_len = 0;
  for (size_t m = 0; m < m_props; ++m) {
    if (data.schema().property(m).type != PropertyType::kText) continue;
    const CategoryDict& dict = data.dict(m);
    for (size_t id = 0; id < dict.size(); ++id) {
      max_label_len = std::max(max_label_len, dict.label(static_cast<CategoryId>(id)).size());
    }
  }

  const size_t cells = k_sources * m_props;
  size_t bytes = 0;
  bytes += num_shards * (Arena::BytesFor<double>(max_claims) +
                         ResolverScratch::BytesNeeded(max_claims) +
                         EditDistanceScratch::BytesNeeded(max_label_len));
  bytes += Arena::BytesFor<double>(num_shards * cells);    // partial_loss
  bytes += Arena::BytesFor<uint32_t>(num_shards * cells);  // partial_count
  bytes += Arena::BytesFor<double>(num_shards * k_sources);
  bytes += Arena::BytesFor<double>(num_shards);
  bytes += Arena::BytesFor<double>(cells);
  bytes += Arena::BytesFor<size_t>(cells);
  scratch->arena.Reserve(bytes);

  if (scratch->per_shard.size() != num_shards) {
    scratch->per_shard.clear();
    scratch->per_shard.resize(num_shards);
  }
  for (EntryScratch& shard : scratch->per_shard) {
    shard.claim_weights = scratch->arena.Carve<double>(max_claims);
    shard.resolver.CarveFrom(scratch->arena, max_claims);
    shard.edit.CarveFrom(scratch->arena, max_label_len);
  }
  scratch->partial_loss = scratch->arena.Carve<double>(num_shards * cells);
  scratch->partial_count = scratch->arena.Carve<uint32_t>(num_shards * cells);
  scratch->partial_source = scratch->arena.Carve<double>(num_shards * k_sources);
  scratch->partial_scalar = scratch->arena.Carve<double>(num_shards);
  scratch->loss = scratch->arena.Carve<double>(cells);
  scratch->count = scratch->arena.Carve<size_t>(cells);
}

/// Property -> weight-group mapping for the configured granularity.
/// Returns the group of each property; sets *num_groups.
std::vector<size_t> BuildPropertyGroups(const Schema& schema, WeightGranularity granularity,
                                        size_t* num_groups) {
  const size_t m_props = schema.num_properties();
  std::vector<size_t> group(m_props, 0);
  switch (granularity) {
    case WeightGranularity::kGlobal:
      *num_groups = 1;
      return group;
    case WeightGranularity::kPerType: {
      // Dense group ids over the types actually present, in first-seen order.
      std::vector<int> type_group(3, -1);
      size_t next = 0;
      for (size_t m = 0; m < m_props; ++m) {
        const size_t type = static_cast<size_t>(schema.property(m).type);
        if (type_group[type] < 0) type_group[type] = static_cast<int>(next++);
        group[m] = static_cast<size_t>(type_group[type]);
      }
      *num_groups = next;
      return group;
    }
    case WeightGranularity::kPerProperty:
      for (size_t m = 0; m < m_props; ++m) group[m] = m;
      *num_groups = m_props;
      return group;
  }
  *num_groups = 1;
  return group;
}

// --- CRH_HOT shard kernels ---------------------------------------------------

/// Truth update (Eq 3) of one entry, resolved through the span primitives
/// over the index's SoA lanes against caller-owned scratch. Bit-identical
/// to the allocating resolvers it replaced (same candidate order,
/// association order and tie-breaks); the label/numeric lane kernels are
/// in turn bit-identical to the Value-gathering forms they replaced (see
/// losses/resolvers.h). \p soft / \p num_labels may be null when no
/// property has the soft model active.
CRH_HOT void ResolveEntryTruth(const Dataset& data, const std::vector<PropertyType>& types,
                               const std::vector<char>& soft_active,
                               const std::vector<const std::vector<double>*>& weights_for,
                               const CrhOptions& options, size_t i, size_t m,
                               const ClaimSpan& span, EntryScratch& scratch, ValueTable* truths,
                               std::vector<std::vector<double>>* soft,
                               const std::vector<size_t>* num_labels) {
  if (options.supervision != nullptr) {
    const Value& label = options.supervision->Get(i, m);
    if (!label.is_missing()) {
      truths->Set(i, m, label);
      return;
    }
  }
  if (span.empty()) {
    truths->Set(i, m, Value::Missing());
    return;
  }
  const std::vector<double>& weights = *weights_for[m];
  double* claim_weights = scratch.claim_weights;
  for (size_t c = 0; c < span.size; ++c) claim_weights[c] = weights[span.sources[c]];

  if (types[m] == PropertyType::kText) {
    // Text truths: the claim minimizing the weighted total normalized
    // edit distance to all claims (the medoid induced by the text loss).
    const CategoryDict& dict = data.dict(m);
    EditDistanceScratch& edit = scratch.edit;
    truths->Set(i, m,
                Value::Categorical(WeightedMedoidLabelsSpan(
                    span.labels, claim_weights, span.size, scratch.resolver,
                    [&dict, &edit](CategoryId a, CategoryId b) {
                      return NormalizedEditDistanceSpan(dict.label(a), dict.label(b), edit);
                    })));
  } else if (types[m] == PropertyType::kCategorical) {
    if (soft_active[m]) {
      const size_t l_m = (*num_labels)[m];
      double* dist = (*soft)[m].data() + i * l_m;
      WeightedLabelDistributionSpan(span.labels, claim_weights, span.size, dist, l_m);
      truths->Set(i, m, Value::Categorical(static_cast<CategoryId>(ArgMaxSpan(dist, l_m))));
    } else {
      truths->Set(i, m, Value::Categorical(WeightedVoteLabelsSpan(span.labels, claim_weights,
                                                                  span.size, scratch.resolver)));
    }
  } else {
    double truth;
    if (options.continuous_model == ContinuousModel::kMedian) {
      truth = WeightedMedianSpan(span.numeric, claim_weights, span.size, scratch.resolver);
    } else {
      truth = WeightedMeanSpan(span.numeric, claim_weights, span.size);
      if (std::isnan(truth)) {
        // Zero total weight: null weights select the uniform median.
        truth = WeightedMedianSpan(span.numeric, nullptr, span.size, scratch.resolver);
      }
    }
    truths->Set(i, m, Value::Continuous(truth));
  }
}

/// Eq 3 over one shard's contiguous entry range. The (i, m) coordinates
/// advance incrementally — no per-entry divide.
CRH_HOT void UpdateTruthsShard(const Dataset& data, const ClaimIndex& index,
                               const std::vector<PropertyType>& types,
                               const std::vector<char>& soft_active,
                               const std::vector<const std::vector<double>*>& weights_for,
                               const CrhOptions& options, EntryRange range, size_t m_props,
                               EntryScratch& scratch, SolverState* state) {
  size_t i = range.begin / m_props;
  size_t m = range.begin % m_props;
  for (size_t e = range.begin; e < range.end; ++e) {
    ResolveEntryTruth(data, types, soft_active, weights_for, options, i, m, index.entry(e),
                      scratch, &state->truths, &state->soft, &state->num_labels);
    if (++m == m_props) {
      m = 0;
      ++i;
    }
  }
}

/// Eq 3 over one shard of an explicit entry-id list (the delta re-solver's
/// dirty set): positions [range.begin, range.end) of \p entries.
CRH_HOT void UpdateTruthsListShard(const Dataset& data, const ClaimIndex& index,
                                   const std::vector<PropertyType>& types,
                                   const std::vector<char>& soft_active,
                                   const std::vector<const std::vector<double>*>& weights_for,
                                   const CrhOptions& options, const size_t* entries,
                                   EntryRange range, size_t m_props, EntryScratch& scratch,
                                   ValueTable* truths) {
  for (size_t p = range.begin; p < range.end; ++p) {
    const size_t e = entries[p];
    ResolveEntryTruth(data, types, soft_active, weights_for, options, e / m_props, e % m_props,
                      index.entry(e), scratch, truths, nullptr, nullptr);
  }
}

/// Streams the per-claim losses of one entry into \p sink(c, source, loss)
/// — the shared body of the loss-matrix, grouped-objective and objective
/// kernels. The per-entry invariants (property type, truth value, entry
/// scale, truth label string, soft-distribution row) are hoisted out of
/// the claim loop, so each branch's inner loop streams the SoA lanes
/// (span.numeric / span.labels) branch-free; the continuous loops
/// auto-vectorize cleanly. The arithmetic per claim is unchanged from the
/// per-claim form (in particular the division by scale stays a division),
/// so results are bit-identical.
template <typename Sink>
CRH_HOT void AccumulateEntryLosses(const Dataset& data, const TruthView& view,
                                   const EntryStats& stats, ContinuousModel continuous_model,
                                   size_t i, size_t m, const ClaimSpan& span,
                                   EditDistanceScratch& edit, const Sink& sink) {
  const PropertyType type = data.schema().property(m).type;
  if (type == PropertyType::kText) {
    const CategoryDict& dict = data.dict(m);
    const std::string& truth_label = dict.label(view.truths->Get(i, m).category());
    for (size_t c = 0; c < span.size; ++c) {
      sink(c, span.sources[c],
           NormalizedEditDistanceSpan(truth_label, dict.label(span.labels[c]), edit));
    }
    return;
  }
  if (type == PropertyType::kCategorical) {
    if (view.soft != nullptr) {
      const size_t l_m = (*view.num_labels)[m];
      const double* dist = (*view.soft)[m].data() + i * l_m;
      for (size_t c = 0; c < span.size; ++c) {
        sink(c, span.sources[c], ProbVectorSquaredLoss(dist, l_m, span.labels[c]));
      }
      return;
    }
    const CategoryId truth_label = view.truths->Get(i, m).category();
    for (size_t c = 0; c < span.size; ++c) {
      sink(c, span.sources[c], span.labels[c] == truth_label ? 0.0 : 1.0);
    }
    return;
  }
  const double truth = view.truths->Get(i, m).continuous();
  const double scale = stats.scale_at(i, m);
  CRH_DCHECK_GT(scale, 0.0);
  if (continuous_model == ContinuousModel::kMedian) {
    for (size_t c = 0; c < span.size; ++c) {
      sink(c, span.sources[c], std::abs(truth - span.numeric[c]) / scale);
    }
    return;
  }
  for (size_t c = 0; c < span.size; ++c) {
    const double diff = truth - span.numeric[c];
    sink(c, span.sources[c], diff * diff / scale);
  }
}

/// One shard of the normalized loss matrix: accumulates per-cell loss and
/// observation counts over the shard's claims into caller-owned slices
/// (zeroed here — the kernel owns its whole slice).
CRH_HOT void LossMatrixShard(const Dataset& data, const ClaimIndex& index,
                             const TruthView& view, const EntryStats& stats,
                             ContinuousModel continuous_model, EntryRange range,
                             size_t m_props, double* loss, uint32_t* count, size_t cells,
                             EntryScratch& scratch) {
  std::fill(loss, loss + cells, 0.0);
  std::fill(count, count + cells, 0u);
  size_t i = range.begin / m_props;
  size_t m = range.begin % m_props;
  for (size_t e = range.begin; e < range.end; ++e) {
    const ClaimSpan span = index.entry(e);
    if (!span.empty() && !view.truths->Get(i, m).is_missing()) {
      AccumulateEntryLosses(data, view, stats, continuous_model, i, m, span, scratch.edit,
                            [&](size_t, uint32_t src, double claim_loss) {
                              const size_t cell = src * m_props + m;
                              loss[cell] += claim_loss;
                              ++count[cell];
                            });
    }
    if (++m == m_props) {
      m = 0;
      ++i;
    }
  }
}

/// One shard of the grouped (Eq 1, per-group weights) objective.
CRH_HOT double GroupedObjectiveShard(const Dataset& data, const ClaimIndex& index,
                                     const TruthView& view, const EntryStats& stats,
                                     ContinuousModel continuous_model,
                                     const std::vector<std::vector<double>>& group_weights,
                                     const std::vector<size_t>& property_group,
                                     EntryRange range, size_t m_props, EntryScratch& scratch) {
  double objective = 0.0;
  size_t i = range.begin / m_props;
  size_t m = range.begin % m_props;
  for (size_t e = range.begin; e < range.end; ++e) {
    const ClaimSpan span = index.entry(e);
    if (!span.empty() && !view.truths->Get(i, m).is_missing()) {
      const std::vector<double>& weights = group_weights[property_group[m]];
      AccumulateEntryLosses(data, view, stats, continuous_model, i, m, span, scratch.edit,
                            [&](size_t, uint32_t src, double claim_loss) {
                              objective += weights[src] * claim_loss;
                            });
    }
    if (++m == m_props) {
      m = 0;
      ++i;
    }
  }
  return objective;
}

/// One shard of the raw objective's per-source loss totals, written into a
/// caller-owned K-length slice.
CRH_HOT void ObjectiveShard(const Dataset& data, const ClaimIndex& index,
                            const TruthView& view, const EntryStats& stats,
                            ContinuousModel continuous_model, EntryRange range,
                            size_t m_props, double* totals, size_t k_sources,
                            EntryScratch& scratch) {
  std::fill(totals, totals + k_sources, 0.0);
  size_t i = range.begin / m_props;
  size_t m = range.begin % m_props;
  for (size_t e = range.begin; e < range.end; ++e) {
    const ClaimSpan span = index.entry(e);
    if (!span.empty() && !view.truths->Get(i, m).is_missing()) {
      AccumulateEntryLosses(
          data, view, stats, continuous_model, i, m, span, scratch.edit,
          [&](size_t, uint32_t src, double claim_loss) { totals[src] += claim_loss; });
    }
    if (++m == m_props) {
      m = 0;
      ++i;
    }
  }
}

// --- Orchestrators -----------------------------------------------------------
//
// Not CRH_HOT: they own the scratch, build the per-property dispatch
// tables, and run the kernels across the (possibly pooled) shard grid.

/// Updates the truth (and soft distribution) of every entry given per-group
/// source weights; supervised cells are clamped to their labels. Iterates
/// the claim index — O(claims), not O(K * N * M) — and shards the entry
/// space across the pool (every entry is independent, so no reduction).
void UpdateTruths(const Dataset& data, const ClaimIndex& index,
                  const std::vector<std::vector<double>>& group_weights,
                  const std::vector<size_t>& property_group, const CrhOptions& options,
                  ThreadPool* pool, SolverScratch& scratch, SolverState* state) {
  const size_t m_props = data.num_properties();
  const size_t num_entries = index.num_entries();

  // Per-property dispatch, resolved once instead of per entry.
  std::vector<PropertyType> types(m_props);
  std::vector<char> soft_active(m_props, 0);
  std::vector<const std::vector<double>*> weights_for(m_props);
  for (size_t m = 0; m < m_props; ++m) {
    types[m] = data.schema().property(m).type;
    soft_active[m] = types[m] == PropertyType::kCategorical &&
                     options.categorical_model == CategoricalModel::kSoftProbability;
    weights_for[m] = &group_weights[property_group[m]];
  }

  const size_t num_shards = scratch.num_shards;
  RunShards(num_shards, pool, [&](size_t shard) {
    UpdateTruthsShard(data, index, types, soft_active, weights_for, options,
                      ShardRange(num_entries, num_shards, shard), m_props,
                      scratch.per_shard[shard], state);
  });
}

/// Computes the K x M matrix of per-source per-property losses with the
/// configured observation-count and per-property normalizations applied,
/// into scratch.loss (row-major K x M). Claim-major: one pass over the
/// index's present claims, sharded with flat per-shard partial slices
/// reduced in shard order.
void NormalizedLossMatrix(const Dataset& data, const ClaimIndex& index, const TruthView& view,
                          const EntryStats& stats, const CrhOptions& options,
                          ThreadPool* pool, SolverScratch& scratch) {
  const size_t k_sources = data.num_sources();
  const size_t m_props = data.num_properties();
  const size_t num_entries = index.num_entries();
  const size_t num_shards = scratch.num_shards;
  const size_t cells = k_sources * m_props;

  RunShards(num_shards, pool, [&](size_t shard) {
    LossMatrixShard(data, index, view, stats, options.continuous_model,
                    ShardRange(num_entries, num_shards, shard), m_props,
                    scratch.partial_loss + shard * cells,
                    scratch.partial_count + shard * cells, cells,
                    scratch.per_shard[shard]);
  });

  // Ordered reduction: shard partials combine in shard order.
  double* loss = scratch.loss;
  size_t* count = scratch.count;
  std::fill(loss, loss + cells, 0.0);
  std::fill(count, count + cells, size_t{0});
  for (size_t shard = 0; shard < num_shards; ++shard) {
    const double* shard_loss = scratch.partial_loss + shard * cells;
    const uint32_t* shard_count = scratch.partial_count + shard * cells;
    for (size_t cell = 0; cell < cells; ++cell) {
      loss[cell] += shard_loss[cell];
      count[cell] += shard_count[cell];
    }
  }

  if (options.normalize_by_observation_count) {
    for (size_t cell = 0; cell < cells; ++cell) {
      if (count[cell] > 0) loss[cell] /= static_cast<double>(count[cell]);
    }
  }

  if (options.property_normalization != PropertyLossNormalization::kNone) {
    for (size_t m = 0; m < m_props; ++m) {
      double norm = 0.0;
      for (size_t k = 0; k < k_sources; ++k) {
        if (options.property_normalization == PropertyLossNormalization::kSum) {
          norm += loss[k * m_props + m];
        } else {
          norm = std::max(norm, loss[k * m_props + m]);
        }
      }
      if (norm > 0) {
        for (size_t k = 0; k < k_sources; ++k) loss[k * m_props + m] /= norm;
      }
    }
  }
}

/// Sums the normalized loss matrix over all properties (the global
/// per-source deviations feeding the weight update).
std::vector<double> AggregateSourceLosses(const Dataset& data, const ClaimIndex& index,
                                          const TruthView& view, const EntryStats& stats,
                                          const CrhOptions& options, ThreadPool* pool,
                                          SolverScratch& scratch) {
  NormalizedLossMatrix(data, index, view, stats, options, pool, scratch);
  const size_t m_props = data.num_properties();
  std::vector<double> totals(data.num_sources(), 0.0);
  for (size_t k = 0; k < data.num_sources(); ++k) {
    for (size_t m = 0; m < m_props; ++m) totals[k] += scratch.loss[k * m_props + m];
  }
  return totals;
}

/// Eq-1 objective with per-group weights: sum over claims of
/// w_{group(m), k} * ClaimLoss, evaluated with the hard categorical model.
/// This is exactly the functional the truth update minimizes entry by entry
/// given the weights, so it backs the truth-step descent certificate.
double GroupedObjective(const Dataset& data, const ClaimIndex& index, const ValueTable& truths,
                        const std::vector<std::vector<double>>& group_weights,
                        const std::vector<size_t>& property_group, const EntryStats& stats,
                        const CrhOptions& options, ThreadPool* pool, SolverScratch& scratch) {
  const TruthView view{&truths, nullptr, nullptr};
  const size_t m_props = data.num_properties();
  const size_t num_entries = index.num_entries();
  const size_t num_shards = scratch.num_shards;

  RunShards(num_shards, pool, [&](size_t shard) {
    scratch.partial_scalar[shard] = GroupedObjectiveShard(
        data, index, view, stats, options.continuous_model, group_weights, property_group,
        ShardRange(num_entries, num_shards, shard), m_props, scratch.per_shard[shard]);
  });

  double objective = 0.0;
  for (size_t shard = 0; shard < num_shards; ++shard) objective += scratch.partial_scalar[shard];
  return objective;
}

/// Raw Eq-1 objective over a prebuilt index: per-source loss totals
/// accumulated claim-major (sharded, ordered reduction), then the weighted
/// sum over sources.
double CrhObjectiveOverIndex(const Dataset& data, const ClaimIndex& index,
                             const ValueTable& truths, const std::vector<double>& weights,
                             const EntryStats& stats, const CrhOptions& options,
                             ThreadPool* pool, SolverScratch& scratch) {
  // The raw objective uses hard truths; under the soft model this is the
  // 0-1 surrogate evaluated at the mode, which is what the history reports.
  const TruthView view{&truths, nullptr, nullptr};
  const size_t k_sources = data.num_sources();
  const size_t m_props = data.num_properties();
  const size_t num_entries = index.num_entries();
  const size_t num_shards = scratch.num_shards;

  RunShards(num_shards, pool, [&](size_t shard) {
    ObjectiveShard(data, index, view, stats, options.continuous_model,
                   ShardRange(num_entries, num_shards, shard), m_props,
                   scratch.partial_source + shard * k_sources, k_sources,
                   scratch.per_shard[shard]);
  });

  double objective = 0.0;
  for (size_t k = 0; k < k_sources; ++k) {
    double total = 0.0;
    for (size_t shard = 0; shard < num_shards; ++shard) {
      total += scratch.partial_source[shard * k_sources + k];
    }
    objective += weights[k] * total;
  }
  return objective;
}

/// Transient pool for the convenience entry points that take no pool:
/// null (sequential) unless the options ask for more than one thread.
std::unique_ptr<ThreadPool> MakePoolForOptions(const CrhOptions& options) {
  if (ThreadPool::ResolveNumThreads(options.num_threads) <= 1) return nullptr;
  return std::make_unique<ThreadPool>(options.num_threads);
}

ValueTable ComputeTruthsImpl(const Dataset& data, const ClaimIndex& index,
                             const std::vector<double>& weights, const CrhOptions& options,
                             ThreadPool* pool, SolverScratch& scratch) {
  SolverState state;
  state.truths = ValueTable(data.num_objects(), data.num_properties());
  state.num_labels.assign(data.num_properties(), 0);
  state.soft.assign(data.num_properties(), {});
  CrhOptions hard = options;
  hard.categorical_model = CategoricalModel::kVoting;
  const std::vector<size_t> groups(data.num_properties(), 0);
  EnsureSolverScratch(data, index, &scratch);
  UpdateTruths(data, index, {weights}, groups, hard, pool, scratch, &state);
  return std::move(state.truths);
}

}  // namespace

ValueTable ComputeTruthsGivenWeights(const Dataset& data, const ClaimIndex& index,
                                     const std::vector<double>& weights,
                                     const CrhOptions& options, ThreadPool* pool) {
  SolverScratch scratch;
  return ComputeTruthsImpl(data, index, weights, options, pool, scratch);
}

ValueTable ComputeTruthsGivenWeights(const Dataset& data, const ClaimIndex& index,
                                     const std::vector<double>& weights,
                                     const CrhOptions& options, ThreadPool* pool,
                                     SolverWorkspace& workspace) {
  return ComputeTruthsImpl(data, index, weights, options, pool, workspace.impl().scratch);
}

ValueTable ComputeTruthsGivenWeights(const Dataset& data, const std::vector<double>& weights,
                                     const CrhOptions& options) {
  const ClaimIndex index = ClaimIndex::Build(data);
  const std::unique_ptr<ThreadPool> pool = MakePoolForOptions(options);
  return ComputeTruthsGivenWeights(data, index, weights, options, pool.get());
}

void UpdateTruthsForEntries(const Dataset& data, const ClaimIndex& index,
                            const std::vector<size_t>& entries,
                            const std::vector<double>& weights, const CrhOptions& options,
                            ThreadPool* pool, SolverWorkspace& workspace, ValueTable* truths) {
  CRH_CHECK(truths != nullptr);
  CRH_CHECK_EQ(truths->num_objects(), data.num_objects());
  CRH_CHECK_EQ(truths->num_properties(), data.num_properties());
  if (entries.empty()) return;
  SolverScratch& scratch = workspace.impl().scratch;
  EnsureSolverScratch(data, index, &scratch);

  CrhOptions hard = options;
  hard.categorical_model = CategoricalModel::kVoting;
  const size_t m_props = data.num_properties();
  std::vector<PropertyType> types(m_props);
  for (size_t m = 0; m < m_props; ++m) types[m] = data.schema().property(m).type;
  const std::vector<char> soft_active(m_props, 0);
  const std::vector<const std::vector<double>*> weights_for(m_props, &weights);

  // Shard over list positions; entries are independent, so the list grid
  // (a function of the list length only) is as deterministic as the full
  // grid. NumEntryShards is monotone, so the per-shard scratch sized for
  // the full entry grid always covers the list grid.
  const size_t num_positions = entries.size();
  const size_t num_shards = NumEntryShards(num_positions);
  CRH_DCHECK_LE(num_shards, scratch.num_shards);
  RunShards(num_shards, pool, [&](size_t shard) {
    UpdateTruthsListShard(data, index, types, soft_active, weights_for, hard, entries.data(),
                          ShardRange(num_positions, num_shards, shard), m_props,
                          scratch.per_shard[shard], truths);
  });
}

std::vector<double> ComputeSourceDeviations(const Dataset& data, const ClaimIndex& index,
                                            const ValueTable& truths, const EntryStats& stats,
                                            const CrhOptions& options, ThreadPool* pool) {
  const TruthView view{&truths, nullptr, nullptr};
  SolverScratch scratch;
  EnsureSolverScratch(data, index, &scratch);
  return AggregateSourceLosses(data, index, view, stats, options, pool, scratch);
}

std::vector<double> ComputeSourceDeviations(const Dataset& data, const ClaimIndex& index,
                                            const ValueTable& truths, const EntryStats& stats,
                                            const CrhOptions& options, ThreadPool* pool,
                                            SolverWorkspace& workspace) {
  const TruthView view{&truths, nullptr, nullptr};
  SolverScratch& scratch = workspace.impl().scratch;
  EnsureSolverScratch(data, index, &scratch);
  return AggregateSourceLosses(data, index, view, stats, options, pool, scratch);
}

std::vector<double> ComputeSourceDeviations(const Dataset& data, const ValueTable& truths,
                                            const EntryStats& stats, const CrhOptions& options) {
  const ClaimIndex index = ClaimIndex::Build(data);
  const std::unique_ptr<ThreadPool> pool = MakePoolForOptions(options);
  return ComputeSourceDeviations(data, index, truths, stats, options, pool.get());
}

double CrhObjective(const Dataset& data, const ValueTable& truths,
                    const std::vector<double>& weights, const EntryStats& stats,
                    const CrhOptions& options) {
  const ClaimIndex index = ClaimIndex::Build(data);
  const std::unique_ptr<ThreadPool> pool = MakePoolForOptions(options);
  SolverScratch scratch;
  EnsureSolverScratch(data, index, &scratch);
  return CrhObjectiveOverIndex(data, index, truths, weights, stats, options, pool.get(),
                               scratch);
}

Result<CrhResult> RunCrh(const Dataset& data, const CrhOptions& options) {
  if (data.num_sources() == 0) {
    return Status::InvalidArgument("dataset has no sources");
  }
  if (data.num_entries() == 0) {
    return Status::InvalidArgument("dataset has no entries");
  }
  if (options.max_iterations < 1) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  if (options.num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }
  if (options.supervision != nullptr &&
      (options.supervision->num_objects() != data.num_objects() ||
       options.supervision->num_properties() != data.num_properties())) {
    return Status::InvalidArgument("supervision table shape does not match dataset");
  }

  const size_t k_sources = data.num_sources();
  const size_t m_props = data.num_properties();
  const EntryStats stats = ComputeEntryStats(data);
  // Built once per run: every per-iteration pass below iterates present
  // claims only (the paper's per-iteration bound), never the dense grid.
  const ClaimIndex index = ClaimIndex::Build(data);
  const std::unique_ptr<ThreadPool> pool_storage = MakePoolForOptions(options);
  ThreadPool* const pool = pool_storage.get();

  // All per-iteration buffers live here, allocated once; the iteration
  // loop itself performs no scratch allocation.
  SolverScratch scratch;
  EnsureSolverScratch(data, index, &scratch);

  // Observer priority: an explicitly configured observer wins; under a
  // CRH_VERIFY build every unobserved run gets the full invariant bundle.
  IterationObserver* observer = options.observer;
#ifdef CRH_VERIFY_BUILD
  InvariantVerifier default_verifier;
  if (observer == nullptr) observer = &default_verifier;
#endif

  size_t num_groups = 1;
  const std::vector<size_t> property_group =
      BuildPropertyGroups(data.schema(), options.weight_granularity, &num_groups);

  SolverState state;
  state.truths = ValueTable(data.num_objects(), data.num_properties());
  state.num_labels.assign(data.num_properties(), 0);
  state.soft.assign(data.num_properties(), {});
  const bool soft_model = options.categorical_model == CategoricalModel::kSoftProbability;
  for (size_t m = 0; m < data.num_properties(); ++m) {
    if (data.schema().is_categorical(m)) {
      // Every interned label is a possible truth; guarantee at least one
      // slot so distributions stay well-formed on empty dictionaries.
      state.num_labels[m] = std::max<size_t>(data.dict(m).size(), 1);
      if (soft_model) {
        state.soft[m].assign(data.num_objects() * state.num_labels[m], 0.0);
      }
    }
  }
  // The weight step scores claims against the solver's live state (soft
  // distributions when the soft model is active); the objective history and
  // the descent certificates use the hard view of the same truths.
  const TruthView state_view{&state.truths, soft_model ? &state.soft : nullptr,
                             soft_model ? &state.num_labels : nullptr};

  // Step 0: initialize truths with uniform weights (Voting / Median / Mean).
  std::vector<std::vector<double>> group_weights(num_groups,
                                                 std::vector<double>(k_sources, 1.0));
  UpdateTruths(data, index, group_weights, property_group, options, pool, scratch, &state);

  CrhResult result;
  double prev_objective = std::numeric_limits<double>::infinity();
  const bool observing = observer != nullptr;
  std::vector<double> totals(k_sources, 0.0);
  std::vector<double> mean_weights(k_sources, 0.0);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Step I: source weight update (Eq 2 / Eq 5), one update per group.
    // When observed, the update's descent certificate (the exact functional
    // it minimizes, before vs after) is accumulated across groups.
    double weight_step_before = std::numeric_limits<double>::quiet_NaN();
    double weight_step_after = std::numeric_limits<double>::quiet_NaN();
    if (observing) weight_step_before = weight_step_after = 0.0;
    NormalizedLossMatrix(data, index, state_view, stats, options, pool, scratch);
    for (size_t g = 0; g < num_groups; ++g) {
      std::fill(totals.begin(), totals.end(), 0.0);
      for (size_t k = 0; k < k_sources; ++k) {
        for (size_t m = 0; m < m_props; ++m) {
          if (property_group[m] == g) totals[k] += scratch.loss[k * m_props + m];
        }
      }
      if (observing) {
        weight_step_before += WeightStepObjective(group_weights[g], totals, options.weight_scheme);
      }
      auto weights_result = ComputeSourceWeights(totals, options.weight_scheme);
      if (!weights_result.ok()) return weights_result.status();
      group_weights[g] = std::move(weights_result).ValueOrDie();
      CRH_VERIFY_OR_RETURN(group_weights[g].size() == k_sources,
                           "weight scheme returned a wrong-sized weight vector");
      if (observing) {
        weight_step_after += WeightStepObjective(group_weights[g], totals, options.weight_scheme);
      }
    }

    // Step II: truth update (Eq 3). The observed snapshot of the previous
    // truths backs the truth-step certificate.
    ValueTable truths_before_update;
    if (observing) truths_before_update = state.truths;
    UpdateTruths(data, index, group_weights, property_group, options, pool, scratch, &state);

    // Convergence is judged on the mean-across-groups weights via the raw
    // objective (Eq 1).
    std::fill(mean_weights.begin(), mean_weights.end(), 0.0);
    for (size_t k = 0; k < k_sources; ++k) {
      for (size_t g = 0; g < num_groups; ++g) mean_weights[k] += group_weights[g][k];
      mean_weights[k] /= static_cast<double>(num_groups);
    }
    result.iterations = iter + 1;
    const double objective = CrhObjectiveOverIndex(data, index, state.truths, mean_weights,
                                                   stats, options, pool, scratch);
    result.objective_history.push_back(objective);
    if (observing) {
      IterationSnapshot snapshot;
      snapshot.engine = "crh";
      snapshot.iteration = iter + 1;
      snapshot.data = &data;
      snapshot.truths = &state.truths;
      snapshot.weights = &mean_weights;
      snapshot.group_weights = &group_weights;
      snapshot.weight_scheme = &options.weight_scheme;
      snapshot.supervision = options.supervision;
      snapshot.objective = objective;
      snapshot.weight_step_before = weight_step_before;
      snapshot.weight_step_after = weight_step_after;
      snapshot.truth_step_before = GroupedObjective(data, index, truths_before_update,
                                                    group_weights, property_group, stats,
                                                    options, pool, scratch);
      snapshot.truth_step_after = GroupedObjective(data, index, state.truths, group_weights,
                                                   property_group, stats, options, pool,
                                                   scratch);
      CRH_RETURN_NOT_OK(observer->OnIteration(snapshot));
    }
    const double denom = std::max(std::abs(prev_objective), 1.0);
    if (std::isfinite(prev_objective) &&
        std::abs(prev_objective - objective) / denom < options.convergence_tolerance) {
      result.converged = true;
      break;
    }
    prev_objective = objective;
  }

  result.truths = std::move(state.truths);
  result.property_group = property_group;
  result.source_weights.assign(k_sources, 0.0);
  for (size_t k = 0; k < k_sources; ++k) {
    for (size_t g = 0; g < num_groups; ++g) result.source_weights[k] += group_weights[g][k];
    result.source_weights[k] /= static_cast<double>(num_groups);
  }
  if (options.weight_granularity != WeightGranularity::kGlobal) {
    // fine_grained_weights is K x G.
    result.fine_grained_weights.assign(k_sources, std::vector<double>(num_groups, 0.0));
    for (size_t k = 0; k < k_sources; ++k) {
      for (size_t g = 0; g < num_groups; ++g) {
        result.fine_grained_weights[k][g] = group_weights[g][k];
      }
    }
  }
  if (soft_model) {
    for (size_t m = 0; m < data.num_properties(); ++m) {
      if (!data.schema().is_categorical(m)) continue;
      SoftDistributions block;
      block.property = m;
      block.num_labels = state.num_labels[m];
      block.probabilities = std::move(state.soft[m]);
      result.soft_distributions.push_back(std::move(block));
    }
  }
  return result;
}

}  // namespace crh
