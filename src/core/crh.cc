#include "core/crh.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "analysis/invariants.h"
#include "common/check.h"
#include "common/thread_pool.h"
#include "core/resolvers.h"
#include "losses/loss.h"
#include "losses/text_distance.h"

namespace crh {

namespace {

/// Mutable solver state: hard truths plus, for the soft categorical model,
/// per-entry label distributions.
struct SolverState {
  ValueTable truths;
  // soft[m] is empty unless property m is categorical and the soft model is
  // active; otherwise an N x L_m row-major probability matrix.
  std::vector<std::vector<double>> soft;
  std::vector<size_t> num_labels;  // L_m per property (0 for continuous)
};

/// Read-only view of a candidate solution for loss evaluation. `soft` and
/// `num_labels` are null under the hard categorical model; when set, the
/// soft loss (Eq 11) is scored directly against the property blocks.
struct TruthView {
  const ValueTable* truths = nullptr;
  const std::vector<std::vector<double>>* soft = nullptr;
  const std::vector<size_t>* num_labels = nullptr;
};

// --- Deterministic shard grid ------------------------------------------------
//
// Every accumulation over claims is cut on a fixed grid of contiguous
// entry ranges whose boundaries depend only on the number of entries,
// never on the thread count. Each shard's partial is computed in entry
// order by exactly one worker, and partials are reduced in shard order —
// so the floating-point association tree is a property of the data shape
// and results are bit-identical at any thread count (including the
// sequential path, which walks the same shards in order).

constexpr size_t kMinEntriesPerShard = 1024;
constexpr size_t kMaxEntryShards = 64;

size_t NumEntryShards(size_t num_entries) {
  if (num_entries <= kMinEntriesPerShard) return 1;
  const size_t by_size = (num_entries + kMinEntriesPerShard - 1) / kMinEntriesPerShard;
  return std::min(kMaxEntryShards, by_size);
}

struct EntryRange {
  size_t begin = 0;
  size_t end = 0;
};

EntryRange ShardRange(size_t num_entries, size_t num_shards, size_t shard) {
  return {num_entries * shard / num_shards, num_entries * (shard + 1) / num_shards};
}

/// Runs fn(shard) for every shard; on the pool when one is available,
/// inline (in shard order) otherwise. Shard-to-worker assignment is static
/// (ThreadPool contract), so which worker runs a shard never affects what
/// the shard computes.
void RunShards(size_t num_shards, ThreadPool* pool, const std::function<void(size_t)>& fn) {
  if (pool != nullptr && pool->num_workers() > 1 && num_shards > 1) {
    pool->ParallelFor(num_shards, fn);
    return;
  }
  for (size_t s = 0; s < num_shards; ++s) fn(s);
}

/// Property -> weight-group mapping for the configured granularity.
/// Returns the group of each property; sets *num_groups.
std::vector<size_t> BuildPropertyGroups(const Schema& schema, WeightGranularity granularity,
                                        size_t* num_groups) {
  const size_t m_props = schema.num_properties();
  std::vector<size_t> group(m_props, 0);
  switch (granularity) {
    case WeightGranularity::kGlobal:
      *num_groups = 1;
      return group;
    case WeightGranularity::kPerType: {
      // Dense group ids over the types actually present, in first-seen order.
      std::vector<int> type_group(3, -1);
      size_t next = 0;
      for (size_t m = 0; m < m_props; ++m) {
        const size_t type = static_cast<size_t>(schema.property(m).type);
        if (type_group[type] < 0) type_group[type] = static_cast<int>(next++);
        group[m] = static_cast<size_t>(type_group[type]);
      }
      *num_groups = next;
      return group;
    }
    case WeightGranularity::kPerProperty:
      for (size_t m = 0; m < m_props; ++m) group[m] = m;
      *num_groups = m_props;
      return group;
  }
  *num_groups = 1;
  return group;
}

/// Updates the truth (and soft distribution) of every entry given per-group
/// source weights; supervised cells are clamped to their labels. Iterates
/// the claim index — O(claims), not O(K * N * M) — and shards the entry
/// space across the pool (every entry is independent, so no reduction).
void UpdateTruths(const Dataset& data, const ClaimIndex& index,
                  const std::vector<std::vector<double>>& group_weights,
                  const std::vector<size_t>& property_group, const CrhOptions& options,
                  ThreadPool* pool, SolverState* state) {
  const size_t m_props = data.num_properties();
  const size_t num_entries = index.num_entries();

  // Per-property dispatch, resolved once instead of per entry.
  std::vector<PropertyType> types(m_props);
  std::vector<char> soft_active(m_props, 0);
  std::vector<const std::vector<double>*> weights_for(m_props);
  for (size_t m = 0; m < m_props; ++m) {
    types[m] = data.schema().property(m).type;
    soft_active[m] = types[m] == PropertyType::kCategorical &&
                     options.categorical_model == CategoricalModel::kSoftProbability;
    weights_for[m] = &group_weights[property_group[m]];
  }

  const size_t num_shards = NumEntryShards(num_entries);
  RunShards(num_shards, pool, [&](size_t shard) {
    // Per-shard scratch, reused across the shard's entries.
    std::vector<Value> claim_values;
    std::vector<double> claim_weights;
    std::vector<double> cont_values;
    std::vector<CategoryId> labels;
    const EntryRange range = ShardRange(num_entries, num_shards, shard);
    for (size_t e = range.begin; e < range.end; ++e) {
      const size_t i = e / m_props;
      const size_t m = e % m_props;
      if (options.supervision != nullptr) {
        const Value& label = options.supervision->Get(i, m);
        if (!label.is_missing()) {
          state->truths.Set(i, m, label);
          continue;
        }
      }
      const ClaimSpan span = index.entry(e);
      if (span.empty()) {
        state->truths.Set(i, m, Value::Missing());
        continue;
      }
      const std::vector<double>& weights = *weights_for[m];
      claim_weights.clear();
      for (size_t c = 0; c < span.size; ++c) claim_weights.push_back(weights[span.sources[c]]);

      if (types[m] == PropertyType::kText) {
        // Text truths: the claim minimizing the weighted total normalized
        // edit distance to all claims (the medoid induced by the text loss).
        claim_values.assign(span.values, span.values + span.size);
        state->truths.Set(i, m,
                          WeightedMedoid(claim_values, claim_weights,
                                         [&data, m](const Value& a, const Value& b) {
                                           return NormalizedEditDistance(
                                               data.dict(m).label(a.category()),
                                               data.dict(m).label(b.category()));
                                         }));
      } else if (types[m] == PropertyType::kCategorical) {
        if (soft_active[m]) {
          labels.clear();
          for (size_t c = 0; c < span.size; ++c) labels.push_back(span.values[c].category());
          const size_t l_m = state->num_labels[m];
          std::vector<double> dist = WeightedLabelDistribution(labels, claim_weights, l_m);
          const CategoryId mode = static_cast<CategoryId>(ArgMax(dist));
          std::copy(dist.begin(), dist.end(), state->soft[m].begin() + static_cast<long>(i * l_m));
          state->truths.Set(i, m, Value::Categorical(mode));
        } else {
          claim_values.assign(span.values, span.values + span.size);
          state->truths.Set(i, m, WeightedVote(claim_values, claim_weights));
        }
      } else {
        cont_values.clear();
        for (size_t c = 0; c < span.size; ++c) cont_values.push_back(span.values[c].continuous());
        double truth;
        if (options.continuous_model == ContinuousModel::kMedian) {
          truth = WeightedMedian(cont_values, claim_weights);
        } else {
          truth = WeightedMean(cont_values, claim_weights);
          if (std::isnan(truth)) {
            truth = WeightedMedian(cont_values, std::vector<double>(cont_values.size(), 1.0));
          }
        }
        state->truths.Set(i, m, Value::Continuous(truth));
      }
    }
  });
}

/// The per-claim loss of a claim on entry (i, m) under the configured
/// models, given a candidate solution view. The soft categorical loss is
/// scored against a pointer view into the property's soft block — no
/// per-claim copy of the entry's distribution.
double ClaimLoss(const Dataset& data, const TruthView& view, const EntryStats& stats,
                 ContinuousModel continuous_model, size_t i, size_t m, const Value& obs) {
  const PropertyType type = data.schema().property(m).type;
  if (type == PropertyType::kText) {
    const Value& truth = view.truths->Get(i, m);
    return NormalizedEditDistance(data.dict(m).label(truth.category()),
                                  data.dict(m).label(obs.category()));
  }
  if (type == PropertyType::kCategorical) {
    if (view.soft != nullptr) {
      const size_t l_m = (*view.num_labels)[m];
      const double* dist = (*view.soft)[m].data() + i * l_m;
      return ProbVectorSquaredLoss(dist, l_m, obs.category());
    }
    return view.truths->Get(i, m) == obs ? 0.0 : 1.0;
  }
  const double diff = view.truths->Get(i, m).continuous() - obs.continuous();
  const double scale = stats.scale_at(i, m);
  CRH_DCHECK_GT(scale, 0.0);
  if (continuous_model == ContinuousModel::kMedian) {
    return std::abs(diff) / scale;
  }
  return diff * diff / scale;
}

/// Computes the K x M matrix of per-source per-property losses with the
/// configured observation-count and per-property normalizations applied.
/// Claim-major: one pass over the index's present claims, sharded with
/// per-shard partial matrices reduced in shard order.
std::vector<std::vector<double>> NormalizedLossMatrix(const Dataset& data,
                                                      const ClaimIndex& index,
                                                      const TruthView& view,
                                                      const EntryStats& stats,
                                                      const CrhOptions& options,
                                                      ThreadPool* pool) {
  const size_t k_sources = data.num_sources();
  const size_t m_props = data.num_properties();
  const size_t num_entries = index.num_entries();
  const size_t num_shards = NumEntryShards(num_entries);

  std::vector<std::vector<double>> partial_loss(num_shards);
  std::vector<std::vector<uint32_t>> partial_count(num_shards);
  RunShards(num_shards, pool, [&](size_t shard) {
    std::vector<double>& loss = partial_loss[shard];
    std::vector<uint32_t>& count = partial_count[shard];
    loss.assign(k_sources * m_props, 0.0);
    count.assign(k_sources * m_props, 0);
    const EntryRange range = ShardRange(num_entries, num_shards, shard);
    for (size_t e = range.begin; e < range.end; ++e) {
      const ClaimSpan span = index.entry(e);
      if (span.empty()) continue;
      const size_t i = e / m_props;
      const size_t m = e % m_props;
      if (view.truths->Get(i, m).is_missing()) continue;
      for (size_t c = 0; c < span.size; ++c) {
        const size_t cell = span.sources[c] * m_props + m;
        loss[cell] +=
            ClaimLoss(data, view, stats, options.continuous_model, i, m, span.values[c]);
        ++count[cell];
      }
    }
  });

  // Ordered reduction: shard partials combine in shard order.
  std::vector<std::vector<double>> loss(k_sources, std::vector<double>(m_props, 0.0));
  std::vector<std::vector<size_t>> count(k_sources, std::vector<size_t>(m_props, 0));
  for (size_t shard = 0; shard < num_shards; ++shard) {
    for (size_t k = 0; k < k_sources; ++k) {
      for (size_t m = 0; m < m_props; ++m) {
        loss[k][m] += partial_loss[shard][k * m_props + m];
        count[k][m] += partial_count[shard][k * m_props + m];
      }
    }
  }

  if (options.normalize_by_observation_count) {
    for (size_t k = 0; k < k_sources; ++k) {
      for (size_t m = 0; m < m_props; ++m) {
        if (count[k][m] > 0) loss[k][m] /= static_cast<double>(count[k][m]);
      }
    }
  }

  if (options.property_normalization != PropertyLossNormalization::kNone) {
    for (size_t m = 0; m < m_props; ++m) {
      double norm = 0.0;
      for (size_t k = 0; k < k_sources; ++k) {
        if (options.property_normalization == PropertyLossNormalization::kSum) {
          norm += loss[k][m];
        } else {
          norm = std::max(norm, loss[k][m]);
        }
      }
      if (norm > 0) {
        for (size_t k = 0; k < k_sources; ++k) loss[k][m] /= norm;
      }
    }
  }
  return loss;
}

/// Sums the normalized loss matrix over all properties (the global
/// per-source deviations feeding the weight update).
std::vector<double> AggregateSourceLosses(const Dataset& data, const ClaimIndex& index,
                                          const TruthView& view, const EntryStats& stats,
                                          const CrhOptions& options, ThreadPool* pool) {
  const auto loss = NormalizedLossMatrix(data, index, view, stats, options, pool);
  std::vector<double> totals(data.num_sources(), 0.0);
  for (size_t k = 0; k < data.num_sources(); ++k) {
    for (size_t m = 0; m < data.num_properties(); ++m) totals[k] += loss[k][m];
  }
  return totals;
}

/// Eq-1 objective with per-group weights: sum over claims of
/// w_{group(m), k} * ClaimLoss, evaluated with the hard categorical model.
/// This is exactly the functional the truth update minimizes entry by entry
/// given the weights, so it backs the truth-step descent certificate.
double GroupedObjective(const Dataset& data, const ClaimIndex& index, const ValueTable& truths,
                        const std::vector<std::vector<double>>& group_weights,
                        const std::vector<size_t>& property_group, const EntryStats& stats,
                        const CrhOptions& options, ThreadPool* pool) {
  const TruthView view{&truths, nullptr, nullptr};
  const size_t m_props = data.num_properties();
  const size_t num_entries = index.num_entries();
  const size_t num_shards = NumEntryShards(num_entries);

  std::vector<double> partial(num_shards, 0.0);
  RunShards(num_shards, pool, [&](size_t shard) {
    double objective = 0.0;
    const EntryRange range = ShardRange(num_entries, num_shards, shard);
    for (size_t e = range.begin; e < range.end; ++e) {
      const ClaimSpan span = index.entry(e);
      if (span.empty()) continue;
      const size_t i = e / m_props;
      const size_t m = e % m_props;
      if (truths.Get(i, m).is_missing()) continue;
      const std::vector<double>& weights = group_weights[property_group[m]];
      for (size_t c = 0; c < span.size; ++c) {
        objective += weights[span.sources[c]] *
                     ClaimLoss(data, view, stats, options.continuous_model, i, m, span.values[c]);
      }
    }
    partial[shard] = objective;
  });

  double objective = 0.0;
  for (size_t shard = 0; shard < num_shards; ++shard) objective += partial[shard];
  return objective;
}

/// Raw Eq-1 objective over a prebuilt index: per-source loss totals
/// accumulated claim-major (sharded, ordered reduction), then the weighted
/// sum over sources.
double CrhObjectiveOverIndex(const Dataset& data, const ClaimIndex& index,
                             const ValueTable& truths, const std::vector<double>& weights,
                             const EntryStats& stats, const CrhOptions& options,
                             ThreadPool* pool) {
  // The raw objective uses hard truths; under the soft model this is the
  // 0-1 surrogate evaluated at the mode, which is what the history reports.
  const TruthView view{&truths, nullptr, nullptr};
  const size_t k_sources = data.num_sources();
  const size_t m_props = data.num_properties();
  const size_t num_entries = index.num_entries();
  const size_t num_shards = NumEntryShards(num_entries);

  std::vector<std::vector<double>> partial(num_shards);
  RunShards(num_shards, pool, [&](size_t shard) {
    std::vector<double>& totals = partial[shard];
    totals.assign(k_sources, 0.0);
    const EntryRange range = ShardRange(num_entries, num_shards, shard);
    for (size_t e = range.begin; e < range.end; ++e) {
      const ClaimSpan span = index.entry(e);
      if (span.empty()) continue;
      const size_t i = e / m_props;
      const size_t m = e % m_props;
      if (truths.Get(i, m).is_missing()) continue;
      for (size_t c = 0; c < span.size; ++c) {
        totals[span.sources[c]] +=
            ClaimLoss(data, view, stats, options.continuous_model, i, m, span.values[c]);
      }
    }
  });

  std::vector<double> totals(k_sources, 0.0);
  for (size_t shard = 0; shard < num_shards; ++shard) {
    for (size_t k = 0; k < k_sources; ++k) totals[k] += partial[shard][k];
  }
  double objective = 0.0;
  for (size_t k = 0; k < k_sources; ++k) objective += weights[k] * totals[k];
  return objective;
}

/// Transient pool for the convenience entry points that take no pool:
/// null (sequential) unless the options ask for more than one thread.
std::unique_ptr<ThreadPool> MakePoolForOptions(const CrhOptions& options) {
  if (ThreadPool::ResolveNumThreads(options.num_threads) <= 1) return nullptr;
  return std::make_unique<ThreadPool>(options.num_threads);
}

}  // namespace

ValueTable ComputeTruthsGivenWeights(const Dataset& data, const ClaimIndex& index,
                                     const std::vector<double>& weights,
                                     const CrhOptions& options, ThreadPool* pool) {
  SolverState state;
  state.truths = ValueTable(data.num_objects(), data.num_properties());
  state.num_labels.assign(data.num_properties(), 0);
  state.soft.assign(data.num_properties(), {});
  CrhOptions hard = options;
  hard.categorical_model = CategoricalModel::kVoting;
  const std::vector<size_t> groups(data.num_properties(), 0);
  UpdateTruths(data, index, {weights}, groups, hard, pool, &state);
  return std::move(state.truths);
}

ValueTable ComputeTruthsGivenWeights(const Dataset& data, const std::vector<double>& weights,
                                     const CrhOptions& options) {
  const ClaimIndex index = ClaimIndex::Build(data);
  const std::unique_ptr<ThreadPool> pool = MakePoolForOptions(options);
  return ComputeTruthsGivenWeights(data, index, weights, options, pool.get());
}

std::vector<double> ComputeSourceDeviations(const Dataset& data, const ClaimIndex& index,
                                            const ValueTable& truths, const EntryStats& stats,
                                            const CrhOptions& options, ThreadPool* pool) {
  const TruthView view{&truths, nullptr, nullptr};
  return AggregateSourceLosses(data, index, view, stats, options, pool);
}

std::vector<double> ComputeSourceDeviations(const Dataset& data, const ValueTable& truths,
                                            const EntryStats& stats, const CrhOptions& options) {
  const ClaimIndex index = ClaimIndex::Build(data);
  const std::unique_ptr<ThreadPool> pool = MakePoolForOptions(options);
  return ComputeSourceDeviations(data, index, truths, stats, options, pool.get());
}

double CrhObjective(const Dataset& data, const ValueTable& truths,
                    const std::vector<double>& weights, const EntryStats& stats,
                    const CrhOptions& options) {
  const ClaimIndex index = ClaimIndex::Build(data);
  const std::unique_ptr<ThreadPool> pool = MakePoolForOptions(options);
  return CrhObjectiveOverIndex(data, index, truths, weights, stats, options, pool.get());
}

Result<CrhResult> RunCrh(const Dataset& data, const CrhOptions& options) {
  if (data.num_sources() == 0) {
    return Status::InvalidArgument("dataset has no sources");
  }
  if (data.num_entries() == 0) {
    return Status::InvalidArgument("dataset has no entries");
  }
  if (options.max_iterations < 1) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  if (options.num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }
  if (options.supervision != nullptr &&
      (options.supervision->num_objects() != data.num_objects() ||
       options.supervision->num_properties() != data.num_properties())) {
    return Status::InvalidArgument("supervision table shape does not match dataset");
  }

  const size_t k_sources = data.num_sources();
  const EntryStats stats = ComputeEntryStats(data);
  // Built once per run: every per-iteration pass below iterates present
  // claims only (the paper's per-iteration bound), never the dense grid.
  const ClaimIndex index = ClaimIndex::Build(data);
  const std::unique_ptr<ThreadPool> pool_storage = MakePoolForOptions(options);
  ThreadPool* const pool = pool_storage.get();

  // Observer priority: an explicitly configured observer wins; under a
  // CRH_VERIFY build every unobserved run gets the full invariant bundle.
  IterationObserver* observer = options.observer;
#ifdef CRH_VERIFY_BUILD
  InvariantVerifier default_verifier;
  if (observer == nullptr) observer = &default_verifier;
#endif

  size_t num_groups = 1;
  const std::vector<size_t> property_group =
      BuildPropertyGroups(data.schema(), options.weight_granularity, &num_groups);

  SolverState state;
  state.truths = ValueTable(data.num_objects(), data.num_properties());
  state.num_labels.assign(data.num_properties(), 0);
  state.soft.assign(data.num_properties(), {});
  const bool soft_model = options.categorical_model == CategoricalModel::kSoftProbability;
  for (size_t m = 0; m < data.num_properties(); ++m) {
    if (data.schema().is_categorical(m)) {
      // Every interned label is a possible truth; guarantee at least one
      // slot so distributions stay well-formed on empty dictionaries.
      state.num_labels[m] = std::max<size_t>(data.dict(m).size(), 1);
      if (soft_model) {
        state.soft[m].assign(data.num_objects() * state.num_labels[m], 0.0);
      }
    }
  }
  // The weight step scores claims against the solver's live state (soft
  // distributions when the soft model is active); the objective history and
  // the descent certificates use the hard view of the same truths.
  const TruthView state_view{&state.truths, soft_model ? &state.soft : nullptr,
                             soft_model ? &state.num_labels : nullptr};

  // Step 0: initialize truths with uniform weights (Voting / Median / Mean).
  std::vector<std::vector<double>> group_weights(num_groups,
                                                 std::vector<double>(k_sources, 1.0));
  UpdateTruths(data, index, group_weights, property_group, options, pool, &state);

  CrhResult result;
  double prev_objective = std::numeric_limits<double>::infinity();
  const bool observing = observer != nullptr;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Step I: source weight update (Eq 2 / Eq 5), one update per group.
    // When observed, the update's descent certificate (the exact functional
    // it minimizes, before vs after) is accumulated across groups.
    double weight_step_before = std::numeric_limits<double>::quiet_NaN();
    double weight_step_after = std::numeric_limits<double>::quiet_NaN();
    if (observing) weight_step_before = weight_step_after = 0.0;
    const auto loss_matrix = NormalizedLossMatrix(data, index, state_view, stats, options, pool);
    for (size_t g = 0; g < num_groups; ++g) {
      std::vector<double> totals(k_sources, 0.0);
      for (size_t k = 0; k < k_sources; ++k) {
        for (size_t m = 0; m < data.num_properties(); ++m) {
          if (property_group[m] == g) totals[k] += loss_matrix[k][m];
        }
      }
      if (observing) {
        weight_step_before += WeightStepObjective(group_weights[g], totals, options.weight_scheme);
      }
      auto weights_result = ComputeSourceWeights(totals, options.weight_scheme);
      if (!weights_result.ok()) return weights_result.status();
      group_weights[g] = std::move(weights_result).ValueOrDie();
      CRH_VERIFY_OR_RETURN(group_weights[g].size() == k_sources,
                           "weight scheme returned a wrong-sized weight vector");
      if (observing) {
        weight_step_after += WeightStepObjective(group_weights[g], totals, options.weight_scheme);
      }
    }

    // Step II: truth update (Eq 3). The observed snapshot of the previous
    // truths backs the truth-step certificate.
    ValueTable truths_before_update;
    if (observing) truths_before_update = state.truths;
    UpdateTruths(data, index, group_weights, property_group, options, pool, &state);

    // Convergence is judged on the mean-across-groups weights via the raw
    // objective (Eq 1).
    std::vector<double> mean_weights(k_sources, 0.0);
    for (size_t k = 0; k < k_sources; ++k) {
      for (size_t g = 0; g < num_groups; ++g) mean_weights[k] += group_weights[g][k];
      mean_weights[k] /= static_cast<double>(num_groups);
    }
    result.iterations = iter + 1;
    const double objective =
        CrhObjectiveOverIndex(data, index, state.truths, mean_weights, stats, options, pool);
    result.objective_history.push_back(objective);
    if (observing) {
      IterationSnapshot snapshot;
      snapshot.engine = "crh";
      snapshot.iteration = iter + 1;
      snapshot.data = &data;
      snapshot.truths = &state.truths;
      snapshot.weights = &mean_weights;
      snapshot.group_weights = &group_weights;
      snapshot.weight_scheme = &options.weight_scheme;
      snapshot.supervision = options.supervision;
      snapshot.objective = objective;
      snapshot.weight_step_before = weight_step_before;
      snapshot.weight_step_after = weight_step_after;
      snapshot.truth_step_before = GroupedObjective(data, index, truths_before_update,
                                                    group_weights, property_group, stats,
                                                    options, pool);
      snapshot.truth_step_after = GroupedObjective(data, index, state.truths, group_weights,
                                                   property_group, stats, options, pool);
      CRH_RETURN_NOT_OK(observer->OnIteration(snapshot));
    }
    const double denom = std::max(std::abs(prev_objective), 1.0);
    if (std::isfinite(prev_objective) &&
        std::abs(prev_objective - objective) / denom < options.convergence_tolerance) {
      result.converged = true;
      break;
    }
    prev_objective = objective;
  }

  result.truths = std::move(state.truths);
  result.property_group = property_group;
  result.source_weights.assign(k_sources, 0.0);
  for (size_t k = 0; k < k_sources; ++k) {
    for (size_t g = 0; g < num_groups; ++g) result.source_weights[k] += group_weights[g][k];
    result.source_weights[k] /= static_cast<double>(num_groups);
  }
  if (options.weight_granularity != WeightGranularity::kGlobal) {
    // fine_grained_weights is K x G.
    result.fine_grained_weights.assign(k_sources, std::vector<double>(num_groups, 0.0));
    for (size_t k = 0; k < k_sources; ++k) {
      for (size_t g = 0; g < num_groups; ++g) {
        result.fine_grained_weights[k][g] = group_weights[g][k];
      }
    }
  }
  if (soft_model) {
    for (size_t m = 0; m < data.num_properties(); ++m) {
      if (!data.schema().is_categorical(m)) continue;
      SoftDistributions block;
      block.property = m;
      block.num_labels = state.num_labels[m];
      block.probabilities = std::move(state.soft[m]);
      result.soft_distributions.push_back(std::move(block));
    }
  }
  return result;
}

}  // namespace crh
