#include "core/catd.h"

#include <algorithm>
#include <cmath>

#include "common/statistics.h"
#include "data/stats.h"

namespace crh {

Result<CatdResult> RunCatd(const Dataset& data, const CatdOptions& options) {
  if (data.num_sources() == 0) {
    return Status::InvalidArgument("dataset has no sources");
  }
  if (data.num_entries() == 0) {
    return Status::InvalidArgument("dataset has no entries");
  }
  if (!(options.alpha > 0.0 && options.alpha < 1.0)) {
    return Status::InvalidArgument("alpha must be in (0, 1)");
  }
  if (options.max_iterations < 1) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }

  const size_t k_sources = data.num_sources();
  const EntryStats stats = ComputeEntryStats(data);

  // The chi-squared numerator already encodes each source's claim count;
  // do not divide the losses by it again.
  CrhOptions loss_options = options.base;
  loss_options.normalize_by_observation_count = false;

  // Claims per source (n_k, the degrees of freedom).
  std::vector<double> claim_count(k_sources, 0.0);
  for (size_t k = 0; k < k_sources; ++k) {
    claim_count[k] = static_cast<double>(data.observations(k).CountPresent());
  }
  std::vector<double> quantile(k_sources, 0.0);
  for (size_t k = 0; k < k_sources; ++k) {
    quantile[k] =
        claim_count[k] > 0 ? ChiSquaredQuantile(options.alpha / 2.0, claim_count[k]) : 0.0;
  }

  CatdResult result;
  std::vector<double> weights(k_sources, 1.0);
  result.truths = ComputeTruthsGivenWeights(data, weights, loss_options);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Confidence-aware weight update.
    const std::vector<double> losses =
        ComputeSourceDeviations(data, result.truths, stats, loss_options);
    double max_weight = 0.0;
    std::vector<double> new_weights(k_sources, 0.0);
    for (size_t k = 0; k < k_sources; ++k) {
      const double denom = std::max(losses[k], 1e-9);
      new_weights[k] = quantile[k] / denom;
      max_weight = std::max(max_weight, new_weights[k]);
    }
    // Normalize to max 1 (truth updates are scale-invariant; this keeps the
    // convergence check meaningful).
    if (max_weight > 0) {
      for (double& w : new_weights) w /= max_weight;
    } else {
      std::fill(new_weights.begin(), new_weights.end(), 1.0);
    }

    double max_change = 0.0;
    for (size_t k = 0; k < k_sources; ++k) {
      max_change = std::max(max_change, std::abs(new_weights[k] - weights[k]));
    }
    weights = std::move(new_weights);
    result.truths = ComputeTruthsGivenWeights(data, weights, loss_options);
    result.iterations = iter + 1;
    if (max_change < options.convergence_tolerance) {
      result.converged = true;
      break;
    }
  }
  result.source_weights = std::move(weights);
  return result;
}

}  // namespace crh
