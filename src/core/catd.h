#ifndef CRH_CORE_CATD_H_
#define CRH_CORE_CATD_H_

/// \file catd.h
/// CATD — Confidence-Aware Truth Discovery for long-tail data.
///
/// The CRH weight update treats a source's aggregated deviation as a point
/// estimate of its (un)reliability. On *long-tail* data — where most
/// sources contribute only a handful of claims — that point estimate is
/// itself highly uncertain: a source that was right on its only two claims
/// may just have been lucky. The paper's follow-up (Li et al., "A
/// Confidence-Aware Approach for Truth Discovery on Long-Tail Data", VLDB
/// 2015, the paper's reference [23]) replaces the point estimate with the
/// upper bound of a chi-squared confidence interval on the source's error
/// variance:
///
///   w_k = chi2_{alpha/2, n_k} / sum_i d(v*_i, v_i^k)
///
/// where n_k is the number of claims source k made. Because the chi-squared
/// quantile grows (roughly linearly) with n_k, two sources with the same
/// *average* error get different weights: the one observed on more claims
/// is trusted more. The truth update is unchanged from CRH.

#include <vector>

#include "common/status.h"
#include "core/crh.h"
#include "data/dataset.h"

namespace crh {

/// Configuration for RunCatd.
struct CatdOptions {
  /// Truth models and normalization config shared with CRH. The weight
  /// scheme inside is ignored (CATD has its own update); per-observation
  /// normalization is also ignored because the chi-squared numerator
  /// already accounts for claim counts.
  CrhOptions base;
  /// Significance level of the confidence interval; the weight uses the
  /// alpha/2 lower quantile of chi-squared with n_k degrees of freedom.
  double alpha = 0.05;
  int max_iterations = 20;
  double convergence_tolerance = 1e-9;
};

/// Output of RunCatd (same shape as CrhResult, minus soft distributions).
struct CatdResult {
  ValueTable truths;
  std::vector<double> source_weights;
  int iterations = 0;
  bool converged = false;
};

/// Runs confidence-aware truth discovery on the dataset.
[[nodiscard]] Result<CatdResult> RunCatd(const Dataset& data, const CatdOptions& options = {});

}  // namespace crh

#endif  // CRH_CORE_CATD_H_
