#ifndef CRH_DATAGEN_UCI_LIKE_H_
#define CRH_DATAGEN_UCI_LIKE_H_

/// \file uci_like.h
/// Schema-faithful synthetic stand-ins for the UCI Adult and Bank datasets.
///
/// The paper's simulated experiments (Section 3.2.2) take the UCI Adult
/// (32,561 records x 14 properties = 455,854 entries) and Bank Marketing
/// (45,211 records x 16 properties = 723,376 entries) datasets as ground
/// truth and inject multi-source noise into them. The raw UCI files are not
/// available offline, so these generators produce records against the real
/// Adult/Bank schemas with realistic marginal distributions. Because the
/// experiments use the originals purely as ground truth for the noise
/// protocol, this substitution preserves the experimental semantics; see
/// DESIGN.md, "Substitutions".
///
/// The returned Dataset has zero sources and a fully labeled ground-truth
/// table; feed it to MakeNoisyDataset to obtain conflicting sources.

#include <cstdint>

#include "data/dataset.h"

namespace crh {

/// Controls for the UCI-like ground-truth generators.
struct UciLikeOptions {
  /// Number of records (objects). 0 means the paper-faithful default
  /// (32,561 for Adult, 45,211 for Bank).
  size_t num_records = 0;
  /// RNG seed.
  uint64_t seed = 7;
};

/// Ground truth with the UCI Adult census schema: 6 continuous properties
/// (age, fnlwgt, education_num, capital_gain, capital_loss, hours_per_week)
/// and 8 categorical ones (workclass, education, marital_status,
/// occupation, relationship, race, sex, native_country).
Dataset MakeAdultGroundTruth(const UciLikeOptions& options = {});

/// Ground truth with the UCI Bank Marketing schema: 7 continuous properties
/// (age, balance, day, duration, campaign, pdays, previous) and 9
/// categorical ones (job, marital, education, default, housing, loan,
/// contact, month, poutcome).
Dataset MakeBankGroundTruth(const UciLikeOptions& options = {});

}  // namespace crh

#endif  // CRH_DATAGEN_UCI_LIKE_H_
