#ifndef CRH_DATAGEN_NOISE_H_
#define CRH_DATAGEN_NOISE_H_

/// \file noise.h
/// Multi-source noise injection (Section 3.2.2 of the paper).
///
/// Given a ground-truth dataset, builds a conflicting multi-source dataset
/// by perturbing the truths independently per source:
///
///  * continuous properties get Gaussian noise whose standard deviation is
///    proportional to the source's unreliability parameter gamma and to the
///    property's own dispersion, then are rounded to the property's
///    physical resolution ("we round the continuous type data based on
///    their physical meaning");
///  * categorical properties are flipped to a uniformly random other label
///    with probability theta(gamma).
///
/// A lower gamma means a more reliable source. The paper's simulated
/// experiments use eight sources with gamma in {0.1, 0.4, 0.7, 1, 1.3,
/// 1.6, 1.9, 2}.

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace crh {

/// Controls for MakeNoisyDataset.
struct NoiseOptions {
  /// Unreliability parameter per source; size determines K.
  std::vector<double> gammas;
  /// Probability that a source simply does not report an entry.
  double missing_rate = 0.0;
  /// Continuous noise: sigma = gamma * factor * std(property truths).
  double continuous_sigma_factor = 0.5;
  /// Categorical flip probability: theta = min(cap, coeff * gamma^exponent).
  /// The default quadratic curve makes gamma = 0.1 sources essentially
  /// perfect (theta ~ 0.002) while gamma = 2 sources are mostly wrong
  /// (theta = 0.9) — the regime in which the paper's reported results
  /// (near-zero CRH error, ~0.1 voting error) are self-consistent.
  double categorical_flip_coefficient = 0.225;
  double categorical_flip_exponent = 2.0;
  /// Upper bound on the flip probability.
  double categorical_flip_cap = 0.9;
  /// Probability that a flipped categorical claim lands on the entry's
  /// "decoy" label (a fixed plausible-but-wrong value per entry) instead
  /// of a uniformly random other label. Correlated wrong values model
  /// copying/staleness. Defaults to 0 — the paper's simulated experiments
  /// flip uniformly, and a nonzero decoy share creates a self-consistent
  /// wrong-majority basin that changes the Figs 2-3 recovery behavior.
  /// (The real-world generators model correlated errors directly.)
  double decoy_probability = 0.0;
  /// Probability that a continuous claim is a gross recording glitch
  /// (affects every source equally, like the transmission errors the
  /// paper's introduction describes). Glitches are what starve
  /// continuous-only reliability estimation (GTM) of signal, motivating
  /// the joint heterogeneous estimation.
  double outlier_rate = 0.03;
  /// Glitch magnitude in units of the property's truth dispersion.
  double outlier_magnitude = 8.0;
  /// RNG seed; runs are deterministic given the seed.
  uint64_t seed = 42;
};

/// The paper's eight simulated-source gammas.
std::vector<double> PaperSimulationGammas();

/// The categorical flip probability theta(gamma) under the given options.
double CategoricalFlipProbability(double gamma, const NoiseOptions& options);

/// Builds a K-source conflicting dataset from \p truth_data, which must
/// carry a ground-truth table (its schema, objects, dictionaries and
/// timestamps are copied; its ground truth is retained for evaluation).
/// Sources are named "source_0" ... "source_{K-1}" in gamma order.
[[nodiscard]]
Result<Dataset> MakeNoisyDataset(const Dataset& truth_data, const NoiseOptions& options);

}  // namespace crh

#endif  // CRH_DATAGEN_NOISE_H_
