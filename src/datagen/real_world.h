#ifndef CRH_DATAGEN_REAL_WORLD_H_
#define CRH_DATAGEN_REAL_WORLD_H_

/// \file real_world.h
/// Synthetic stand-ins for the paper's crawled real-world datasets.
///
/// The weather (2013 crawl of three forecast platforms), stock (July 2011
/// deep-web crawl, 55 sources) and flight (Dec 2011 crawl, 38 sources)
/// datasets are not available offline. These generators reproduce their
/// published *structure* — source counts, property mix, missing-value
/// density, entry/ground-truth counts (Table 1) — and their *failure
/// modes*: per-source reliability spreads, forecasts degrading with lead
/// time, correlated "popular wrong value" errors (stale or copied claims)
/// that defeat plain voting, and outliers that defeat plain averaging.
/// See DESIGN.md, "Substitutions".
///
/// All generators return a Dataset with observations, a partially labeled
/// ground-truth table, and per-object day timestamps (for the streaming
/// experiments).

#include <cstdint>

#include "data/dataset.h"

namespace crh {

/// Weather forecast integration: 3 platforms x 3 forecast lead days = 9
/// sources; properties high_temperature & low_temperature (continuous,
/// degrees F) and condition (categorical). Objects are (city, day) pairs.
struct WeatherOptions {
  int num_cities = 20;
  int num_days = 32;
  /// Probability a source omits an entry.
  double missing_rate = 0.07;
  /// Fraction of entries with ground-truth labels (paper: 1740/1920).
  double truth_label_rate = 0.906;
  uint64_t seed = 101;
};
Dataset MakeWeatherDataset(const WeatherOptions& options = {});

/// Stock quotes: 55 sources over (symbol, trading day) objects with 16
/// properties — volume, shares_outstanding and market_cap continuous, the
/// 13 price-like ones treated as categorical facts as in the paper's
/// heterogeneous task setting.
struct StockOptions {
  int num_symbols = 1000;
  int num_days = 21;
  int num_sources = 55;
  double missing_rate = 0.35;
  /// Ground truth covers this many symbols (paper: the NASDAQ-100 subset).
  int labeled_symbols = 100;
  uint64_t seed = 202;
};
Dataset MakeStockDataset(const StockOptions& options = {});

/// Flight status: 38 sources over (flight, day) objects with 6 properties —
/// scheduled/actual departure/arrival times in minutes (continuous) and
/// departure/arrival gates (categorical). Stale sources report the
/// scheduled time as the actual one, a correlated error pattern.
struct FlightOptions {
  int num_flights = 1200;
  int num_days = 30;
  int num_sources = 38;
  double missing_rate = 0.60;
  /// Fraction of objects with ground-truth labels.
  double truth_label_rate = 0.08;
  uint64_t seed = 303;
};
Dataset MakeFlightDataset(const FlightOptions& options = {});

}  // namespace crh

#endif  // CRH_DATAGEN_REAL_WORLD_H_
