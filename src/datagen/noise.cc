#include "datagen/noise.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace crh {

std::vector<double> PaperSimulationGammas() {
  return {0.1, 0.4, 0.7, 1.0, 1.3, 1.6, 1.9, 2.0};
}

double CategoricalFlipProbability(double gamma, const NoiseOptions& options) {
  return std::min(options.categorical_flip_cap,
                  options.categorical_flip_coefficient *
                      std::pow(gamma, options.categorical_flip_exponent));
}

namespace {

/// Rounds to the nearest multiple of unit (no-op when unit <= 0).
double RoundToUnit(double v, double unit) {
  if (unit <= 0) return v;
  return std::round(v / unit) * unit;
}

/// Standard deviation of the non-missing ground truths of property m.
double PropertyStd(const Dataset& data, size_t m) {
  const ValueTable& truth = data.ground_truth();
  double sum = 0.0, sum_sq = 0.0;
  size_t count = 0;
  for (size_t i = 0; i < data.num_objects(); ++i) {
    const Value& v = truth.Get(i, m);
    if (v.is_missing()) continue;
    sum += v.continuous();
    sum_sq += v.continuous() * v.continuous();
    ++count;
  }
  if (count < 2) return 1.0;
  const double mean = sum / static_cast<double>(count);
  double var = sum_sq / static_cast<double>(count) - mean * mean;
  if (var < 0) var = 0;
  const double sd = std::sqrt(var);
  return sd > 1e-12 ? sd : 1.0;
}

}  // namespace

Result<Dataset> MakeNoisyDataset(const Dataset& truth_data, const NoiseOptions& options) {
  if (!truth_data.has_ground_truth()) {
    return Status::FailedPrecondition("truth_data must carry a ground-truth table");
  }
  if (options.gammas.empty()) {
    return Status::InvalidArgument("at least one source gamma is required");
  }
  for (double g : options.gammas) {
    if (!(g >= 0)) return Status::InvalidArgument("gammas must be non-negative");
  }
  if (options.missing_rate < 0 || options.missing_rate >= 1) {
    return Status::InvalidArgument("missing_rate must be in [0, 1)");
  }

  const size_t k_sources = options.gammas.size();
  std::vector<std::string> source_ids;
  source_ids.reserve(k_sources);
  for (size_t k = 0; k < k_sources; ++k) source_ids.push_back("source_" + std::to_string(k));

  std::vector<std::string> object_ids;
  object_ids.reserve(truth_data.num_objects());
  for (size_t i = 0; i < truth_data.num_objects(); ++i) {
    object_ids.push_back(truth_data.object_id(i));
  }

  Dataset out(truth_data.schema(), std::move(object_ids), std::move(source_ids));
  for (size_t m = 0; m < truth_data.num_properties(); ++m) {
    out.mutable_dict(m) = truth_data.dict(m);
  }
  out.set_ground_truth(truth_data.ground_truth());
  if (truth_data.has_timestamps()) {
    std::vector<int64_t> ts;
    ts.reserve(truth_data.num_objects());
    for (size_t i = 0; i < truth_data.num_objects(); ++i) ts.push_back(truth_data.timestamp(i));
    CRH_RETURN_NOT_OK(out.set_timestamps(std::move(ts)));
  }

  // Per-property dispersion of the truths drives the continuous noise scale.
  const size_t m_props = truth_data.num_properties();
  std::vector<double> prop_std(m_props, 1.0);
  for (size_t m = 0; m < m_props; ++m) {
    if (truth_data.schema().is_continuous(m)) prop_std[m] = PropertyStd(truth_data, m);
  }

  // Per-entry decoy labels: the plausible-but-wrong value that correlated
  // source errors gravitate to. Drawn once so all sources share it.
  const size_t n_objects = truth_data.num_objects();
  std::vector<CategoryId> decoy(n_objects * m_props, kInvalidCategory);
  Rng master(options.seed);
  {
    Rng decoy_rng = master.Fork();
    const ValueTable& truth_table = truth_data.ground_truth();
    for (size_t i = 0; i < n_objects; ++i) {
      for (size_t m = 0; m < m_props; ++m) {
        if (truth_data.schema().is_continuous(m)) continue;
        const Value& t = truth_table.Get(i, m);
        const size_t labels = truth_data.dict(m).size();
        if (t.is_missing() || labels < 2) continue;
        CategoryId d = static_cast<CategoryId>(
            decoy_rng.UniformInt(0, static_cast<int64_t>(labels) - 2));
        if (d >= t.category()) ++d;
        decoy[i * m_props + m] = d;
      }
    }
  }

  const ValueTable& truth = truth_data.ground_truth();
  for (size_t k = 0; k < k_sources; ++k) {
    Rng rng = master.Fork();
    const double gamma = options.gammas[k];
    const double flip_p = CategoricalFlipProbability(gamma, options);
    for (size_t i = 0; i < truth_data.num_objects(); ++i) {
      for (size_t m = 0; m < m_props; ++m) {
        const Value& t = truth.Get(i, m);
        if (t.is_missing()) continue;
        if (options.missing_rate > 0 && rng.Bernoulli(options.missing_rate)) continue;
        if (truth_data.schema().is_categorical(m)) {
          const size_t labels = truth_data.dict(m).size();
          Value claim = t;
          if (labels >= 2 && rng.Bernoulli(flip_p)) {
            const CategoryId d = decoy[i * m_props + m];
            if (d != kInvalidCategory && rng.Bernoulli(options.decoy_probability)) {
              claim = Value::Categorical(d);
            } else {
              // Uniform over the other labels.
              CategoryId alt = static_cast<CategoryId>(
                  rng.UniformInt(0, static_cast<int64_t>(labels) - 2));
              if (alt >= t.category()) ++alt;
              claim = Value::Categorical(alt);
            }
          }
          out.SetObservation(k, i, m, claim);
        } else if (!truth_data.schema().is_continuous(m)) {
          // Text property: with probability theta(gamma), corrupt the label
          // with one or two character-level typos (substitution, deletion
          // or insertion) and intern the result.
          Value claim = t;
          if (rng.Bernoulli(flip_p)) {
            std::string label = truth_data.dict(m).label(t.category());
            const int edits = rng.Bernoulli(0.5) ? 1 : 2;
            for (int e = 0; e < edits && !label.empty(); ++e) {
              const size_t pos = static_cast<size_t>(
                  rng.UniformInt(0, static_cast<int64_t>(label.size()) - 1));
              const char c = static_cast<char>('a' + rng.UniformInt(0, 25));
              switch (rng.UniformInt(0, 2)) {
                case 0:
                  label[pos] = c;  // substitution
                  break;
                case 1:
                  label.erase(pos, 1);  // deletion
                  break;
                default:
                  label.insert(pos, 1, c);  // insertion
                  break;
              }
            }
            if (!label.empty()) claim = out.InternCategorical(m, label);
          }
          out.SetObservation(k, i, m, claim);
        } else {
          const double sigma = gamma * options.continuous_sigma_factor * prop_std[m];
          double v = t.continuous();
          if (sigma > 0) v = rng.Gaussian(v, sigma);
          if (options.outlier_rate > 0 && rng.Bernoulli(options.outlier_rate)) {
            // Gross recording glitch, independent of source quality.
            const double sign = rng.Bernoulli(0.5) ? 1.0 : -1.0;
            v += sign * rng.Uniform(0.5, 1.5) * options.outlier_magnitude * prop_std[m];
          }
          v = RoundToUnit(v, truth_data.schema().property(m).rounding_unit);
          out.SetObservation(k, i, m, Value::Continuous(v));
        }
      }
    }
  }
  return out;
}

}  // namespace crh
