#include "datagen/uci_like.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"

namespace crh {

namespace {

/// Declarative spec of one property for the record generators.
struct PropertySpec {
  enum class Kind { kContinuous, kCategorical };
  std::string name;
  Kind kind;
  // Continuous: truncated Gaussian with rounding.
  double mean = 0, stddev = 1, lo = 0, hi = 1, rounding = 1;
  // Probability mass of a spike at `lo` (models zero-inflated properties
  // like capital_gain where most records are exactly 0).
  double spike_at_lo = 0;
  // Categorical: labels with Zipf-like popularity (weight 1/(rank+1)^skew).
  std::vector<std::string> labels;
  double skew = 1.0;
};

double DrawContinuous(const PropertySpec& spec, Rng* rng) {
  if (spec.spike_at_lo > 0 && rng->Bernoulli(spec.spike_at_lo)) return spec.lo;
  double v = rng->Gaussian(spec.mean, spec.stddev);
  v = std::clamp(v, spec.lo, spec.hi);
  if (spec.rounding > 0) v = std::round(v / spec.rounding) * spec.rounding;
  return v;
}

Dataset BuildFromSpecs(const std::string& prefix, const std::vector<PropertySpec>& specs,
                       size_t num_records, uint64_t seed) {
  Schema schema;
  for (const PropertySpec& spec : specs) {
    if (spec.kind == PropertySpec::Kind::kContinuous) {
      (void)schema.AddContinuous(spec.name, spec.rounding);
    } else {
      (void)schema.AddCategorical(spec.name);
    }
  }

  std::vector<std::string> object_ids;
  object_ids.reserve(num_records);
  for (size_t i = 0; i < num_records; ++i) {
    object_ids.push_back(prefix + "_" + std::to_string(i));
  }

  Dataset data(std::move(schema), std::move(object_ids), /*source_ids=*/{});

  // Pre-intern labels and build per-property sampling weights.
  std::vector<std::vector<double>> label_weights(specs.size());
  for (size_t m = 0; m < specs.size(); ++m) {
    const PropertySpec& spec = specs[m];
    if (spec.kind != PropertySpec::Kind::kCategorical) continue;
    for (const std::string& label : spec.labels) data.mutable_dict(m).GetOrAdd(label);
    std::vector<double>& weights = label_weights[m];
    weights.reserve(spec.labels.size());
    for (size_t rank = 0; rank < spec.labels.size(); ++rank) {
      weights.push_back(1.0 / std::pow(static_cast<double>(rank + 1), spec.skew));
    }
  }

  Rng rng(seed);
  ValueTable truth(num_records, specs.size());
  for (size_t i = 0; i < num_records; ++i) {
    for (size_t m = 0; m < specs.size(); ++m) {
      const PropertySpec& spec = specs[m];
      if (spec.kind == PropertySpec::Kind::kContinuous) {
        truth.Set(i, m, Value::Continuous(DrawContinuous(spec, &rng)));
      } else {
        const size_t label = rng.Categorical(label_weights[m]);
        truth.Set(i, m, Value::Categorical(static_cast<CategoryId>(label)));
      }
    }
  }
  data.set_ground_truth(std::move(truth));
  return data;
}


/// Factory helpers keeping the spec lists readable and fully initialized.
PropertySpec Cont(std::string name, double mean, double stddev, double lo, double hi,
                  double rounding, double spike_at_lo = 0.0) {
  PropertySpec spec;
  spec.name = std::move(name);
  spec.kind = PropertySpec::Kind::kContinuous;
  spec.mean = mean;
  spec.stddev = stddev;
  spec.lo = lo;
  spec.hi = hi;
  spec.rounding = rounding;
  spec.spike_at_lo = spike_at_lo;
  return spec;
}

PropertySpec Cat(std::string name, std::vector<std::string> labels, double skew) {
  PropertySpec spec;
  spec.name = std::move(name);
  spec.kind = PropertySpec::Kind::kCategorical;
  spec.labels = std::move(labels);
  spec.skew = skew;
  return spec;
}

std::vector<std::string> NumberedLabels(const std::string& stem, size_t count) {
  std::vector<std::string> labels;
  labels.reserve(count);
  for (size_t i = 0; i < count; ++i) labels.push_back(stem + "_" + std::to_string(i));
  return labels;
}

}  // namespace

Dataset MakeAdultGroundTruth(const UciLikeOptions& options) {
  const size_t n = options.num_records > 0 ? options.num_records : 32561;
  std::vector<PropertySpec> specs;
  specs.push_back(Cont("age", 38.6, 13.6, 17, 90, 1));
  specs.push_back(Cat("workclass",
                  std::vector<std::string>{"private", "self_emp_not_inc", "local_gov", "state_gov", "self_emp_inc",
                    "federal_gov", "without_pay", "never_worked"}, 1.6));
  specs.push_back(Cont("fnlwgt", 189778, 105550, 12285, 1484705, 1));
  specs.push_back(Cat("education",
                  NumberedLabels("edu", 16), 1.1));
  specs.push_back(Cont("education_num", 10.1, 2.6, 1, 16, 1));
  specs.push_back(Cat("marital_status",
                  std::vector<std::string>{"married_civ", "never_married", "divorced", "separated", "widowed",
                    "spouse_absent", "married_af"}, 1.3));
  specs.push_back(Cat("occupation",
                  NumberedLabels("occ", 14), 0.7));
  specs.push_back(Cat("relationship",
                  std::vector<std::string>{"husband", "not_in_family", "own_child", "unmarried", "wife",
                    "other_relative"}, 1.0));
  specs.push_back(Cat("race",
                  std::vector<std::string>{"white", "black", "asian_pac", "amer_indian", "other"}, 2.4));
  specs.push_back(Cat("sex",
                  std::vector<std::string>{"male", "female"}, 0.6));
  specs.push_back(Cont("capital_gain", 4000, 8000, 0, 99999, 1, 0.92));
  specs.push_back(Cont("capital_loss", 1800, 700, 0, 4356, 1, 0.95));
  specs.push_back(Cont("hours_per_week", 40.4, 12.3, 1, 99, 1));
  specs.push_back(Cat("native_country",
                  NumberedLabels("country", 41), 2.8));
  return BuildFromSpecs("adult", specs, n, options.seed);
}

Dataset MakeBankGroundTruth(const UciLikeOptions& options) {
  const size_t n = options.num_records > 0 ? options.num_records : 45211;
  std::vector<PropertySpec> specs;
  specs.push_back(Cont("age", 40.9, 10.6, 18, 95, 1));
  specs.push_back(Cat("job",
                  std::vector<std::string>{"blue_collar", "management", "technician", "admin", "services",
                    "retired", "self_employed", "entrepreneur", "unemployed", "housemaid",
                    "student", "unknown"}, 0.9));
  specs.push_back(Cat("marital",
                  std::vector<std::string>{"married", "single", "divorced"}, 1.2));
  specs.push_back(Cat("education",
                  std::vector<std::string>{"secondary", "tertiary", "primary", "unknown"}, 1.3));
  specs.push_back(Cat("default",
                  std::vector<std::string>{"no", "yes"}, 5.5));
  specs.push_back(Cont("balance", 1362, 3044, -8019, 102127, 1));
  specs.push_back(Cat("housing",
                  std::vector<std::string>{"yes", "no"}, 0.3));
  specs.push_back(Cat("loan",
                  std::vector<std::string>{"no", "yes"}, 2.4));
  specs.push_back(Cat("contact",
                  std::vector<std::string>{"cellular", "unknown", "telephone"}, 1.5));
  specs.push_back(Cont("day", 15.8, 8.3, 1, 31, 1));
  specs.push_back(Cat("month",
                  std::vector<std::string>{"may", "jul", "aug", "jun", "nov", "apr", "feb", "jan", "oct", "sep",
                    "mar", "dec"}, 1.1));
  specs.push_back(Cont("duration", 258, 257, 0, 4918, 1));
  specs.push_back(Cont("campaign", 2.8, 3.1, 1, 63, 1));
  specs.push_back(Cont("pdays", 224, 115, 1, 871, 1, 0.0));
  specs.push_back(Cont("previous", 0.6, 2.3, 0, 275, 1, 0.8));
  specs.push_back(Cat("poutcome",
                  std::vector<std::string>{"unknown", "failure", "other", "success"}, 2.2));
  return BuildFromSpecs("bank", specs, n, options.seed);
}

}  // namespace crh
