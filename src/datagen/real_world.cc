#include "datagen/real_world.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"

namespace crh {

namespace {

/// Formats a number as a price-like fact label ("123.45").
std::string PriceLabel(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

/// Blanks ground-truth entries uniformly so only `rate` of them stay
/// labeled, mirroring the partially labeled real datasets (Table 1).
void MaskTruthEntries(ValueTable* truth, double rate, Rng* rng) {
  if (rate >= 1.0) return;
  for (size_t i = 0; i < truth->num_objects(); ++i) {
    for (size_t m = 0; m < truth->num_properties(); ++m) {
      if (!truth->Get(i, m).is_missing() && !rng->Bernoulli(rate)) truth->Clear(i, m);
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Weather
// ---------------------------------------------------------------------------

Dataset MakeWeatherDataset(const WeatherOptions& options) {
  const int num_cities = options.num_cities;
  const int num_days = options.num_days;
  const size_t num_objects = static_cast<size_t>(num_cities) * static_cast<size_t>(num_days);

  Schema schema;
  // Sources report tenth-of-a-degree temperatures, so claims almost never
  // match exactly; methods that treat continuous values as atomic facts
  // lose the temperature signal entirely, while distance-based losses
  // (CRH, GTM) keep it.
  (void)schema.AddContinuous("high_temperature", /*rounding_unit=*/0.1);
  (void)schema.AddContinuous("low_temperature", /*rounding_unit=*/0.1);
  (void)schema.AddCategorical("condition");

  // 3 platforms x 3 forecast lead days = 9 sources (paper Section 3.2.1).
  std::vector<std::string> source_ids;
  for (int p = 0; p < 3; ++p) {
    for (int d = 1; d <= 3; ++d) {
      source_ids.push_back("platform" + std::to_string(p) + "_day" + std::to_string(d));
    }
  }

  std::vector<std::string> object_ids;
  std::vector<int64_t> timestamps;
  object_ids.reserve(num_objects);
  for (int day = 0; day < num_days; ++day) {
    for (int c = 0; c < num_cities; ++c) {
      object_ids.push_back("city" + std::to_string(c) + "_day" + std::to_string(day));
      // Hour-resolution timestamps: the crawler visits cities throughout
      // the day, so streaming windows can be narrower than a day (Fig 5
      // sweeps the window size in hours; 24 hours = one day).
      timestamps.push_back(static_cast<int64_t>(day) * 24 + (c * 24) / num_cities);
    }
  }

  Dataset data(std::move(schema), std::move(object_ids), std::move(source_ids));
  (void)data.set_timestamps(std::move(timestamps));

  const std::vector<std::string> conditions = {"sunny",        "partly_cloudy", "cloudy",
                                               "rain",         "thunderstorm",  "snow",
                                               "fog",          "windy"};
  for (const std::string& c : conditions) data.mutable_dict(2).GetOrAdd(c);
  const size_t num_conditions = conditions.size();

  Rng rng(options.seed);

  // Per-city climate: a base temperature and a condition propensity.
  std::vector<double> city_base(static_cast<size_t>(num_cities));
  for (int c = 0; c < num_cities; ++c) city_base[static_cast<size_t>(c)] = rng.Uniform(45, 95);

  // Truths plus a per-object "climatology guess" — a plausible wrong
  // condition that unreliable forecasters gravitate to, which correlates
  // their errors and is what defeats unweighted voting on this data.
  ValueTable truth(num_objects, 3);
  std::vector<CategoryId> popular_wrong(num_objects);
  for (int day = 0; day < num_days; ++day) {
    for (int c = 0; c < num_cities; ++c) {
      const size_t i = static_cast<size_t>(day) * static_cast<size_t>(num_cities) + static_cast<size_t>(c);
      const double high =
          std::round(city_base[static_cast<size_t>(c)] + rng.Gaussian(0, 6.0));
      const double low = std::round(high - rng.Uniform(8, 22));
      truth.Set(i, 0, Value::Continuous(high));
      truth.Set(i, 1, Value::Continuous(low));
      const CategoryId cond =
          static_cast<CategoryId>(rng.UniformInt(0, static_cast<int64_t>(num_conditions) - 1));
      truth.Set(i, 2, Value::Categorical(cond));
      CategoryId wrong = static_cast<CategoryId>(
          rng.UniformInt(0, static_cast<int64_t>(num_conditions) - 2));
      if (wrong >= cond) ++wrong;
      popular_wrong[i] = wrong;
    }
  }

  // Platform quality and forecast-lead degradation.
  const double platform_sigma[3] = {0.9, 2.6, 4.2};   // temperature noise, deg F
  const double platform_bias[3] = {0.2, -1.4, 2.3};   // systematic temp bias
  const double platform_acc[3] = {0.74, 0.58, 0.44};  // condition accuracy
  const double lead_sigma_mult[3] = {1.0, 1.45, 2.0};
  const double lead_acc_penalty[3] = {0.0, 0.10, 0.20};

  for (int p = 0; p < 3; ++p) {
    for (int d = 0; d < 3; ++d) {
      const size_t k = static_cast<size_t>(p) * 3 + static_cast<size_t>(d);
      Rng source_rng = rng.Fork();
      const double sigma = platform_sigma[p] * lead_sigma_mult[d];
      const double acc = std::max(0.05, platform_acc[p] - lead_acc_penalty[d]);
      for (size_t i = 0; i < num_objects; ++i) {
        for (size_t m = 0; m < 3; ++m) {
          if (source_rng.Bernoulli(options.missing_rate)) continue;
          if (m < 2) {
            const double t = truth.Get(i, m).continuous();
            double v = t + platform_bias[p] + source_rng.Gaussian(0, sigma);
            // Occasional gross forecast glitch (wrong city / unit mix-up);
            // affects every platform. These are what make the plain mean —
            // and GTM's precision-weighted mean — trail the robust
            // weighted median on this data.
            if (source_rng.Bernoulli(0.03)) {
              v += (source_rng.Bernoulli(0.5) ? 1 : -1) * source_rng.Uniform(10, 25);
            }
            data.SetObservation(k, i, m, Value::Continuous(std::round(v * 10) / 10));
          } else {
            const CategoryId t = truth.Get(i, 2).category();
            CategoryId claim = t;
            if (!source_rng.Bernoulli(acc)) {
              if (source_rng.Bernoulli(0.95)) {
                claim = popular_wrong[i];
              } else {
                claim = static_cast<CategoryId>(source_rng.UniformInt(
                    0, static_cast<int64_t>(num_conditions) - 2));
                if (claim >= t) ++claim;
              }
            }
            data.SetObservation(k, i, 2, Value::Categorical(claim));
          }
        }
      }
    }
  }

  MaskTruthEntries(&truth, options.truth_label_rate, &rng);
  data.set_ground_truth(std::move(truth));
  return data;
}

// ---------------------------------------------------------------------------
// Stock
// ---------------------------------------------------------------------------

Dataset MakeStockDataset(const StockOptions& options) {
  const int num_symbols = options.num_symbols;
  const int num_days = options.num_days;
  const int k_sources = options.num_sources;
  const size_t num_objects = static_cast<size_t>(num_symbols) * static_cast<size_t>(num_days);

  // 16 properties; the paper treats volume, shares_outstanding and
  // market_cap as continuous and the 13 price-like ones as categorical
  // facts.
  Schema schema;
  const std::vector<std::string> fact_props = {
      "last_price",  "open_price",  "close_price",  "high_price", "low_price",
      "change_abs",  "change_pct",  "bid",          "ask",        "eps",
      "pe_ratio",    "yield",       "dividend"};
  for (const std::string& p : fact_props) (void)schema.AddCategorical(p);
  (void)schema.AddContinuous("volume", /*rounding_unit=*/100.0);
  (void)schema.AddContinuous("shares_outstanding", /*rounding_unit=*/1000.0);
  (void)schema.AddContinuous("market_cap", /*rounding_unit=*/1e4);
  const size_t m_props = schema.num_properties();
  const size_t num_facts = fact_props.size();

  std::vector<std::string> source_ids;
  for (int k = 0; k < k_sources; ++k) source_ids.push_back("quote_site_" + std::to_string(k));

  std::vector<std::string> object_ids;
  std::vector<int64_t> timestamps;
  object_ids.reserve(num_objects);
  for (int day = 0; day < num_days; ++day) {
    for (int s = 0; s < num_symbols; ++s) {
      object_ids.push_back("sym" + std::to_string(s) + "_day" + std::to_string(day));
      timestamps.push_back(day);
    }
  }

  Dataset data(std::move(schema), std::move(object_ids), std::move(source_ids));
  (void)data.set_timestamps(std::move(timestamps));

  Rng rng(options.seed);

  // Per-symbol fundamentals and a per-day price path.
  std::vector<double> base_price(static_cast<size_t>(num_symbols));
  std::vector<double> shares(static_cast<size_t>(num_symbols));
  for (int s = 0; s < num_symbols; ++s) {
    base_price[static_cast<size_t>(s)] = std::exp(rng.Gaussian(3.7, 0.8));  // ~ $40 median
    shares[static_cast<size_t>(s)] = std::exp(rng.Gaussian(18.0, 1.0));     // ~ 65M median
  }

  // truth_facts[i][f]: numeric value behind each categorical fact.
  // prev_facts: the previous trading day's value, which stale sources
  // re-report — the correlated error that defeats voting on this data.
  ValueTable truth(num_objects, m_props);
  std::vector<std::vector<double>> fact_numbers(num_objects,
                                                std::vector<double>(num_facts, 0.0));
  std::vector<double> price(static_cast<size_t>(num_symbols));
  for (int s = 0; s < num_symbols; ++s) price[static_cast<size_t>(s)] = base_price[static_cast<size_t>(s)];

  for (int day = 0; day < num_days; ++day) {
    for (int s = 0; s < num_symbols; ++s) {
      const size_t i = static_cast<size_t>(day) * static_cast<size_t>(num_symbols) + static_cast<size_t>(s);
      const double prev = price[static_cast<size_t>(s)];
      const double ret = rng.Gaussian(0.0, 0.02);
      const double close = std::max(0.5, prev * (1.0 + ret));
      price[static_cast<size_t>(s)] = close;
      const double open = prev * (1.0 + rng.Gaussian(0, 0.005));
      const double high = std::max({open, close}) * (1.0 + std::abs(rng.Gaussian(0, 0.008)));
      const double low = std::min({open, close}) * (1.0 - std::abs(rng.Gaussian(0, 0.008)));
      const double eps = base_price[static_cast<size_t>(s)] / rng.Uniform(8, 30);
      std::vector<double>& f = fact_numbers[i];
      f[0] = close;                         // last_price
      f[1] = open;                          // open_price
      f[2] = close;                         // close_price
      f[3] = high;                          // high_price
      f[4] = low;                           // low_price
      f[5] = close - prev;                  // change_abs
      f[6] = 100.0 * (close - prev) / prev; // change_pct
      f[7] = close - 0.01;                  // bid
      f[8] = close + 0.01;                  // ask
      f[9] = eps;                           // eps
      f[10] = close / std::max(eps, 0.01);  // pe_ratio
      f[11] = rng.Uniform(0, 5);            // yield
      f[12] = eps * rng.Uniform(0, 0.8);    // dividend

      for (size_t m = 0; m < num_facts; ++m) {
        truth.Set(i, m, data.InternCategorical(m, PriceLabel(f[m])));
      }
      const double volume = std::exp(rng.Gaussian(13.0, 1.2));
      truth.Set(i, num_facts + 0, Value::Continuous(std::round(volume / 100.0) * 100.0));
      truth.Set(i, num_facts + 1,
                Value::Continuous(std::round(shares[static_cast<size_t>(s)] / 1000.0) * 1000.0));
      truth.Set(i, num_facts + 2,
                Value::Continuous(std::round(close * shares[static_cast<size_t>(s)] / 1e4) * 1e4));
    }
  }

  // Source reliability profile: a good tier, a mediocre tier, and a bad
  // tier (the deep-web quote-site study found exactly this spread).
  std::vector<double> acc(static_cast<size_t>(k_sources));
  for (int k = 0; k < k_sources; ++k) {
    const double u = rng.Uniform();
    if (u < 0.35) {
      acc[static_cast<size_t>(k)] = rng.Uniform(0.75, 0.95);
    } else if (u < 0.70) {
      acc[static_cast<size_t>(k)] = rng.Uniform(0.45, 0.75);
    } else {
      acc[static_cast<size_t>(k)] = rng.Uniform(0.15, 0.45);
    }
  }

  // "Hard" objects: a late intraday update most sites have not picked up,
  // so the majority republishes yesterday's numbers. These are where
  // voting fails and source weighting pays off.
  std::vector<bool> hard(num_objects, false);
  for (size_t i = 0; i < num_objects; ++i) hard[i] = rng.Bernoulli(0.12);

  for (int k = 0; k < k_sources; ++k) {
    Rng source_rng = rng.Fork();
    const double a = acc[static_cast<size_t>(k)];
    const double rel_sigma = (1.0 - a) * 0.30;  // relative noise on continuous props
    const double stale_p = 0.85;                // wrong fact = stale value w.p. 0.85
    // Freshness on hard objects correlates with overall quality: good
    // sources pick up the update quickly, bad ones almost never.
    const double hard_stale_p = std::clamp(1.0 - 0.75 * a, 0.05, 0.95);
    for (size_t i = 0; i < num_objects; ++i) {
      if (source_rng.Bernoulli(options.missing_rate)) continue;  // drops whole row
      const int day = static_cast<int>(i) / num_symbols;
      const size_t prev_i = day > 0 ? i - static_cast<size_t>(num_symbols) : i;
      for (size_t m = 0; m < m_props; ++m) {
        if (source_rng.Bernoulli(0.04)) continue;  // additional per-cell dropout
        if (m < num_facts) {
          double v = fact_numbers[i][m];
          if (hard[i] && day > 0) {
            if (source_rng.Bernoulli(hard_stale_p)) v = fact_numbers[prev_i][m];
          } else if (!source_rng.Bernoulli(a)) {
            if (source_rng.Bernoulli(stale_p)) {
              v = fact_numbers[prev_i][m];  // stale quote
            } else {
              v += 0.01 * static_cast<double>(source_rng.UniformInt(1, 5)) *
                   (source_rng.Bernoulli(0.5) ? 1 : -1);  // off-by-ticks typo
            }
          }
          data.SetObservation(static_cast<size_t>(k), i, m,
                              data.InternCategorical(m, PriceLabel(v)));
        } else {
          double v = truth.Get(i, m).continuous();
          if (rel_sigma > 0) v *= 1.0 + source_rng.Gaussian(0, rel_sigma);
          // Unit mix-ups (thousands vs units) — gross non-Gaussian errors
          // that defeat Gaussian models like GTM on this data.
          if (source_rng.Bernoulli(0.03)) {
            v *= source_rng.Bernoulli(0.5) ? 1e3 : 1e-3;
          }
          const double unit = data.schema().property(m).rounding_unit;
          v = std::max(0.0, std::round(v / unit) * unit);
          data.SetObservation(static_cast<size_t>(k), i, m, Value::Continuous(v));
        }
      }
    }
  }

  // Ground truth covers the first `labeled_symbols` symbols (the paper uses
  // the NASDAQ-100 subset for labeling).
  const int labeled = std::min(options.labeled_symbols, num_symbols);
  for (int day = 0; day < num_days; ++day) {
    for (int s = labeled; s < num_symbols; ++s) {
      const size_t i = static_cast<size_t>(day) * static_cast<size_t>(num_symbols) + static_cast<size_t>(s);
      for (size_t m = 0; m < m_props; ++m) truth.Clear(i, m);
    }
  }
  data.set_ground_truth(std::move(truth));
  return data;
}

// ---------------------------------------------------------------------------
// Flight
// ---------------------------------------------------------------------------

Dataset MakeFlightDataset(const FlightOptions& options) {
  const int num_flights = options.num_flights;
  const int num_days = options.num_days;
  const int k_sources = options.num_sources;
  const size_t num_objects = static_cast<size_t>(num_flights) * static_cast<size_t>(num_days);

  Schema schema;
  (void)schema.AddContinuous("scheduled_departure", /*rounding_unit=*/1.0);
  (void)schema.AddContinuous("actual_departure", /*rounding_unit=*/1.0);
  (void)schema.AddCategorical("departure_gate");
  (void)schema.AddContinuous("scheduled_arrival", /*rounding_unit=*/1.0);
  (void)schema.AddContinuous("actual_arrival", /*rounding_unit=*/1.0);
  (void)schema.AddCategorical("arrival_gate");

  std::vector<std::string> source_ids;
  for (int k = 0; k < k_sources; ++k) source_ids.push_back("flight_site_" + std::to_string(k));

  std::vector<std::string> object_ids;
  std::vector<int64_t> timestamps;
  object_ids.reserve(num_objects);
  for (int day = 0; day < num_days; ++day) {
    for (int f = 0; f < num_flights; ++f) {
      object_ids.push_back("fl" + std::to_string(f) + "_day" + std::to_string(day));
      timestamps.push_back(day);
    }
  }

  Dataset data(std::move(schema), std::move(object_ids), std::move(source_ids));
  (void)data.set_timestamps(std::move(timestamps));

  // Gate pools shared across flights (terminal letter + number).
  const int num_gates = 60;
  for (int g = 0; g < num_gates; ++g) {
    const std::string gate = std::string(1, static_cast<char>('A' + g / 10)) +
                             std::to_string(g % 10 + 1);
    data.mutable_dict(2).GetOrAdd(gate);
    data.mutable_dict(5).GetOrAdd(gate);
  }

  Rng rng(options.seed);

  std::vector<double> sched_dep(static_cast<size_t>(num_flights));
  std::vector<double> duration(static_cast<size_t>(num_flights));
  std::vector<CategoryId> home_dep_gate(static_cast<size_t>(num_flights));
  std::vector<CategoryId> home_arr_gate(static_cast<size_t>(num_flights));
  for (int f = 0; f < num_flights; ++f) {
    sched_dep[static_cast<size_t>(f)] = std::round(rng.Uniform(300, 1380));
    duration[static_cast<size_t>(f)] = std::round(rng.Uniform(60, 360));
    home_dep_gate[static_cast<size_t>(f)] =
        static_cast<CategoryId>(rng.UniformInt(0, num_gates - 1));
    home_arr_gate[static_cast<size_t>(f)] =
        static_cast<CategoryId>(rng.UniformInt(0, num_gates - 1));
  }

  ValueTable truth(num_objects, 6);
  for (int day = 0; day < num_days; ++day) {
    for (int f = 0; f < num_flights; ++f) {
      const size_t i = static_cast<size_t>(day) * static_cast<size_t>(num_flights) + static_cast<size_t>(f);
      const double sd = sched_dep[static_cast<size_t>(f)];
      const double sa = sd + duration[static_cast<size_t>(f)];
      // Delay: mostly small, occasionally large (heavy tail).
      double delay = std::max(0.0, rng.Gaussian(8, 18));
      if (rng.Bernoulli(0.05)) delay += rng.Exponential(1.0 / 90.0);
      const double ad = std::round(sd + delay);
      const double aa = std::round(sa + delay * 0.9 + rng.Gaussian(0, 6));
      // Gate changes happen on ~10% of days.
      CategoryId dg = home_dep_gate[static_cast<size_t>(f)];
      CategoryId ag = home_arr_gate[static_cast<size_t>(f)];
      if (rng.Bernoulli(0.14)) dg = static_cast<CategoryId>(rng.UniformInt(0, num_gates - 1));
      if (rng.Bernoulli(0.14)) ag = static_cast<CategoryId>(rng.UniformInt(0, num_gates - 1));
      truth.Set(i, 0, Value::Continuous(sd));
      truth.Set(i, 1, Value::Continuous(ad));
      truth.Set(i, 2, Value::Categorical(dg));
      truth.Set(i, 3, Value::Continuous(sa));
      truth.Set(i, 4, Value::Continuous(aa));
      truth.Set(i, 5, Value::Categorical(ag));
    }
  }

  // Source profile: accuracy plus a staleness tendency (stale sources
  // report the schedule as the actual time — the dominant correlated error
  // in the original flight study).
  for (int k = 0; k < k_sources; ++k) {
    Rng source_rng = rng.Fork();
    const double u = rng.Uniform();
    double a;
    if (u < 0.45) {
      a = rng.Uniform(0.88, 0.99);
    } else if (u < 0.8) {
      a = rng.Uniform(0.65, 0.88);
    } else {
      a = rng.Uniform(0.30, 0.65);
    }
    // Even good sites sometimes echo the schedule as the "actual" time;
    // bad ones do so for most flights. This is the dominant correlated
    // error the original flight study reported, and it is what drags the
    // unweighted median and mean down.
    const double stale_p = std::clamp(0.25 + (1.0 - a) * 0.6, 0.0, 0.9);
    // Probability of still showing the flight's usual gate after a gate
    // change (fresh sites update, stale ones do not).
    const double gate_stale_p = std::clamp(1.0 - 0.55 * a, 0.05, 0.95);
    const double gate_typo_p = (1.0 - a) * 0.08;
    const double time_sigma = (1.0 - a) * 12.0;
    for (size_t i = 0; i < num_objects; ++i) {
      if (source_rng.Bernoulli(options.missing_rate)) continue;
      for (size_t m = 0; m < 6; ++m) {
        if (source_rng.Bernoulli(0.05)) continue;
        const Value& t = truth.Get(i, m);
        if (m == 2 || m == 5) {
          const CategoryId home = (m == 2) ? home_dep_gate[i % static_cast<size_t>(num_flights)]
                                           : home_arr_gate[i % static_cast<size_t>(num_flights)];
          CategoryId g = t.category();
          if (g != home && source_rng.Bernoulli(gate_stale_p)) {
            g = home;  // missed the gate change, shows the usual gate
          } else if (source_rng.Bernoulli(gate_typo_p)) {
            g = static_cast<CategoryId>(source_rng.UniformInt(0, num_gates - 1));
          }
          data.SetObservation(static_cast<size_t>(k), i, m, Value::Categorical(g));
        } else if (m == 1 || m == 4) {
          // Actual times: stale sources echo the schedule.
          double v;
          if (source_rng.Bernoulli(stale_p)) {
            v = truth.Get(i, m - 1).continuous();
          } else {
            v = t.continuous() + source_rng.Gaussian(0, std::max(0.5, time_sigma));
          }
          data.SetObservation(static_cast<size_t>(k), i, m,
                              Value::Continuous(std::round(v)));
        } else {
          // Schedules are mostly copied correctly; rare typos.
          double v = t.continuous();
          if (source_rng.Bernoulli((1.0 - a) * 0.1)) v += source_rng.Bernoulli(0.5) ? 60 : -60;
          data.SetObservation(static_cast<size_t>(k), i, m, Value::Continuous(v));
        }
      }
    }
  }

  // Label a fraction of objects end-to-end (the paper grounds 16,572 of
  // 204,422 entries).
  for (size_t i = 0; i < num_objects; ++i) {
    if (!rng.Bernoulli(options.truth_label_rate)) {
      for (size_t m = 0; m < 6; ++m) truth.Clear(i, m);
    }
  }
  data.set_ground_truth(std::move(truth));
  return data;
}

}  // namespace crh
