#include "mapreduce/cost_model.h"

#include <algorithm>
#include <cmath>

namespace crh {

double ClusterCostModel::NumSplits(double num_observations) const {
  return std::max(1.0, std::ceil(num_observations / records_per_split));
}

double ClusterCostModel::MapParallelism(double num_observations) const {
  return std::min(static_cast<double>(map_slots), NumSplits(num_observations));
}

double ClusterCostModel::EstimatePassSeconds(double num_observations,
                                             int num_reducers) const {
  const double r = std::max(1, num_reducers);
  const double map_seconds =
      num_observations * map_cost_per_record / MapParallelism(num_observations);
  const double reduce_seconds = num_observations * reduce_cost_per_record / r;
  const double shuffle_seconds = NumSplits(num_observations) * r * connection_cost;
  return map_seconds + reduce_seconds + shuffle_seconds;
}

double ClusterCostModel::EstimateFusionSeconds(double num_observations, int num_reducers,
                                               int num_passes) const {
  return job_setup_seconds +
         num_passes * EstimatePassSeconds(num_observations, num_reducers);
}

}  // namespace crh
