#ifndef CRH_MAPREDUCE_COST_MODEL_H_
#define CRH_MAPREDUCE_COST_MODEL_H_

/// \file cost_model.h
/// Calibrated Hadoop-cluster cost model.
///
/// The paper's parallel experiments (Table 6, Figs 7-8) ran on a Dell
/// Hadoop cluster that is not available here, so wall-clock behaviour is
/// reproduced by an analytical cost model layered over the in-process
/// MapReduce engine (see DESIGN.md, "Substitutions"). The model captures
/// the regimes the paper reports:
///
///  * a fixed job-scheduling overhead that dominates small inputs
///    (Table 6: 1e4..1e6 observations all take ~95 s);
///  * map work that scales linearly once the input outgrows the mapper
///    slots (Fig 7's linear growth in entries and sources);
///  * a reduce phase whose work shrinks with more reducers while its
///    shuffle/connection overhead grows linearly with them, producing the
///    non-monotone curve of Fig 8 with an optimum near 10 reducers.

#include <cstddef>

namespace crh {

/// Analytical running-time model for one CRH fusion on the cluster.
struct ClusterCostModel {
  /// Fixed scheduling/JVM-startup overhead of the whole fusion job chain.
  double job_setup_seconds = 93.0;
  /// Records per input split (~64 MB of claim tuples).
  double records_per_split = 4e6;
  /// Concurrent map slots on the cluster.
  int map_slots = 6;
  /// Per-record map-side cost (scan, emit, combiner, spill), seconds.
  double map_cost_per_record = 2e-5;
  /// Per-record reduce-side cost (merge, truth/weight computation), seconds.
  double reduce_cost_per_record = 2e-6;
  /// Per (reducer x split) shuffle-connection overhead, seconds.
  double connection_cost = 0.08;

  /// Number of input splits for a given observation count.
  double NumSplits(double num_observations) const;

  /// Effective map parallelism: min(map_slots, #splits).
  double MapParallelism(double num_observations) const;

  /// Estimated seconds for one map+reduce pass over the observations.
  double EstimatePassSeconds(double num_observations, int num_reducers) const;

  /// Estimated seconds for a full CRH fusion: setup plus `num_passes`
  /// map/reduce passes (the paper's wrapper runs a truth job and a weight
  /// job per iteration; their per-record costs are baked into the
  /// calibrated constants for a standard iteration budget, so the default
  /// single pass reproduces Table 6).
  double EstimateFusionSeconds(double num_observations, int num_reducers,
                               int num_passes = 1) const;
};

}  // namespace crh

#endif  // CRH_MAPREDUCE_COST_MODEL_H_
