#include "mapreduce/parallel_crh.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "analysis/invariants.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "losses/resolvers.h"
#include "data/stats.h"
#include "losses/text_distance.h"
#include "weights/weight_scheme.h"

namespace crh {

std::vector<ObservationTuple> DatasetToTuples(const Dataset& data) {
  std::vector<ObservationTuple> tuples;
  tuples.reserve(data.num_observations());
  const uint64_t m_props = data.num_properties();
  for (size_t k = 0; k < data.num_sources(); ++k) {
    const ValueTable& table = data.observations(k);
    for (size_t i = 0; i < data.num_objects(); ++i) {
      for (size_t m = 0; m < m_props; ++m) {
        const Value& v = table.Get(i, m);
        if (v.is_missing()) continue;
        tuples.push_back({static_cast<uint64_t>(i) * m_props + m,
                          static_cast<uint32_t>(k), v});
      }
    }
  }
  return tuples;
}

namespace {

/// The "external files" all tasks can read (Section 2.7.2): source weights
/// and, after each truth job, the current truths plus entry scales.
struct DistributedCache {
  std::vector<double> weights;
  std::unordered_map<uint64_t, Value> truths;
  std::unordered_map<uint64_t, double> scales;  // continuous entries only
};

double CacheScale(const DistributedCache& cache, uint64_t entry_id) {
  const auto it = cache.scales.find(entry_id);
  return it == cache.scales.end() ? 1.0 : it->second;
}

}  // namespace

Result<ParallelCrhResult> RunParallelCrh(const Dataset& data,
                                         const ParallelCrhOptions& options) {
  if (options.base.categorical_model == CategoricalModel::kSoftProbability) {
    return Status::NotImplemented(
        "the soft categorical model is not supported by parallel CRH");
  }
  if (data.num_sources() == 0) {
    return Status::InvalidArgument("dataset has no sources");
  }
  CRH_RETURN_NOT_OK(ValidateMapReduceConfig(options.mr));

  Stopwatch watch;
  const size_t k_sources = data.num_sources();
  const uint64_t m_props = data.num_properties();
  const std::vector<ObservationTuple> tuples = DatasetToTuples(data);

  ParallelCrhResult result;
  DistributedCache cache;
  cache.weights.assign(k_sources, 1.0 / static_cast<double>(k_sources));

  const auto property_type = [&](uint64_t entry_id) {
    return data.schema().property(static_cast<size_t>(entry_id % m_props)).type;
  };
  const auto is_categorical = [&](uint64_t entry_id) {
    return property_type(entry_id) == PropertyType::kCategorical;
  };
  const auto text_distance = [&](uint64_t entry_id, const Value& a, const Value& b) {
    const size_t m = static_cast<size_t>(entry_id % m_props);
    return NormalizedEditDistance(data.dict(m).label(a.category()),
                                  data.dict(m).label(b.category()));
  };

  // --- Statistics job: per-entry claim dispersion for continuous losses.
  {
    MapReduceSpec<ObservationTuple, uint64_t, double, std::pair<uint64_t, double>> spec;
    spec.map = [&](const ObservationTuple& t,
                   std::vector<std::pair<uint64_t, double>>* out) {
      if (property_type(t.entry_id) == PropertyType::kContinuous) {
        out->emplace_back(t.entry_id, t.value.continuous());
      }
    };
    spec.reduce = [](const uint64_t& entry, std::vector<double>&& values,
                     std::vector<std::pair<uint64_t, double>>* out) {
      if (values.size() < 2) return;
      double sum = 0, sum_sq = 0;
      for (double v : values) {
        sum += v;
        sum_sq += v * v;
      }
      const double mean = sum / static_cast<double>(values.size());
      double var = sum_sq / static_cast<double>(values.size()) - mean * mean;
      if (var < 0) var = 0;
      const double sd = std::sqrt(var);
      if (sd > 1e-12) out->emplace_back(entry, sd);
    };
    auto job = RunMapReduce(tuples, spec, options.mr);
    if (!job.ok()) return job.status();
    for (const auto& [entry, scale] : job->records) cache.scales.emplace(entry, scale);
    result.job_stats.push_back(job->stats);
  }

  // --- Per-iteration jobs.
  const auto run_truth_job = [&]() -> Status {
    MapReduceSpec<ObservationTuple, uint64_t, std::pair<uint32_t, Value>,
                  std::pair<uint64_t, Value>> spec;
    spec.map = [](const ObservationTuple& t,
                  std::vector<std::pair<uint64_t, std::pair<uint32_t, Value>>>* out) {
      out->emplace_back(t.entry_id, std::make_pair(t.source_id, t.value));
    };
    spec.reduce = [&](const uint64_t& entry, std::vector<std::pair<uint32_t, Value>>&& claims,
                      std::vector<std::pair<uint64_t, Value>>* out) {
      std::vector<double> weights;
      weights.reserve(claims.size());
      for (const auto& [source, value] : claims) weights.push_back(cache.weights[source]);
      Value truth;
      if (is_categorical(entry)) {
        std::vector<Value> values;
        values.reserve(claims.size());
        for (const auto& [source, value] : claims) values.push_back(value);
        truth = WeightedVote(values, weights);
      } else if (property_type(entry) == PropertyType::kText) {
        std::vector<Value> values;
        values.reserve(claims.size());
        for (const auto& [source, value] : claims) values.push_back(value);
        truth = WeightedMedoid(values, weights, [&](const Value& a, const Value& b) {
          return text_distance(entry, a, b);
        });
      } else {
        std::vector<double> values;
        values.reserve(claims.size());
        for (const auto& [source, value] : claims) values.push_back(value.continuous());
        if (options.base.continuous_model == ContinuousModel::kMedian) {
          truth = Value::Continuous(WeightedMedian(std::move(values), std::move(weights)));
        } else {
          double v = WeightedMean(values, weights);
          if (std::isnan(v)) {
            v = WeightedMedian(std::move(values), std::vector<double>(claims.size(), 1.0));
          }
          truth = Value::Continuous(v);
        }
      }
      out->emplace_back(entry, truth);
    };
    auto job = RunMapReduce(tuples, spec, options.mr);
    if (!job.ok()) return job.status();
    cache.truths.clear();
    for (const auto& [entry, truth] : job->records) cache.truths.emplace(entry, truth);
    result.job_stats.push_back(job->stats);
    return Status::OK();
  };

  const auto run_weight_job = [&]() -> Result<std::vector<double>> {
    // Key: source * M + property, so the wrapper can apply the per-property
    // normalization of Section 2.5. Value: (partial error, claim count).
    using ErrAndCount = std::pair<double, uint64_t>;
    MapReduceSpec<ObservationTuple, uint64_t, ErrAndCount, std::pair<uint64_t, ErrAndCount>>
        spec;
    spec.map = [&](const ObservationTuple& t,
                   std::vector<std::pair<uint64_t, ErrAndCount>>* out) {
      const auto truth_it = cache.truths.find(t.entry_id);
      if (truth_it == cache.truths.end()) return;
      const Value& truth = truth_it->second;
      double loss;
      if (is_categorical(t.entry_id)) {
        loss = truth == t.value ? 0.0 : 1.0;
      } else if (property_type(t.entry_id) == PropertyType::kText) {
        loss = text_distance(t.entry_id, truth, t.value);
      } else {
        const double d = truth.continuous() - t.value.continuous();
        const double scale = CacheScale(cache, t.entry_id);
        loss = options.base.continuous_model == ContinuousModel::kMedian
                   ? std::abs(d) / scale
                   : d * d / scale;
      }
      out->emplace_back(t.source_id * m_props + t.entry_id % m_props,
                        std::make_pair(loss, uint64_t{1}));
    };
    spec.combine = [](const uint64_t&, std::vector<ErrAndCount>&& values) {
      ErrAndCount total{0.0, 0};
      for (const ErrAndCount& v : values) {
        total.first += v.first;
        total.second += v.second;
      }
      return total;
    };
    spec.reduce = [](const uint64_t& key, std::vector<ErrAndCount>&& values,
                     std::vector<std::pair<uint64_t, ErrAndCount>>* out) {
      ErrAndCount total{0.0, 0};
      for (const ErrAndCount& v : values) {
        total.first += v.first;
        total.second += v.second;
      }
      out->emplace_back(key, total);
    };
    auto job = RunMapReduce(tuples, spec, options.mr);
    if (!job.ok()) return job.status();
    result.job_stats.push_back(job->stats);

    // Wrapper: normalize per observation count and per property, then
    // convert deviations to weights — mirroring serial CRH exactly.
    std::vector<std::vector<double>> loss(k_sources, std::vector<double>(m_props, 0.0));
    for (const auto& [key, err_count] : job->records) {
      const size_t k = static_cast<size_t>(key / m_props);
      const size_t m = static_cast<size_t>(key % m_props);
      double value = err_count.first;
      if (options.base.normalize_by_observation_count && err_count.second > 0) {
        value /= static_cast<double>(err_count.second);
      }
      loss[k][m] = value;
    }
    if (options.base.property_normalization != PropertyLossNormalization::kNone) {
      for (size_t m = 0; m < m_props; ++m) {
        double norm = 0.0;
        for (size_t k = 0; k < k_sources; ++k) {
          if (options.base.property_normalization == PropertyLossNormalization::kSum) {
            norm += loss[k][m];
          } else {
            norm = std::max(norm, loss[k][m]);
          }
        }
        if (norm > 0) {
          for (size_t k = 0; k < k_sources; ++k) loss[k][m] /= norm;
        }
      }
    }
    std::vector<double> totals(k_sources, 0.0);
    for (size_t k = 0; k < k_sources; ++k) {
      for (size_t m = 0; m < m_props; ++m) totals[k] += loss[k][m];
    }
    return ComputeSourceWeights(totals, options.base.weight_scheme);
  };

  IterationObserver* observer = options.base.observer;
#ifdef CRH_VERIFY_BUILD
  InvariantVerifier default_verifier;
  if (observer == nullptr) observer = &default_verifier;
#endif
  // Objective evaluation and the dense truth table are only materialized
  // when somebody is watching; the plain run never pays for them.
  EntryStats observer_stats;
  if (observer != nullptr) observer_stats = ComputeEntryStats(data);
  // Materializes cache.truths as a dense table by *probing* the map in
  // entry order — never iterating it — so the table fill order (and with it
  // any downstream serialization) is independent of hash-bucket layout
  // (ast_lint, unordered-iteration).
  const auto cache_truth_table = [&]() {
    ValueTable table(data.num_objects(), data.num_properties());
    for (size_t i = 0; i < data.num_objects(); ++i) {
      for (uint64_t m = 0; m < m_props; ++m) {
        const auto it = cache.truths.find(static_cast<uint64_t>(i) * m_props + m);
        if (it != cache.truths.end()) {
          table.Set(i, static_cast<size_t>(m), it->second);
        }
      }
    }
    return table;
  };

  // --- Wrapper: iterate truth + weight jobs until the weights settle.
  ValueTable prev_truth_table;  // observer-only: the previous iteration's truths
  bool have_prev_truths = false;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    CRH_RETURN_NOT_OK(run_truth_job());
    // Descent certificates. The truth job minimized the weighted loss at the
    // pre-update weights (still in cache.weights here), so its certificate
    // compares the previous and new truth tables at those weights; the first
    // iteration has no previous truths and emits none. The weight job's
    // certificate is evaluated on the aggregated deviations it minimized,
    // recomputed serially — observer-only cost, like the truth table.
    ValueTable truth_table;
    double truth_step_before = std::numeric_limits<double>::quiet_NaN();
    double truth_step_after = std::numeric_limits<double>::quiet_NaN();
    double weight_step_before = std::numeric_limits<double>::quiet_NaN();
    double weight_step_after = std::numeric_limits<double>::quiet_NaN();
    std::vector<double> cert_totals;
    if (observer != nullptr) {
      truth_table = cache_truth_table();
      if (have_prev_truths) {
        truth_step_before =
            CrhObjective(data, prev_truth_table, cache.weights, observer_stats, options.base);
        truth_step_after =
            CrhObjective(data, truth_table, cache.weights, observer_stats, options.base);
      }
      cert_totals = ComputeSourceDeviations(data, truth_table, observer_stats, options.base);
      weight_step_before =
          WeightStepObjective(cache.weights, cert_totals, options.base.weight_scheme);
    }
    auto weights = run_weight_job();
    if (!weights.ok()) return weights.status();
    CRH_VERIFY_OR_RETURN(weights->size() == k_sources,
                         "weight job returned a wrong-sized weight vector");
    double max_change = 0.0;
    for (size_t k = 0; k < k_sources; ++k) {
      max_change = std::max(max_change, std::abs((*weights)[k] - cache.weights[k]));
    }
    cache.weights = std::move(*weights);
    result.iterations = iter + 1;
    if (observer != nullptr) {
      weight_step_after =
          WeightStepObjective(cache.weights, cert_totals, options.base.weight_scheme);
      IterationSnapshot snapshot;
      snapshot.engine = "parallel";
      snapshot.iteration = iter + 1;
      snapshot.data = &data;
      snapshot.truths = &truth_table;
      snapshot.weights = &cache.weights;
      snapshot.weight_scheme = &options.base.weight_scheme;
      // The MapReduce formulation has no supervision clamping, so the
      // domain check runs unsupervised.
      snapshot.objective =
          CrhObjective(data, truth_table, cache.weights, observer_stats, options.base);
      snapshot.weight_step_before = weight_step_before;
      snapshot.weight_step_after = weight_step_after;
      snapshot.truth_step_before = truth_step_before;
      snapshot.truth_step_after = truth_step_after;
      CRH_RETURN_NOT_OK(observer->OnIteration(snapshot));
      prev_truth_table = std::move(truth_table);
      have_prev_truths = true;
    }
    if (max_change < options.convergence_tolerance) {
      result.converged = true;
      break;
    }
  }
  // Final truth job so the reported truths reflect the final weights.
  CRH_RETURN_NOT_OK(run_truth_job());

  result.truths = cache_truth_table();
  result.source_weights = cache.weights;
  result.wall_seconds = watch.ElapsedSeconds();
  result.simulated_cluster_seconds = options.cost_model.job_setup_seconds;
  for (const JobStats& stats : result.job_stats) {
    result.simulated_cluster_seconds += options.cost_model.EstimatePassSeconds(
        static_cast<double>(stats.input_records), options.mr.num_reducers);
  }
  return result;
}

}  // namespace crh
