#include "mapreduce/engine.h"

#include "common/fault_injection.h"
#include "common/thread_pool.h"

namespace crh {

Status ValidateMapReduceConfig(const MapReduceConfig& config) {
  if (config.fault_injection_rate < 0.0 || config.fault_injection_rate > 1.0) {
    return Status::InvalidArgument("fault_injection_rate must be in [0, 1]");
  }
  if (config.max_attempts < 1) {
    return Status::InvalidArgument("max_attempts must be >= 1");
  }
  if (config.num_mappers < 1) {
    return Status::InvalidArgument("num_mappers must be >= 1");
  }
  if (config.num_reducers < 1) {
    return Status::InvalidArgument("num_reducers must be >= 1");
  }
  if (config.num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }
  return Status::OK();
}

namespace internal {

bool InjectFault(size_t phase, size_t task, int attempt, double rate) {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  // Mix64 (common/fault_injection.h) over the (phase, task, attempt)
  // triple: deterministic, well-mixed, independent across attempts, and
  // the same mixer every other robustness decision in the library uses.
  constexpr uint64_t kMix1 = 0x9e3779b97f4a7c15u;
  constexpr uint64_t kMix2 = 0xbf58476d1ce4e5b9u;
  constexpr uint64_t kMix3 = 0x94d049bb133111ebu;
  constexpr uint64_t kMix4 = 0x2545f4914f6cdd1du;
  const uint64_t x =
      phase * kMix1 + task * kMix2 + static_cast<uint64_t>(attempt) * kMix3 + kMix4;
  return UnitUniformFromHash(Mix64(x)) < rate;
}

void RunOnThreads(std::vector<std::function<void()>> tasks, ThreadPool* pool) {
  if (pool == nullptr || pool->num_workers() <= 1 || tasks.size() <= 1) {
    for (auto& task : tasks) task();
    return;
  }
  // Static round-robin assignment (ThreadPool's contract): task t runs on
  // worker t % W, with the caller participating as worker 0.
  pool->ParallelFor(tasks.size(), [&tasks](size_t t) { tasks[t](); });
}

void RunOnThreads(std::vector<std::function<void()>> tasks, int num_threads) {
  size_t workers = ThreadPool::ResolveNumThreads(num_threads);
  workers = std::min(workers, tasks.size());
  if (workers <= 1) {
    for (auto& task : tasks) task();
    return;
  }
  ThreadPool pool(static_cast<int>(workers));
  RunOnThreads(std::move(tasks), &pool);
}

}  // namespace internal

}  // namespace crh
