#ifndef CRH_MAPREDUCE_ENGINE_H_
#define CRH_MAPREDUCE_ENGINE_H_

/// \file engine.h
/// An in-process MapReduce engine (the substrate standing in for the
/// paper's Hadoop cluster; Section 2.7).
///
/// The engine executes real map / combine / shuffle / reduce semantics on a
/// thread pool:
///
///  1. the input is cut into splits, one mapper task per split;
///  2. each mapper applies the map function and, if a combiner is given,
///     pre-aggregates its local output by key (Section 2.7.3's Combiner);
///  3. intermediate pairs are hash-partitioned across reducers;
///  4. each reducer groups its partition by key (keys processed in sorted
///     order, like Hadoop's sort phase) and applies the reduce function.
///
/// Wall-clock on this machine is measured, and the calibrated
/// ClusterCostModel translates the record counts into simulated cluster
/// seconds for the scalability experiments.

#include <algorithm>
#include <atomic>
#include <functional>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "mapreduce/cost_model.h"

namespace crh {

/// Engine configuration.
struct MapReduceConfig {
  /// Concurrent mapper tasks (split count is derived from this unless
  /// records_per_split is set).
  int num_mappers = 4;
  /// Reducer tasks (= output partitions).
  int num_reducers = 4;
  /// Records per split; 0 divides the input evenly over num_mappers.
  size_t records_per_split = 0;
  /// Number of OS threads running tasks; 0 = hardware concurrency.
  int num_threads = 0;
  /// Fault injection for testing the engine's retry path: probability that
  /// any task attempt is killed before committing its output (a simulated
  /// worker crash). Decisions are deterministic in (task, attempt).
  double fault_injection_rate = 0.0;
  /// Attempts per task before the whole job fails, as in Hadoop's
  /// mapred.map.max.attempts.
  int max_attempts = 3;
};

/// Validates a MapReduceConfig.
[[nodiscard]] Status ValidateMapReduceConfig(const MapReduceConfig& config);

/// Counters of one executed job.
struct JobStats {
  size_t input_records = 0;
  /// Task attempts that were killed and retried (both phases).
  size_t task_retries = 0;
  size_t map_output_records = 0;
  /// Records after the (optional) combiner; equals map_output_records
  /// when no combiner is installed.
  size_t shuffle_records = 0;
  size_t reduce_groups = 0;
  size_t output_records = 0;
  size_t num_splits = 0;
  /// Measured wall-clock on this machine.
  double wall_seconds = 0.0;
};

/// Output of RunMapReduce.
template <typename Out>
struct MapReduceOutput {
  std::vector<Out> records;
  JobStats stats;
};

/// The three user functions of a job. K must be hashable and ordered; the
/// combiner is optional (nullptr) and must be associative/commutative in V.
template <typename In, typename K, typename V, typename Out>
struct MapReduceSpec {
  /// Emits zero or more (key, value) pairs per input record.
  std::function<void(const In&, std::vector<std::pair<K, V>>*)> map;
  /// Folds a key's local values into one; applied mapper-side.
  std::function<V(const K&, std::vector<V>&&)> combine;
  /// Consumes one key group and appends output records.
  std::function<void(const K&, std::vector<V>&&, std::vector<Out>*)> reduce;
};

namespace internal {

/// Runs `tasks` callables on up to `num_threads` OS threads (all tasks run
/// concurrently in waves; exceptions must not escape the callables).
/// Creates a transient ThreadPool; jobs that run several task waves should
/// build one pool and use the overload below.
void RunOnThreads(std::vector<std::function<void()>> tasks, int num_threads);

/// Runs `tasks` on an existing pool (task t on worker t % W, the caller
/// participating as worker 0). A null pool runs the tasks inline in order.
void RunOnThreads(std::vector<std::function<void()>> tasks, ThreadPool* pool);

/// Deterministic fault-injection decision for (phase, task, attempt).
/// Phases 0/1 kill a map/reduce attempt before it starts; phases 2/3 kill
/// it after the work but before its output commits.
bool InjectFault(size_t phase, size_t task, int attempt, double rate);

}  // namespace internal

/// Executes one MapReduce job over `input`.
template <typename In, typename K, typename V, typename Out>
[[nodiscard]] Result<MapReduceOutput<Out>> RunMapReduce(const std::vector<In>& input,
                                                        const MapReduceSpec<In, K, V, Out>& spec,
                                                        const MapReduceConfig& config = {}) {
                CRH_RETURN_NOT_OK(ValidateMapReduceConfig(config));
  if (!spec.map || !spec.reduce) {
    return Status::InvalidArgument("map and reduce functions are required");
  }

  // Task attempt wrapper. Each attempt runs `body` into attempt-local
  // buffers and publishes them with `commit` only if the attempt survives,
  // like Hadoop's task-output commit protocol: a killed attempt — whether
  // it dies before doing any work (phase 0/1) or after producing its full
  // output but before committing (phase 2/3) — leaks nothing into the job
  // output. The audit property "a failed attempt leaves no partial
  // partition output" is structural, not an invariant the bodies must
  // maintain.
  //
  // Memory-order contract for the two shared counters: tasks only ever
  // *write* them (fetch_add / store), and the driver only *reads* them
  // after RunOnThreads returns, whose ParallelFor join (mutex + condition
  // variable handshake in ThreadPool) already orders every task write
  // before the driver's read. The atomics therefore carry no ordering
  // duty of their own — they exist solely so concurrent tasks don't race
  // each other — and every access is explicitly relaxed. Verified by the
  // tsan-labeled suite (tests/engine_race_test.cc, tests/mapreduce_test.cc
  // retry-path cases under the tsan preset).
  std::atomic<size_t> total_retries{0};
  std::atomic<bool> task_failed{false};
  const auto run_with_retries = [&](size_t phase, size_t task,
                                    const std::function<void()>& body,
                                    const std::function<void()>& commit) {
    for (int attempt = 0; attempt < config.max_attempts; ++attempt) {
      // Worker crashed before starting the attempt.
      if (internal::InjectFault(phase, task, attempt, config.fault_injection_rate)) {
        total_retries.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      body();
      // Worker crashed after the work but before the commit: the
      // attempt-local buffers are discarded on retry.
      if (internal::InjectFault(phase + 2, task, attempt, config.fault_injection_rate)) {
        total_retries.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      commit();
      return;
    }
    task_failed.store(true, std::memory_order_relaxed);
  };

  Stopwatch watch;
  MapReduceOutput<Out> out;
  out.stats.input_records = input.size();

  // --- Split the input.
  const size_t mappers = static_cast<size_t>(config.num_mappers);
  const size_t split_size =
      config.records_per_split > 0
          ? config.records_per_split
          : std::max<size_t>(1, (input.size() + mappers - 1) / mappers);
  const size_t num_splits = input.empty() ? 0 : (input.size() + split_size - 1) / split_size;
  out.stats.num_splits = num_splits;

  const size_t r = static_cast<size_t>(config.num_reducers);

  // One executor reused by both phases. Sized to the wider phase so neither
  // spawns more threads than it has tasks.
  const size_t job_workers = std::min(ThreadPool::ResolveNumThreads(config.num_threads),
                                      std::max<size_t>(std::max(num_splits, r), 1));
  ThreadPool job_pool(static_cast<int>(job_workers));

  // --- Map (+ combine) phase: each mapper partitions its output by
  // reducer so the shuffle is a simple concatenation.
  // partitioned[mapper][reducer] -> pairs.
  std::vector<std::vector<std::vector<std::pair<K, V>>>> partitioned(
      num_splits, std::vector<std::vector<std::pair<K, V>>>(r));
  std::vector<size_t> map_counts(num_splits, 0);
  {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(num_splits);
    for (size_t split = 0; split < num_splits; ++split) {
      tasks.push_back([&, split]() {
        std::vector<std::vector<std::pair<K, V>>> attempt_parts;
        size_t attempt_records = 0;
        run_with_retries(
            /*phase=*/0, split,
            [&]() {
              attempt_parts.assign(r, {});
              const size_t begin = split * split_size;
              const size_t end = std::min(input.size(), begin + split_size);
              std::vector<std::pair<K, V>> buffer;
              for (size_t idx = begin; idx < end; ++idx) spec.map(input[idx], &buffer);
              attempt_records = buffer.size();
              if (spec.combine) {
                // Mapper-side pre-aggregation by key.
                std::map<K, std::vector<V>> groups;
                for (auto& [key, value] : buffer) groups[key].push_back(std::move(value));
                buffer.clear();
                for (auto& [key, values] : groups) {
                  buffer.emplace_back(key, spec.combine(key, std::move(values)));
                }
              }
              for (auto& [key, value] : buffer) {
                const size_t part = std::hash<K>{}(key) % r;
                attempt_parts[part].emplace_back(std::move(key), std::move(value));
              }
            },
            [&]() {
              partitioned[split] = std::move(attempt_parts);
              map_counts[split] = attempt_records;
            });
      });
    }
    internal::RunOnThreads(std::move(tasks), &job_pool);
    if (task_failed.load(std::memory_order_relaxed)) {
      return Status::Internal("a map task exhausted its attempts");
    }
  }
  for (size_t split = 0; split < num_splits; ++split) {
    out.stats.map_output_records += map_counts[split];
    for (size_t part = 0; part < r; ++part) {
      out.stats.shuffle_records += partitioned[split][part].size();
    }
  }

  // --- Reduce phase: each reducer merges its partitions, groups by key in
  // sorted order, and reduces each group.
  std::vector<std::vector<Out>> reducer_outputs(r);
  std::vector<size_t> group_counts(r, 0);
  {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(r);
    for (size_t part = 0; part < r; ++part) {
      tasks.push_back([&, part]() {
        std::vector<Out> attempt_output;
        size_t attempt_groups = 0;
        run_with_retries(
            /*phase=*/1, part,
            [&]() {
              attempt_output.clear();
              std::map<K, std::vector<V>> groups;  // ordered, like Hadoop's sort
              for (size_t split = 0; split < num_splits; ++split) {
                // Copy (not move): the shuffle output must survive for retries.
                for (const auto& [key, value] : partitioned[split][part]) {
                  groups[key].push_back(value);
                }
              }
              attempt_groups = groups.size();
              for (auto& [key, values] : groups) {
                spec.reduce(key, std::move(values), &attempt_output);
              }
            },
            [&]() {
              reducer_outputs[part] = std::move(attempt_output);
              group_counts[part] = attempt_groups;
            });
      });
    }
    internal::RunOnThreads(std::move(tasks), &job_pool);
    if (task_failed.load(std::memory_order_relaxed)) {
      return Status::Internal("a reduce task exhausted its attempts");
    }
  }
  for (size_t part = 0; part < r; ++part) {
    out.stats.reduce_groups += group_counts[part];
    out.records.insert(out.records.end(),
                       std::make_move_iterator(reducer_outputs[part].begin()),
                       std::make_move_iterator(reducer_outputs[part].end()));
  }
  out.stats.output_records = out.records.size();
  out.stats.task_retries = total_retries.load(std::memory_order_relaxed);
  out.stats.wall_seconds = watch.ElapsedSeconds();
  return out;
}

}  // namespace crh

#endif  // CRH_MAPREDUCE_ENGINE_H_
