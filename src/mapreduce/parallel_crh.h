#ifndef CRH_MAPREDUCE_PARALLEL_CRH_H_
#define CRH_MAPREDUCE_PARALLEL_CRH_H_

/// \file parallel_crh.h
/// Parallel CRH under the MapReduce model (Section 2.7 of the paper).
///
/// The input is the claim-tuple stream (eID, v, sID). Each iteration runs
/// two jobs:
///
///  * Truth job — map groups claims by entry; reduce computes each entry's
///    truth (Eq 3) reading the shared source-weight "file" (distributed
///    cache).
///  * Weight job — map emits each claim's partial error against the shared
///    truths; a Combiner pre-sums errors mapper-side; reduce aggregates per
///    source, and the wrapper turns normalized errors into weights (Eq 5).
///
/// A one-off statistics job computes the per-entry claim dispersion that
/// the continuous losses normalize by. The wrapper iterates to convergence
/// (Section 2.7.4). Results are bit-identical to serial RunCrh under the
/// same options.

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/crh.h"
#include "data/dataset.h"
#include "mapreduce/cost_model.h"
#include "mapreduce/engine.h"

namespace crh {

/// One claim of the tuple stream: entry_id = object * M + property.
struct ObservationTuple {
  uint64_t entry_id = 0;
  uint32_t source_id = 0;
  Value value;
};

/// Flattens a dataset into the (eID, v, sID) tuple stream.
std::vector<ObservationTuple> DatasetToTuples(const Dataset& data);

/// Configuration for RunParallelCrh.
struct ParallelCrhOptions {
  /// Loss models, weight scheme and normalizations. The soft categorical
  /// model is not supported in the MapReduce formulation.
  CrhOptions base;
  /// Engine configuration (mappers, reducers, threads).
  MapReduceConfig mr;
  /// Iteration cap for the wrapper.
  int max_iterations = 20;
  /// Stop when the max source-weight change falls below this.
  double convergence_tolerance = 1e-9;
  /// Cost model used to report simulated cluster seconds.
  ClusterCostModel cost_model;
};

/// Output of RunParallelCrh.
struct ParallelCrhResult {
  ValueTable truths;
  std::vector<double> source_weights;
  int iterations = 0;
  bool converged = false;
  /// Stats of every executed job, in execution order.
  std::vector<JobStats> job_stats;
  /// Measured wall-clock of the whole fusion on this machine.
  double wall_seconds = 0.0;
  /// Simulated cluster time under the calibrated cost model: job setup +
  /// one pass estimate per executed job.
  double simulated_cluster_seconds = 0.0;
};

/// Runs the MapReduce formulation of CRH over the dataset.
[[nodiscard]] Result<ParallelCrhResult> RunParallelCrh(const Dataset& data,
                                                       const ParallelCrhOptions& options = {});

}  // namespace crh

#endif  // CRH_MAPREDUCE_PARALLEL_CRH_H_
