#include <algorithm>
#include <cmath>
#include <vector>

#include "baselines/baselines.h"

namespace crh {

namespace {

/// Shared engine for Investment and PooledInvestment (Pasternack & Roth,
/// COLING 2010). Per round:
///
///   inv(s, f) = T(s) / |claims(s)|                  (uniform investment)
///   H(f)      = sum_{s in S(f)} inv(s, f)
///   B(f)      = pooled ? H(f) * H(f)^g / sum_{f' in entry} H(f')^g
///                      : H(f)^g
///   T(s)      = sum_{f in claims(s)} B(f) * inv(s, f) / H(f)
///
/// followed by rescaling T to max 1 to keep the iteration bounded.
ResolverOutput RunInvestment(const Dataset& data, int iterations, double exponent,
                             bool pooled) {
  const size_t k_sources = data.num_sources();
  const std::vector<EntryFacts> facts = BuildEntryFacts(data);

  std::vector<size_t> claims_per_source(k_sources, 0);
  for (const EntryFacts& entry : facts) {
    for (const auto& voters : entry.voters) {
      for (uint32_t s : voters) ++claims_per_source[s];
    }
  }

  std::vector<double> trust(k_sources, 1.0);
  std::vector<std::vector<double>> belief(facts.size());
  for (size_t e = 0; e < facts.size(); ++e) belief[e].assign(facts[e].values.size(), 0.0);

  for (int iter = 0; iter < iterations; ++iter) {
    std::vector<double> new_trust(k_sources, 0.0);
    for (size_t e = 0; e < facts.size(); ++e) {
      const EntryFacts& entry = facts[e];
      const size_t num_facts = entry.values.size();
      std::vector<double> invested(num_facts, 0.0);
      for (size_t f = 0; f < num_facts; ++f) {
        for (uint32_t s : entry.voters[f]) {
          invested[f] += trust[s] / static_cast<double>(std::max<size_t>(claims_per_source[s], 1));
        }
      }
      double pool_norm = 0.0;
      if (pooled) {
        for (size_t f = 0; f < num_facts; ++f) pool_norm += std::pow(invested[f], exponent);
      }
      for (size_t f = 0; f < num_facts; ++f) {
        double b;
        if (pooled) {
          b = pool_norm > 0 ? invested[f] * std::pow(invested[f], exponent) / pool_norm : 0.0;
        } else {
          b = std::pow(invested[f], exponent);
        }
        belief[e][f] = b;
        if (invested[f] > 0) {
          for (uint32_t s : entry.voters[f]) {
            const double share =
                trust[s] / static_cast<double>(std::max<size_t>(claims_per_source[s], 1));
            new_trust[s] += b * share / invested[f];
          }
        }
      }
    }
    const double max_trust = *std::max_element(new_trust.begin(), new_trust.end());
    if (max_trust > 0) {
      for (double& t : new_trust) t /= max_trust;
    } else {
      std::fill(new_trust.begin(), new_trust.end(), 1.0);
    }
    trust = std::move(new_trust);
  }

  ResolverOutput out;
  out.truths = FactsToTruths(data, facts, belief);
  out.source_scores = trust;
  return out;
}

}  // namespace

Result<ResolverOutput> InvestmentResolver::Run(const Dataset& data) const {
  return RunInvestment(data, options_.iterations, options_.exponent, /*pooled=*/false);
}

Result<ResolverOutput> PooledInvestmentResolver::Run(const Dataset& data) const {
  return RunInvestment(data, options_.iterations, options_.exponent, /*pooled=*/true);
}

}  // namespace crh
