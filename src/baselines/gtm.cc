#include <cmath>
#include <vector>

#include "baselines/baselines.h"

namespace crh {

/// Gaussian Truth Model (Zhao & Han, QDB 2012).
///
/// Generative story: the truth of entry e is mu_e ~ N(0, sigma0^2) after
/// per-entry standardization of the claims; source k's claim on e is
/// v_ek ~ N(mu_e, sigma_k^2); sigma_k^2 carries an inverse-Gamma(alpha,
/// beta) prior. We run coordinate ascent on the MAP objective:
///
///   truth step:    mu_e = (sum_k v_ek / sigma_k^2) / (1/sigma0^2 + sum_k 1/sigma_k^2)
///   variance step: sigma_k^2 = (beta + 0.5 * sum_e (v_ek - mu_e)^2)
///                              / (alpha + 1 + 0.5 * n_k)
///
/// and report truths de-standardized back to the original claim scale.
Result<ResolverOutput> GtmResolver::Run(const Dataset& data) const {
  const size_t n = data.num_objects();
  const size_t m_props = data.num_properties();
  const size_t k_sources = data.num_sources();

  // Standardize claims per entry: z = (v - mean) / std over the entry's
  // claims (as the GTM paper preprocesses its input).
  struct EntryRef {
    uint32_t i, m;
    double mean, std;
  };
  std::vector<EntryRef> entries;
  std::vector<std::vector<std::pair<uint32_t, double>>> claims;  // per entry: (source, z)
  for (size_t i = 0; i < n; ++i) {
    for (size_t m = 0; m < m_props; ++m) {
      if (!data.schema().is_continuous(m)) continue;
      double sum = 0, sum_sq = 0;
      int count = 0;
      for (size_t k = 0; k < k_sources; ++k) {
        const Value& v = data.observations(k).Get(i, m);
        if (v.is_missing()) continue;
        sum += v.continuous();
        sum_sq += v.continuous() * v.continuous();
        ++count;
      }
      if (count == 0) continue;
      const double mean = sum / count;
      double var = sum_sq / count - mean * mean;
      if (var < 0) var = 0;
      const double sd = std::sqrt(var) > 1e-12 ? std::sqrt(var) : 1.0;
      EntryRef ref{static_cast<uint32_t>(i), static_cast<uint32_t>(m), mean, sd};
      std::vector<std::pair<uint32_t, double>> entry_claims;
      for (size_t k = 0; k < k_sources; ++k) {
        const Value& v = data.observations(k).Get(i, m);
        if (v.is_missing()) continue;
        entry_claims.emplace_back(static_cast<uint32_t>(k), (v.continuous() - mean) / sd);
      }
      entries.push_back(ref);
      claims.push_back(std::move(entry_claims));
    }
  }

  std::vector<double> variance(k_sources, 1.0);
  std::vector<double> mu(entries.size(), 0.0);

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    // Truth step.
    for (size_t e = 0; e < entries.size(); ++e) {
      double num = 0.0;
      double den = 1.0 / options_.truth_prior_variance;
      for (const auto& [k, z] : claims[e]) {
        num += z / variance[k];
        den += 1.0 / variance[k];
      }
      mu[e] = num / den;
    }
    // Variance step.
    std::vector<double> sq_err(k_sources, 0.0);
    std::vector<size_t> count(k_sources, 0);
    for (size_t e = 0; e < entries.size(); ++e) {
      for (const auto& [k, z] : claims[e]) {
        const double d = z - mu[e];
        sq_err[k] += d * d;
        ++count[k];
      }
    }
    for (size_t k = 0; k < k_sources; ++k) {
      variance[k] = (options_.beta + 0.5 * sq_err[k]) /
                    (options_.alpha + 1.0 + 0.5 * static_cast<double>(count[k]));
      if (variance[k] < 1e-9) variance[k] = 1e-9;
    }
  }

  ResolverOutput out;
  out.truths = ValueTable(n, m_props);
  for (size_t e = 0; e < entries.size(); ++e) {
    const EntryRef& ref = entries[e];
    out.truths.Set(ref.i, ref.m, Value::Continuous(ref.mean + ref.std * mu[e]));
  }
  out.source_scores.resize(k_sources);
  for (size_t k = 0; k < k_sources; ++k) out.source_scores[k] = 1.0 / variance[k];
  return out;
}

}  // namespace crh
