#include <algorithm>
#include <cmath>
#include <vector>

#include "baselines/baselines.h"

namespace crh {

/// AccuSim (Dong, Berti-Equille & Srivastava, VLDB 2009): the ACCU Bayesian
/// accuracy model with the similarity adjustment of TruthFinder.
///
///   C(f)   = sum_{s in S(f)} ln(n * A(s) / (1 - A(s)))   (vote count)
///   C*(f)  = C(f) + rho * sum_{f' != f} C(f') * sim(f', f)
///   P(f)   = exp(C*(f)) / sum_{f' in entry} exp(C*(f'))  (Bayesian posterior;
///            the softmax encodes the complement votes of 2-Estimates)
///   A(s)   = mean of P(f) over s's claims
///
/// where n is the assumed number of false values per entry.
Result<ResolverOutput> AccuSimResolver::Run(const Dataset& data) const {
  const size_t k_sources = data.num_sources();
  const std::vector<EntryFacts> facts = BuildEntryFacts(data);
  const EntryStats stats = ComputeEntryStats(data);

  std::vector<size_t> claims_per_source(k_sources, 0);
  for (const EntryFacts& entry : facts) {
    for (const auto& voters : entry.voters) {
      for (uint32_t s : voters) ++claims_per_source[s];
    }
  }

  std::vector<double> accuracy(k_sources, options_.initial_accuracy);
  std::vector<std::vector<double>> probability(facts.size());
  for (size_t e = 0; e < facts.size(); ++e) {
    probability[e].assign(facts[e].values.size(), 0.0);
  }

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    std::vector<double> vote_score(k_sources);
    for (size_t s = 0; s < k_sources; ++s) {
      const double a = std::clamp(accuracy[s], 1e-6, 1.0 - 1e-6);
      vote_score[s] = std::log(options_.false_value_count * a / (1.0 - a));
    }

    std::vector<double> new_accuracy(k_sources, 0.0);
    for (size_t e = 0; e < facts.size(); ++e) {
      const EntryFacts& entry = facts[e];
      const size_t num_facts = entry.values.size();
      const double scale = stats.scale_at(entry.object, entry.property);
      std::vector<double> count(num_facts, 0.0);
      for (size_t f = 0; f < num_facts; ++f) {
        for (uint32_t s : entry.voters[f]) count[f] += vote_score[s];
      }
      std::vector<double> adjusted(num_facts, 0.0);
      for (size_t f = 0; f < num_facts; ++f) {
        adjusted[f] = count[f];
        for (size_t f2 = 0; f2 < num_facts; ++f2) {
          if (f2 == f) continue;
          adjusted[f] += options_.similarity_weight * count[f2] *
                         FactSimilarity(entry.values[f2], entry.values[f], scale);
        }
      }
      // Softmax with max subtraction for numerical stability.
      const double peak = *std::max_element(adjusted.begin(), adjusted.end());
      double norm = 0.0;
      for (size_t f = 0; f < num_facts; ++f) {
        probability[e][f] = std::exp(adjusted[f] - peak);
        norm += probability[e][f];
      }
      for (size_t f = 0; f < num_facts; ++f) {
        probability[e][f] /= norm;
        for (uint32_t s : entry.voters[f]) new_accuracy[s] += probability[e][f];
      }
    }
    double max_change = 0.0;
    for (size_t s = 0; s < k_sources; ++s) {
      const double a = claims_per_source[s] > 0
                           ? new_accuracy[s] / static_cast<double>(claims_per_source[s])
                           : options_.initial_accuracy;
      max_change = std::max(max_change, std::abs(a - accuracy[s]));
      accuracy[s] = a;
    }
    if (max_change < options_.tolerance) break;
  }

  ResolverOutput out;
  out.truths = FactsToTruths(data, facts, probability);
  out.source_scores = accuracy;
  return out;
}

}  // namespace crh
