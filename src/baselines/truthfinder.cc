#include <algorithm>
#include <cmath>
#include <vector>

#include "baselines/baselines.h"

namespace crh {

/// TruthFinder (Yin, Han & Yu, KDD 2007).
///
/// Iterates between source trustworthiness t(s) and fact confidence s(f):
///
///   tau(s)     = -ln(1 - t(s))
///   sigma(f)   = sum_{s in S(f)} tau(s)
///   sigma*(f)  = sigma(f) + rho * sum_{f' != f} sigma(f') * imp(f' -> f)
///   s(f)       = 1 / (1 + exp(-gamma * sigma*(f)))        (dampened)
///   t(s)       = mean of s(f) over s's claims
///
/// where imp(f' -> f) = similarity(f', f) - base_similarity, so that a
/// similar fact lends support while a conflicting one detracts.
Result<ResolverOutput> TruthFinderResolver::Run(const Dataset& data) const {
  const size_t k_sources = data.num_sources();
  const std::vector<EntryFacts> facts = BuildEntryFacts(data);
  const EntryStats stats = ComputeEntryStats(data);

  std::vector<size_t> claims_per_source(k_sources, 0);
  for (const EntryFacts& entry : facts) {
    for (const auto& voters : entry.voters) {
      for (uint32_t s : voters) ++claims_per_source[s];
    }
  }

  std::vector<double> trust(k_sources, options_.initial_trust);
  std::vector<std::vector<double>> confidence(facts.size());
  for (size_t e = 0; e < facts.size(); ++e) confidence[e].assign(facts[e].values.size(), 0.0);

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    std::vector<double> tau(k_sources);
    for (size_t s = 0; s < k_sources; ++s) {
      tau[s] = -std::log(std::max(1.0 - trust[s], 1e-9));
    }

    std::vector<double> new_trust(k_sources, 0.0);
    for (size_t e = 0; e < facts.size(); ++e) {
      const EntryFacts& entry = facts[e];
      const size_t num_facts = entry.values.size();
      const double scale =
          stats.scale_at(entry.object, entry.property);
      std::vector<double> sigma(num_facts, 0.0);
      for (size_t f = 0; f < num_facts; ++f) {
        for (uint32_t s : entry.voters[f]) sigma[f] += tau[s];
      }
      for (size_t f = 0; f < num_facts; ++f) {
        double adjusted = sigma[f];
        for (size_t f2 = 0; f2 < num_facts; ++f2) {
          if (f2 == f) continue;
          const double implication =
              FactSimilarity(entry.values[f2], entry.values[f], scale) -
              options_.base_similarity;
          adjusted += options_.similarity_weight * sigma[f2] * implication;
        }
        const double conf = 1.0 / (1.0 + std::exp(-options_.dampening * adjusted));
        confidence[e][f] = conf;
        for (uint32_t s : entry.voters[f]) new_trust[s] += conf;
      }
    }
    double max_change = 0.0;
    for (size_t s = 0; s < k_sources; ++s) {
      const double t = claims_per_source[s] > 0
                           ? new_trust[s] / static_cast<double>(claims_per_source[s])
                           : options_.initial_trust;
      max_change = std::max(max_change, std::abs(t - trust[s]));
      trust[s] = std::min(t, 1.0 - 1e-9);
    }
    if (max_change < options_.tolerance) break;
  }

  ResolverOutput out;
  out.truths = FactsToTruths(data, facts, confidence);
  out.source_scores = trust;
  return out;
}

}  // namespace crh
