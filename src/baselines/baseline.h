#ifndef CRH_BASELINES_BASELINE_H_
#define CRH_BASELINES_BASELINE_H_

/// \file baseline.h
/// Common interface for the conflict-resolution baselines the paper
/// compares CRH against (Section 3.1.2), plus the shared fact-graph
/// structure the truth-discovery baselines operate on.
///
/// The truth-discovery baselines (Investment, PooledInvestment,
/// 2-Estimates, 3-Estimates, TruthFinder, AccuSim) were designed for
/// categorical "facts"; following the paper, they handle heterogeneous
/// data by treating each distinct continuous claim as a fact too.

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "data/stats.h"
#include "data/table.h"

namespace crh {

/// Output of a conflict-resolution baseline.
struct ResolverOutput {
  /// Estimated truths; entries of property types the method does not
  /// handle stay missing.
  ValueTable truths;
  /// Per-source reliability scores, higher = more reliable. Scales are
  /// method-specific; normalize before comparing across methods.
  std::vector<double> source_scores;
};

/// A conflict-resolution algorithm.
class ConflictResolver {
 public:
  virtual ~ConflictResolver() = default;

  /// Display name used in benchmark tables ("Voting", "TruthFinder", ...).
  virtual const char* name() const = 0;

  /// Whether the method produces truths for categorical properties.
  virtual bool handles_categorical() const { return true; }
  /// Whether the method produces truths for continuous properties.
  virtual bool handles_continuous() const { return true; }

  /// Resolves conflicts over the dataset. Ground truth, if present, must
  /// not be consulted.
  [[nodiscard]] virtual Result<ResolverOutput> Run(const Dataset& data) const = 0;
};

/// The distinct claimed values ("facts") on one entry together with the
/// sources supporting each. The shared substrate of all fact-based
/// truth-discovery baselines.
struct EntryFacts {
  uint32_t object = 0;
  uint32_t property = 0;
  /// Distinct claimed values, in first-seen order.
  std::vector<Value> values;
  /// voters[f] lists the source indices claiming values[f].
  std::vector<std::vector<uint32_t>> voters;
  /// Total number of claims on this entry (sum of voter list sizes).
  size_t total_votes = 0;
};

/// Builds the fact graph of a dataset: one EntryFacts per entry with at
/// least one claim.
std::vector<EntryFacts> BuildEntryFacts(const Dataset& data);

/// Writes each entry's argmax-score fact into an N x M truth table.
/// \p fact_scores must parallel \p facts (one score per distinct value).
ValueTable FactsToTruths(const Dataset& data, const std::vector<EntryFacts>& facts,
                         const std::vector<std::vector<double>>& fact_scores);

/// Similarity between two facts on the same entry, in [0, 1]: exact match
/// is 1; continuous facts decay as exp(-|a-b| / scale); differing
/// categorical facts are 0. Used by TruthFinder and AccuSim.
double FactSimilarity(const Value& a, const Value& b, double scale);

}  // namespace crh

#endif  // CRH_BASELINES_BASELINE_H_
