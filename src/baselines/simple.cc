#include <algorithm>
#include <vector>

#include "baselines/baselines.h"
#include "losses/resolvers.h"

namespace crh {

namespace {

/// Applies an unweighted per-entry aggregate to one property type.
template <typename Aggregate>
ResolverOutput AggregateByType(const Dataset& data, PropertyType type, Aggregate aggregate) {
  ResolverOutput out;
  out.truths = ValueTable(data.num_objects(), data.num_properties());
  out.source_scores.assign(data.num_sources(), 1.0);
  std::vector<Value> claims;
  for (size_t m = 0; m < data.num_properties(); ++m) {
    if (data.schema().property(m).type != type) continue;
    for (size_t i = 0; i < data.num_objects(); ++i) {
      claims.clear();
      for (size_t k = 0; k < data.num_sources(); ++k) {
        const Value& v = data.observations(k).Get(i, m);
        if (!v.is_missing()) claims.push_back(v);
      }
      if (!claims.empty()) out.truths.Set(i, m, aggregate(claims));
    }
  }
  return out;
}

}  // namespace

Result<ResolverOutput> MeanResolver::Run(const Dataset& data) const {
  return AggregateByType(data, PropertyType::kContinuous, [](const std::vector<Value>& claims) {
    double total = 0;
    for (const Value& v : claims) total += v.continuous();
    return Value::Continuous(total / static_cast<double>(claims.size()));
  });
}

Result<ResolverOutput> MedianResolver::Run(const Dataset& data) const {
  return AggregateByType(data, PropertyType::kContinuous, [](const std::vector<Value>& claims) {
    std::vector<double> values;
    values.reserve(claims.size());
    for (const Value& v : claims) values.push_back(v.continuous());
    return Value::Continuous(
        WeightedMedian(std::move(values), std::vector<double>(claims.size(), 1.0)));
  });
}

Result<ResolverOutput> VotingResolver::Run(const Dataset& data) const {
  return AggregateByType(data, PropertyType::kCategorical, [](const std::vector<Value>& claims) {
    return WeightedVote(claims, std::vector<double>(claims.size(), 1.0));
  });
}

std::vector<std::unique_ptr<ConflictResolver>> MakeAllBaselines() {
  std::vector<std::unique_ptr<ConflictResolver>> out;
  out.push_back(std::make_unique<MeanResolver>());
  out.push_back(std::make_unique<MedianResolver>());
  out.push_back(std::make_unique<GtmResolver>());
  out.push_back(std::make_unique<VotingResolver>());
  out.push_back(std::make_unique<InvestmentResolver>());
  out.push_back(std::make_unique<PooledInvestmentResolver>());
  out.push_back(std::make_unique<TwoEstimatesResolver>());
  out.push_back(std::make_unique<ThreeEstimatesResolver>());
  out.push_back(std::make_unique<TruthFinderResolver>());
  out.push_back(std::make_unique<AccuSimResolver>());
  return out;
}

}  // namespace crh
