#include "baselines/baseline.h"

#include <cmath>
#include <unordered_map>

namespace crh {

std::vector<EntryFacts> BuildEntryFacts(const Dataset& data) {
  std::vector<EntryFacts> facts;
  facts.reserve(data.num_entries());
  std::unordered_map<Value, size_t, ValueHash> index;
  for (size_t i = 0; i < data.num_objects(); ++i) {
    for (size_t m = 0; m < data.num_properties(); ++m) {
      EntryFacts entry;
      entry.object = static_cast<uint32_t>(i);
      entry.property = static_cast<uint32_t>(m);
      index.clear();
      for (size_t k = 0; k < data.num_sources(); ++k) {
        const Value& v = data.observations(k).Get(i, m);
        if (v.is_missing()) continue;
        auto [it, added] = index.emplace(v, entry.values.size());
        if (added) {
          entry.values.push_back(v);
          entry.voters.emplace_back();
        }
        entry.voters[it->second].push_back(static_cast<uint32_t>(k));
        ++entry.total_votes;
      }
      if (!entry.values.empty()) facts.push_back(std::move(entry));
    }
  }
  return facts;
}

ValueTable FactsToTruths(const Dataset& data, const std::vector<EntryFacts>& facts,
                         const std::vector<std::vector<double>>& fact_scores) {
  ValueTable truths(data.num_objects(), data.num_properties());
  for (size_t e = 0; e < facts.size(); ++e) {
    const EntryFacts& entry = facts[e];
    const std::vector<double>& scores = fact_scores[e];
    size_t best = 0;
    for (size_t f = 1; f < entry.values.size(); ++f) {
      if (scores[f] > scores[best]) best = f;
    }
    truths.Set(entry.object, entry.property, entry.values[best]);
  }
  return truths;
}

double FactSimilarity(const Value& a, const Value& b, double scale) {
  if (a == b) return 1.0;
  if (a.is_continuous() && b.is_continuous()) {
    const double s = scale > 1e-12 ? scale : 1.0;
    return std::exp(-std::abs(a.continuous() - b.continuous()) / s);
  }
  return 0.0;
}

}  // namespace crh
