#include <algorithm>
#include <cmath>
#include <vector>

#include "baselines/baselines.h"

namespace crh {

namespace {

/// Galland et al.'s linear renormalization onto [0, 1]; a constant series
/// collapses to 0.5.
void Renormalize(std::vector<double>* xs) {
  if (xs->empty()) return;
  const auto [lo_it, hi_it] = std::minmax_element(xs->begin(), xs->end());
  const double lo = *lo_it, hi = *hi_it;
  if (hi - lo < 1e-12) {
    std::fill(xs->begin(), xs->end(), 0.5);
    return;
  }
  for (double& x : *xs) x = (x - lo) / (hi - lo);
}

void RenormalizeNested(std::vector<std::vector<double>>* xss) {
  double lo = 1e300, hi = -1e300;
  for (const auto& xs : *xss) {
    for (double x : xs) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
  }
  if (hi - lo < 1e-12) {
    for (auto& xs : *xss) std::fill(xs.begin(), xs.end(), 0.5);
    return;
  }
  for (auto& xs : *xss) {
    for (double& x : xs) x = (x - lo) / (hi - lo);
  }
}

constexpr double kClip = 1e-3;

double Clip01(double x) { return std::clamp(x, kClip, 1.0 - kClip); }

/// Shared engine for 2-Estimates and 3-Estimates (Galland et al., WSDM
/// 2010). Sources cast a positive vote for the fact they claim and an
/// implicit negative (complement) vote against every other fact on the
/// same entry. 3-Estimates additionally estimates a per-fact difficulty
/// delta_f, postulating P(source s wrong about f) = eps_s * delta_f.
ResolverOutput RunEstimates(const Dataset& data, int iterations, bool with_difficulty) {
  const size_t k_sources = data.num_sources();
  const std::vector<EntryFacts> facts = BuildEntryFacts(data);

  std::vector<double> error(k_sources, 0.2);
  std::vector<std::vector<double>> theta(facts.size());     // fact truth estimates
  std::vector<std::vector<double>> difficulty(facts.size());
  for (size_t e = 0; e < facts.size(); ++e) {
    theta[e].assign(facts[e].values.size(), 0.5);
    difficulty[e].assign(facts[e].values.size(), 0.5);
  }

  for (int iter = 0; iter < iterations; ++iter) {
    // --- Theta step: truth estimate per fact from voter errors.
    for (size_t e = 0; e < facts.size(); ++e) {
      const EntryFacts& entry = facts[e];
      const size_t num_facts = entry.values.size();
      // Every voter on the entry votes on every fact (positively on its
      // claim, negatively otherwise), so the denominator is total_votes.
      double total_error = 0.0;
      for (size_t f = 0; f < num_facts; ++f) {
        for (uint32_t s : entry.voters[f]) total_error += error[s];
      }
      for (size_t f = 0; f < num_facts; ++f) {
        const double d = with_difficulty ? Clip01(difficulty[e][f]) : 1.0;
        double supporter_error = 0.0;
        for (uint32_t s : entry.voters[f]) supporter_error += error[s];
        const double supporters = static_cast<double>(entry.voters[f].size());
        // Positive votes contribute 1 - eps*delta; negative votes eps*delta.
        const double numerator = supporters - supporter_error * d +
                                 (total_error - supporter_error) * d;
        theta[e][f] = numerator / static_cast<double>(entry.total_votes);
      }
    }
    RenormalizeNested(&theta);

    // --- Difficulty step (3-Estimates only). A positive vote on f is
    // wrong with probability 1 - theta_f, a negative vote with theta_f;
    // each wrong vote by source s is evidence of difficulty target/eps_s.
    if (with_difficulty) {
      for (size_t e = 0; e < facts.size(); ++e) {
        const EntryFacts& entry = facts[e];
        const size_t num_facts = entry.values.size();
        // inv_eps[f] = sum over f's voters of 1/eps_s.
        std::vector<double> inv_eps(num_facts, 0.0);
        double inv_eps_total = 0.0;
        for (size_t f = 0; f < num_facts; ++f) {
          for (uint32_t s : entry.voters[f]) inv_eps[f] += 1.0 / Clip01(error[s]);
          inv_eps_total += inv_eps[f];
        }
        for (size_t f = 0; f < num_facts; ++f) {
          const double total = (1.0 - theta[e][f]) * inv_eps[f] +
                               theta[e][f] * (inv_eps_total - inv_eps[f]);
          difficulty[e][f] =
              entry.total_votes > 0 ? total / static_cast<double>(entry.total_votes) : 0.5;
        }
      }
      RenormalizeNested(&difficulty);
    }

    // --- Error step: per-source error from the facts it voted on. A
    // positive vote on f contributes (1 - theta_f)/delta_f, the implicit
    // negative votes on the entry's other facts contribute theta_f2/delta_f2.
    std::vector<double> total(k_sources, 0.0);
    std::vector<size_t> votes(k_sources, 0);
    for (size_t e = 0; e < facts.size(); ++e) {
      const EntryFacts& entry = facts[e];
      const size_t num_facts = entry.values.size();
      double theta_over_delta_total = 0.0;
      for (size_t f = 0; f < num_facts; ++f) {
        const double d = with_difficulty ? Clip01(difficulty[e][f]) : 1.0;
        theta_over_delta_total += theta[e][f] / d;
      }
      for (size_t f = 0; f < num_facts; ++f) {
        const double d = with_difficulty ? Clip01(difficulty[e][f]) : 1.0;
        const double own = (1.0 - theta[e][f]) / d;
        const double others = theta_over_delta_total - theta[e][f] / d;
        for (uint32_t s : entry.voters[f]) {
          total[s] += own + others;
          votes[s] += num_facts;
        }
      }
    }
    for (size_t s = 0; s < k_sources; ++s) {
      error[s] = votes[s] > 0 ? total[s] / static_cast<double>(votes[s]) : 0.5;
    }
    Renormalize(&error);
  }

  ResolverOutput out;
  out.truths = FactsToTruths(data, facts, theta);
  out.source_scores.resize(k_sources);
  for (size_t s = 0; s < k_sources; ++s) out.source_scores[s] = 1.0 - error[s];
  return out;
}

}  // namespace

Result<ResolverOutput> TwoEstimatesResolver::Run(const Dataset& data) const {
  return RunEstimates(data, options_.iterations, /*with_difficulty=*/false);
}

Result<ResolverOutput> ThreeEstimatesResolver::Run(const Dataset& data) const {
  return RunEstimates(data, options_.iterations, /*with_difficulty=*/true);
}

}  // namespace crh
