#ifndef CRH_BASELINES_BASELINES_H_
#define CRH_BASELINES_BASELINES_H_

/// \file baselines.h
/// The ten conflict-resolution baselines of Section 3.1.2, implemented from
/// scratch against the papers cited there:
///
///  Continuous-only:  Mean, Median, GTM (Zhao & Han 2012).
///  Categorical-only: Voting.
///  Fact-based truth discovery (handle both types by treating continuous
///  claims as facts): Investment, PooledInvestment (Pasternack & Roth
///  2010/2011), 2-Estimates, 3-Estimates (Galland et al. 2010),
///  TruthFinder (Yin et al. 2007), AccuSim (Dong et al. 2009).

#include <memory>
#include <vector>

#include "baselines/baseline.h"

namespace crh {

/// Unweighted per-entry mean of continuous claims; ignores categorical data.
class MeanResolver final : public ConflictResolver {
 public:
  const char* name() const override { return "Mean"; }
  bool handles_categorical() const override { return false; }
  [[nodiscard]] Result<ResolverOutput> Run(const Dataset& data) const override;
};

/// Unweighted per-entry median of continuous claims; ignores categorical data.
class MedianResolver final : public ConflictResolver {
 public:
  const char* name() const override { return "Median"; }
  bool handles_categorical() const override { return false; }
  [[nodiscard]] Result<ResolverOutput> Run(const Dataset& data) const override;
};

/// Majority voting over categorical claims; ignores continuous data.
class VotingResolver final : public ConflictResolver {
 public:
  const char* name() const override { return "Voting"; }
  bool handles_continuous() const override { return false; }
  [[nodiscard]] Result<ResolverOutput> Run(const Dataset& data) const override;
};

/// Gaussian Truth Model (Zhao & Han 2012): Bayesian truth discovery for
/// continuous data. Claims are standardized per entry; truths and
/// per-source variances are inferred by coordinate ascent under an
/// inverse-Gamma prior on each source's error variance. Source score is the
/// estimated precision 1/sigma_k^2.
class GtmResolver final : public ConflictResolver {
 public:
  struct Options {
    int max_iterations = 20;
    /// Inverse-Gamma prior on source variances.
    double alpha = 10.0;
    double beta = 10.0;
    /// Prior variance of the truth around the per-entry claim mean.
    double truth_prior_variance = 1.0;
  };
  GtmResolver() {}
  explicit GtmResolver(Options options) : options_(options) {}
  const char* name() const override { return "GTM"; }
  bool handles_categorical() const override { return false; }
  [[nodiscard]] Result<ResolverOutput> Run(const Dataset& data) const override;

 private:
  Options options_;
};

/// Investment (Pasternack & Roth 2010): sources invest their trust
/// uniformly across their claims; fact belief grows as G(x) = x^1.2 of the
/// invested total, and trust returns proportionally to each investor's
/// share.
class InvestmentResolver final : public ConflictResolver {
 public:
  struct Options {
    int iterations = 20;
    double exponent = 1.2;
  };
  InvestmentResolver() {}
  explicit InvestmentResolver(Options options) : options_(options) {}
  const char* name() const override { return "Investment"; }
  [[nodiscard]] Result<ResolverOutput> Run(const Dataset& data) const override;

 private:
  Options options_;
};

/// PooledInvestment (Pasternack & Roth 2010): like Investment, but fact
/// beliefs are linearly pooled within each entry: B(f) = H(f) * G(H(f)) /
/// sum_{f'} G(H(f')), with G(x) = x^1.4.
class PooledInvestmentResolver final : public ConflictResolver {
 public:
  struct Options {
    int iterations = 20;
    double exponent = 1.4;
  };
  PooledInvestmentResolver() {}
  explicit PooledInvestmentResolver(Options options) : options_(options) {}
  const char* name() const override { return "PooledInvestment"; }
  [[nodiscard]] Result<ResolverOutput> Run(const Dataset& data) const override;

 private:
  Options options_;
};

/// 2-Estimates (Galland et al. 2010): alternates estimates of fact truth
/// probabilities and source error rates with complement votes (a source
/// claiming a different value on an entry votes against the other facts),
/// followed by the paper's linear renormalization onto [0, 1] each round.
class TwoEstimatesResolver final : public ConflictResolver {
 public:
  struct Options {
    int iterations = 20;
  };
  TwoEstimatesResolver() {}
  explicit TwoEstimatesResolver(Options options) : options_(options) {}
  const char* name() const override { return "2-Estimates"; }
  [[nodiscard]] Result<ResolverOutput> Run(const Dataset& data) const override;

 private:
  Options options_;
};

/// 3-Estimates (Galland et al. 2010): extends 2-Estimates with a per-fact
/// difficulty estimate so hard entries do not drag down the error estimate
/// of sources that get them wrong.
class ThreeEstimatesResolver final : public ConflictResolver {
 public:
  struct Options {
    int iterations = 20;
  };
  ThreeEstimatesResolver() {}
  explicit ThreeEstimatesResolver(Options options) : options_(options) {}
  const char* name() const override { return "3-Estimates"; }
  [[nodiscard]] Result<ResolverOutput> Run(const Dataset& data) const override;

 private:
  Options options_;
};

/// TruthFinder (Yin et al. 2007): Bayesian confidence propagation. Source
/// trustworthiness t(s) maps to score tau(s) = -ln(1 - t(s)); a fact's
/// confidence sums its claimers' scores, is adjusted by the implication
/// from similar facts on the same entry, and passes through a dampened
/// sigmoid; trust is the average confidence of claimed facts.
class TruthFinderResolver final : public ConflictResolver {
 public:
  struct Options {
    int max_iterations = 20;
    double initial_trust = 0.9;
    /// Dampening factor gamma in the sigmoid.
    double dampening = 0.3;
    /// Weight rho of the similarity adjustment.
    double similarity_weight = 0.5;
    /// Base similarity subtracted so dissimilar facts imply negatively.
    double base_similarity = 0.5;
    /// Stop when the max trust change falls below this.
    double tolerance = 1e-4;
  };
  TruthFinderResolver() {}
  explicit TruthFinderResolver(Options options) : options_(options) {}
  const char* name() const override { return "TruthFinder"; }
  [[nodiscard]] Result<ResolverOutput> Run(const Dataset& data) const override;

 private:
  Options options_;
};

/// AccuSim (Dong et al. 2009): Bayesian source-accuracy model with
/// complement votes (the vote count of a fact uses ln(n A / (1-A)) per
/// supporter) and the same similarity adjustment as TruthFinder; fact
/// probabilities are the softmax of adjusted vote counts within an entry
/// and source accuracy is the mean probability of its claims.
class AccuSimResolver final : public ConflictResolver {
 public:
  struct Options {
    int max_iterations = 20;
    double initial_accuracy = 0.8;
    /// Assumed number of false values per entry (n in the paper).
    double false_value_count = 10.0;
    double similarity_weight = 0.5;
    double tolerance = 1e-4;
  };
  AccuSimResolver() {}
  explicit AccuSimResolver(Options options) : options_(options) {}
  const char* name() const override { return "AccuSim"; }
  [[nodiscard]] Result<ResolverOutput> Run(const Dataset& data) const override;

 private:
  Options options_;
};

/// All ten baselines in the order of Table 2 (Mean, Median, GTM, Voting,
/// Investment, PooledInvestment, 2-Estimates, 3-Estimates, TruthFinder,
/// AccuSim).
std::vector<std::unique_ptr<ConflictResolver>> MakeAllBaselines();

}  // namespace crh

#endif  // CRH_BASELINES_BASELINES_H_
