#include "weights/weight_scheme.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace crh {

const char* WeightSchemeKindToString(WeightSchemeKind kind) {
  switch (kind) {
    case WeightSchemeKind::kLogSum:
      return "log_sum";
    case WeightSchemeKind::kLogMax:
      return "log_max";
    case WeightSchemeKind::kBestSourceLp:
      return "best_source_lp";
    case WeightSchemeKind::kTopJ:
      return "top_j";
  }
  return "unknown";
}

namespace {

/// The log schemes' normalizer: sum of the losses for kLogSum, max for
/// kLogMax; 0 for empty input or the selection schemes.
double SchemeNormalizer(const std::vector<double>& losses, const WeightSchemeOptions& options) {
  if (losses.empty()) return 0.0;
  if (options.kind == WeightSchemeKind::kLogSum) {
    return std::accumulate(losses.begin(), losses.end(), 0.0);
  }
  if (options.kind == WeightSchemeKind::kLogMax) {
    return *std::max_element(losses.begin(), losses.end());
  }
  return 0.0;
}

}  // namespace

std::vector<double> ClampLossesForScheme(const std::vector<double>& losses,
                                         const WeightSchemeOptions& options) {
  if (options.kind != WeightSchemeKind::kLogSum && options.kind != WeightSchemeKind::kLogMax) {
    return losses;
  }
  const double norm = SchemeNormalizer(losses, options);
  if (norm <= 0) return losses;
  const double floor = options.epsilon_ratio * norm;
  std::vector<double> clamped = losses;
  for (double& loss : clamped) loss = std::max(loss, floor);
  return clamped;
}

double WeightStepObjective(const std::vector<double>& weights,
                           const std::vector<double>& losses,
                           const WeightSchemeOptions& options) {
  CRH_DCHECK_EQ(weights.size(), losses.size());
  const std::vector<double> clamped = ClampLossesForScheme(losses, options);
  double value = 0.0;
  for (size_t k = 0; k < weights.size() && k < clamped.size(); ++k) {
    value += weights[k] * clamped[k];
  }
  if (options.kind == WeightSchemeKind::kLogSum || options.kind == WeightSchemeKind::kLogMax) {
    const double norm = SchemeNormalizer(losses, options);
    if (norm > 0) {
      double barrier = 0.0;
      for (double w : weights) barrier += std::exp(-w);
      value += norm * barrier;
    }
  }
  return value;
}

Result<std::vector<double>> ComputeSourceWeights(const std::vector<double>& losses,
                                                 const WeightSchemeOptions& options) {
  const size_t k_sources = losses.size();
  if (k_sources == 0) {
    return Status::InvalidArgument("at least one source is required");
  }
  for (double loss : losses) {
    if (!std::isfinite(loss) || loss < 0) {
      return Status::InvalidArgument("losses must be finite and non-negative");
    }
  }

  std::vector<double> weights(k_sources, 0.0);
  switch (options.kind) {
    case WeightSchemeKind::kLogSum:
    case WeightSchemeKind::kLogMax: {
      const double norm = SchemeNormalizer(losses, options);
      if (norm <= 0) {
        // Every source matches the truths exactly: all equally reliable.
        std::fill(weights.begin(), weights.end(), 1.0);
        return weights;
      }
      CRH_VERIFY_OR_RETURN(options.epsilon_ratio > 0 && options.epsilon_ratio < 1,
                           "epsilon_ratio must be in (0, 1)");
      const std::vector<double> clamped = ClampLossesForScheme(losses, options);
      for (size_t k = 0; k < k_sources; ++k) {
        weights[k] = -std::log(clamped[k] / norm);
        CRH_DCHECK_GE(weights[k], 0.0);
      }
      // Under max normalization the worst source gets weight exactly 0.
      return weights;
    }
    case WeightSchemeKind::kBestSourceLp: {
      // The optimum of Eq (1) under the Lp-norm constraint (Eq 6) puts all
      // mass on the source with the smallest deviation.
      const size_t best = static_cast<size_t>(
          std::min_element(losses.begin(), losses.end()) - losses.begin());
      weights[best] = 1.0;
      return weights;
    }
    case WeightSchemeKind::kTopJ: {
      if (options.top_j < 1 || static_cast<size_t>(options.top_j) > k_sources) {
        return Status::InvalidArgument("top_j must be in [1, num_sources]");
      }
      // Given fixed truths the integer program (Eq 7) decomposes per source,
      // so picking the j smallest-deviation sources is optimal.
      std::vector<size_t> order(k_sources);
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(),
                       [&](size_t a, size_t b) { return losses[a] < losses[b]; });
      for (int j = 0; j < options.top_j; ++j) weights[order[static_cast<size_t>(j)]] = 1.0;
      return weights;
    }
  }
  return Status::Internal("unhandled weight scheme");
}

}  // namespace crh
