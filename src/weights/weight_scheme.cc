#include "weights/weight_scheme.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace crh {

const char* WeightSchemeKindToString(WeightSchemeKind kind) {
  switch (kind) {
    case WeightSchemeKind::kLogSum:
      return "log_sum";
    case WeightSchemeKind::kLogMax:
      return "log_max";
    case WeightSchemeKind::kBestSourceLp:
      return "best_source_lp";
    case WeightSchemeKind::kTopJ:
      return "top_j";
  }
  return "unknown";
}

Result<std::vector<double>> ComputeSourceWeights(const std::vector<double>& losses,
                                                 const WeightSchemeOptions& options) {
  const size_t k_sources = losses.size();
  if (k_sources == 0) {
    return Status::InvalidArgument("at least one source is required");
  }
  for (double loss : losses) {
    if (!std::isfinite(loss) || loss < 0) {
      return Status::InvalidArgument("losses must be finite and non-negative");
    }
  }

  std::vector<double> weights(k_sources, 0.0);
  switch (options.kind) {
    case WeightSchemeKind::kLogSum:
    case WeightSchemeKind::kLogMax: {
      double norm = 0.0;
      if (options.kind == WeightSchemeKind::kLogSum) {
        norm = std::accumulate(losses.begin(), losses.end(), 0.0);
      } else {
        norm = *std::max_element(losses.begin(), losses.end());
      }
      if (norm <= 0) {
        // Every source matches the truths exactly: all equally reliable.
        std::fill(weights.begin(), weights.end(), 1.0);
        return weights;
      }
      const double floor = options.epsilon_ratio * norm;
      for (size_t k = 0; k < k_sources; ++k) {
        weights[k] = -std::log(std::max(losses[k], floor) / norm);
      }
      // Under max normalization the worst source gets weight exactly 0.
      return weights;
    }
    case WeightSchemeKind::kBestSourceLp: {
      // The optimum of Eq (1) under the Lp-norm constraint (Eq 6) puts all
      // mass on the source with the smallest deviation.
      const size_t best = static_cast<size_t>(
          std::min_element(losses.begin(), losses.end()) - losses.begin());
      weights[best] = 1.0;
      return weights;
    }
    case WeightSchemeKind::kTopJ: {
      if (options.top_j < 1 || static_cast<size_t>(options.top_j) > k_sources) {
        return Status::InvalidArgument("top_j must be in [1, num_sources]");
      }
      // Given fixed truths the integer program (Eq 7) decomposes per source,
      // so picking the j smallest-deviation sources is optimal.
      std::vector<size_t> order(k_sources);
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(),
                       [&](size_t a, size_t b) { return losses[a] < losses[b]; });
      for (int j = 0; j < options.top_j; ++j) weights[order[static_cast<size_t>(j)]] = 1.0;
      return weights;
    }
  }
  return Status::Internal("unhandled weight scheme");
}

}  // namespace crh
