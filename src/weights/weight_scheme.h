#ifndef CRH_WEIGHTS_WEIGHT_SCHEME_H_
#define CRH_WEIGHTS_WEIGHT_SCHEME_H_

/// \file weight_scheme.h
/// Source-weight assignment schemes (Section 2.3 of the paper).
///
/// Given each source's aggregated deviation from the current truths, a
/// weight scheme produces the source weights W that solve the weight-update
/// subproblem (Eq 2) under a chosen regularization function δ(W):
///
///  * kLogSum — δ(W) = Σ exp(-w_k) (Eq 4); closed form Eq (5):
///      w_k = -log(loss_k / Σ_k' loss_k').
///    Keeps every weight positive and bounded, so equally reliable sources
///    keep near-equal influence; the safe choice when source qualities are
///    known to be close.
///  * kLogMax — the paper's preferred variant (Section 2.3) and the
///    default here: normalize by the *maximum* deviation instead of the
///    sum, spreading weights further so reliable sources dominate truth
///    computation. The sharpening is self-reinforcing: iterated with the
///    truth update it concentrates weight on the empirically best sources
///    (the worst source gets weight exactly 0 every round). That is what
///    lets CRH recover the truth even when only one of eight sources is
///    reliable (paper Figs 2-3), at the price of degrading to
///    best-single-source accuracy when sources are in fact
///    indistinguishable. The weight-scheme ablation benchmark quantifies
///    this trade-off.
///  * kBestSourceLp — δ(W) = Lp-norm constraint (Eq 6); the optimum selects
///    the single source with the smallest deviation (weight 1, others 0).
///  * kTopJ — integer constraint (Eq 7); selects the j sources with the
///    smallest deviations, each with weight 1.

#include <vector>

#include "common/status.h"

namespace crh {

/// Which regularization function drives the weight update.
enum class WeightSchemeKind {
  kLogSum,
  kLogMax,
  kBestSourceLp,
  kTopJ,
};

/// Returns a short stable name ("log_sum", "log_max", ...).
const char* WeightSchemeKindToString(WeightSchemeKind kind);

/// Options for ComputeSourceWeights.
struct WeightSchemeOptions {
  WeightSchemeKind kind = WeightSchemeKind::kLogMax;
  /// Number of sources selected under kTopJ.
  int top_j = 1;
  /// Losses are clamped below at (epsilon_ratio * normalizer) before the
  /// logarithm, which caps any single source's weight at -log(epsilon_ratio)
  /// (~3.0 by default). Besides keeping a perfect source's weight finite,
  /// the cap is what stabilizes the block coordinate descent: without it, a
  /// source that comes to dominate the truth update has exactly zero loss,
  /// receives unbounded weight, and locks the iteration onto its claims.
  double epsilon_ratio = 0.05;
};

/// Computes source weights from per-source aggregated losses.
///
/// \p losses must have one non-negative finite entry per source (the sum of
/// that source's per-entry deviations, already normalized per property and
/// per observation count as configured by the caller).
///
/// Returns a weight per source. Weights are non-negative; under the log
/// schemes a smaller loss maps to a larger weight.
[[nodiscard]]
Result<std::vector<double>> ComputeSourceWeights(const std::vector<double>& losses,
                                                 const WeightSchemeOptions& options = {});

/// The losses ComputeSourceWeights actually minimizes against: under the
/// log schemes each loss is floored at (epsilon_ratio * normalizer) before
/// the logarithm; the selection schemes use the losses as-is. Exposed so
/// the invariant verifier can evaluate the weight update's descent
/// certificate on exactly the clamped functional the update optimized.
/// Precondition: losses finite and non-negative, epsilon_ratio in (0, 1).
std::vector<double> ClampLossesForScheme(const std::vector<double>& losses,
                                         const WeightSchemeOptions& options = {});

/// Evaluates, at `weights`, the functional the weight update minimizes over
/// `losses`. For the log schemes this is the penalized form
///   sum_k w_k * C_k  +  norm * sum_k exp(-w_k)
/// with C the epsilon-clamped losses and norm the scheme's normalizer (sum
/// of the raw losses for kLogSum, max for kLogMax): the update
/// w_k = -log(C_k / norm) of Eq (5) is the exact unconstrained minimizer of
/// this strictly convex functional, which is the Lagrangian of Eq (2) under
/// the delta(W) = sum exp(-w) regularizer. For the selection schemes it is
/// the plain linear form sum_k w_k * losses_k, minimized over the 0/1
/// selection set. Backs the weight-step descent certificate: the updated
/// weights never score above any finite previous weights (log schemes), or
/// above any previous selection / the all-ones start (selection schemes).
double WeightStepObjective(const std::vector<double>& weights,
                           const std::vector<double>& losses,
                           const WeightSchemeOptions& options = {});

}  // namespace crh

#endif  // CRH_WEIGHTS_WEIGHT_SCHEME_H_
