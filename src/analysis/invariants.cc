#include "analysis/invariants.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace crh {

namespace {

std::string EntryName(const Dataset& data, size_t i, size_t m) {
  return "entry (" + data.object_id(i) + ", " + data.schema().property(m).name + ")";
}

/// All invariant violations surface as kInternal: they indicate a bug in
/// an engine, never bad user input.
Status Violation(const std::string& message) {
  return Status::Internal("invariant violation: " + message);
}

bool AllEqual(const std::vector<double>& xs, double tolerance) {
  for (double x : xs) {
    if (!NearlyEqual(x, xs.front(), tolerance)) return false;
  }
  return true;
}

}  // namespace

Status ObserverChain::OnIteration(const IterationSnapshot& snapshot) {
  for (IterationObserver* observer : observers_) {
    CRH_RETURN_NOT_OK(observer->OnIteration(snapshot));
  }
  return Status::OK();
}

Status CheckWeightConstraint(const std::vector<double>& weights,
                             const WeightSchemeOptions& scheme, double tolerance) {
  if (weights.empty()) return Violation("weight vector is empty");
  for (size_t k = 0; k < weights.size(); ++k) {
    if (!std::isfinite(weights[k])) {
      return Violation("weight " + std::to_string(k) + " is not finite");
    }
    if (weights[k] < -tolerance) {
      return Violation("weight " + std::to_string(k) + " is negative (" +
                       std::to_string(weights[k]) + ")");
    }
  }
  const size_t k_sources = weights.size();
  switch (scheme.kind) {
    case WeightSchemeKind::kLogSum:
    case WeightSchemeKind::kLogMax: {
      // The documented degenerate output when every source has zero loss.
      if (AllEqual(weights, tolerance)) return Status::OK();
      if (scheme.kind == WeightSchemeKind::kLogSum) {
        // delta(W) = sum_k exp(-w_k) = 1 exactly without the epsilon clamp;
        // the clamp can only raise the sum, by at most K * epsilon_ratio.
        double delta = 0.0;
        for (double w : weights) delta += std::exp(-w);
        const double upper =
            1.0 + static_cast<double>(k_sources) * scheme.epsilon_ratio + tolerance;
        if (delta < 1.0 - tolerance || delta > upper) {
          return Violation("log-sum weight constraint: sum exp(-w) = " +
                           std::to_string(delta) + ", want [1, " + std::to_string(upper) +
                           "]");
        }
      } else {
        // Max normalization pins the worst source to weight exactly 0 and
        // caps every weight at -log(epsilon_ratio).
        const double min_weight = *std::min_element(weights.begin(), weights.end());
        if (min_weight > tolerance) {
          return Violation("log-max weight constraint: min weight = " +
                           std::to_string(min_weight) + ", want 0");
        }
        const double cap = -std::log(scheme.epsilon_ratio) + tolerance;
        const double max_weight = *std::max_element(weights.begin(), weights.end());
        if (max_weight > cap) {
          return Violation("log-max weight cap: max weight = " + std::to_string(max_weight) +
                           " exceeds -log(epsilon_ratio) = " + std::to_string(cap));
        }
      }
      return Status::OK();
    }
    case WeightSchemeKind::kBestSourceLp:
    case WeightSchemeKind::kTopJ: {
      const double want_sum = scheme.kind == WeightSchemeKind::kBestSourceLp
                                  ? 1.0
                                  : static_cast<double>(scheme.top_j);
      double sum = 0.0;
      for (double w : weights) {
        if (!NearlyEqual(w, 0.0, tolerance) && !NearlyEqual(w, 1.0, tolerance)) {
          return Violation("selection weight constraint: weight " + std::to_string(w) +
                           " is neither 0 nor 1");
        }
        sum += w;
      }
      if (!NearlyEqual(sum, want_sum, tolerance)) {
        return Violation("selection weight constraint: weights sum to " +
                         std::to_string(sum) + ", want " + std::to_string(want_sum));
      }
      return Status::OK();
    }
  }
  return Violation("unknown weight scheme kind");
}

Status CheckTruthDomain(const Dataset& data, const ValueTable& truths,
                        const ValueTable* supervision, double tolerance) {
  if (truths.num_objects() != data.num_objects() ||
      truths.num_properties() != data.num_properties()) {
    return Status::InvalidArgument("truth table shape does not match dataset");
  }
  const size_t n = data.num_objects();
  const size_t m_props = data.num_properties();
  for (size_t m = 0; m < m_props; ++m) {
    const bool continuous = data.schema().is_continuous(m);
    for (size_t i = 0; i < n; ++i) {
      const Value& truth = truths.Get(i, m);
      if (supervision != nullptr) {
        const Value& label = supervision->Get(i, m);
        if (!label.is_missing()) {
          if (truth != label) {
            return Violation(EntryName(data, i, m) +
                             ": truth does not equal the supervision label");
          }
          continue;
        }
      }
      // Missing truths are always in-domain: engines leave an entry
      // missing when no source claimed it, and baselines leave whole
      // property types missing by design.
      if (truth.is_missing()) continue;
      if (continuous && !truth.is_continuous()) {
        return Violation(EntryName(data, i, m) +
                         ": continuous property holds a non-continuous truth");
      }
      if (!continuous && !truth.is_categorical()) {
        return Violation(EntryName(data, i, m) +
                         ": discrete property holds a non-categorical truth");
      }

      bool any_claim = false;
      bool candidate_match = false;
      double lo = std::numeric_limits<double>::infinity();
      double hi = -std::numeric_limits<double>::infinity();
      for (size_t k = 0; k < data.num_sources(); ++k) {
        const Value& claim = data.observations(k).Get(i, m);
        if (claim.is_missing()) continue;
        any_claim = true;
        if (continuous) {
          lo = std::min(lo, claim.continuous());
          hi = std::max(hi, claim.continuous());
        } else if (claim == truth) {
          candidate_match = true;
          break;
        }
      }
      if (!any_claim) {
        return Violation(EntryName(data, i, m) + ": truth present but no source claimed it");
      }
      if (continuous) {
        if (!std::isfinite(truth.continuous())) {
          return Violation(EntryName(data, i, m) + ": continuous truth is not finite");
        }
        const double slack =
            tolerance * std::max({1.0, std::abs(lo), std::abs(hi)});
        if (truth.continuous() < lo - slack || truth.continuous() > hi + slack) {
          return Violation(EntryName(data, i, m) + ": continuous truth " +
                           std::to_string(truth.continuous()) +
                           " escapes the observed hull [" + std::to_string(lo) + ", " +
                           std::to_string(hi) + "]");
        }
      } else if (!candidate_match) {
        return Violation(EntryName(data, i, m) +
                         ": discrete truth is not among the observed candidate values");
      }
    }
  }
  return Status::OK();
}

Status CheckLossMonotonic(const std::vector<double>& objective_history,
                          double relative_slack, double absolute_slack) {
  for (size_t t = 0; t < objective_history.size(); ++t) {
    const double objective = objective_history[t];
    if (!std::isfinite(objective)) {
      return Violation("objective at iteration " + std::to_string(t + 1) +
                       " is not finite");
    }
    if (t == 0) continue;
    const double prev = objective_history[t - 1];
    const double allowed =
        prev + relative_slack * std::max(std::abs(prev), 1.0) + absolute_slack;
    if (objective > allowed) {
      return Violation("objective increased at iteration " + std::to_string(t + 1) +
                       ": " + std::to_string(prev) + " -> " + std::to_string(objective));
    }
  }
  return Status::OK();
}

Status CheckTruthTablesMatch(const Dataset& data, const ValueTable& expected,
                             const ValueTable& actual, double continuous_tolerance) {
  if (expected.num_objects() != actual.num_objects() ||
      expected.num_properties() != actual.num_properties()) {
    return Status::InvalidArgument("truth tables have different shapes");
  }
  for (size_t i = 0; i < expected.num_objects(); ++i) {
    for (size_t m = 0; m < expected.num_properties(); ++m) {
      const Value& want = expected.Get(i, m);
      const Value& got = actual.Get(i, m);
      if (want.is_missing() != got.is_missing()) {
        return Violation(EntryName(data, i, m) + ": missingness differs");
      }
      if (want.is_missing()) continue;
      if (want.is_continuous() != got.is_continuous()) {
        return Violation(EntryName(data, i, m) + ": value kinds differ");
      }
      if (want.is_continuous()) {
        const double slack = continuous_tolerance * std::max(1.0, std::abs(want.continuous()));
        if (!NearlyEqual(want.continuous(), got.continuous(), slack)) {
          return Violation(EntryName(data, i, m) + ": continuous truths differ: " +
                           std::to_string(want.continuous()) + " vs " +
                           std::to_string(got.continuous()));
        }
      } else if (want != got) {
        return Violation(EntryName(data, i, m) + ": discrete truths differ");
      }
    }
  }
  return Status::OK();
}

namespace {

/// Engines must fill the mandatory snapshot fields; a malformed snapshot
/// is a bug in the engine integration, not a data problem.
void CheckSnapshotContract(const IterationSnapshot& snapshot) {
  CRH_CHECK_MSG(snapshot.data != nullptr, "IterationSnapshot.data is null");
  CRH_CHECK_MSG(snapshot.truths != nullptr, "IterationSnapshot.truths is null");
  CRH_CHECK_MSG(snapshot.weights != nullptr, "IterationSnapshot.weights is null");
  CRH_CHECK_MSG(snapshot.iteration >= 1, "IterationSnapshot.iteration must be 1-based");
}

}  // namespace

Status LossMonotonicityChecker::OnIteration(const IterationSnapshot& snapshot) {
  CheckSnapshotContract(snapshot);
  if (!std::isnan(snapshot.objective) && !std::isfinite(snapshot.objective)) {
    return Violation(std::string(snapshot.engine) + " objective at iteration " +
                     std::to_string(snapshot.iteration) + " is not finite");
  }
  const auto check_step = [&](const char* step, double before,
                              double after) -> Status {
    // NaN marks "no certificate for this configuration"; a certificate
    // with only one side evaluated is an engine wiring bug.
    if (std::isnan(before) && std::isnan(after)) return Status::OK();
    if (!std::isfinite(before) || !std::isfinite(after)) {
      return Violation(std::string(snapshot.engine) + " " + step +
                       "-step certificate at iteration " +
                       std::to_string(snapshot.iteration) + " is not finite");
    }
    const double allowed = before +
                           options_.monotonicity_relative_slack *
                               std::max(std::abs(before), 1.0) +
                           options_.monotonicity_absolute_slack;
    if (after > allowed) {
      return Violation(std::string(snapshot.engine) + " " + step +
                       " update increased its objective at iteration " +
                       std::to_string(snapshot.iteration) + ": " + std::to_string(before) +
                       " -> " + std::to_string(after));
    }
    return Status::OK();
  };
  CRH_RETURN_NOT_OK(
      check_step("weight", snapshot.weight_step_before, snapshot.weight_step_after));
  return check_step("truth", snapshot.truth_step_before, snapshot.truth_step_after);
}

Status WeightConstraintChecker::OnIteration(const IterationSnapshot& snapshot) {
  CheckSnapshotContract(snapshot);
  if (snapshot.weight_scheme == nullptr) return Status::OK();
  if (snapshot.group_weights != nullptr) {
    const double tol = options_.weight_tolerance;
    for (const std::vector<double>& group : *snapshot.group_weights) {
      CRH_RETURN_NOT_OK(CheckWeightConstraint(group, *snapshot.weight_scheme, tol));
    }
    return Status::OK();
  }
  return CheckWeightConstraint(*snapshot.weights, *snapshot.weight_scheme,
                               options_.weight_tolerance);
}

Status DomainValidityChecker::OnIteration(const IterationSnapshot& snapshot) {
  CheckSnapshotContract(snapshot);
  return CheckTruthDomain(*snapshot.data, *snapshot.truths, snapshot.supervision,
                          options_.domain_tolerance);
}

InvariantVerifier::InvariantVerifier(const InvariantVerifierOptions& options)
    : monotonicity_(options), weights_(options), domain_(options) {}

Status InvariantVerifier::OnIteration(const IterationSnapshot& snapshot) {
  CRH_RETURN_NOT_OK(monotonicity_.OnIteration(snapshot));
  CRH_RETURN_NOT_OK(weights_.OnIteration(snapshot));
  CRH_RETURN_NOT_OK(domain_.OnIteration(snapshot));
  ++steps_verified_;
  return Status::OK();
}

}  // namespace crh
