#ifndef CRH_ANALYSIS_INVARIANTS_H_
#define CRH_ANALYSIS_INVARIANTS_H_

/// \file invariants.h
/// Algorithmic invariant verification for the CRH solver family.
///
/// The sanitizer/lint layer (PR 1) catches memory and style bugs; this
/// module catches *algorithmic* ones — the silent regressions where every
/// iteration still runs and a plausible truth table still comes out, but a
/// mathematical invariant of the method has been broken. The enforced
/// invariants come straight from the paper:
///
///  * Loss descent (Theorem 2 / Eq 5): each block update of the coordinate
///    descent must not increase the objective it minimizes. This is checked
///    as two per-step "descent certificates" (weight step and truth step)
///    rather than as monotonicity of the raw Eq-1 history, because the raw
///    history is only a true Lyapunov function in the theorem configuration
///    — see LossMonotonicityChecker for the full story.
///  * Weight constraint delta(W) = 1 (Eq 2): every weight update must land
///    on the constraint set of its weight scheme — e.g. sum_k exp(-w_k) = 1
///    for the log-sum scheme — with all weights finite and non-negative.
///  * Truth-table domain validity (Eq 3): every estimated truth must be
///    drawn from the observed candidate set (categorical/text) or lie
///    within the observed min/max hull of the claims (continuous).
///
/// Engines expose an IterationObserver hook (CrhOptions::observer) invoked
/// after every coordinate-descent step; InvariantVerifier bundles all
/// checkers behind that hook. A non-OK status from the observer aborts the
/// run and is returned to the caller, so a violated invariant can never
/// produce a silently wrong result. Building with -DCRH_VERIFY=ON (or
/// passing --verify to crh_cli) installs an InvariantVerifier into every
/// solver run that did not configure its own observer.
///
/// The standalone Check* functions are the same predicates in pure form,
/// usable by tests on any solver output (including the baselines, which
/// have no iteration loop to observe).

#include <limits>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"
#include "data/table.h"
#include "weights/weight_scheme.h"

namespace crh {

/// Everything an observer may inspect after one coordinate-descent step.
/// All pointers are borrowed and valid only during the OnIteration call.
struct IterationSnapshot {
  /// Which engine produced the snapshot: "crh", "icrh", "parallel".
  const char* engine = "";
  /// 1-based step index within the current run (chunk index for icrh).
  int iteration = 0;
  /// The dataset the step ran on (the current chunk for icrh). Never null.
  const Dataset* data = nullptr;
  /// The truth table after the step. Never null.
  const ValueTable* truths = nullptr;
  /// Aggregated per-source weights after the step (mean across groups
  /// under fine-grained granularity). Never null.
  const std::vector<double>* weights = nullptr;
  /// Per-group weights when the engine resolves weights per group; each
  /// group individually satisfies the weight constraint. Null when the
  /// engine has a single global weight vector.
  const std::vector<std::vector<double>>* group_weights = nullptr;
  /// The weight scheme that produced the weights; null when the weights
  /// did not come from ComputeSourceWeights (no delta(W) constraint).
  const WeightSchemeOptions* weight_scheme = nullptr;
  /// Supervision table whose non-missing cells are clamped truths (exempt
  /// from the observed-candidate domain rule). Null when unsupervised.
  const ValueTable* supervision = nullptr;
  /// Objective value (Eq 1) after the step; NaN when the engine does not
  /// evaluate the objective (icrh's single pass).
  double objective = 0.0;

  /// Descent certificates for the two block updates of this step — the
  /// content of Theorem 2's proof sketch (each block update is an argmin of
  /// its objective, so it cannot increase it). NaN means "not evaluated";
  /// a certificate is only emitted when the inequality is an exact
  /// mathematical guarantee for the engine's configuration.
  ///
  /// Weight step: WeightStepObjective (the functional the update is the
  /// exact minimizer of — the penalized Lagrangian form for the log
  /// schemes, the linear form over the 0/1 selection set for the selection
  /// schemes), summed across weight groups, at the previous weights
  /// (before) and the updated weights (after). The log schemes' update is
  /// an unconstrained global minimizer, so their certificate holds against
  /// any previous weights, including the all-ones start; the selection
  /// schemes' 0/1 argmin is dominated by both the all-ones start and any
  /// previous selection. The certificate is therefore emitted on every
  /// observed iteration of every scheme.
  double weight_step_before = std::numeric_limits<double>::quiet_NaN();
  double weight_step_after = std::numeric_limits<double>::quiet_NaN();
  /// Truth step: the weighted loss at the (group) weights the truth update
  /// used, evaluated at the previous truths (before) and the updated truths
  /// (after). Valid in every configuration: the truth update is an exact
  /// per-entry argmin given the weights.
  double truth_step_before = std::numeric_limits<double>::quiet_NaN();
  double truth_step_after = std::numeric_limits<double>::quiet_NaN();
};

/// Observer interface the engines call after each coordinate-descent step.
/// Returning a non-OK status aborts the run with that status.
class IterationObserver {
 public:
  virtual ~IterationObserver() = default;
  [[nodiscard]] virtual Status OnIteration(const IterationSnapshot& snapshot) = 0;
};

/// Fans one snapshot out to several observers; fails on the first failure.
class ObserverChain : public IterationObserver {
 public:
  ObserverChain() = default;
  explicit ObserverChain(std::vector<IterationObserver*> observers)
      : observers_(std::move(observers)) {}

  /// Adds an observer (borrowed; must outlive the chain).
  void Add(IterationObserver* observer) { observers_.push_back(observer); }

  [[nodiscard]] Status OnIteration(const IterationSnapshot& snapshot) override;

 private:
  std::vector<IterationObserver*> observers_;
};

// --- Standalone invariant predicates ---------------------------------------

/// Verifies one weight vector against its scheme's constraint set:
/// all weights finite and non-negative, and
///   kLogSum       sum_k exp(-w_k) in [1, 1 + K * epsilon_ratio]
///                 (the epsilon clamp can only push the sum above 1),
///   kLogMax       max_k exp(-w_k) = 1 (the worst source has weight 0),
///   kBestSourceLp weights are 0/1 and sum to 1,
///   kTopJ         weights are 0/1 and sum to top_j.
/// The all-equal vector is accepted for the log schemes: it is the
/// documented degenerate output when every source has zero loss.
[[nodiscard]]
Status CheckWeightConstraint(const std::vector<double>& weights,
                             const WeightSchemeOptions& scheme, double tolerance = 1e-9);

/// Verifies domain validity of a truth table against the observations:
/// for every entry, a missing truth requires no claims; a categorical or
/// text truth must equal one of the claimed values; a continuous truth
/// must lie within [min claim, max claim] (widened by `tolerance` times
/// the hull width). Cells labeled in `supervision` are instead required to
/// equal the supervision value. Truth tables narrower than the dataset
/// (baselines that skip a property type) pass for the missing entries
/// only if no rule above is violated.
[[nodiscard]]
Status CheckTruthDomain(const Dataset& data, const ValueTable& truths,
                        const ValueTable* supervision = nullptr, double tolerance = 1e-9);

/// Verifies an objective history is non-increasing up to slack: each
/// successive value may exceed its predecessor by at most
/// `relative_slack * max(|prev|, 1) + absolute_slack`.
[[nodiscard]]
Status CheckLossMonotonic(const std::vector<double>& objective_history,
                          double relative_slack = 1e-9, double absolute_slack = 1e-12);

/// Verifies two truth tables over the same dataset agree: identical
/// missingness and categorical/text truths, continuous truths within
/// `continuous_tolerance` (absolute, after scaling by max(1, |expected|)).
/// Used by the batch-vs-incremental and batch-vs-parallel equivalence
/// tests. The status message pinpoints the first mismatching entry.
[[nodiscard]]
Status CheckTruthTablesMatch(const Dataset& data, const ValueTable& expected,
                             const ValueTable& actual, double continuous_tolerance = 1e-9);

// --- Observer wrappers ------------------------------------------------------

/// Options shared by the concrete checkers / the bundled verifier.
struct InvariantVerifierOptions {
  /// Loss descent: allowed relative increase of a descent certificate
  /// across its block update. The certificates are exact inequalities in
  /// real arithmetic; the slack only absorbs floating-point accumulation
  /// order across the sum over claims.
  double monotonicity_relative_slack = 1e-6;
  double monotonicity_absolute_slack = 1e-9;
  /// Numeric tolerance of the delta(W) constraint check.
  double weight_tolerance = 1e-9;
  /// Relative widening of the continuous min/max hull.
  double domain_tolerance = 1e-9;
};

/// Checks the loss-descent invariant of Theorem 2: every snapshot's weight
/// and truth descent certificates must be non-increasing (up to slack), and
/// every non-NaN objective must be finite.
///
/// Why certificates instead of "objective_history is non-increasing":
/// the raw Eq-1 objective is only a Lyapunov function of the descent when
/// the weight update minimizes that same functional — i.e. under the
/// log-sum scheme with the Section 2.5 normalizations off. The default
/// configuration breaks this twice: the per-property (kSum) and
/// per-observation-count normalizations make the weight update minimize a
/// differently-weighted sum than Eq 1, and the log-max scheme is a
/// normalization heuristic rather than a constrained argmin, so the total
/// weight mass (and with it the raw objective) can legitimately grow as the
/// weight spread sharpens. What Theorem 2's proof actually guarantees in
/// every configuration is the per-block inequalities, which is what the
/// snapshots certify. Full-history monotonicity in the theorem
/// configuration is asserted by the regression tests via
/// CheckLossMonotonic.
class LossMonotonicityChecker : public IterationObserver {
 public:
  explicit LossMonotonicityChecker(const InvariantVerifierOptions& options = {})
      : options_(options) {}
  [[nodiscard]] Status OnIteration(const IterationSnapshot& snapshot) override;

 private:
  InvariantVerifierOptions options_;
};

/// Checks every snapshot's weights against the scheme constraint set
/// (per group when group weights are present).
class WeightConstraintChecker : public IterationObserver {
 public:
  explicit WeightConstraintChecker(const InvariantVerifierOptions& options = {})
      : options_(options) {}
  [[nodiscard]] Status OnIteration(const IterationSnapshot& snapshot) override;

 private:
  InvariantVerifierOptions options_;
};

/// Checks every snapshot's truth table for domain validity.
class DomainValidityChecker : public IterationObserver {
 public:
  explicit DomainValidityChecker(const InvariantVerifierOptions& options = {})
      : options_(options) {}
  [[nodiscard]] Status OnIteration(const IterationSnapshot& snapshot) override;

 private:
  InvariantVerifierOptions options_;
};

/// The full verification bundle: monotonicity + weight constraint + domain
/// validity. This is what --verify and -DCRH_VERIFY=ON install.
class InvariantVerifier : public IterationObserver {
 public:
  explicit InvariantVerifier(const InvariantVerifierOptions& options = {});
  [[nodiscard]] Status OnIteration(const IterationSnapshot& snapshot) override;

  /// Number of snapshots that passed all checks since construction.
  size_t steps_verified() const { return steps_verified_; }

 private:
  LossMonotonicityChecker monotonicity_;
  WeightConstraintChecker weights_;
  DomainValidityChecker domain_;
  size_t steps_verified_ = 0;
};

}  // namespace crh

#endif  // CRH_ANALYSIS_INVARIANTS_H_
