# Empty dependencies file for bench_table4_simulated.
# This may be replaced when dependencies are built.
