file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_simulated.dir/bench_table4_simulated.cc.o"
  "CMakeFiles/bench_table4_simulated.dir/bench_table4_simulated.cc.o.d"
  "bench_table4_simulated"
  "bench_table4_simulated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_simulated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
