file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_icrh_weights.dir/bench_fig4_icrh_weights.cc.o"
  "CMakeFiles/bench_fig4_icrh_weights.dir/bench_fig4_icrh_weights.cc.o.d"
  "bench_fig4_icrh_weights"
  "bench_fig4_icrh_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_icrh_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
