# Empty compiler generated dependencies file for bench_fig4_icrh_weights.
# This may be replaced when dependencies are built.
