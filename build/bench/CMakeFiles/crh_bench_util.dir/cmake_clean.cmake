file(REMOVE_RECURSE
  "CMakeFiles/crh_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/crh_bench_util.dir/bench_util.cc.o.d"
  "libcrh_bench_util.a"
  "libcrh_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crh_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
