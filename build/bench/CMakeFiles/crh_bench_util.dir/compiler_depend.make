# Empty compiler generated dependencies file for crh_bench_util.
# This may be replaced when dependencies are built.
