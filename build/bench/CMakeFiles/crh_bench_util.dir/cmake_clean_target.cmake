file(REMOVE_RECURSE
  "libcrh_bench_util.a"
)
