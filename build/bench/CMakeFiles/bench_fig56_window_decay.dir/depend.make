# Empty dependencies file for bench_fig56_window_decay.
# This may be replaced when dependencies are built.
