
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig23_reliable_sources.cc" "bench/CMakeFiles/bench_fig23_reliable_sources.dir/bench_fig23_reliable_sources.cc.o" "gcc" "bench/CMakeFiles/bench_fig23_reliable_sources.dir/bench_fig23_reliable_sources.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/crh_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crh_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crh_cli_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crh_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crh_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crh_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crh_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crh_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crh_losses.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crh_weights.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
