file(REMOVE_RECURSE
  "CMakeFiles/bench_fig23_reliable_sources.dir/bench_fig23_reliable_sources.cc.o"
  "CMakeFiles/bench_fig23_reliable_sources.dir/bench_fig23_reliable_sources.cc.o.d"
  "bench_fig23_reliable_sources"
  "bench_fig23_reliable_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23_reliable_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
