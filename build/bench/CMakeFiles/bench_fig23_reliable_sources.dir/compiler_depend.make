# Empty compiler generated dependencies file for bench_fig23_reliable_sources.
# This may be replaced when dependencies are built.
