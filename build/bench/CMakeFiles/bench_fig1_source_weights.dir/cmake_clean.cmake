file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_source_weights.dir/bench_fig1_source_weights.cc.o"
  "CMakeFiles/bench_fig1_source_weights.dir/bench_fig1_source_weights.cc.o.d"
  "bench_fig1_source_weights"
  "bench_fig1_source_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_source_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
