# Empty compiler generated dependencies file for bench_fig1_source_weights.
# This may be replaced when dependencies are built.
