# Empty compiler generated dependencies file for bench_table6_fig7_parallel.
# This may be replaced when dependencies are built.
