
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/noise.cc" "src/CMakeFiles/crh_datagen.dir/datagen/noise.cc.o" "gcc" "src/CMakeFiles/crh_datagen.dir/datagen/noise.cc.o.d"
  "/root/repo/src/datagen/real_world.cc" "src/CMakeFiles/crh_datagen.dir/datagen/real_world.cc.o" "gcc" "src/CMakeFiles/crh_datagen.dir/datagen/real_world.cc.o.d"
  "/root/repo/src/datagen/uci_like.cc" "src/CMakeFiles/crh_datagen.dir/datagen/uci_like.cc.o" "gcc" "src/CMakeFiles/crh_datagen.dir/datagen/uci_like.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crh_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
