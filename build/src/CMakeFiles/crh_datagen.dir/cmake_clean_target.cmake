file(REMOVE_RECURSE
  "libcrh_datagen.a"
)
