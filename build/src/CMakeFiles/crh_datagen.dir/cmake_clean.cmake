file(REMOVE_RECURSE
  "CMakeFiles/crh_datagen.dir/datagen/noise.cc.o"
  "CMakeFiles/crh_datagen.dir/datagen/noise.cc.o.d"
  "CMakeFiles/crh_datagen.dir/datagen/real_world.cc.o"
  "CMakeFiles/crh_datagen.dir/datagen/real_world.cc.o.d"
  "CMakeFiles/crh_datagen.dir/datagen/uci_like.cc.o"
  "CMakeFiles/crh_datagen.dir/datagen/uci_like.cc.o.d"
  "libcrh_datagen.a"
  "libcrh_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crh_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
