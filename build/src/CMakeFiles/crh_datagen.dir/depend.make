# Empty dependencies file for crh_datagen.
# This may be replaced when dependencies are built.
