file(REMOVE_RECURSE
  "libcrh_losses.a"
)
