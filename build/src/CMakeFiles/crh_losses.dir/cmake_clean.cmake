file(REMOVE_RECURSE
  "CMakeFiles/crh_losses.dir/losses/loss.cc.o"
  "CMakeFiles/crh_losses.dir/losses/loss.cc.o.d"
  "CMakeFiles/crh_losses.dir/losses/text_distance.cc.o"
  "CMakeFiles/crh_losses.dir/losses/text_distance.cc.o.d"
  "libcrh_losses.a"
  "libcrh_losses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crh_losses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
