# Empty compiler generated dependencies file for crh_losses.
# This may be replaced when dependencies are built.
