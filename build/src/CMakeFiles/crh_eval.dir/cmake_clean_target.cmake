file(REMOVE_RECURSE
  "libcrh_eval.a"
)
