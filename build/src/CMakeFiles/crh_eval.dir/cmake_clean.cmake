file(REMOVE_RECURSE
  "CMakeFiles/crh_eval.dir/eval/metrics.cc.o"
  "CMakeFiles/crh_eval.dir/eval/metrics.cc.o.d"
  "libcrh_eval.a"
  "libcrh_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crh_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
