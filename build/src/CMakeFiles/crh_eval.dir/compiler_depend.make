# Empty compiler generated dependencies file for crh_eval.
# This may be replaced when dependencies are built.
