
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/accusim.cc" "src/CMakeFiles/crh_baselines.dir/baselines/accusim.cc.o" "gcc" "src/CMakeFiles/crh_baselines.dir/baselines/accusim.cc.o.d"
  "/root/repo/src/baselines/baseline.cc" "src/CMakeFiles/crh_baselines.dir/baselines/baseline.cc.o" "gcc" "src/CMakeFiles/crh_baselines.dir/baselines/baseline.cc.o.d"
  "/root/repo/src/baselines/estimates.cc" "src/CMakeFiles/crh_baselines.dir/baselines/estimates.cc.o" "gcc" "src/CMakeFiles/crh_baselines.dir/baselines/estimates.cc.o.d"
  "/root/repo/src/baselines/gtm.cc" "src/CMakeFiles/crh_baselines.dir/baselines/gtm.cc.o" "gcc" "src/CMakeFiles/crh_baselines.dir/baselines/gtm.cc.o.d"
  "/root/repo/src/baselines/investment.cc" "src/CMakeFiles/crh_baselines.dir/baselines/investment.cc.o" "gcc" "src/CMakeFiles/crh_baselines.dir/baselines/investment.cc.o.d"
  "/root/repo/src/baselines/simple.cc" "src/CMakeFiles/crh_baselines.dir/baselines/simple.cc.o" "gcc" "src/CMakeFiles/crh_baselines.dir/baselines/simple.cc.o.d"
  "/root/repo/src/baselines/truthfinder.cc" "src/CMakeFiles/crh_baselines.dir/baselines/truthfinder.cc.o" "gcc" "src/CMakeFiles/crh_baselines.dir/baselines/truthfinder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crh_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crh_losses.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crh_weights.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crh_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
