file(REMOVE_RECURSE
  "CMakeFiles/crh_baselines.dir/baselines/accusim.cc.o"
  "CMakeFiles/crh_baselines.dir/baselines/accusim.cc.o.d"
  "CMakeFiles/crh_baselines.dir/baselines/baseline.cc.o"
  "CMakeFiles/crh_baselines.dir/baselines/baseline.cc.o.d"
  "CMakeFiles/crh_baselines.dir/baselines/estimates.cc.o"
  "CMakeFiles/crh_baselines.dir/baselines/estimates.cc.o.d"
  "CMakeFiles/crh_baselines.dir/baselines/gtm.cc.o"
  "CMakeFiles/crh_baselines.dir/baselines/gtm.cc.o.d"
  "CMakeFiles/crh_baselines.dir/baselines/investment.cc.o"
  "CMakeFiles/crh_baselines.dir/baselines/investment.cc.o.d"
  "CMakeFiles/crh_baselines.dir/baselines/simple.cc.o"
  "CMakeFiles/crh_baselines.dir/baselines/simple.cc.o.d"
  "CMakeFiles/crh_baselines.dir/baselines/truthfinder.cc.o"
  "CMakeFiles/crh_baselines.dir/baselines/truthfinder.cc.o.d"
  "libcrh_baselines.a"
  "libcrh_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crh_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
