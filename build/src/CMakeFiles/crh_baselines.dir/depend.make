# Empty dependencies file for crh_baselines.
# This may be replaced when dependencies are built.
