file(REMOVE_RECURSE
  "libcrh_baselines.a"
)
