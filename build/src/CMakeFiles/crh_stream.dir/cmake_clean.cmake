file(REMOVE_RECURSE
  "CMakeFiles/crh_stream.dir/stream/chunks.cc.o"
  "CMakeFiles/crh_stream.dir/stream/chunks.cc.o.d"
  "CMakeFiles/crh_stream.dir/stream/incremental_crh.cc.o"
  "CMakeFiles/crh_stream.dir/stream/incremental_crh.cc.o.d"
  "libcrh_stream.a"
  "libcrh_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crh_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
