file(REMOVE_RECURSE
  "libcrh_stream.a"
)
