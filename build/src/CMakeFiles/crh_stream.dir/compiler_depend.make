# Empty compiler generated dependencies file for crh_stream.
# This may be replaced when dependencies are built.
