file(REMOVE_RECURSE
  "libcrh_core.a"
)
