file(REMOVE_RECURSE
  "CMakeFiles/crh_core.dir/core/catd.cc.o"
  "CMakeFiles/crh_core.dir/core/catd.cc.o.d"
  "CMakeFiles/crh_core.dir/core/crh.cc.o"
  "CMakeFiles/crh_core.dir/core/crh.cc.o.d"
  "CMakeFiles/crh_core.dir/core/dependence.cc.o"
  "CMakeFiles/crh_core.dir/core/dependence.cc.o.d"
  "CMakeFiles/crh_core.dir/core/resolvers.cc.o"
  "CMakeFiles/crh_core.dir/core/resolvers.cc.o.d"
  "libcrh_core.a"
  "libcrh_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crh_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
