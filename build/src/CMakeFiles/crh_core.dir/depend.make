# Empty dependencies file for crh_core.
# This may be replaced when dependencies are built.
