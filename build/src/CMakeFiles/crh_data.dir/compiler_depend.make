# Empty compiler generated dependencies file for crh_data.
# This may be replaced when dependencies are built.
