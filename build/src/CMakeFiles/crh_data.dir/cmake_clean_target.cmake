file(REMOVE_RECURSE
  "libcrh_data.a"
)
