file(REMOVE_RECURSE
  "CMakeFiles/crh_data.dir/data/csv.cc.o"
  "CMakeFiles/crh_data.dir/data/csv.cc.o.d"
  "CMakeFiles/crh_data.dir/data/dataset.cc.o"
  "CMakeFiles/crh_data.dir/data/dataset.cc.o.d"
  "CMakeFiles/crh_data.dir/data/schema.cc.o"
  "CMakeFiles/crh_data.dir/data/schema.cc.o.d"
  "CMakeFiles/crh_data.dir/data/stats.cc.o"
  "CMakeFiles/crh_data.dir/data/stats.cc.o.d"
  "libcrh_data.a"
  "libcrh_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crh_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
