file(REMOVE_RECURSE
  "libcrh_common.a"
)
