file(REMOVE_RECURSE
  "CMakeFiles/crh_common.dir/common/statistics.cc.o"
  "CMakeFiles/crh_common.dir/common/statistics.cc.o.d"
  "CMakeFiles/crh_common.dir/common/status.cc.o"
  "CMakeFiles/crh_common.dir/common/status.cc.o.d"
  "CMakeFiles/crh_common.dir/common/value.cc.o"
  "CMakeFiles/crh_common.dir/common/value.cc.o.d"
  "libcrh_common.a"
  "libcrh_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crh_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
