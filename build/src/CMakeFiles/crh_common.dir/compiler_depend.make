# Empty compiler generated dependencies file for crh_common.
# This may be replaced when dependencies are built.
