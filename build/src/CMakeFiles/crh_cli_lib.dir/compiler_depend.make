# Empty compiler generated dependencies file for crh_cli_lib.
# This may be replaced when dependencies are built.
