file(REMOVE_RECURSE
  "CMakeFiles/crh_cli_lib.dir/tools/cli.cc.o"
  "CMakeFiles/crh_cli_lib.dir/tools/cli.cc.o.d"
  "libcrh_cli_lib.a"
  "libcrh_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crh_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
