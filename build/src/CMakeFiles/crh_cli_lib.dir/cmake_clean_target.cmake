file(REMOVE_RECURSE
  "libcrh_cli_lib.a"
)
