# Empty dependencies file for crh_cli.
# This may be replaced when dependencies are built.
