file(REMOVE_RECURSE
  "CMakeFiles/crh_cli.dir/tools/crh_cli_main.cc.o"
  "CMakeFiles/crh_cli.dir/tools/crh_cli_main.cc.o.d"
  "crh_cli"
  "crh_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crh_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
