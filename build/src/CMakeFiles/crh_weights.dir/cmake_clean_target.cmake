file(REMOVE_RECURSE
  "libcrh_weights.a"
)
