file(REMOVE_RECURSE
  "CMakeFiles/crh_weights.dir/weights/weight_scheme.cc.o"
  "CMakeFiles/crh_weights.dir/weights/weight_scheme.cc.o.d"
  "libcrh_weights.a"
  "libcrh_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crh_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
