# Empty dependencies file for crh_weights.
# This may be replaced when dependencies are built.
