# Empty compiler generated dependencies file for crh_mapreduce.
# This may be replaced when dependencies are built.
