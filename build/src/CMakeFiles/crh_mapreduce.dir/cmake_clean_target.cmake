file(REMOVE_RECURSE
  "libcrh_mapreduce.a"
)
