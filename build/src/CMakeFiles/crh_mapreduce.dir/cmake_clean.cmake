file(REMOVE_RECURSE
  "CMakeFiles/crh_mapreduce.dir/mapreduce/cost_model.cc.o"
  "CMakeFiles/crh_mapreduce.dir/mapreduce/cost_model.cc.o.d"
  "CMakeFiles/crh_mapreduce.dir/mapreduce/engine.cc.o"
  "CMakeFiles/crh_mapreduce.dir/mapreduce/engine.cc.o.d"
  "CMakeFiles/crh_mapreduce.dir/mapreduce/parallel_crh.cc.o"
  "CMakeFiles/crh_mapreduce.dir/mapreduce/parallel_crh.cc.o.d"
  "libcrh_mapreduce.a"
  "libcrh_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crh_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
