# Empty compiler generated dependencies file for weather_fusion.
# This may be replaced when dependencies are built.
