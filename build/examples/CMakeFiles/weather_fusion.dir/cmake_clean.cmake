file(REMOVE_RECURSE
  "CMakeFiles/weather_fusion.dir/weather_fusion.cpp.o"
  "CMakeFiles/weather_fusion.dir/weather_fusion.cpp.o.d"
  "weather_fusion"
  "weather_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weather_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
