file(REMOVE_RECURSE
  "CMakeFiles/cluster_scale.dir/cluster_scale.cpp.o"
  "CMakeFiles/cluster_scale.dir/cluster_scale.cpp.o.d"
  "cluster_scale"
  "cluster_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
