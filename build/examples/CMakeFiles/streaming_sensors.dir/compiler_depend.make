# Empty compiler generated dependencies file for streaming_sensors.
# This may be replaced when dependencies are built.
