file(REMOVE_RECURSE
  "CMakeFiles/streaming_sensors.dir/streaming_sensors.cpp.o"
  "CMakeFiles/streaming_sensors.dir/streaming_sensors.cpp.o.d"
  "streaming_sensors"
  "streaming_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
