file(REMOVE_RECURSE
  "CMakeFiles/crh_data_tests.dir/csv_test.cc.o"
  "CMakeFiles/crh_data_tests.dir/csv_test.cc.o.d"
  "CMakeFiles/crh_data_tests.dir/datagen_test.cc.o"
  "CMakeFiles/crh_data_tests.dir/datagen_test.cc.o.d"
  "CMakeFiles/crh_data_tests.dir/noise_test.cc.o"
  "CMakeFiles/crh_data_tests.dir/noise_test.cc.o.d"
  "CMakeFiles/crh_data_tests.dir/text_test.cc.o"
  "CMakeFiles/crh_data_tests.dir/text_test.cc.o.d"
  "crh_data_tests"
  "crh_data_tests.pdb"
  "crh_data_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crh_data_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
