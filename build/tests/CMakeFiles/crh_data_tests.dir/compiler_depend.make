# Empty compiler generated dependencies file for crh_data_tests.
# This may be replaced when dependencies are built.
