# Empty compiler generated dependencies file for crh_stream_mr_tests.
# This may be replaced when dependencies are built.
