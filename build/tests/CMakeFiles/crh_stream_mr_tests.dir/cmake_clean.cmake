file(REMOVE_RECURSE
  "CMakeFiles/crh_stream_mr_tests.dir/mapreduce_test.cc.o"
  "CMakeFiles/crh_stream_mr_tests.dir/mapreduce_test.cc.o.d"
  "CMakeFiles/crh_stream_mr_tests.dir/parallel_crh_test.cc.o"
  "CMakeFiles/crh_stream_mr_tests.dir/parallel_crh_test.cc.o.d"
  "CMakeFiles/crh_stream_mr_tests.dir/stream_test.cc.o"
  "CMakeFiles/crh_stream_mr_tests.dir/stream_test.cc.o.d"
  "crh_stream_mr_tests"
  "crh_stream_mr_tests.pdb"
  "crh_stream_mr_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crh_stream_mr_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
