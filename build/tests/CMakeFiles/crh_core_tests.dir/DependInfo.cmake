
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/catd_test.cc" "tests/CMakeFiles/crh_core_tests.dir/catd_test.cc.o" "gcc" "tests/CMakeFiles/crh_core_tests.dir/catd_test.cc.o.d"
  "/root/repo/tests/crh_test.cc" "tests/CMakeFiles/crh_core_tests.dir/crh_test.cc.o" "gcc" "tests/CMakeFiles/crh_core_tests.dir/crh_test.cc.o.d"
  "/root/repo/tests/dataset_test.cc" "tests/CMakeFiles/crh_core_tests.dir/dataset_test.cc.o" "gcc" "tests/CMakeFiles/crh_core_tests.dir/dataset_test.cc.o.d"
  "/root/repo/tests/dependence_test.cc" "tests/CMakeFiles/crh_core_tests.dir/dependence_test.cc.o" "gcc" "tests/CMakeFiles/crh_core_tests.dir/dependence_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/crh_core_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/crh_core_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/loss_test.cc" "tests/CMakeFiles/crh_core_tests.dir/loss_test.cc.o" "gcc" "tests/CMakeFiles/crh_core_tests.dir/loss_test.cc.o.d"
  "/root/repo/tests/metrics_test.cc" "tests/CMakeFiles/crh_core_tests.dir/metrics_test.cc.o" "gcc" "tests/CMakeFiles/crh_core_tests.dir/metrics_test.cc.o.d"
  "/root/repo/tests/resolvers_test.cc" "tests/CMakeFiles/crh_core_tests.dir/resolvers_test.cc.o" "gcc" "tests/CMakeFiles/crh_core_tests.dir/resolvers_test.cc.o.d"
  "/root/repo/tests/status_test.cc" "tests/CMakeFiles/crh_core_tests.dir/status_test.cc.o" "gcc" "tests/CMakeFiles/crh_core_tests.dir/status_test.cc.o.d"
  "/root/repo/tests/value_test.cc" "tests/CMakeFiles/crh_core_tests.dir/value_test.cc.o" "gcc" "tests/CMakeFiles/crh_core_tests.dir/value_test.cc.o.d"
  "/root/repo/tests/weight_scheme_test.cc" "tests/CMakeFiles/crh_core_tests.dir/weight_scheme_test.cc.o" "gcc" "tests/CMakeFiles/crh_core_tests.dir/weight_scheme_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crh_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crh_cli_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crh_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crh_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crh_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crh_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crh_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crh_losses.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crh_weights.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/crh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
