file(REMOVE_RECURSE
  "CMakeFiles/crh_core_tests.dir/catd_test.cc.o"
  "CMakeFiles/crh_core_tests.dir/catd_test.cc.o.d"
  "CMakeFiles/crh_core_tests.dir/crh_test.cc.o"
  "CMakeFiles/crh_core_tests.dir/crh_test.cc.o.d"
  "CMakeFiles/crh_core_tests.dir/dataset_test.cc.o"
  "CMakeFiles/crh_core_tests.dir/dataset_test.cc.o.d"
  "CMakeFiles/crh_core_tests.dir/dependence_test.cc.o"
  "CMakeFiles/crh_core_tests.dir/dependence_test.cc.o.d"
  "CMakeFiles/crh_core_tests.dir/extensions_test.cc.o"
  "CMakeFiles/crh_core_tests.dir/extensions_test.cc.o.d"
  "CMakeFiles/crh_core_tests.dir/loss_test.cc.o"
  "CMakeFiles/crh_core_tests.dir/loss_test.cc.o.d"
  "CMakeFiles/crh_core_tests.dir/metrics_test.cc.o"
  "CMakeFiles/crh_core_tests.dir/metrics_test.cc.o.d"
  "CMakeFiles/crh_core_tests.dir/resolvers_test.cc.o"
  "CMakeFiles/crh_core_tests.dir/resolvers_test.cc.o.d"
  "CMakeFiles/crh_core_tests.dir/status_test.cc.o"
  "CMakeFiles/crh_core_tests.dir/status_test.cc.o.d"
  "CMakeFiles/crh_core_tests.dir/value_test.cc.o"
  "CMakeFiles/crh_core_tests.dir/value_test.cc.o.d"
  "CMakeFiles/crh_core_tests.dir/weight_scheme_test.cc.o"
  "CMakeFiles/crh_core_tests.dir/weight_scheme_test.cc.o.d"
  "crh_core_tests"
  "crh_core_tests.pdb"
  "crh_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crh_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
