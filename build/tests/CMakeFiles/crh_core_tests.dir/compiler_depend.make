# Empty compiler generated dependencies file for crh_core_tests.
# This may be replaced when dependencies are built.
