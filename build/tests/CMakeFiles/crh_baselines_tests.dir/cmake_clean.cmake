file(REMOVE_RECURSE
  "CMakeFiles/crh_baselines_tests.dir/baselines_test.cc.o"
  "CMakeFiles/crh_baselines_tests.dir/baselines_test.cc.o.d"
  "crh_baselines_tests"
  "crh_baselines_tests.pdb"
  "crh_baselines_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crh_baselines_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
