# Empty dependencies file for crh_baselines_tests.
# This may be replaced when dependencies are built.
