# Empty compiler generated dependencies file for crh_integration_tests.
# This may be replaced when dependencies are built.
