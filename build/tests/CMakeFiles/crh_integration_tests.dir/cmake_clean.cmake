file(REMOVE_RECURSE
  "CMakeFiles/crh_integration_tests.dir/cli_test.cc.o"
  "CMakeFiles/crh_integration_tests.dir/cli_test.cc.o.d"
  "CMakeFiles/crh_integration_tests.dir/integration_test.cc.o"
  "CMakeFiles/crh_integration_tests.dir/integration_test.cc.o.d"
  "CMakeFiles/crh_integration_tests.dir/invariance_test.cc.o"
  "CMakeFiles/crh_integration_tests.dir/invariance_test.cc.o.d"
  "crh_integration_tests"
  "crh_integration_tests.pdb"
  "crh_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crh_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
