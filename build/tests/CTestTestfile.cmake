# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/crh_core_tests[1]_include.cmake")
include("/root/repo/build/tests/crh_data_tests[1]_include.cmake")
include("/root/repo/build/tests/crh_baselines_tests[1]_include.cmake")
include("/root/repo/build/tests/crh_stream_mr_tests[1]_include.cmake")
include("/root/repo/build/tests/crh_integration_tests[1]_include.cmake")
